// The `punt bench serve` load generator: K closed-loop client threads
// driving a serve daemon with registry synthesis requests for a fixed
// duration, measuring what the Table-1 harness cannot — serving latency
// under concurrency, whether the daemon's request fusion actually forms
// batches, and how much load it sheds.
//
// Closed-loop: each client thread holds one persistent connection and keeps
// exactly one request in flight (send, block, record, repeat), so offered
// load scales with the client count and a slow daemon is never buried under
// an open-loop backlog it cannot drain.  Requests walk the Table-1 registry
// round-robin, each thread starting at a different offset so concurrent
// clients mix distinct STGs — the fusion-friendly shape of real traffic.
//
// The daemon's side of the story (batches formed, fused sizes, daemon-side
// shed) is read through {"op":"cache-stats"} snapshots taken before and
// after the measurement window and reported as a delta.
#pragma once

#include <cstddef>
#include <string>

#include "src/benchmarks/report.hpp"
#include "src/server/endpoint.hpp"

namespace punt::benchmarks {

struct LoadgenOptions {
  /// The daemon to drive — a Unix socket path or tcp://host:port; required.
  server::Endpoint endpoint;
  /// Auth token for TCP endpoints (each client thread handshakes on
  /// connect); ignored for Unix.
  std::string token;
  std::size_t clients = 8;      // closed-loop client threads
  double duration_seconds = 5;  // measurement window
  /// One sequential pass over the registry before timing starts, so the
  /// measured window runs against a warm model cache (the daemon's steady
  /// state).  The pass is excluded from every reported number.
  bool warmup = true;
};

/// Runs the load generator against a listening daemon.  Throws Error when
/// the daemon is unreachable or the warm-up pass cannot complete; transport
/// faults *during* the measured window are counted, not thrown (a daemon
/// shedding load mid-run is a result, not a harness failure).
ServeBenchReport run_loadgen(const LoadgenOptions& options);

}  // namespace punt::benchmarks
