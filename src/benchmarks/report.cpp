#include "src/benchmarks/report.hpp"

#include <algorithm>
#include <cctype>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "src/benchmarks/registry.hpp"
#include "src/util/error.hpp"
#include "src/util/json.hpp"

namespace punt::benchmarks {
namespace {

std::string printf_string(const char* format, ...) __attribute__((format(printf, 1, 2)));
std::string printf_string(const char* format, ...) {
  va_list args;
  va_start(args, format);
  char buffer[512];
  const int n = std::vsnprintf(buffer, sizeof buffer, format, args);
  va_end(args);
  if (n < 0) return std::string();
  if (static_cast<std::size_t>(n) < sizeof buffer) return std::string(buffer, n);
  // Too long for the stack buffer (e.g. a JSON row embedding a long error
  // message): size exactly and format again — truncation here would emit
  // malformed JSON.
  std::string out(static_cast<std::size_t>(n), '\0');
  va_start(args, format);
  std::vsnprintf(out.data(), out.size() + 1, format, args);
  va_end(args);
  return out;
}

// --- Minimal JSON layer -------------------------------------------------------
//
// The report schema needs objects, arrays, strings, numbers and booleans —
// nothing else — so a ~100-line recursive-descent parser keeps the repo free
// of a JSON dependency.  Errors carry the byte offset for diagnosis.
// String escaping is the shared util::json_escape.

using util::json_escape;

struct JsonValue {
  enum class Type { Null, Bool, Number, String, Array, Object };
  Type type = Type::Null;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse() {
    JsonValue value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after the JSON value");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw ParseError("malformed report JSON at byte " + std::to_string(pos_) + ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool try_consume(char c) {
    if (pos_ < text_.size() && peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      JsonValue value;
      value.type = JsonValue::Type::String;
      value.string = parse_string();
      return value;
    }
    if (c == 't' || c == 'f') return parse_keyword(c == 't' ? "true" : "false");
    if (c == 'n') return parse_keyword("null");
    return parse_number();
  }

  JsonValue parse_keyword(std::string_view keyword) {
    if (text_.substr(pos_, keyword.size()) != keyword) {
      fail("unrecognised literal");
    }
    pos_ += keyword.size();
    JsonValue value;
    if (keyword == "true" || keyword == "false") {
      value.type = JsonValue::Type::Bool;
      value.boolean = keyword == "true";
    }
    return value;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '-' ||
            text_[pos_] == '+' || text_[pos_] == '.' || text_[pos_] == 'e' ||
            text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    JsonValue value;
    value.type = JsonValue::Type::Number;
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    value.number = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("invalid number '" + token + "'");
    return value;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("invalid \\u escape");
          }
          // BMP-only UTF-8 encoding; the report never emits surrogates.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue value;
    value.type = JsonValue::Type::Array;
    if (try_consume(']')) return value;
    while (true) {
      value.array.push_back(parse_value());
      if (try_consume(']')) return value;
      expect(',');
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue value;
    value.type = JsonValue::Type::Object;
    if (try_consume('}')) return value;
    while (true) {
      std::string key = parse_string();
      expect(':');
      value.object.emplace_back(std::move(key), parse_value());
      if (try_consume('}')) return value;
      expect(',');
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

/// Field accessors that fail with the *path* of the missing/mistyped field.
const JsonValue& require(const JsonValue& object, const std::string& key,
                         JsonValue::Type type, const char* what) {
  const JsonValue* value = object.find(key);
  if (value == nullptr || value->type != type) {
    throw ParseError("report JSON is missing " + std::string(what) + " field '" + key +
                     "' (is this a punt-table1-report?)");
  }
  return *value;
}

double number_field(const JsonValue& object, const std::string& key) {
  return require(object, key, JsonValue::Type::Number, "numeric").number;
}

std::size_t count_field(const JsonValue& object, const std::string& key) {
  const double n = number_field(object, key);
  if (n < 0) throw ParseError("report JSON field '" + key + "' is negative");
  return static_cast<std::size_t>(n);
}

std::string string_field(const JsonValue& object, const std::string& key) {
  return require(object, key, JsonValue::Type::String, "string").string;
}

bool bool_field(const JsonValue& object, const std::string& key) {
  return require(object, key, JsonValue::Type::Bool, "boolean").boolean;
}

}  // namespace

// --- Shards -------------------------------------------------------------------

Shard parse_shard(const std::string& value) {
  const std::size_t slash = value.find('/');
  const std::string index_text = value.substr(0, slash);
  const std::string count_text = slash == std::string::npos ? "" : value.substr(slash + 1);
  const auto numeric = [](const std::string& text) {
    return !text.empty() && text.find_first_not_of("0123456789") == std::string::npos;
  };
  if (slash == std::string::npos || !numeric(index_text) || !numeric(count_text)) {
    throw Error("invalid --shard value '" + value +
                "'; expected <index>/<count> with non-negative integers "
                "(e.g. --shard=0/4 for the first of four shards)");
  }
  Shard shard;
  shard.index = std::strtoul(index_text.c_str(), nullptr, 10);
  shard.count = std::strtoul(count_text.c_str(), nullptr, 10);
  if (shard.count == 0) {
    throw Error("invalid --shard value '" + value +
                "'; the shard count must be at least 1");
  }
  if (shard.index >= shard.count) {
    throw Error("invalid --shard value '" + value + "'; the shard index must be below " +
                "the count (valid indices: 0.." + std::to_string(shard.count - 1) + ")");
  }
  return shard;
}

bool shard_contains(const Shard& shard, std::size_t position) {
  return position % shard.count == shard.index;
}

std::vector<std::size_t> shard_positions(const Shard& shard, std::size_t registry_size) {
  std::vector<std::size_t> positions;
  for (std::size_t p = shard.index; p < registry_size; p += shard.count) {
    positions.push_back(p);
  }
  return positions;
}

std::vector<std::size_t> weighted_shard_positions(const Shard& shard,
                                                  const Table1Report& weights) {
  const auto& registry = table1();
  if (weights.registry_size != registry.size()) {
    throw ValidationError(
        "weighted_shard_positions: the weights report covers a registry of " +
        std::to_string(weights.registry_size) + " entries but this build has " +
        std::to_string(registry.size()) + "; regenerate it with `punt bench run`");
  }

  // Per-position TotTim from the report, matched by benchmark name.  Every
  // registry entry must be covered and every row must be known — the same
  // exactly-once contract `punt bench merge` enforces.
  std::vector<double> weight(registry.size(), -1.0);
  std::vector<std::uint8_t> failed(registry.size(), 0);
  for (const Table1Row& row : weights.rows) {
    std::size_t position = registry.size();
    for (std::size_t p = 0; p < registry.size(); ++p) {
      if (registry[p].name == row.name) {
        position = p;
        break;
      }
    }
    if (position == registry.size()) {
      throw ValidationError("weighted_shard_positions: the weights report names "
                            "unknown benchmark '" + row.name + "'");
    }
    if (weight[position] >= 0) {
      throw ValidationError("weighted_shard_positions: the weights report lists '" +
                            row.name + "' twice; merge the shards into one report first");
    }
    weight[position] = row.ok ? row.total_seconds : 0.0;
    failed[position] = row.ok ? 0 : 1;
  }
  std::string missing;
  for (std::size_t p = 0; p < registry.size(); ++p) {
    if (weight[p] < 0) {
      if (!missing.empty()) missing += ", ";
      missing += registry[p].name;
    }
  }
  if (!missing.empty()) {
    throw ValidationError(
        "weighted_shard_positions: the weights report has no row for: " + missing +
        "; use a merged report that covers the whole registry");
  }

  // A failed row's TotTim is meaningless, but weighting it zero would pile
  // every failed entry onto whichever shard happens to be least loaded — as
  // "free riders" that each cost real wall-clock to (re)attempt.  Assume a
  // failed entry costs about as much as a typical successful one: the mean
  // successful-row weight.  The fallback must be strictly positive — with
  // weight 0 the greedy loop below never changes any shard's load, so every
  // zero-weight entry would chase the same tied-lightest shard; a positive
  // equal weight makes LPT deal them out round-robin instead (the all-rows-
  // failed degenerate case becomes an even split, not shard 0 taking all).
  double ok_total = 0;
  std::size_t ok_count = 0;
  for (std::size_t p = 0; p < registry.size(); ++p) {
    if (failed[p] == 0) {
      ok_total += weight[p];
      ++ok_count;
    }
  }
  double fallback = ok_count == 0 ? 0.0 : ok_total / static_cast<double>(ok_count);
  if (fallback <= 0.0) fallback = 1.0;
  for (std::size_t p = 0; p < registry.size(); ++p) {
    if (failed[p] != 0) weight[p] = fallback;
  }

  // Greedy longest-processing-time: heaviest entry first (ties on position,
  // so the order is total), onto the least-loaded shard (ties on index).
  // Both tie-breaks make the assignment a pure function of the weights, so
  // the n shard invocations partition the registry exactly once.
  std::vector<std::size_t> order(registry.size());
  for (std::size_t p = 0; p < registry.size(); ++p) order[p] = p;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (weight[a] != weight[b]) return weight[a] > weight[b];
    return a < b;
  });
  std::vector<double> load(shard.count, 0.0);
  std::vector<std::size_t> positions;
  for (const std::size_t p : order) {
    std::size_t lightest = 0;
    for (std::size_t s = 1; s < shard.count; ++s) {
      if (load[s] < load[lightest]) lightest = s;
    }
    load[lightest] += weight[p];
    if (lightest == shard.index) positions.push_back(p);
  }
  std::sort(positions.begin(), positions.end());
  return positions;
}

// --- Report construction ------------------------------------------------------

std::size_t Table1Report::failures() const {
  std::size_t n = 0;
  for (const Table1Row& row : rows) {
    if (!row.ok) ++n;
  }
  return n;
}

std::size_t Table1Report::literal_count() const {
  std::size_t n = 0;
  for (const Table1Row& row : rows) {
    if (row.ok) n += row.literals;
  }
  return n;
}

Table1Report make_report(const Shard& shard, const core::BatchResult& batch) {
  return make_report(shard, shard_positions(shard, table1().size()), batch);
}

Table1Report make_report(const Shard& shard, const std::vector<std::size_t>& positions,
                         const core::BatchResult& batch) {
  const auto& registry = table1();
  if (batch.entries.size() != positions.size()) {
    throw ValidationError("make_report: batch has " + std::to_string(batch.entries.size()) +
                          " entries but shard " + std::to_string(shard.index) + "/" +
                          std::to_string(shard.count) + " selects " +
                          std::to_string(positions.size()) + " registry entries");
  }
  for (const std::size_t p : positions) {
    if (p >= registry.size()) {
      throw ValidationError("make_report: position " + std::to_string(p) +
                            " is outside the registry of " +
                            std::to_string(registry.size()) + " entries");
    }
  }

  Table1Report report;
  report.shard = shard;
  report.registry_size = registry.size();
  report.jobs = batch.jobs;
  report.wall_seconds = batch.wall_seconds;
  report.rows.reserve(positions.size());
  for (std::size_t k = 0; k < positions.size(); ++k) {
    const Benchmark& bench = registry[positions[k]];
    const core::BatchEntry& entry = batch.entries[k];
    Table1Row row;
    row.name = bench.name;
    row.signals = bench.signals;
    row.paper_total_seconds = bench.paper_total_time;
    row.paper_literals = bench.paper_literals;
    row.ok = entry.ok;
    if (entry.ok) {
      row.unfold_seconds = entry.result.unfold_seconds;
      row.derive_seconds = entry.result.derive_seconds;
      row.minimize_seconds = entry.result.minimize_seconds;
      row.total_seconds = entry.result.total_seconds;
      row.literals = entry.result.literal_count();
      row.exact_fallbacks = entry.result.exact_fallbacks;
    } else {
      row.error = entry.error;
    }
    report.rows.push_back(std::move(row));
  }
  return report;
}

// --- Formatting ---------------------------------------------------------------

std::string format_table1(const Table1Report& report) {
  const char* rule =
      "-----------------------------------------------------------------"
      "-----------------------------------------";
  std::string out;
  out += printf_string("%-24s %4s | %8s %8s %8s %8s %6s | %8s %6s | %s\n", "benchmark",
                       "sigs", "UnfTim", "SynTim", "EspTim", "TotTim", "LitCnt",
                       "paperTot", "papLit", "status");
  out += printf_string("%.*s\n", 106, rule);

  std::size_t total_signals = 0, total_literals = 0, total_paper_literals = 0;
  double total_seconds = 0, total_paper_seconds = 0;
  for (const Table1Row& row : report.rows) {
    total_signals += row.signals;
    total_paper_seconds += row.paper_total_seconds;
    total_paper_literals += row.paper_literals;
    if (!row.ok) {
      out += printf_string("%-24s %4zu | %s\n", row.name.c_str(), row.signals,
                           row.error.c_str());
      continue;
    }
    total_seconds += row.total_seconds;
    total_literals += row.literals;
    out += printf_string(
        "%-24s %4zu | %8.3f %8.3f %8.3f %8.3f %6zu | %8.2f %6zu | %s\n", row.name.c_str(),
        row.signals, row.unfold_seconds, row.derive_seconds, row.minimize_seconds,
        row.total_seconds, row.literals, row.paper_total_seconds, row.paper_literals,
        row.exact_fallbacks > 0 ? "ok (exact fallback)" : "ok");
  }
  out += printf_string("%.*s\n", 106, rule);
  out += printf_string("%-24s %4zu | %8s %8s %8s %8.3f %6zu | %8.2f %6zu | failures %zu\n",
                       "Total", total_signals, "", "", "", total_seconds, total_literals,
                       total_paper_seconds, total_paper_literals, report.failures());
  return out;
}

// --- JSON ---------------------------------------------------------------------

std::string to_json(const Table1Report& report) {
  std::string out = "{\n";
  out += "  \"schema\": \"punt-table1-report\",\n";
  out += "  \"version\": 1,\n";
  out += printf_string("  \"shard\": {\"index\": %zu, \"count\": %zu},\n",
                       report.shard.index, report.shard.count);
  out += printf_string("  \"registry_size\": %zu,\n", report.registry_size);
  out += printf_string("  \"jobs\": %zu,\n", report.jobs);
  out += printf_string("  \"wall_seconds\": %.17g,\n", report.wall_seconds);
  out += "  \"rows\": [\n";
  for (std::size_t i = 0; i < report.rows.size(); ++i) {
    const Table1Row& row = report.rows[i];
    out += printf_string(
        "    {\"name\": \"%s\", \"signals\": %zu, \"ok\": %s, \"error\": \"%s\", "
        "\"unfold_seconds\": %.17g, \"derive_seconds\": %.17g, "
        "\"minimize_seconds\": %.17g, \"total_seconds\": %.17g, \"literals\": %zu, "
        "\"exact_fallbacks\": %zu, \"paper_total_seconds\": %.17g, "
        "\"paper_literals\": %zu}%s\n",
        json_escape(row.name).c_str(), row.signals, row.ok ? "true" : "false",
        json_escape(row.error).c_str(), row.unfold_seconds, row.derive_seconds,
        row.minimize_seconds, row.total_seconds, row.literals, row.exact_fallbacks,
        row.paper_total_seconds, row.paper_literals,
        i + 1 < report.rows.size() ? "," : "");
  }
  out += "  ]\n}\n";
  return out;
}

Table1Report report_from_json(std::string_view text) {
  const JsonValue root = JsonParser(text).parse();
  if (root.type != JsonValue::Type::Object) {
    throw ParseError("report JSON must be an object");
  }
  if (string_field(root, "schema") != "punt-table1-report") {
    throw ParseError("report JSON has schema '" + string_field(root, "schema") +
                     "'; expected 'punt-table1-report'");
  }
  if (count_field(root, "version") != 1) {
    throw ParseError("unsupported punt-table1-report version " +
                     std::to_string(count_field(root, "version")) +
                     "; this build reads version 1");
  }

  Table1Report report;
  const JsonValue& shard = require(root, "shard", JsonValue::Type::Object, "object");
  report.shard.index = count_field(shard, "index");
  report.shard.count = count_field(shard, "count");
  if (report.shard.count == 0 || report.shard.index >= report.shard.count) {
    throw ParseError("report JSON has an invalid shard " +
                     std::to_string(report.shard.index) + "/" +
                     std::to_string(report.shard.count));
  }
  report.registry_size = count_field(root, "registry_size");
  report.jobs = count_field(root, "jobs");
  report.wall_seconds = number_field(root, "wall_seconds");

  const JsonValue& rows = require(root, "rows", JsonValue::Type::Array, "array");
  report.rows.reserve(rows.array.size());
  for (const JsonValue& entry : rows.array) {
    if (entry.type != JsonValue::Type::Object) {
      throw ParseError("report JSON rows must be objects");
    }
    Table1Row row;
    row.name = string_field(entry, "name");
    row.signals = count_field(entry, "signals");
    row.ok = bool_field(entry, "ok");
    row.error = string_field(entry, "error");
    row.unfold_seconds = number_field(entry, "unfold_seconds");
    row.derive_seconds = number_field(entry, "derive_seconds");
    row.minimize_seconds = number_field(entry, "minimize_seconds");
    row.total_seconds = number_field(entry, "total_seconds");
    row.literals = count_field(entry, "literals");
    row.exact_fallbacks = count_field(entry, "exact_fallbacks");
    row.paper_total_seconds = number_field(entry, "paper_total_seconds");
    row.paper_literals = count_field(entry, "paper_literals");
    report.rows.push_back(std::move(row));
  }
  return report;
}

// --- Merge --------------------------------------------------------------------

Table1Report merge_reports(const std::vector<Table1Report>& reports) {
  if (reports.empty()) {
    throw ValidationError("merge_reports: no shard reports given");
  }
  const auto& registry = table1();

  Table1Report merged;
  merged.registry_size = registry.size();
  merged.shard = Shard{0, 1};

  // Index the incoming rows by benchmark name, diagnosing overlaps and rows
  // this registry does not know (e.g. a report from a different build).
  std::vector<const Table1Row*> by_position(registry.size(), nullptr);
  std::vector<std::size_t> owner(registry.size(), 0);
  for (std::size_t r = 0; r < reports.size(); ++r) {
    const Table1Report& report = reports[r];
    if (report.registry_size != registry.size()) {
      throw ValidationError(
          "merge_reports: shard report " + std::to_string(r) + " covers a registry of " +
          std::to_string(report.registry_size) + " entries but this build has " +
          std::to_string(registry.size()) + "; regenerate the shard reports");
    }
    merged.jobs = std::max(merged.jobs, report.jobs);
    merged.wall_seconds = std::max(merged.wall_seconds, report.wall_seconds);
    for (const Table1Row& row : report.rows) {
      std::size_t position = registry.size();
      for (std::size_t p = 0; p < registry.size(); ++p) {
        if (registry[p].name == row.name) {
          position = p;
          break;
        }
      }
      if (position == registry.size()) {
        throw ValidationError("merge_reports: shard report " + std::to_string(r) +
                              " names unknown benchmark '" + row.name + "'");
      }
      if (by_position[position] != nullptr) {
        throw ValidationError("merge_reports: benchmark '" + row.name +
                              "' appears in shard reports " + std::to_string(owner[position]) +
                              " and " + std::to_string(r) + "; shards must not overlap");
      }
      by_position[position] = &row;
      owner[position] = r;
    }
  }

  std::string missing;
  for (std::size_t p = 0; p < registry.size(); ++p) {
    if (by_position[p] == nullptr) {
      if (!missing.empty()) missing += ", ";
      missing += registry[p].name;
    }
  }
  if (!missing.empty()) {
    throw ValidationError("merge_reports: no shard report covers: " + missing);
  }

  merged.rows.reserve(registry.size());
  for (std::size_t p = 0; p < registry.size(); ++p) {
    merged.rows.push_back(*by_position[p]);
  }
  return merged;
}

}  // namespace punt::benchmarks
