#include "src/benchmarks/report.hpp"

#include <algorithm>
#include <cctype>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "src/benchmarks/registry.hpp"
#include "src/util/error.hpp"
#include "src/util/json.hpp"
#include "src/util/strings.hpp"

namespace punt::benchmarks {
namespace {

using punt::printf_string;

// --- Minimal JSON layer -------------------------------------------------------
//
// Parsing and escaping are the shared util/json layer; these thin wrappers
// pin the document name (for diagnostics) so the accessors below read as
// they did when the parser lived here.

using util::json_escape;
using util::JsonValue;

constexpr const char* kDocument = "report JSON (is this a punt-table1-report?)";

const JsonValue& require(const JsonValue& object, const std::string& key,
                         JsonValue::Type type) {
  return util::json_require(object, key, type, kDocument);
}

double number_field(const JsonValue& object, const std::string& key) {
  return util::json_number(object, key, kDocument);
}

std::size_t count_field(const JsonValue& object, const std::string& key) {
  return util::json_count(object, key, kDocument);
}

std::string string_field(const JsonValue& object, const std::string& key) {
  return util::json_string(object, key, kDocument);
}

bool bool_field(const JsonValue& object, const std::string& key) {
  return util::json_bool(object, key, kDocument);
}

}  // namespace

// --- Shards -------------------------------------------------------------------

Shard parse_shard(const std::string& value) {
  const std::size_t slash = value.find('/');
  const std::string index_text = value.substr(0, slash);
  const std::string count_text = slash == std::string::npos ? "" : value.substr(slash + 1);
  const auto numeric = [](const std::string& text) {
    return !text.empty() && text.find_first_not_of("0123456789") == std::string::npos;
  };
  if (slash == std::string::npos || !numeric(index_text) || !numeric(count_text)) {
    throw Error("invalid --shard value '" + value +
                "'; expected <index>/<count> with non-negative integers "
                "(e.g. --shard=0/4 for the first of four shards)");
  }
  Shard shard;
  shard.index = std::strtoul(index_text.c_str(), nullptr, 10);
  shard.count = std::strtoul(count_text.c_str(), nullptr, 10);
  if (shard.count == 0) {
    throw Error("invalid --shard value '" + value +
                "'; the shard count must be at least 1");
  }
  if (shard.index >= shard.count) {
    throw Error("invalid --shard value '" + value + "'; the shard index must be below " +
                "the count (valid indices: 0.." + std::to_string(shard.count - 1) + ")");
  }
  return shard;
}

bool shard_contains(const Shard& shard, std::size_t position) {
  return position % shard.count == shard.index;
}

std::vector<std::size_t> shard_positions(const Shard& shard, std::size_t registry_size) {
  std::vector<std::size_t> positions;
  for (std::size_t p = shard.index; p < registry_size; p += shard.count) {
    positions.push_back(p);
  }
  return positions;
}

std::vector<std::size_t> weighted_shard_positions(const Shard& shard,
                                                  const Table1Report& weights) {
  const auto& registry = table1();
  if (weights.registry_size != registry.size()) {
    throw ValidationError(
        "weighted_shard_positions: the weights report covers a registry of " +
        std::to_string(weights.registry_size) + " entries but this build has " +
        std::to_string(registry.size()) + "; regenerate it with `punt bench run`");
  }

  // Per-position TotTim from the report, matched by benchmark name.  Every
  // registry entry must be covered and every row must be known — the same
  // exactly-once contract `punt bench merge` enforces.
  std::vector<double> weight(registry.size(), -1.0);
  std::vector<std::uint8_t> failed(registry.size(), 0);
  for (const Table1Row& row : weights.rows) {
    std::size_t position = registry.size();
    for (std::size_t p = 0; p < registry.size(); ++p) {
      if (registry[p].name == row.name) {
        position = p;
        break;
      }
    }
    if (position == registry.size()) {
      throw ValidationError("weighted_shard_positions: the weights report names "
                            "unknown benchmark '" + row.name + "'");
    }
    if (weight[position] >= 0) {
      throw ValidationError("weighted_shard_positions: the weights report lists '" +
                            row.name + "' twice; merge the shards into one report first");
    }
    weight[position] = row.ok ? row.total_seconds : 0.0;
    failed[position] = row.ok ? 0 : 1;
  }
  std::string missing;
  for (std::size_t p = 0; p < registry.size(); ++p) {
    if (weight[p] < 0) {
      if (!missing.empty()) missing += ", ";
      missing += registry[p].name;
    }
  }
  if (!missing.empty()) {
    throw ValidationError(
        "weighted_shard_positions: the weights report has no row for: " + missing +
        "; use a merged report that covers the whole registry");
  }

  // A failed row's TotTim is meaningless; flag it non-positive so the raw
  // overload substitutes the mean-successful-row fallback.
  for (std::size_t p = 0; p < registry.size(); ++p) {
    if (failed[p] != 0) weight[p] = 0.0;
  }
  return weighted_shard_positions(shard, weight);
}

std::vector<std::size_t> weighted_shard_positions(const Shard& shard,
                                                  const std::vector<double>& weights) {
  const std::size_t registry_size = table1().size();
  if (weights.size() != registry_size) {
    throw ValidationError(
        "weighted_shard_positions: got " + std::to_string(weights.size()) +
        " weight(s) for a registry of " + std::to_string(registry_size) + " entries");
  }
  std::vector<double> weight = weights;

  // An unmeasured (or failed-row) entry weighs zero at this point, but
  // keeping it zero would pile every such entry onto whichever shard happens
  // to be least loaded — as "free riders" that each cost real wall-clock to
  // (re)attempt.  Assume it costs about as much as a typical measured one:
  // the mean positive weight.  The fallback must be strictly positive — with
  // weight 0 the greedy loop below never changes any shard's load, so every
  // zero-weight entry would chase the same tied-lightest shard; a positive
  // equal weight makes LPT deal them out round-robin instead (the nothing-
  // measured degenerate case becomes an even split, not shard 0 taking all).
  double measured_total = 0;
  std::size_t measured_count = 0;
  for (std::size_t p = 0; p < registry_size; ++p) {
    if (weight[p] > 0) {
      measured_total += weight[p];
      ++measured_count;
    }
  }
  double fallback =
      measured_count == 0 ? 0.0 : measured_total / static_cast<double>(measured_count);
  if (fallback <= 0.0) fallback = 1.0;
  for (std::size_t p = 0; p < registry_size; ++p) {
    if (!(weight[p] > 0)) weight[p] = fallback;
  }

  // Greedy longest-processing-time: heaviest entry first (ties on position,
  // so the order is total), onto the least-loaded shard (ties on index).
  // Both tie-breaks make the assignment a pure function of the weights, so
  // the n shard invocations partition the registry exactly once.
  std::vector<std::size_t> order(registry_size);
  for (std::size_t p = 0; p < registry_size; ++p) order[p] = p;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (weight[a] != weight[b]) return weight[a] > weight[b];
    return a < b;
  });
  std::vector<double> load(shard.count, 0.0);
  std::vector<std::size_t> positions;
  for (const std::size_t p : order) {
    std::size_t lightest = 0;
    for (std::size_t s = 1; s < shard.count; ++s) {
      if (load[s] < load[lightest]) lightest = s;
    }
    load[lightest] += weight[p];
    if (lightest == shard.index) positions.push_back(p);
  }
  std::sort(positions.begin(), positions.end());
  return positions;
}

// --- Report construction ------------------------------------------------------

std::size_t Table1Report::failures() const {
  std::size_t n = 0;
  for (const Table1Row& row : rows) {
    if (!row.ok) ++n;
  }
  return n;
}

std::size_t Table1Report::literal_count() const {
  std::size_t n = 0;
  for (const Table1Row& row : rows) {
    if (row.ok) n += row.literals;
  }
  return n;
}

Table1Report make_report(const Shard& shard, const core::BatchResult& batch) {
  return make_report(shard, shard_positions(shard, table1().size()), batch);
}

Table1Report make_report(const Shard& shard, const std::vector<std::size_t>& positions,
                         const core::BatchResult& batch) {
  const auto& registry = table1();
  if (batch.entries.size() != positions.size()) {
    throw ValidationError("make_report: batch has " + std::to_string(batch.entries.size()) +
                          " entries but shard " + std::to_string(shard.index) + "/" +
                          std::to_string(shard.count) + " selects " +
                          std::to_string(positions.size()) + " registry entries");
  }
  for (const std::size_t p : positions) {
    if (p >= registry.size()) {
      throw ValidationError("make_report: position " + std::to_string(p) +
                            " is outside the registry of " +
                            std::to_string(registry.size()) + " entries");
    }
  }

  Table1Report report;
  report.shard = shard;
  report.registry_size = registry.size();
  report.jobs = batch.jobs;
  report.wall_seconds = batch.wall_seconds;
  report.rows.reserve(positions.size());
  for (std::size_t k = 0; k < positions.size(); ++k) {
    const Benchmark& bench = registry[positions[k]];
    const core::BatchEntry& entry = batch.entries[k];
    Table1Row row;
    row.name = bench.name;
    row.signals = bench.signals;
    row.paper_total_seconds = bench.paper_total_time;
    row.paper_literals = bench.paper_literals;
    row.ok = entry.ok;
    if (entry.ok) {
      row.unfold_seconds = entry.result.unfold_seconds;
      row.derive_seconds = entry.result.derive_seconds;
      row.minimize_seconds = entry.result.minimize_seconds;
      row.total_seconds = entry.result.total_seconds;
      row.literals = entry.result.literal_count();
      row.exact_fallbacks = entry.result.exact_fallbacks;
    } else {
      row.error = entry.error;
    }
    report.rows.push_back(std::move(row));
  }
  return report;
}

// --- Formatting ---------------------------------------------------------------

std::string format_table1(const Table1Report& report) {
  const char* rule =
      "-----------------------------------------------------------------"
      "-----------------------------------------";
  std::string out;
  out += printf_string("%-24s %4s | %8s %8s %8s %8s %6s | %8s %6s | %s\n", "benchmark",
                       "sigs", "UnfTim", "SynTim", "EspTim", "TotTim", "LitCnt",
                       "paperTot", "papLit", "status");
  out += printf_string("%.*s\n", 106, rule);

  std::size_t total_signals = 0, total_literals = 0, total_paper_literals = 0;
  double total_seconds = 0, total_paper_seconds = 0;
  for (const Table1Row& row : report.rows) {
    total_signals += row.signals;
    total_paper_seconds += row.paper_total_seconds;
    total_paper_literals += row.paper_literals;
    if (!row.ok) {
      out += printf_string("%-24s %4zu | %s\n", row.name.c_str(), row.signals,
                           row.error.c_str());
      continue;
    }
    total_seconds += row.total_seconds;
    total_literals += row.literals;
    out += printf_string(
        "%-24s %4zu | %8.3f %8.3f %8.3f %8.3f %6zu | %8.2f %6zu | %s\n", row.name.c_str(),
        row.signals, row.unfold_seconds, row.derive_seconds, row.minimize_seconds,
        row.total_seconds, row.literals, row.paper_total_seconds, row.paper_literals,
        row.exact_fallbacks > 0 ? "ok (exact fallback)" : "ok");
  }
  out += printf_string("%.*s\n", 106, rule);
  out += printf_string("%-24s %4zu | %8s %8s %8s %8.3f %6zu | %8.2f %6zu | failures %zu\n",
                       "Total", total_signals, "", "", "", total_seconds, total_literals,
                       total_paper_seconds, total_paper_literals, report.failures());
  return out;
}

// --- JSON ---------------------------------------------------------------------

std::string to_json(const Table1Report& report) {
  std::string out = "{\n";
  out += "  \"schema\": \"punt-table1-report\",\n";
  out += "  \"version\": 1,\n";
  out += printf_string("  \"shard\": {\"index\": %zu, \"count\": %zu},\n",
                       report.shard.index, report.shard.count);
  out += printf_string("  \"registry_size\": %zu,\n", report.registry_size);
  out += printf_string("  \"jobs\": %zu,\n", report.jobs);
  out += printf_string("  \"wall_seconds\": %.17g,\n", report.wall_seconds);
  out += "  \"rows\": [\n";
  for (std::size_t i = 0; i < report.rows.size(); ++i) {
    const Table1Row& row = report.rows[i];
    out += printf_string(
        "    {\"name\": \"%s\", \"signals\": %zu, \"ok\": %s, \"error\": \"%s\", "
        "\"unfold_seconds\": %.17g, \"derive_seconds\": %.17g, "
        "\"minimize_seconds\": %.17g, \"total_seconds\": %.17g, \"literals\": %zu, "
        "\"exact_fallbacks\": %zu, \"paper_total_seconds\": %.17g, "
        "\"paper_literals\": %zu}%s\n",
        json_escape(row.name).c_str(), row.signals, row.ok ? "true" : "false",
        json_escape(row.error).c_str(), row.unfold_seconds, row.derive_seconds,
        row.minimize_seconds, row.total_seconds, row.literals, row.exact_fallbacks,
        row.paper_total_seconds, row.paper_literals,
        i + 1 < report.rows.size() ? "," : "");
  }
  out += "  ]\n}\n";
  return out;
}

Table1Report report_from_json(std::string_view text) {
  const JsonValue root = util::parse_json(text);
  if (root.type != JsonValue::Type::Object) {
    throw ParseError("report JSON must be an object");
  }
  if (string_field(root, "schema") != "punt-table1-report") {
    throw ParseError("report JSON has schema '" + string_field(root, "schema") +
                     "'; expected 'punt-table1-report'");
  }
  if (count_field(root, "version") != 1) {
    throw ParseError("unsupported punt-table1-report version " +
                     std::to_string(count_field(root, "version")) +
                     "; this build reads version 1");
  }

  Table1Report report;
  const JsonValue& shard = require(root, "shard", JsonValue::Type::Object);
  report.shard.index = count_field(shard, "index");
  report.shard.count = count_field(shard, "count");
  if (report.shard.count == 0 || report.shard.index >= report.shard.count) {
    throw ParseError("report JSON has an invalid shard " +
                     std::to_string(report.shard.index) + "/" +
                     std::to_string(report.shard.count));
  }
  report.registry_size = count_field(root, "registry_size");
  report.jobs = count_field(root, "jobs");
  report.wall_seconds = number_field(root, "wall_seconds");

  const JsonValue& rows = require(root, "rows", JsonValue::Type::Array);
  report.rows.reserve(rows.array.size());
  for (const JsonValue& entry : rows.array) {
    if (entry.type != JsonValue::Type::Object) {
      throw ParseError("report JSON rows must be objects");
    }
    Table1Row row;
    row.name = string_field(entry, "name");
    row.signals = count_field(entry, "signals");
    row.ok = bool_field(entry, "ok");
    row.error = string_field(entry, "error");
    row.unfold_seconds = number_field(entry, "unfold_seconds");
    row.derive_seconds = number_field(entry, "derive_seconds");
    row.minimize_seconds = number_field(entry, "minimize_seconds");
    row.total_seconds = number_field(entry, "total_seconds");
    row.literals = count_field(entry, "literals");
    row.exact_fallbacks = count_field(entry, "exact_fallbacks");
    row.paper_total_seconds = number_field(entry, "paper_total_seconds");
    row.paper_literals = count_field(entry, "paper_literals");
    report.rows.push_back(std::move(row));
  }
  return report;
}

// --- Merge --------------------------------------------------------------------

Table1Report merge_reports(const std::vector<Table1Report>& reports) {
  if (reports.empty()) {
    throw ValidationError("merge_reports: no shard reports given");
  }
  const auto& registry = table1();

  Table1Report merged;
  merged.registry_size = registry.size();
  merged.shard = Shard{0, 1};

  // Index the incoming rows by benchmark name, diagnosing overlaps and rows
  // this registry does not know (e.g. a report from a different build).
  std::vector<const Table1Row*> by_position(registry.size(), nullptr);
  std::vector<std::size_t> owner(registry.size(), 0);
  for (std::size_t r = 0; r < reports.size(); ++r) {
    const Table1Report& report = reports[r];
    if (report.registry_size != registry.size()) {
      throw ValidationError(
          "merge_reports: shard report " + std::to_string(r) + " covers a registry of " +
          std::to_string(report.registry_size) + " entries but this build has " +
          std::to_string(registry.size()) + "; regenerate the shard reports");
    }
    merged.jobs = std::max(merged.jobs, report.jobs);
    merged.wall_seconds = std::max(merged.wall_seconds, report.wall_seconds);
    for (const Table1Row& row : report.rows) {
      std::size_t position = registry.size();
      for (std::size_t p = 0; p < registry.size(); ++p) {
        if (registry[p].name == row.name) {
          position = p;
          break;
        }
      }
      if (position == registry.size()) {
        throw ValidationError("merge_reports: shard report " + std::to_string(r) +
                              " names unknown benchmark '" + row.name + "'");
      }
      if (by_position[position] != nullptr) {
        throw ValidationError("merge_reports: benchmark '" + row.name +
                              "' appears in shard reports " + std::to_string(owner[position]) +
                              " and " + std::to_string(r) + "; shards must not overlap");
      }
      by_position[position] = &row;
      owner[position] = r;
    }
  }

  std::string missing;
  for (std::size_t p = 0; p < registry.size(); ++p) {
    if (by_position[p] == nullptr) {
      if (!missing.empty()) missing += ", ";
      missing += registry[p].name;
    }
  }
  if (!missing.empty()) {
    throw ValidationError("merge_reports: no shard report covers: " + missing);
  }

  merged.rows.reserve(registry.size());
  for (std::size_t p = 0; p < registry.size(); ++p) {
    merged.rows.push_back(*by_position[p]);
  }
  return merged;
}

// --- Serve-mode benchmarking --------------------------------------------------

double ServeBenchReport::mean_batch() const {
  return batches == 0 ? 0.0
                      : static_cast<double>(fused_requests) /
                            static_cast<double>(batches);
}

std::string to_json(const ServeBenchReport& report) {
  std::string out = "{\n";
  out += "  \"schema\": \"punt-serve-bench\",\n";
  out += "  \"version\": 1,\n";
  out += "  \"transport\": \"" + util::json_escape(report.transport) + "\",\n";
  out += printf_string("  \"clients\": %zu,\n", report.clients);
  out += printf_string("  \"duration_seconds\": %.17g,\n", report.duration_seconds);
  out += printf_string("  \"wall_seconds\": %.17g,\n", report.wall_seconds);
  out += printf_string("  \"completed\": %zu,\n", report.completed);
  out += printf_string("  \"failed\": %zu,\n", report.failed);
  out += printf_string("  \"shed\": %zu,\n", report.shed);
  out += printf_string("  \"transport_errors\": %zu,\n", report.transport_errors);
  out += printf_string("  \"throughput_rps\": %.17g,\n", report.throughput_rps);
  out += printf_string("  \"mean_ms\": %.17g,\n", report.mean_ms);
  out += printf_string("  \"p50_ms\": %.17g,\n", report.p50_ms);
  out += printf_string("  \"p95_ms\": %.17g,\n", report.p95_ms);
  out += printf_string("  \"p99_ms\": %.17g,\n", report.p99_ms);
  out += printf_string("  \"max_ms\": %.17g,\n", report.max_ms);
  out += printf_string("  \"batch_window_ms\": %.17g,\n", report.batch_window_ms);
  out += printf_string("  \"batches\": %zu,\n", report.batches);
  out += printf_string("  \"fused_requests\": %zu,\n", report.fused_requests);
  out += printf_string("  \"mean_batch\": %.17g,\n", report.mean_batch());
  out += printf_string("  \"max_batch\": %zu,\n", report.max_batch);
  out += printf_string("  \"queue_high_water\": %zu,\n", report.queue_high_water);
  out += printf_string("  \"daemon_shed\": %zu,\n", report.daemon_shed);
  out += "  \"batch_size_histogram\": [";
  for (std::size_t i = 0; i < report.batch_size_histogram.size(); ++i) {
    if (i != 0) out += ", ";
    out += printf_string("%zu", report.batch_size_histogram[i]);
  }
  out += "]\n}\n";
  return out;
}

ServeBenchReport serve_report_from_json(std::string_view text) {
  constexpr const char* kServeDocument = "serve-bench JSON";
  const JsonValue root = util::parse_json(text);
  if (root.type != JsonValue::Type::Object) {
    throw ParseError("serve-bench JSON must be an object");
  }
  if (util::json_string(root, "schema", kServeDocument) != "punt-serve-bench") {
    throw ParseError("serve-bench JSON has schema '" +
                     util::json_string(root, "schema", kServeDocument) +
                     "'; expected 'punt-serve-bench'");
  }
  if (util::json_count(root, "version", kServeDocument) != 1) {
    throw ParseError("unsupported punt-serve-bench version " +
                     std::to_string(util::json_count(root, "version", kServeDocument)) +
                     "; this build reads version 1");
  }
  ServeBenchReport report;
  // "transport" arrived with the TCP listener; absent means a pre-transport
  // (necessarily Unix-socket) artifact, so the version stays 1.
  const JsonValue* transport = root.find("transport");
  if (transport != nullptr) {
    if (transport->type != JsonValue::Type::String) {
      throw ParseError("serve-bench JSON field 'transport' must be a string");
    }
    report.transport = transport->string;
  }
  report.clients = util::json_count(root, "clients", kServeDocument);
  report.duration_seconds = util::json_number(root, "duration_seconds", kServeDocument);
  report.wall_seconds = util::json_number(root, "wall_seconds", kServeDocument);
  report.completed = util::json_count(root, "completed", kServeDocument);
  report.failed = util::json_count(root, "failed", kServeDocument);
  report.shed = util::json_count(root, "shed", kServeDocument);
  report.transport_errors = util::json_count(root, "transport_errors", kServeDocument);
  report.throughput_rps = util::json_number(root, "throughput_rps", kServeDocument);
  report.mean_ms = util::json_number(root, "mean_ms", kServeDocument);
  report.p50_ms = util::json_number(root, "p50_ms", kServeDocument);
  report.p95_ms = util::json_number(root, "p95_ms", kServeDocument);
  report.p99_ms = util::json_number(root, "p99_ms", kServeDocument);
  report.max_ms = util::json_number(root, "max_ms", kServeDocument);
  report.batch_window_ms = util::json_number(root, "batch_window_ms", kServeDocument);
  report.batches = util::json_count(root, "batches", kServeDocument);
  report.fused_requests = util::json_count(root, "fused_requests", kServeDocument);
  report.max_batch = util::json_count(root, "max_batch", kServeDocument);
  report.queue_high_water = util::json_count(root, "queue_high_water", kServeDocument);
  report.daemon_shed = util::json_count(root, "daemon_shed", kServeDocument);
  const JsonValue& histogram =
      util::json_require(root, "batch_size_histogram", JsonValue::Type::Array,
                         kServeDocument);
  report.batch_size_histogram.reserve(histogram.array.size());
  for (const JsonValue& bucket : histogram.array) {
    if (bucket.type != JsonValue::Type::Number || bucket.number < 0) {
      throw ParseError("serve-bench JSON batch_size_histogram entries must be counts");
    }
    report.batch_size_histogram.push_back(static_cast<std::size_t>(bucket.number));
  }
  return report;
}

std::string format_serve_summary(const ServeBenchReport& report) {
  std::string out;
  out += printf_string("# punt bench serve: %zu client(s), %.1fs window, %s transport\n",
                       report.clients, report.duration_seconds,
                       report.transport.c_str());
  out += printf_string(
      "throughput %.1f req/s (%zu completed, %zu failed, %zu transport error(s))\n",
      report.throughput_rps, report.completed, report.failed,
      report.transport_errors);
  out += printf_string(
      "latency mean %.2fms p50 %.2fms p95 %.2fms p99 %.2fms max %.2fms\n",
      report.mean_ms, report.p50_ms, report.p95_ms, report.p99_ms, report.max_ms);
  // `shed=N` is deliberately greppable: the CI smoke job asserts shed=0.
  out += printf_string(
      "fusion: window %.1fms, %zu batch(es), mean %.2f max %zu, "
      "queue high-water %zu, shed=%zu\n",
      report.batch_window_ms, report.batches, report.mean_batch(),
      report.max_batch, report.queue_high_water,
      report.shed + report.daemon_shed);
  out += "batch-size histogram:";
  bool any_bucket = false;
  for (std::size_t i = 0; i < report.batch_size_histogram.size(); ++i) {
    if (report.batch_size_histogram[i] == 0) continue;
    any_bucket = true;
    out += printf_string(" %zu:%zu", i + 1, report.batch_size_histogram[i]);
  }
  if (!any_bucket) out += " (empty)";
  out += "\n";
  return out;
}

}  // namespace punt::benchmarks
