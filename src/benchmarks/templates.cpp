#include "src/benchmarks/templates.hpp"

#include "src/util/error.hpp"

namespace punt::benchmarks {
namespace {

using stg::Polarity;
using stg::SignalKind;
using stg::Stg;

pn::PlaceId link(Stg& stg, pn::TransitionId src, pn::TransitionId dst,
                 const std::string& name, bool marked = false) {
  const pn::PlaceId p = stg.net().add_place(name);
  stg.net().add_arc(src, p);
  stg.net().add_arc(p, dst);
  if (marked) stg.net().set_initial_tokens(p, 1);
  return p;
}

}  // namespace

Stg handshake_chain(const std::string& name, std::size_t signals) {
  if (signals < 2) throw ValidationError("handshake_chain needs at least 2 signals");
  Stg stg;
  stg.set_name(name);
  std::vector<pn::TransitionId> up(signals), dn(signals);
  for (std::size_t i = 0; i < signals; ++i) {
    const stg::SignalId s = stg.add_signal(
        "x" + std::to_string(i), i % 2 == 0 ? SignalKind::Input : SignalKind::Output);
    up[i] = stg.add_transition(s, Polarity::Rise);
    dn[i] = stg.add_transition(s, Polarity::Fall);
  }
  for (std::size_t i = 0; i + 1 < signals; ++i) {
    link(stg, up[i], up[i + 1], "u" + std::to_string(i));
    link(stg, dn[i], dn[i + 1], "d" + std::to_string(i));
  }
  link(stg, up[signals - 1], dn[0], "turn");
  link(stg, dn[signals - 1], up[0], "home", /*marked=*/true);
  stg.validate();
  return stg;
}

Stg fork_join(const std::string& name, const std::vector<std::size_t>& depths) {
  if (depths.empty()) throw ValidationError("fork_join needs at least one chain");
  Stg stg;
  stg.set_name(name);
  const stg::SignalId a = stg.add_signal("a", SignalKind::Output);
  const pn::TransitionId a_up = stg.add_transition(a, Polarity::Rise);
  const pn::TransitionId a_dn = stg.add_transition(a, Polarity::Fall);

  for (std::size_t j = 0; j < depths.size(); ++j) {
    if (depths[j] == 0) throw ValidationError("fork_join chains must be nonempty");
    std::vector<pn::TransitionId> up(depths[j]), dn(depths[j]);
    for (std::size_t i = 0; i < depths[j]; ++i) {
      const stg::SignalId s =
          stg.add_signal("u" + std::to_string(j) + "_" + std::to_string(i),
                         i % 2 == 0 ? SignalKind::Input : SignalKind::Output);
      up[i] = stg.add_transition(s, Polarity::Rise);
      dn[i] = stg.add_transition(s, Polarity::Fall);
    }
    const std::string tag = "c" + std::to_string(j) + "_";
    link(stg, a_up, up[0], tag + "fork");
    for (std::size_t i = 0; i + 1 < depths[j]; ++i) {
      link(stg, up[i], up[i + 1], tag + "u" + std::to_string(i));
      link(stg, dn[i], dn[i + 1], tag + "d" + std::to_string(i));
    }
    link(stg, up[depths[j] - 1], a_dn, tag + "join");
    link(stg, a_dn, dn[0], tag + "unfork");
    link(stg, dn[depths[j] - 1], a_up, tag + "rejoin", /*marked=*/true);
  }
  stg.validate();
  return stg;
}

Stg choice_controller(const std::string& name, const std::vector<std::size_t>& lengths) {
  if (lengths.empty()) throw ValidationError("choice_controller needs branches");
  Stg stg;
  stg.set_name(name);
  const pn::PlaceId idle = stg.net().add_place("idle");
  stg.net().set_initial_tokens(idle, 1);

  for (std::size_t b = 0; b < lengths.size(); ++b) {
    if (lengths[b] == 0) throw ValidationError("choice branches must be nonempty");
    const std::string tag = "b" + std::to_string(b);
    const stg::SignalId in = stg.add_signal("req" + std::to_string(b), SignalKind::Input);
    const pn::TransitionId in_up = stg.add_transition(in, Polarity::Rise);
    const pn::TransitionId in_dn = stg.add_transition(in, Polarity::Fall);
    stg.net().add_arc(idle, in_up);

    std::vector<pn::TransitionId> up(lengths[b]), dn(lengths[b]);
    for (std::size_t i = 0; i < lengths[b]; ++i) {
      const stg::SignalId s = stg.add_signal(
          "o" + std::to_string(b) + "_" + std::to_string(i), SignalKind::Output);
      up[i] = stg.add_transition(s, Polarity::Rise);
      dn[i] = stg.add_transition(s, Polarity::Fall);
    }
    // Rise phase: req+ then the output chain; the environment withdraws the
    // request once the chain has risen; then the chain falls and the branch
    // merges back into the idle place.
    link(stg, in_up, up[0], tag + "_start");
    for (std::size_t i = 0; i + 1 < lengths[b]; ++i) {
      link(stg, up[i], up[i + 1], tag + "_u" + std::to_string(i));
      link(stg, dn[i], dn[i + 1], tag + "_d" + std::to_string(i));
    }
    link(stg, up[lengths[b] - 1], in_dn, tag + "_ack");
    link(stg, in_dn, dn[0], tag + "_release");
    stg.net().add_arc(dn[lengths[b] - 1], idle);  // merge back into the choice
  }
  stg.validate();
  return stg;
}

}  // namespace punt::benchmarks
