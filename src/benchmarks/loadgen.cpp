#include "src/benchmarks/loadgen.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <memory>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "src/benchmarks/registry.hpp"
#include "src/server/client.hpp"
#include "src/server/protocol.hpp"
#include "src/stg/g_format.hpp"
#include "src/util/error.hpp"
#include "src/util/json.hpp"
#include "src/util/stopwatch.hpp"

namespace punt::benchmarks {
namespace {

using server::Client;
using server::Op;
using server::Request;
using server::Response;
using util::JsonValue;

/// A client that cannot complete this many attempts in a row (daemon gone,
/// connect refused in a loop) gives up instead of spinning for the whole
/// window; its failures are already counted.
constexpr std::size_t kMaxConsecutiveFailures = 100;

/// One thread's share of the run; merged after the joins.
struct ClientTally {
  std::vector<double> latencies_ms;
  std::size_t completed = 0;
  std::size_t failed = 0;
  std::size_t shed = 0;
  std::size_t transport_errors = 0;
};

/// The daemon-side fusion counters parsed out of one {"op":"cache-stats"}
/// response.  Fields are probed, not required: against an unexpected daemon
/// the bench should still report its client-side numbers.
struct FusionSnapshot {
  double window_ms = 0;
  std::size_t batches = 0;
  std::size_t fused_requests = 0;
  std::size_t max_batch = 0;
  std::size_t queue_high_water = 0;
  std::size_t shed = 0;
  std::vector<std::size_t> histogram;
};

std::size_t probe_count(const JsonValue& root, const char* key) {
  const JsonValue* value = root.find(key);
  if (value == nullptr || value->type != JsonValue::Type::Number ||
      value->number < 0) {
    return 0;
  }
  return static_cast<std::size_t>(value->number);
}

FusionSnapshot fusion_snapshot(Client& client) {
  Request request;
  request.op = Op::CacheStats;
  const Response response = client.request(request);
  const JsonValue root = util::parse_json(response.output);
  FusionSnapshot snapshot;
  if (root.type != JsonValue::Type::Object) return snapshot;
  const JsonValue* window = root.find("batch_window_ms");
  if (window != nullptr && window->type == JsonValue::Type::Number) {
    snapshot.window_ms = window->number;
  }
  snapshot.batches = probe_count(root, "batches");
  snapshot.fused_requests = probe_count(root, "fused_requests");
  snapshot.max_batch = probe_count(root, "max_batch");
  snapshot.queue_high_water = probe_count(root, "queue_high_water");
  snapshot.shed = probe_count(root, "shed_queue_full") +
                  probe_count(root, "shed_connection_cap");
  const JsonValue* histogram = root.find("batch_size_histogram");
  if (histogram != nullptr && histogram->type == JsonValue::Type::Array) {
    snapshot.histogram.reserve(histogram->array.size());
    for (const JsonValue& bucket : histogram->array) {
      snapshot.histogram.push_back(
          bucket.type == JsonValue::Type::Number && bucket.number >= 0
              ? static_cast<std::size_t>(bucket.number)
              : 0);
    }
  }
  return snapshot;
}

std::size_t counter_delta(std::size_t before, std::size_t after) {
  return after >= before ? after - before : 0;
}

/// Nearest-rank percentile over an ascending sample (q in (0, 100]).
double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const double rank = std::ceil(q / 100.0 * static_cast<double>(sorted.size()));
  const std::size_t index =
      rank < 1 ? 0 : std::min(sorted.size() - 1, static_cast<std::size_t>(rank) - 1);
  return sorted[index];
}

void client_loop(const LoadgenOptions& options, const std::vector<Request>& specs,
                 std::size_t thread_index, ClientTally& tally) {
  std::unique_ptr<Client> client;
  // Offset each thread's walk so concurrent clients mix distinct STGs.
  std::size_t next = thread_index % specs.size();
  std::size_t consecutive_failures = 0;
  Stopwatch window;
  while (window.seconds() < options.duration_seconds) {
    if (client == nullptr) {
      try {
        client = std::make_unique<Client>(options.endpoint, options.token);
        consecutive_failures = 0;
      } catch (const Error&) {
        ++tally.transport_errors;
        if (++consecutive_failures >= kMaxConsecutiveFailures) return;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        continue;
      }
    }
    const Request& request = specs[next];
    next = (next + 1) % specs.size();
    Stopwatch round_trip;
    try {
      const Response response = client->request(request);
      tally.latencies_ms.push_back(round_trip.millis());
      ++tally.completed;
      if (response.exit_code != 0) ++tally.failed;
      consecutive_failures = 0;
    } catch (const Error& e) {
      // A shed request surfaces as the client-side refusal throw; the
      // daemon closes the connection after any refusal, so reconnect either
      // way.
      if (std::string_view(e.what()).find("overloaded") != std::string_view::npos) {
        ++tally.shed;
      } else {
        ++tally.transport_errors;
      }
      client.reset();
      if (++consecutive_failures >= kMaxConsecutiveFailures) return;
    }
  }
}

}  // namespace

ServeBenchReport run_loadgen(const LoadgenOptions& options) {
  if (options.endpoint.transport == server::Transport::Unix &&
      options.endpoint.path.empty()) {
    throw Error("bench serve: a daemon endpoint is required");
  }
  if (options.clients == 0) {
    throw Error("bench serve: at least one client thread is required");
  }

  // Pre-serialise the whole registry once; the threads then only copy
  // ready-made Request objects.
  std::vector<Request> specs;
  specs.reserve(table1().size());
  for (const Benchmark& benchmark : table1()) {
    Request request;
    request.op = Op::Synth;
    request.g_text = stg::write_g(benchmark.make());
    specs.push_back(std::move(request));
  }

  // Warm-up (and reachability check): one sequential pass, excluded from
  // every number, so the measured window sees the daemon's steady state.
  // The same connection then brackets the window with stats snapshots.
  Client control(options.endpoint, options.token);
  if (options.warmup) {
    for (const Request& request : specs) (void)control.request(request);
  }
  const FusionSnapshot before = fusion_snapshot(control);

  std::vector<ClientTally> tallies(options.clients);
  std::vector<std::thread> threads;
  threads.reserve(options.clients);
  Stopwatch wall;
  for (std::size_t k = 0; k < options.clients; ++k) {
    threads.emplace_back(client_loop, std::cref(options), std::cref(specs), k,
                         std::ref(tallies[k]));
  }
  for (std::thread& thread : threads) thread.join();
  const double wall_seconds = wall.seconds();
  const FusionSnapshot after = fusion_snapshot(control);

  ServeBenchReport report;
  report.transport =
      options.endpoint.transport == server::Transport::Tcp ? "tcp" : "unix";
  report.clients = options.clients;
  report.duration_seconds = options.duration_seconds;
  report.wall_seconds = wall_seconds;
  std::vector<double> latencies;
  for (const ClientTally& tally : tallies) {
    report.completed += tally.completed;
    report.failed += tally.failed;
    report.shed += tally.shed;
    report.transport_errors += tally.transport_errors;
    latencies.insert(latencies.end(), tally.latencies_ms.begin(),
                     tally.latencies_ms.end());
  }
  std::sort(latencies.begin(), latencies.end());
  report.throughput_rps =
      wall_seconds > 0 ? static_cast<double>(report.completed) / wall_seconds : 0;
  if (!latencies.empty()) {
    double sum = 0;
    for (const double ms : latencies) sum += ms;
    report.mean_ms = sum / static_cast<double>(latencies.size());
    report.p50_ms = percentile(latencies, 50);
    report.p95_ms = percentile(latencies, 95);
    report.p99_ms = percentile(latencies, 99);
    report.max_ms = latencies.back();
  }

  report.batch_window_ms = after.window_ms;
  report.batches = counter_delta(before.batches, after.batches);
  report.fused_requests = counter_delta(before.fused_requests, after.fused_requests);
  report.daemon_shed = counter_delta(before.shed, after.shed);
  // High-water marks are daemon-lifetime values; a delta would be
  // meaningless, so report the post-run value.
  report.max_batch = after.max_batch;
  report.queue_high_water = after.queue_high_water;
  report.batch_size_histogram.resize(after.histogram.size(), 0);
  for (std::size_t i = 0; i < after.histogram.size(); ++i) {
    const std::size_t earlier = i < before.histogram.size() ? before.histogram[i] : 0;
    report.batch_size_histogram[i] = counter_delta(earlier, after.histogram[i]);
  }
  return report;
}

}  // namespace punt::benchmarks
