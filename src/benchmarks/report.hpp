// Table-1 reporting: one formatting/serialisation helper shared by
// `punt bench run`, `punt bench merge` and bench/table1_acg.cpp, so the
// paper-column comparison (paperTot / papLit) exists in exactly one place.
//
// Sharded registry runs: `punt bench run --shard=i/n` synthesises the
// registry entries at positions p with p % n == i (a deterministic
// partition, so n shard runs cover the registry exactly once), emits the
// rows as a JSON report, and `punt bench merge` recombines the per-shard
// reports into the full Table-1 table — validating that the shards neither
// overlap nor miss a registry entry.  This is what CI's bench-shards matrix
// and multi-machine sweeps build on.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/pipeline.hpp"

namespace punt::benchmarks {

/// One deterministic slice of the registry: positions p with
/// p % count == index.
struct Shard {
  std::size_t index = 0;
  std::size_t count = 1;
};

/// Parses the payload of `--shard=i/n`.  Throws punt::Error with an
/// actionable diagnostic for malformed text, n = 0 or i >= n (mirroring the
/// --jobs validation style).
Shard parse_shard(const std::string& value);

/// True when registry position `position` belongs to `shard`.
bool shard_contains(const Shard& shard, std::size_t position);

/// The positions of `shard` within a registry of `registry_size` entries,
/// ascending.
std::vector<std::size_t> shard_positions(const Shard& shard, std::size_t registry_size);

/// One Table-1 row: the measured columns plus the paper's 1997 reference
/// values for the side-by-side comparison.
struct Table1Row {
  std::string name;
  std::size_t signals = 0;
  bool ok = false;
  std::string error;  // exception text when !ok
  double unfold_seconds = 0;    // UnfTim
  double derive_seconds = 0;    // SynTim
  double minimize_seconds = 0;  // EspTim
  double total_seconds = 0;     // TotTim
  std::size_t literals = 0;     // LitCnt
  std::size_t exact_fallbacks = 0;
  double paper_total_seconds = 0;   // paperTot
  std::size_t paper_literals = 0;   // papLit
};

struct Table1Report {
  std::vector<Table1Row> rows;  // registry order within the shard
  Shard shard;                  // which slice of the registry this covers
  std::size_t registry_size = 0;  // size of the full registry when produced
  std::size_t jobs = 1;
  double wall_seconds = 0;

  std::size_t failures() const;      // rows with !ok
  std::size_t literal_count() const; // sum over ok rows
};

/// Cost-aware partition (`punt bench run --weights=<report.json>`): assigns
/// registry positions to `shard.count` shards by greedy longest-processing-
/// time over per-entry TotTim from `weights` (a prior — typically merged —
/// report), so skewed suites balance shard wall-clock instead of entry
/// counts.  Deterministic: entries are placed heaviest-first (ties on
/// position) onto the least-loaded shard (ties on index), so the n shard
/// invocations with the same weights file cover the registry exactly once —
/// `punt bench merge` keeps enforcing that.  Failed rows (whose TotTim is
/// meaningless) weigh the mean successful-row weight, so a report with
/// several failures spreads them across shards instead of piling them onto
/// the least-loaded one as free riders.
/// Returns the positions of `shard.index`, ascending.  Throws
/// ValidationError when `weights` does not cover the current registry
/// (missing entry, unknown benchmark, stale registry size).
std::vector<std::size_t> weighted_shard_positions(const Shard& shard,
                                                  const Table1Report& weights);

/// The LPT core of the above, for callers that already hold one weight per
/// registry position (`punt bench run --weights=<costs.puntledger>` derives
/// them from the cost ledger's learned per-node estimates).  Non-positive
/// weights — entries the source has no measurement for — take the mean
/// positive weight, mirroring the failed-row fallback.  Throws
/// ValidationError when `weights.size()` disagrees with the registry.
std::vector<std::size_t> weighted_shard_positions(const Shard& shard,
                                                  const std::vector<double>& weights);

/// Builds the report for a batch run over the registry entries of `shard`
/// (batch entry k corresponds to the k-th shard position).  Throws
/// ValidationError when the batch size does not match the shard.
Table1Report make_report(const Shard& shard, const core::BatchResult& batch);

/// Same, for an explicit position list (the weighted partition): batch
/// entry k corresponds to positions[k].  Throws ValidationError on a size
/// mismatch or an out-of-range position.
Table1Report make_report(const Shard& shard, const std::vector<std::size_t>& positions,
                         const core::BatchResult& batch);

/// The human Table-1 table: header, one line per row (error text for failed
/// rows), separator and a Total line.  Shared by `punt bench run`,
/// `punt bench merge` and bench_table1_acg — callers append their own
/// footers (wall clock, speedups, shard provenance).
std::string format_table1(const Table1Report& report);

/// JSON serialisation of a report ("punt-table1-report" schema, version 1).
std::string to_json(const Table1Report& report);

/// Parses to_json output.  Throws ParseError on malformed JSON or a payload
/// that is not a punt-table1-report.
Table1Report report_from_json(std::string_view text);

/// Combines per-shard reports into one full-registry report (rows in
/// registry order; wall_seconds is the maximum across shards, since CI runs
/// them concurrently).  Throws ValidationError when the shards overlap,
/// miss a registry entry, name an unknown benchmark, or disagree with the
/// current registry size.
Table1Report merge_reports(const std::vector<Table1Report>& reports);

// --- Serve-mode benchmarking --------------------------------------------------

/// The `punt bench serve` outcome: the serving-latency analogue of a
/// Table-1 report.  Client-side latency/throughput from the closed-loop
/// load generator (benchmarks/loadgen.hpp) plus the daemon-side fusion
/// delta observed over the measurement window via {"op":"cache-stats"}.
struct ServeBenchReport {
  /// Which transport carried the run ("unix" | "tcp") — what lets CI track
  /// TCP overhead against the Unix artifact per-commit.  Optional in the
  /// JSON (defaulting to "unix"), so pre-transport artifacts still parse.
  std::string transport = "unix";
  std::size_t clients = 0;
  double duration_seconds = 0;  // configured measurement window
  double wall_seconds = 0;      // measured (>= duration: in-flight finish)
  std::size_t completed = 0;    // responses received, any exit code
  std::size_t failed = 0;       // responses with a nonzero exit code
  std::size_t shed = 0;         // "overloaded" refusals observed client-side
  std::size_t transport_errors = 0;  // broken connections, failed reconnects
  double throughput_rps = 0;    // completed / wall_seconds

  // Latency percentiles over completed requests, milliseconds,
  // nearest-rank.
  double mean_ms = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  double max_ms = 0;

  // Daemon-side fusion counters: the delta between the cache-stats
  // snapshots bracketing the measurement window (all zero against a
  // --batch-window=0 daemon).  High-water marks are whole-daemon-lifetime
  // values, not deltas.
  double batch_window_ms = 0;
  std::size_t batches = 0;
  std::size_t fused_requests = 0;
  std::size_t max_batch = 0;
  std::size_t queue_high_water = 0;
  std::size_t daemon_shed = 0;
  std::vector<std::size_t> batch_size_histogram;  // delta, bucket i = size i+1

  double mean_batch() const;
};

/// JSON serialisation ("punt-serve-bench" schema, version 1).
std::string to_json(const ServeBenchReport& report);

/// Parses to_json output.  Throws ParseError on malformed JSON or a payload
/// that is not a punt-serve-bench report.
ServeBenchReport serve_report_from_json(std::string_view text);

/// The human summary `punt bench serve` prints: throughput, latency
/// percentiles, fusion counters (with a greppable `shed=N`) and the
/// batch-size histogram.
std::string format_serve_summary(const ServeBenchReport& report);

}  // namespace punt::benchmarks
