// `punt trace <trace.json>`: offline occupancy analysis of a schedule dump.
//
// `punt synth --trace-schedule` and `punt bench run --trace-schedule` write
// the executed task graph as a "punt-schedule-trace" v1 document
// (util/task_graph.cpp to_json).  This module parses such a dump back into a
// util::TaskTrace — validating the structural invariants the executor
// guarantees (dense ids, backward deps, known status names) so a truncated
// or hand-edited file fails loudly instead of rendering nonsense — and
// renders the scheduling picture the raw JSON buries: per-worker occupancy,
// an ASCII Gantt lane per worker, the critical path, and an
// estimated-vs-measured cost table grading the cost ledger's predictions
// (DESIGN.md §10) against what the run actually measured.
#pragma once

#include <string>
#include <string_view>

#include "src/util/task_graph.hpp"

namespace punt::benchmarks {

/// Parses a "punt-schedule-trace" version-1 document (the `--trace-schedule`
/// output).  The additive v1 fields (est_cost, wall_ready, queue_wait) are
/// optional, so dumps written before they existed still parse — they read as
/// zero.  Throws ParseError on malformed JSON, a different schema/version,
/// non-dense node ids, forward or out-of-range deps, or an unknown status.
util::TaskTrace trace_from_json(std::string_view text);

/// The human rendering `punt trace` prints: the schedule summary (node
/// counts, wall vs critical path), per-worker occupancy percentages, one
/// ASCII Gantt lane per worker (a letter per node kind, '.' for idle),
/// queue-wait statistics, and a per-kind table comparing the dispatch-time
/// cost estimates against measured wall time — the column that says whether
/// the cost ledger has converged.
std::string format_trace(const util::TaskTrace& trace);

}  // namespace punt::benchmarks
