// The Table-1 benchmark registry.
//
// Each entry reproduces one row of the paper's Table 1: the benchmark name,
// the paper's measured columns (for side-by-side reporting), and a
// constructor for our substitute STG with the row's exact signal count (see
// DESIGN.md §4 and templates.hpp for the substitution rationale).
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "src/stg/stg.hpp"

namespace punt::benchmarks {

/// One row of Table 1.
struct Benchmark {
  std::string name;
  std::size_t signals = 0;        // the paper's "Sigs" column
  std::function<stg::Stg()> make; // our substitute spec (same signal count)
  std::string note;               // what the substitute is built from

  // Paper-reported reference values (seconds / literals), for EXPERIMENTS.md
  // side-by-side tables.  LitCnt for "other tools" keeps the first number of
  // entries like "20/17".
  double paper_unf_time = 0;
  double paper_syn_time = 0;
  double paper_esp_time = 0;
  double paper_total_time = 0;
  std::size_t paper_literals = 0;
  double paper_petrify_time = 0;
  double paper_sis_time = 0;
  std::size_t paper_other_literals = 0;
};

/// All 21 rows of Table 1, in the paper's order.
const std::vector<Benchmark>& table1();

/// Looks a row up by name; throws ValidationError when absent.
const Benchmark& find(const std::string& name);

}  // namespace punt::benchmarks
