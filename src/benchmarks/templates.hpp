// Structural templates for the Table-1 benchmark substitutes (DESIGN.md §4).
//
// The original 1997 suite circulated with SIS/petrify and is not available
// offline; each Table-1 row is rebuilt from one of these templates with the
// row's exact signal count and a comparable structural class (sequential
// ring / concurrent fork-join / input choice).  All templates produce
// consistent, safe, output-persistent, CSC-satisfying STGs by construction
// (Johnson-counter style codes), so every row synthesises cleanly under all
// methods — which is what the Table-1 experiment needs.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "src/stg/stg.hpp"

namespace punt::benchmarks {

/// Sequential ring of k signals: x0+ .. x(k-1)+ x0- .. x(k-1)- and around.
/// Codes follow a Johnson counter (all distinct).  Signals alternate
/// input/output.  Models purely sequential controllers (sendr-done, ...).
stg::Stg handshake_chain(const std::string& name, std::size_t signals);

/// Fork-join cycle: a+ forks one chain per entry of `depths`; the chains
/// rise concurrently and join in a-; then they fall concurrently and join
/// back into a+.  Signal count = 1 + sum(depths).  Models highly concurrent
/// controllers; the SG grows as the product of chain positions while the
/// segment stays linear.
stg::Stg fork_join(const std::string& name, const std::vector<std::size_t>& depths);

/// Environment choice: a free-choice place selects one of several branches;
/// branch i is an input edge followed by a chain of `lengths[i]` output
/// edges, rising then falling, then merges back.  Signal count =
/// branches + sum(lengths).  Models mode-selecting controllers
/// (read/write cycles).
stg::Stg choice_controller(const std::string& name,
                           const std::vector<std::size_t>& lengths);

}  // namespace punt::benchmarks
