#include "src/benchmarks/trace_view.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include "src/util/error.hpp"
#include "src/util/json.hpp"
#include "src/util/strings.hpp"

namespace punt::benchmarks {
namespace {

using punt::printf_string;

constexpr const char* kDocument = "schedule trace JSON";

/// Optional numeric field: the additive v1 fields (est_cost, wall_ready,
/// queue_wait) default to zero so pre-cost-model dumps still parse.
double optional_number(const util::JsonValue& object, const std::string& key) {
  const util::JsonValue* value = object.find(key);
  if (value == nullptr) return 0.0;
  if (value->type != util::JsonValue::Type::Number) {
    throw ParseError(std::string(kDocument) + ": field '" + key +
                     "' must be a number when present");
  }
  return value->number;
}

util::TaskStatus status_of(const std::string& name) {
  if (name == "pending") return util::TaskStatus::Pending;
  if (name == "done") return util::TaskStatus::Done;
  if (name == "failed") return util::TaskStatus::Failed;
  if (name == "cancelled") return util::TaskStatus::Cancelled;
  throw ParseError(std::string(kDocument) + ": unknown node status '" + name +
                   "' (expected pending|done|failed|cancelled)");
}

/// One distinct letter per node kind, first-appearance order: the first
/// usable character of the kind name (uppercased), falling back through the
/// rest of the name and then the alphabet when kinds collide on their
/// initial (model/minimize both start with 'm').
std::vector<std::pair<std::string, char>> kind_letters(const util::TaskTrace& trace) {
  std::vector<std::pair<std::string, char>> letters;
  const auto taken = [&](char c) {
    return std::any_of(letters.begin(), letters.end(),
                       [&](const auto& entry) { return entry.second == c; });
  };
  for (const util::TraceNode& node : trace.nodes) {
    if (std::any_of(letters.begin(), letters.end(),
                    [&](const auto& entry) { return entry.first == node.kind; })) {
      continue;
    }
    char letter = 0;
    for (const char c : node.kind) {
      const char upper = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
      if (std::isalnum(static_cast<unsigned char>(upper)) && !taken(upper)) {
        letter = upper;
        break;
      }
    }
    for (char c = 'A'; letter == 0 && c <= 'Z'; ++c) {
      if (!taken(c)) letter = c;
    }
    letters.emplace_back(node.kind, letter == 0 ? '?' : letter);
  }
  return letters;
}

char letter_of(const std::vector<std::pair<std::string, char>>& letters,
               const std::string& kind) {
  for (const auto& entry : letters) {
    if (entry.first == kind) return entry.second;
  }
  return '?';
}

/// One Gantt lane: `width` columns over [0, wall]; a node's kind letter
/// where it ran, '.' where the worker was idle.  When several short nodes
/// share a column, the one covering most of it wins.
std::string gantt_lane(const util::TaskTrace& trace,
                       const std::vector<std::pair<std::string, char>>& letters,
                       int worker, std::size_t width) {
  std::string lane(width, '.');
  if (trace.wall_seconds <= 0) return lane;
  const double per_column = trace.wall_seconds / static_cast<double>(width);
  std::vector<double> covered(width, 0.0);
  for (const util::TraceNode& node : trace.nodes) {
    if (node.worker != worker || node.status == util::TaskStatus::Cancelled ||
        node.status == util::TaskStatus::Pending) {
      continue;
    }
    const std::size_t first = std::min(
        width - 1, static_cast<std::size_t>(node.wall_start / per_column));
    const std::size_t last = std::min(
        width - 1, static_cast<std::size_t>(node.wall_end / per_column));
    for (std::size_t c = first; c <= last; ++c) {
      const double column_start = static_cast<double>(c) * per_column;
      const double overlap = std::min(node.wall_end, column_start + per_column) -
                             std::max(node.wall_start, column_start);
      if (overlap > covered[c]) {
        covered[c] = overlap;
        lane[c] = letter_of(letters, node.kind);
      }
    }
  }
  return lane;
}

/// Per-kind accumulation for the estimated-vs-measured table.
struct KindRow {
  std::string kind;
  std::size_t nodes = 0;
  std::size_t estimated = 0;  // nodes that carried a nonzero estimate
  double est_seconds = 0;
  double measured_seconds = 0;
  double abs_error = 0;  // sum |est - measured| over estimated nodes
};

}  // namespace

util::TaskTrace trace_from_json(std::string_view text) {
  const util::JsonValue root = util::parse_json(text);
  if (root.type != util::JsonValue::Type::Object) {
    throw ParseError(std::string(kDocument) + ": document is not an object");
  }
  const std::string schema = util::json_string(root, "schema", kDocument);
  if (schema != "punt-schedule-trace") {
    throw ParseError(std::string(kDocument) + ": schema is '" + schema +
                     "', expected 'punt-schedule-trace' (is this a "
                     "--trace-schedule dump?)");
  }
  const std::size_t version = util::json_count(root, "version", kDocument);
  if (version != 1) {
    throw ParseError(printf_string(
        "%s: version %zu is not supported (this build reads version 1); "
        "regenerate the dump with this punt's --trace-schedule",
        kDocument, version));
  }

  util::TaskTrace trace;
  trace.workers = util::json_count(root, "workers", kDocument);
  trace.wall_seconds = util::json_number(root, "wall_seconds", kDocument);
  const util::JsonValue& nodes =
      util::json_require(root, "nodes", util::JsonValue::Type::Array, kDocument);
  trace.nodes.reserve(nodes.array.size());
  for (std::size_t i = 0; i < nodes.array.size(); ++i) {
    const util::JsonValue& entry = nodes.array[i];
    if (entry.type != util::JsonValue::Type::Object) {
      throw ParseError(printf_string("%s: nodes[%zu] is not an object", kDocument, i));
    }
    util::TraceNode node;
    node.id = util::json_count(entry, "id", kDocument);
    if (node.id != i) {
      // The executor hands out dense ascending ids; anything else means a
      // truncated or hand-edited dump, and the critical-path arithmetic
      // below would index out of bounds.
      throw ParseError(printf_string(
          "%s: nodes[%zu] has id %zu; node ids must be dense and ascending",
          kDocument, i, node.id));
    }
    node.kind = util::json_string(entry, "kind", kDocument);
    node.label = util::json_string(entry, "label", kDocument);
    const util::JsonValue& deps =
        util::json_require(entry, "deps", util::JsonValue::Type::Array, kDocument);
    for (const util::JsonValue& dep : deps.array) {
      if (dep.type != util::JsonValue::Type::Number || dep.number < 0 ||
          dep.number != std::floor(dep.number) ||
          static_cast<std::size_t>(dep.number) >= node.id) {
        throw ParseError(printf_string(
            "%s: nodes[%zu] has an invalid dep (deps must be ids below %zu; "
            "the graph is acyclic by construction)",
            kDocument, i, node.id));
      }
      node.deps.push_back(static_cast<std::size_t>(dep.number));
    }
    node.priority = static_cast<int>(util::json_number(entry, "priority", kDocument));
    node.est_cost = optional_number(entry, "est_cost");
    node.status = status_of(util::json_string(entry, "status", kDocument));
    node.worker = static_cast<int>(util::json_number(entry, "worker", kDocument));
    node.wall_ready = optional_number(entry, "wall_ready");
    node.wall_start = util::json_number(entry, "wall_start", kDocument);
    node.wall_end = util::json_number(entry, "wall_end", kDocument);
    node.cpu_seconds = util::json_number(entry, "cpu_seconds", kDocument);
    trace.nodes.push_back(std::move(node));
  }
  return trace;
}

std::string format_trace(const util::TaskTrace& trace) {
  std::string out = trace.summary();
  if (trace.nodes.empty()) return out;

  // Lanes: each pool worker index that ran at least one node; a -1 lane for
  // inline runs.  Sorted so the rendering is deterministic.
  std::vector<int> lanes;
  for (const util::TraceNode& node : trace.nodes) {
    if (node.status != util::TaskStatus::Done && node.status != util::TaskStatus::Failed) {
      continue;
    }
    if (std::find(lanes.begin(), lanes.end(), node.worker) == lanes.end()) {
      lanes.push_back(node.worker);
    }
  }
  std::sort(lanes.begin(), lanes.end());

  out += "\nworker occupancy:\n";
  constexpr std::size_t kGanttWidth = 64;
  const std::vector<std::pair<std::string, char>> letters = kind_letters(trace);
  for (const int worker : lanes) {
    double busy = 0;
    std::size_t count = 0;
    for (const util::TraceNode& node : trace.nodes) {
      if (node.worker != worker || (node.status != util::TaskStatus::Done &&
                                    node.status != util::TaskStatus::Failed)) {
        continue;
      }
      busy += node.wall_duration();
      ++count;
    }
    const double occupancy =
        trace.wall_seconds > 0 ? 100.0 * busy / trace.wall_seconds : 0.0;
    out += printf_string("  %-7s %3zu node(s)  busy %8.4fs  %5.1f%%  |%s|\n",
                         worker < 0 ? "inline" : printf_string("w%d", worker).c_str(),
                         count, busy, occupancy,
                         gantt_lane(trace, letters, worker, kGanttWidth).c_str());
  }
  out += "  legend:";
  for (const auto& [kind, letter] : letters) {
    out += printf_string(" %c=%s", letter, kind.empty() ? "(unnamed)" : kind.c_str());
  }
  out += ", .=idle\n";

  // Queue-wait: how long ready nodes sat before a worker picked them up —
  // the statistic longest-task-first dispatch is meant to shrink for the
  // nodes that gate the critical path.
  double wait_total = 0, wait_max = 0;
  std::size_t wait_count = 0;
  for (const util::TraceNode& node : trace.nodes) {
    if (node.status != util::TaskStatus::Done && node.status != util::TaskStatus::Failed) {
      continue;
    }
    const double wait = std::max(0.0, node.queue_wait());
    wait_total += wait;
    wait_max = std::max(wait_max, wait);
    ++wait_count;
  }
  if (wait_count > 0) {
    out += printf_string(
        "queue wait: mean %.4fs, max %.4fs over %zu executed node(s)\n",
        wait_total / static_cast<double>(wait_count), wait_max, wait_count);
  }

  // Estimated vs measured, by kind: the report card for the cost ledger.  A
  // cold trace (no estimates) prints measured columns and says so.
  std::vector<KindRow> rows;
  for (const util::TraceNode& node : trace.nodes) {
    if (node.status != util::TaskStatus::Done && node.status != util::TaskStatus::Failed) {
      continue;
    }
    auto it = std::find_if(rows.begin(), rows.end(),
                           [&](const KindRow& row) { return row.kind == node.kind; });
    if (it == rows.end()) {
      rows.push_back(KindRow{node.kind});
      it = rows.end() - 1;
    }
    ++it->nodes;
    it->measured_seconds += node.wall_duration();
    if (node.est_cost > 0) {
      ++it->estimated;
      it->est_seconds += node.est_cost;
      it->abs_error += std::fabs(node.est_cost - node.wall_duration());
    }
  }
  out += "\nledger estimate vs measured (per kind):\n";
  out += "  kind        nodes  est'd   est(s)    meas(s)   err\n";
  std::size_t estimated_total = 0;
  for (const KindRow& row : rows) {
    estimated_total += row.estimated;
    if (row.estimated > 0) {
      // Mean |error| relative to mean measured time of the *estimated*
      // nodes would need their measured subtotal; sum-vs-sum keeps the
      // column meaningful for a glance: how far off the ledger's total is.
      const double err = row.measured_seconds > 0
                             ? 100.0 * row.abs_error / row.measured_seconds
                             : 0.0;
      out += printf_string("  %-12s %4zu  %4zu  %9.4f  %9.4f  %5.1f%%\n",
                           row.kind.c_str(), row.nodes, row.estimated, row.est_seconds,
                           row.measured_seconds, err);
    } else {
      out += printf_string("  %-12s %4zu  %4zu  %9s  %9.4f  %5s\n", row.kind.c_str(),
                           row.nodes, row.estimated, "-", row.measured_seconds, "-");
    }
  }
  if (estimated_total == 0) {
    out += "  (no cost estimates in this trace: a cold-ledger or pre-ledger run)\n";
  }
  return out;
}

}  // namespace punt::benchmarks
