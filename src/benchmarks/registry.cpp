#include "src/benchmarks/registry.hpp"

#include "src/benchmarks/templates.hpp"
#include "src/stg/generators.hpp"
#include "src/util/error.hpp"

namespace punt::benchmarks {
namespace {

std::vector<Benchmark> build_table1() {
  // Helper notes.
  const std::string kChain = "substitute: sequential handshake ring (same Sigs)";
  const std::string kFork = "substitute: concurrent fork-join controller (same Sigs)";
  const std::string kChoice = "substitute: free-choice mode controller (same Sigs)";
  const std::string kPipe = "substitute: Muller pipeline stage chain (same Sigs)";

  std::vector<Benchmark> rows;
  auto add = [&rows](std::string name, std::size_t sigs, std::function<stg::Stg()> make,
                     std::string note, double unf, double syn, double esp, double tot,
                     std::size_t lit, double petrify, double sis, std::size_t lit2) {
    Benchmark b;
    b.name = std::move(name);
    b.signals = sigs;
    b.make = std::move(make);
    b.note = std::move(note);
    b.paper_unf_time = unf;
    b.paper_syn_time = syn;
    b.paper_esp_time = esp;
    b.paper_total_time = tot;
    b.paper_literals = lit;
    b.paper_petrify_time = petrify;
    b.paper_sis_time = sis;
    b.paper_other_literals = lit2;
    rows.push_back(std::move(b));
  };

  using V = std::vector<std::size_t>;
  add("imec-master-read.csc", 18,
      [] { return choice_controller("imec-master-read.csc", V{8, 8}); }, kChoice,
      0.39, 73.56, 3.05, 77.00, 83, 125.66, 630.52, 69);
  add("nowick.asn", 7, [] { return choice_controller("nowick.asn", V{2, 3}); }, kChoice,
      0.02, 0.26, 0.69, 0.97, 17, 1.44, 0.51, 20);
  add("nowick", 6, [] { return choice_controller("nowick", V{2, 2}); }, kChoice,
      0.02, 0.17, 0.38, 0.57, 15, 1.10, 0.23, 14);
  add("par_4.csc", 14, [] { return fork_join("par_4.csc", V{3, 3, 3, 4}); }, kFork,
      0.03, 1.12, 2.48, 3.63, 36, 12.31, 168.55, 36);
  add("sis-master-read.csc", 14,
      [] { return choice_controller("sis-master-read.csc", V{6, 6}); }, kChoice,
      0.16, 4.53, 1.09, 5.78, 48, 27.09, 130.66, 48);
  add("tsbmSIBRK", 25, [] { return choice_controller("tsbmSIBRK", V{8, 7, 7}); },
      kChoice, 0.44, 37.64, 4.62, 42.70, 72, 299.90, 141.51, 72);
  add("pn_stg_example", 6,
      [] { return fork_join("pn_stg_example", V{1, 1, 1, 1, 1}); }, kFork,
      0.01, 0.19, 1.57, 1.77, 19, 4.20, 6.84, 19);
  add("forever_ordered", 8, [] { return handshake_chain("forever_ordered", 8); },
      kChain, 0.03, 0.31, 1.12, 1.46, 20, 5.24, 8.81, 16);
  add("alloc-outbound", 9, [] { return choice_controller("alloc-outbound", V{3, 4}); },
      kChoice, 0.05, 0.32, 0.48, 0.85, 16, 1.75, 1.53, 16);
  add("mp-forward-pkt", 20,
      [] { return fork_join("mp-forward-pkt", V{5, 5, 5, 4}); }, kFork,
      0.02, 0.34, 0.47, 0.83, 17, 1.50, 0.22, 17);
  add("nak-pa", 10, [] { return choice_controller("nak-pa", V{4, 4}); }, kChoice,
      0.02, 0.37, 0.57, 0.96, 20, 2.28, 0.29, 20);
  add("pe-send-ifc", 17, [] { return choice_controller("pe-send-ifc", V{7, 8}); },
      kChoice, 0.12, 1.91, 0.50, 2.53, 68, 19.50, 1.16, 75);
  add("ram-read-sbuf", 11,
      [] { return fork_join("ram-read-sbuf", V{2, 2, 2, 2, 2}); }, kFork,
      0.02, 0.48, 0.58, 1.08, 25, 3.28, 0.26, 22);
  add("rcv-setup", 5, [] { return choice_controller("rcv-setup", V{2, 1}); }, kChoice,
      0.02, 0.06, 0.17, 0.25, 8, 0.72, 0.14, 8);
  add("sbuf-ram-write", 12, [] { return stg::make_muller_pipeline(11); }, kPipe,
      0.04, 0.80, 0.64, 1.48, 23, 4.04, 0.38, 23);
  add("sbuf-read-ctl.old", 8, [] { return fork_join("sbuf-read-ctl.old", V{3, 4}); },
      kFork, 0.03, 0.36, 0.47, 0.86, 15, 1.29, 0.19, 15);
  add("sbuf-read-ctl", 8, [] { return stg::make_muller_pipeline(7); }, kPipe,
      0.02, 0.22, 0.47, 0.71, 15, 0.99, 0.16, 15);
  add("sbuf-send-ctl", 8, [] { return choice_controller("sbuf-send-ctl", V{3, 3}); },
      kChoice, 0.02, 0.37, 0.49, 0.88, 19, 1.95, 0.21, 19);
  add("sbuf-send-pkt2", 9, [] { return fork_join("sbuf-send-pkt2", V{2, 2, 2, 2}); },
      kFork, 0.02, 0.49, 0.48, 0.99, 19, 2.16, 0.23, 19);
  add("sbuf-send-pkt2.yun", 9, [] { return fork_join("sbuf-send-pkt2.yun", V{4, 4}); },
      kFork, 0.04, 0.58, 0.45, 1.07, 31, 3.43, 0.26, 31);
  add("sendr-done", 4, [] { return handshake_chain("sendr-done", 4); }, kChain,
      0.02, 0.02, 0.19, 0.23, 6, 0.33, 0.14, 6);
  return rows;
}

}  // namespace

const std::vector<Benchmark>& table1() {
  static const std::vector<Benchmark> rows = build_table1();
  return rows;
}

const Benchmark& find(const std::string& name) {
  for (const Benchmark& b : table1()) {
    if (b.name == name) return b;
  }
  throw ValidationError("unknown benchmark '" + name + "'");
}

}  // namespace punt::benchmarks
