#include "src/sg/serialize.hpp"

#include <utility>

#include "src/util/error.hpp"

namespace punt::sg {
namespace {

/// Plausibility ceiling for any element count in an SG payload; the default
/// state budget is 2e6, so 2^28 never rejects a legitimate graph but stops a
/// corrupt length from driving a huge allocation.
constexpr std::uint64_t kMaxElements = 1u << 28;

}  // namespace

void write_state_graph(const StateGraph& graph, util::BinaryWriter& out) {
  const std::size_t states = graph.markings_.size();
  out.u64(graph.signal_count_);
  out.u64(states);
  for (std::size_t s = 0; s < states; ++s) {
    const pn::Marking& marking = graph.markings_[s];
    out.u64(marking.place_count());
    for (std::size_t p = 0; p < marking.place_count(); ++p) {
      out.u32(marking.tokens(pn::PlaceId(static_cast<std::uint32_t>(p))));
    }
    out.u64(graph.codes_[s].size());
    for (const std::uint8_t bit : graph.codes_[s]) out.u8(bit);
    out.u64(graph.arcs_[s].size());
    for (const Arc& arc : graph.arcs_[s]) {
      out.u32(arc.transition.value);
      out.u64(arc.target);
    }
  }
  out.u64(graph.excited_.size());
  for (const std::uint8_t bit : graph.excited_) out.u8(bit);
}

StateGraph read_state_graph(util::BinaryReader& in, const stg::Stg& stg) {
  const std::size_t net_transitions = stg.net().transition_count();
  const std::size_t net_places = stg.net().place_count();

  StateGraph graph;
  graph.signal_count_ = in.count(kMaxElements, "signal");
  if (graph.signal_count_ != stg.signal_count()) {
    throw ValidationError("state-graph payload corrupt: " +
                          std::to_string(graph.signal_count_) +
                          " signal(s) recorded but the STG has " +
                          std::to_string(stg.signal_count()));
  }
  const std::size_t states = in.count(kMaxElements, "state");
  graph.markings_.reserve(states);
  graph.codes_.reserve(states);
  graph.arcs_.reserve(states);
  for (std::size_t s = 0; s < states; ++s) {
    const std::size_t places = in.count(kMaxElements, "marking place");
    if (places != net_places) {
      throw ValidationError("state-graph payload corrupt: a marking covers " +
                            std::to_string(places) + " place(s) but the STG has " +
                            std::to_string(net_places));
    }
    pn::Marking marking(places);
    for (std::size_t p = 0; p < places; ++p) {
      marking.set_tokens(pn::PlaceId(static_cast<std::uint32_t>(p)), in.u32());
    }
    graph.markings_.push_back(std::move(marking));

    const std::size_t bits = in.count(kMaxElements, "code bit");
    if (bits != graph.signal_count_) {
      throw ValidationError("state-graph payload corrupt: a state code carries " +
                            std::to_string(bits) + " bit(s), expected " +
                            std::to_string(graph.signal_count_));
    }
    stg::Code code(bits);
    for (std::size_t b = 0; b < bits; ++b) code[b] = in.u8();
    graph.codes_.push_back(std::move(code));

    const std::size_t arc_count = in.count(kMaxElements, "arc");
    std::vector<Arc> arcs;
    arcs.reserve(arc_count);
    for (std::size_t a = 0; a < arc_count; ++a) {
      Arc arc;
      arc.transition = pn::TransitionId(in.u32());
      arc.target = in.count(kMaxElements, "arc target");
      if (!arc.transition.valid() || arc.transition.index() >= net_transitions ||
          arc.target >= states) {
        throw ValidationError("state-graph payload corrupt: an arc references "
                              "transition " + std::to_string(arc.transition.value) +
                              " / state " + std::to_string(arc.target) +
                              " outside the graph");
      }
      arcs.push_back(arc);
    }
    graph.arcs_.push_back(std::move(arcs));
  }

  // Bounded by its own expected size, not kMaxElements: the flattened
  // states × signals table legitimately exceeds any per-dimension ceiling.
  const std::size_t excited = in.count(states * graph.signal_count_, "excitation flag");
  if (excited != states * graph.signal_count_) {
    throw ValidationError("state-graph payload corrupt: the excitation table holds " +
                          std::to_string(excited) + " flag(s), expected " +
                          std::to_string(states * graph.signal_count_));
  }
  graph.excited_.reserve(excited);
  for (std::size_t i = 0; i < excited; ++i) graph.excited_.push_back(in.u8());
  return graph;
}

}  // namespace punt::sg
