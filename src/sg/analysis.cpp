#include "src/sg/analysis.hpp"

#include <map>
#include <set>

namespace punt::sg {

std::string PersistencyViolation::describe(const stg::Stg& stg) const {
  return "output signal '" + stg.signal_name(victim) +
         "' is excited in state " + std::to_string(state) +
         " but firing '" + stg.transition_name(disabler) + "' disables it";
}

std::string CscViolation::describe(const stg::Stg& stg, const StateGraph& sg) const {
  std::string out = "states " + std::to_string(state_a) + " and " +
                    std::to_string(state_b) + " share code " +
                    stg::code_to_string(sg.code(state_a)) +
                    " but disagree on the implied value of";
  for (const stg::SignalId s : conflicting) out += " '" + stg.signal_name(s) + "'";
  return out;
}

std::vector<PersistencyViolation> persistency_violations(const stg::Stg& stg,
                                                         const StateGraph& sg) {
  std::vector<PersistencyViolation> out;
  for (std::size_t s = 0; s < sg.state_count(); ++s) {
    for (const Arc& arc : sg.arcs(s)) {
      // After firing arc.transition, every *other* signal that was excited
      // at s must still be excited at the target (unless it is an input).
      for (std::size_t sig = 0; sig < stg.signal_count(); ++sig) {
        const stg::SignalId signal(static_cast<std::uint32_t>(sig));
        const stg::SignalKind kind = stg.signal_kind(signal);
        if (kind != stg::SignalKind::Output && kind != stg::SignalKind::Internal) continue;
        const stg::Label& fired = stg.label(arc.transition);
        if (!fired.dummy && fired.signal == signal) continue;  // it fired itself
        if (sg.excited(s, signal) && !sg.excited(arc.target, signal)) {
          out.push_back(PersistencyViolation{signal, arc.transition, s});
        }
      }
    }
  }
  return out;
}

std::vector<CscViolation> csc_violations(const stg::Stg& stg, const StateGraph& sg) {
  std::map<stg::Code, std::vector<std::size_t>> by_code;
  for (std::size_t s = 0; s < sg.state_count(); ++s) by_code[sg.code(s)].push_back(s);

  const std::vector<stg::SignalId> outputs = stg.non_input_signals();
  std::vector<CscViolation> out;
  for (const auto& [code, states] : by_code) {
    for (std::size_t i = 0; i < states.size(); ++i) {
      for (std::size_t j = i + 1; j < states.size(); ++j) {
        CscViolation v;
        v.state_a = states[i];
        v.state_b = states[j];
        for (const stg::SignalId sig : outputs) {
          if (sg.implied_value(states[i], sig) != sg.implied_value(states[j], sig)) {
            v.conflicting.push_back(sig);
          }
        }
        if (!v.conflicting.empty()) out.push_back(std::move(v));
      }
    }
  }
  return out;
}

bool has_unique_state_coding(const StateGraph& sg) {
  std::set<stg::Code> codes;
  for (std::size_t s = 0; s < sg.state_count(); ++s) {
    if (!codes.insert(sg.code(s)).second) return false;
  }
  return true;
}

namespace {

logic::Cover cover_of_states(const StateGraph& sg, const std::vector<std::size_t>& states) {
  std::set<stg::Code> seen;
  logic::Cover out(sg.state_count() == 0 ? 0 : sg.code(0).size());
  for (const std::size_t s : states) {
    if (seen.insert(sg.code(s)).second) {
      out.add(logic::Cube::from_code(sg.code(s)));
    }
  }
  return out;
}

}  // namespace

logic::Cover on_cover(const StateGraph& sg, stg::SignalId signal) {
  return cover_of_states(sg, sg.on_set(signal));
}

logic::Cover off_cover(const StateGraph& sg, stg::SignalId signal) {
  return cover_of_states(sg, sg.off_set(signal));
}

logic::Cover er_cover(const stg::Stg& stg, const StateGraph& sg, stg::SignalId signal,
                      bool rising) {
  return cover_of_states(sg, sg.excitation_region(signal, rising, stg));
}

}  // namespace punt::sg
