// Dynamic correctness analyses on the State Graph:
//   * output persistency (semi-modularity) — an excited output must stay
//     excited until it fires;
//   * USC / CSC — binary codes must determine the marking (USC) or at least
//     the excited output behaviour (CSC);
//   * exact on/off-set covers per signal, the input to SG-based synthesis.
#pragma once

#include <string>
#include <vector>

#include "src/logic/cover.hpp"
#include "src/sg/state_graph.hpp"
#include "src/stg/stg.hpp"

namespace punt::sg {

/// An excited output signal lost its excitation when another transition
/// fired — a potential hazard in any speed-independent implementation.
struct PersistencyViolation {
  stg::SignalId victim;          // the output signal that was disabled
  pn::TransitionId disabler;     // the transition whose firing disabled it
  std::size_t state;             // state where both were enabled
  std::string describe(const stg::Stg& stg) const;
};

/// Two reachable states share a binary code but imply different behaviour
/// for at least one non-input signal.
struct CscViolation {
  std::size_t state_a = 0;
  std::size_t state_b = 0;
  std::vector<stg::SignalId> conflicting;  // signals with differing implied value
  std::string describe(const stg::Stg& stg, const StateGraph& sg) const;
};

/// All persistency violations w.r.t. non-input signals.  Input signals may
/// be disabled freely (environment choice), matching the paper's
/// semi-modularity criterion.
std::vector<PersistencyViolation> persistency_violations(const stg::Stg& stg,
                                                         const StateGraph& sg);

/// All CSC violations: pairs of states with equal codes and differing
/// implied values of some output/internal signal.  One violation is
/// reported per offending state pair.
std::vector<CscViolation> csc_violations(const stg::Stg& stg, const StateGraph& sg);

/// True when every reachable state has a unique binary code (USC).
bool has_unique_state_coding(const StateGraph& sg);

/// Exact on-set (implied value 1) cover of `signal`: one minterm cube per
/// distinct state code.
logic::Cover on_cover(const StateGraph& sg, stg::SignalId signal);
/// Exact off-set (implied value 0) cover of `signal`.
logic::Cover off_cover(const StateGraph& sg, stg::SignalId signal);

/// Exact cover of the excitation region ER(+signal) / ER(-signal).
logic::Cover er_cover(const stg::Stg& stg, const StateGraph& sg, stg::SignalId signal,
                      bool rising);

}  // namespace punt::sg
