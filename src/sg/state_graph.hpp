// Explicit State Graph (State Transition Diagram) of an STG.
//
// The SG is the reachability graph of the underlying net, with the binary
// code carried along every path.  Building it verifies two of the paper's
// general correctness criteria on the fly:
//   * consistent state assignment — firing a+ from a state where a=1 (or a-
//     where a=0) throws ImplementabilityError;
//   * boundedness — a configurable place-capacity bound and a state budget
//     turn state explosion into a CapacityError instead of an OOM.
//
// This module is the substrate of the SG-based synthesis baseline (the
// paper's SIS / Petrify comparison columns) and the reference oracle for the
// unfolding-based flow's tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/pn/marking.hpp"
#include "src/stg/stg.hpp"

namespace punt::util {
class BinaryReader;  // binio.hpp
class BinaryWriter;
}  // namespace punt::util

namespace punt::sg {

/// One SG arc: firing `transition` leads to state `target`.
struct Arc {
  pn::TransitionId transition;
  std::size_t target;
};

struct BuildOptions {
  /// Maximum states explored before CapacityError (0 = unlimited).
  std::size_t state_budget = 2000000;
  /// Per-place token bound (1 = require safeness); 0 disables the check.
  std::uint32_t capacity = 1;
};

/// The state graph.  States are dense indices; state 0 is the initial state.
class StateGraph {
 public:
  static StateGraph build(const stg::Stg& stg, const BuildOptions& options = {});

  std::size_t state_count() const { return markings_.size(); }
  std::size_t initial_state() const { return 0; }

  const pn::Marking& marking(std::size_t s) const { return markings_[s]; }
  const stg::Code& code(std::size_t s) const { return codes_[s]; }
  const std::vector<Arc>& arcs(std::size_t s) const { return arcs_[s]; }

  std::size_t arc_count() const;

  /// True when some transition of `signal` is enabled at state `s`.
  bool excited(std::size_t s, stg::SignalId signal) const {
    return excited_[s * signal_count_ + signal.index()] != 0;
  }

  /// The value the implementation of `signal` must produce at state `s`:
  /// its current value flipped when an edge of the signal is enabled.
  std::uint8_t implied_value(std::size_t s, stg::SignalId signal) const {
    const std::uint8_t now = codes_[s][signal.index()];
    return excited(s, signal) ? static_cast<std::uint8_t>(1 - now) : now;
  }

  /// States with implied_value == 1 (the on-set of the signal).
  std::vector<std::size_t> on_set(stg::SignalId signal) const;
  /// States with implied_value == 0 (the off-set of the signal).
  std::vector<std::size_t> off_set(stg::SignalId signal) const;

  /// States where `signal`'s rising (falling) edge is enabled — the
  /// excitation region ER(+a) (ER(-a)) as a state list.
  std::vector<std::size_t> excitation_region(stg::SignalId signal, bool rising,
                                             const stg::Stg& stg) const;

 private:
  // Binary (de)serialisation (serialize.hpp) — the disk tier of the model
  // cache persists the SG verbatim instead of re-exploring the state space.
  friend void write_state_graph(const StateGraph& graph, util::BinaryWriter& out);
  friend StateGraph read_state_graph(util::BinaryReader& in, const stg::Stg& stg);

  std::size_t signal_count_ = 0;
  std::vector<pn::Marking> markings_;
  std::vector<stg::Code> codes_;
  std::vector<std::vector<Arc>> arcs_;
  std::vector<std::uint8_t> excited_;  // state-major [state][signal]
};

}  // namespace punt::sg
