#include "src/sg/state_graph.hpp"

#include <deque>
#include <unordered_map>

#include "src/util/error.hpp"

namespace punt::sg {

StateGraph StateGraph::build(const stg::Stg& stg, const BuildOptions& options) {
  stg.validate();
  const pn::PetriNet& net = stg.net();

  StateGraph sg;
  sg.signal_count_ = stg.signal_count();

  std::unordered_map<std::size_t, std::vector<std::size_t>> index;  // hash -> states
  std::deque<std::size_t> queue;

  auto intern = [&](pn::Marking m, stg::Code code) -> std::size_t {
    const std::size_t h = m.hash();
    for (const std::size_t s : index[h]) {
      if (sg.markings_[s] == m) {
        if (sg.codes_[s] != code) {
          throw ImplementabilityError(
              "inconsistent state assignment: marking " +
              m.to_string(stg.net().place_names()) + " is reachable with codes " +
              stg::code_to_string(sg.codes_[s]) + " and " + stg::code_to_string(code));
        }
        return s;
      }
    }
    const std::size_t s = sg.markings_.size();
    if (options.state_budget != 0 && s >= options.state_budget) {
      throw CapacityError("state graph exceeds the state budget of " +
                          std::to_string(options.state_budget) +
                          " states; the specification is too concurrent for "
                          "explicit reachability");
    }
    index[h].push_back(s);
    sg.markings_.push_back(std::move(m));
    sg.codes_.push_back(std::move(code));
    sg.arcs_.emplace_back();
    queue.push_back(s);
    return s;
  };

  intern(net.initial_marking(), stg.initial_code());
  while (!queue.empty()) {
    const std::size_t s = queue.front();
    queue.pop_front();
    const pn::Marking marking = sg.markings_[s];  // copy: vectors may reallocate
    const stg::Code code = sg.codes_[s];
    for (const pn::TransitionId t : net.enabled_transitions(marking)) {
      stg::Code next_code = code;
      stg.apply(t, next_code);  // throws on inconsistency
      const std::size_t target = intern(net.fire(marking, t, options.capacity),
                                        std::move(next_code));
      sg.arcs_[s].push_back(Arc{t, target});
    }
  }

  // Excitation table, state-major.
  sg.excited_.assign(sg.state_count() * sg.signal_count_, 0);
  for (std::size_t s = 0; s < sg.state_count(); ++s) {
    for (const Arc& arc : sg.arcs_[s]) {
      const stg::Label& label = stg.label(arc.transition);
      if (!label.dummy) {
        sg.excited_[s * sg.signal_count_ + label.signal.index()] = 1;
      }
    }
  }
  return sg;
}

std::size_t StateGraph::arc_count() const {
  std::size_t n = 0;
  for (const auto& a : arcs_) n += a.size();
  return n;
}

std::vector<std::size_t> StateGraph::on_set(stg::SignalId signal) const {
  std::vector<std::size_t> out;
  for (std::size_t s = 0; s < state_count(); ++s) {
    if (implied_value(s, signal) == 1) out.push_back(s);
  }
  return out;
}

std::vector<std::size_t> StateGraph::off_set(stg::SignalId signal) const {
  std::vector<std::size_t> out;
  for (std::size_t s = 0; s < state_count(); ++s) {
    if (implied_value(s, signal) == 0) out.push_back(s);
  }
  return out;
}

std::vector<std::size_t> StateGraph::excitation_region(stg::SignalId signal, bool rising,
                                                       const stg::Stg& stg) const {
  std::vector<std::size_t> out;
  for (std::size_t s = 0; s < state_count(); ++s) {
    for (const Arc& arc : arcs_[s]) {
      const stg::Label& label = stg.label(arc.transition);
      if (!label.dummy && label.signal == signal && label.rising() == rising) {
        out.push_back(s);
        break;
      }
    }
  }
  return out;
}

}  // namespace punt::sg
