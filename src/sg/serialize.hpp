// Binary (de)serialisation of the explicit state graph.
//
// The SG counterpart of src/unfolding/serialize.hpp: the on-disk model
// store persists the reachability graph (markings, codes, arcs, excitation
// table) so StateGraph-method runs skip re-exploration.  The STG is not part
// of this payload — the store serialises it once at the model level and the
// reader receives the parsed copy for id-bound validation.
//
// A damaged payload throws ParseError / ValidationError (the store converts
// either into a rebuild), never yields a malformed graph.
#pragma once

#include "src/sg/state_graph.hpp"
#include "src/util/binio.hpp"

namespace punt::sg {

/// Appends the graph's full state to `out`.
void write_state_graph(const StateGraph& graph, util::BinaryWriter& out);

/// Rebuilds a graph from write_state_graph() output.  `stg` is the STG the
/// graph was built from; its signal/place/transition counts bound every id
/// in the payload.  Throws ParseError on truncation, ValidationError on
/// out-of-range ids or inconsistent table sizes.
StateGraph read_state_graph(util::BinaryReader& in, const stg::Stg& stg);

}  // namespace punt::sg
