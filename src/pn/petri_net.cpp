#include "src/pn/petri_net.hpp"

#include <algorithm>

#include "src/util/error.hpp"

namespace punt::pn {

PlaceId PetriNet::add_place(const std::string& name) {
  if (place_index_.contains(name)) {
    throw ValidationError("duplicate place name '" + name + "'");
  }
  const PlaceId id(static_cast<std::uint32_t>(place_names_.size()));
  place_names_.push_back(name);
  place_index_.emplace(name, id);
  p_pre_.emplace_back();
  p_post_.emplace_back();
  initial_.resize(place_names_.size());
  return id;
}

TransitionId PetriNet::add_transition(const std::string& name) {
  if (transition_index_.contains(name)) {
    throw ValidationError("duplicate transition name '" + name + "'");
  }
  const TransitionId id(static_cast<std::uint32_t>(transition_names_.size()));
  transition_names_.push_back(name);
  transition_index_.emplace(name, id);
  t_pre_.emplace_back();
  t_post_.emplace_back();
  return id;
}

void PetriNet::add_arc(PlaceId p, TransitionId t) {
  auto& pre = t_pre_[t.index()];
  if (std::find(pre.begin(), pre.end(), p) != pre.end()) {
    throw ValidationError("duplicate arc " + place_name(p) + " -> " + transition_name(t));
  }
  pre.push_back(p);
  p_post_[p.index()].push_back(t);
}

void PetriNet::add_arc(TransitionId t, PlaceId p) {
  auto& post = t_post_[t.index()];
  if (std::find(post.begin(), post.end(), p) != post.end()) {
    throw ValidationError("duplicate arc " + transition_name(t) + " -> " + place_name(p));
  }
  post.push_back(p);
  p_pre_[p.index()].push_back(t);
}

void PetriNet::remove_arc(TransitionId t, PlaceId p) {
  auto& post = t_post_[t.index()];
  const auto it = std::find(post.begin(), post.end(), p);
  if (it == post.end()) {
    throw ValidationError("no arc " + transition_name(t) + " -> " + place_name(p) +
                          " to remove");
  }
  post.erase(it);
  auto& pre = p_pre_[p.index()];
  pre.erase(std::find(pre.begin(), pre.end(), t));
}

std::optional<PlaceId> PetriNet::find_place(const std::string& name) const {
  const auto it = place_index_.find(name);
  if (it == place_index_.end()) return std::nullopt;
  return it->second;
}

std::optional<TransitionId> PetriNet::find_transition(const std::string& name) const {
  const auto it = transition_index_.find(name);
  if (it == transition_index_.end()) return std::nullopt;
  return it->second;
}

void PetriNet::set_initial_tokens(PlaceId p, std::uint32_t tokens) {
  initial_.resize(place_count());
  initial_.set_tokens(p, tokens);
}

bool PetriNet::enabled(const Marking& m, TransitionId t) const {
  for (const PlaceId p : t_pre_[t.index()]) {
    if (m.tokens(p) == 0) return false;
  }
  return true;
}

std::vector<TransitionId> PetriNet::enabled_transitions(const Marking& m) const {
  std::vector<TransitionId> out;
  for (std::size_t i = 0; i < transition_count(); ++i) {
    const TransitionId t(static_cast<std::uint32_t>(i));
    if (enabled(m, t)) out.push_back(t);
  }
  return out;
}

Marking PetriNet::fire(const Marking& m, TransitionId t, std::uint32_t capacity) const {
  if (!enabled(m, t)) {
    throw ValidationError("transition '" + transition_name(t) +
                          "' is not enabled in marking " + m.to_string(place_names_));
  }
  Marking next = m;
  for (const PlaceId p : t_pre_[t.index()]) next.remove_token(p);
  for (const PlaceId p : t_post_[t.index()]) {
    next.add_token(p);
    if (capacity != 0 && next.tokens(p) > capacity) {
      throw CapacityError("place '" + place_name(p) + "' exceeds capacity " +
                          std::to_string(capacity) + " after firing '" +
                          transition_name(t) + "' (the net is not " +
                          std::to_string(capacity) + "-bounded)");
    }
  }
  return next;
}

std::vector<PlaceId> PetriNet::choice_places() const {
  std::vector<PlaceId> out;
  for (std::size_t i = 0; i < place_count(); ++i) {
    if (p_post_[i].size() >= 2) out.push_back(PlaceId(static_cast<std::uint32_t>(i)));
  }
  return out;
}

bool PetriNet::is_free_choice() const {
  for (std::size_t i = 0; i < place_count(); ++i) {
    const auto& consumers = p_post_[i];
    if (consumers.size() < 2) continue;
    const auto& first_pre = t_pre_[consumers.front().index()];
    for (const TransitionId t : consumers) {
      const auto& pre = t_pre_[t.index()];
      if (pre.size() != first_pre.size() ||
          !std::is_permutation(pre.begin(), pre.end(), first_pre.begin())) {
        return false;
      }
    }
  }
  return true;
}

bool PetriNet::is_marked_graph() const {
  for (std::size_t i = 0; i < place_count(); ++i) {
    if (p_pre_[i].size() > 1 || p_post_[i].size() > 1) return false;
  }
  return true;
}

void PetriNet::validate() const {
  for (std::size_t i = 0; i < transition_count(); ++i) {
    if (t_pre_[i].empty()) {
      throw ValidationError("transition '" + transition_names_[i] +
                            "' has an empty preset; it would be permanently "
                            "enabled and the net unbounded");
    }
    if (t_post_[i].empty()) {
      throw ValidationError("transition '" + transition_names_[i] +
                            "' has an empty postset");
    }
  }
  if (initial_.place_count() != place_count()) {
    throw ValidationError("initial marking size does not match the place count");
  }
}

}  // namespace punt::pn
