#include "src/pn/marking.hpp"

#include <cassert>

namespace punt::pn {

void Marking::remove_token(PlaceId p) {
  assert(tokens_[p.index()] > 0 && "removing a token from an empty place");
  --tokens_[p.index()];
}

std::uint64_t Marking::total_tokens() const {
  std::uint64_t n = 0;
  for (const std::uint32_t t : tokens_) n += t;
  return n;
}

std::uint32_t Marking::max_tokens() const {
  std::uint32_t n = 0;
  for (const std::uint32_t t : tokens_) {
    if (t > n) n = t;
  }
  return n;
}

std::vector<PlaceId> Marking::marked_places() const {
  std::vector<PlaceId> out;
  for (std::size_t i = 0; i < tokens_.size(); ++i) {
    if (tokens_[i] > 0) out.push_back(PlaceId(static_cast<std::uint32_t>(i)));
  }
  return out;
}

std::size_t Marking::hash() const {
  std::uint64_t h = 1469598103934665603ull;
  for (const std::uint32_t t : tokens_) {
    h ^= t;
    h *= 1099511628211ull;
  }
  return static_cast<std::size_t>(h);
}

std::string Marking::to_string(const std::vector<std::string>& place_names) const {
  std::string out = "{";
  bool first = true;
  for (std::size_t i = 0; i < tokens_.size(); ++i) {
    if (tokens_[i] == 0) continue;
    if (!first) out += ", ";
    first = false;
    out += i < place_names.size() ? place_names[i] : "p" + std::to_string(i);
    if (tokens_[i] > 1) out += "=" + std::to_string(tokens_[i]);
  }
  out += "}";
  return out;
}

}  // namespace punt::pn
