// Strongly typed element identifiers.
//
// Places, transitions, conditions and events all index into dense vectors;
// wrapping the index in a tagged struct keeps the four id spaces from being
// mixed up at compile time while costing nothing at run time.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>

namespace punt {

/// Dense index with a phantom tag.  Default-constructed ids are invalid.
template <typename Tag>
struct Id {
  std::uint32_t value = std::numeric_limits<std::uint32_t>::max();

  constexpr Id() = default;
  constexpr explicit Id(std::uint32_t v) : value(v) {}

  constexpr bool valid() const {
    return value != std::numeric_limits<std::uint32_t>::max();
  }
  constexpr std::size_t index() const { return value; }

  constexpr auto operator<=>(const Id&) const = default;
};

template <typename Tag>
struct IdHash {
  std::size_t operator()(Id<Tag> id) const {
    return std::hash<std::uint32_t>{}(id.value);
  }
};

namespace pn {
using PlaceId = Id<struct PlaceTag>;
using TransitionId = Id<struct TransitionTag>;
}  // namespace pn

namespace unf {
using ConditionId = Id<struct ConditionTag>;
using EventId = Id<struct EventTag>;
}  // namespace unf

}  // namespace punt
