// Markings of a Petri net: a token count per place.
//
// The STG benchmarks are 1-safe, but the kernel keeps full counts so that
// capacity violations (unbounded behaviour) are *detected* rather than
// silently wrapped.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/pn/ids.hpp"

namespace punt::pn {

/// A marking: token count for each place of a fixed net.
class Marking {
 public:
  Marking() = default;
  explicit Marking(std::size_t place_count) : tokens_(place_count, 0) {}

  std::size_t place_count() const { return tokens_.size(); }

  /// Grows the marking to cover `place_count` places (new places unmarked).
  void resize(std::size_t place_count) { tokens_.resize(place_count, 0); }

  std::uint32_t tokens(PlaceId p) const { return tokens_[p.index()]; }
  void set_tokens(PlaceId p, std::uint32_t n) { tokens_[p.index()] = n; }
  void add_token(PlaceId p) { ++tokens_[p.index()]; }

  /// Removes one token; the caller must have checked tokens(p) > 0.
  void remove_token(PlaceId p);

  /// Total number of tokens across all places.
  std::uint64_t total_tokens() const;

  /// Largest per-place token count (1 for a safe marking of a safe run).
  std::uint32_t max_tokens() const;

  /// Marked places in ascending id order.
  std::vector<PlaceId> marked_places() const;

  bool operator==(const Marking& other) const { return tokens_ == other.tokens_; }

  /// FNV-1a over the counts; pairs with MarkingHash for unordered maps.
  std::size_t hash() const;

  /// "{p1, p4=2}" rendering using the supplied place names.
  std::string to_string(const std::vector<std::string>& place_names) const;

 private:
  std::vector<std::uint32_t> tokens_;
};

struct MarkingHash {
  std::size_t operator()(const Marking& m) const { return m.hash(); }
};

}  // namespace punt::pn
