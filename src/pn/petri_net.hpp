// Marked Petri net kernel: N = <P, T, F, m0>.
//
// The net is *ordinary* (arc weight 1), which covers every STG in the
// paper's benchmark suite; duplicate arcs are rejected at construction time.
// Structure is immutable through the query API — mutation happens only via
// the add_* builders, so derived analyses can cache freely.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/pn/ids.hpp"
#include "src/pn/marking.hpp"

namespace punt::pn {

/// A marked Petri net.  Places and transitions are referred to by dense ids;
/// names are unique within each element class.
class PetriNet {
 public:
  /// Adds a place; `name` must be unique among places.
  PlaceId add_place(const std::string& name);

  /// Adds a transition; `name` must be unique among transitions.
  TransitionId add_transition(const std::string& name);

  /// Adds a place -> transition arc (the place joins pre(t)).
  void add_arc(PlaceId p, TransitionId t);
  /// Adds a transition -> place arc (the place joins post(t)).
  void add_arc(TransitionId t, PlaceId p);

  /// Removes an existing transition -> place arc (used by net surgery such
  /// as state-signal insertion).  Throws ValidationError when absent.
  void remove_arc(TransitionId t, PlaceId p);

  std::size_t place_count() const { return place_names_.size(); }
  std::size_t transition_count() const { return transition_names_.size(); }

  const std::string& place_name(PlaceId p) const { return place_names_[p.index()]; }
  const std::string& transition_name(TransitionId t) const {
    return transition_names_[t.index()];
  }
  const std::vector<std::string>& place_names() const { return place_names_; }

  std::optional<PlaceId> find_place(const std::string& name) const;
  std::optional<TransitionId> find_transition(const std::string& name) const;

  const std::vector<PlaceId>& pre(TransitionId t) const { return t_pre_[t.index()]; }
  const std::vector<PlaceId>& post(TransitionId t) const { return t_post_[t.index()]; }
  const std::vector<TransitionId>& pre(PlaceId p) const { return p_pre_[p.index()]; }
  const std::vector<TransitionId>& post(PlaceId p) const { return p_post_[p.index()]; }

  /// The initial marking; mutable while the model is being built.
  const Marking& initial_marking() const { return initial_; }
  void set_initial_tokens(PlaceId p, std::uint32_t tokens);

  // --- Token game -----------------------------------------------------------

  /// True when every input place of `t` holds a token under `m`.
  bool enabled(const Marking& m, TransitionId t) const;

  /// All transitions enabled under `m`, in ascending id order.
  std::vector<TransitionId> enabled_transitions(const Marking& m) const;

  /// Fires `t` from `m`.  Throws ValidationError if `t` is not enabled and
  /// CapacityError if a place would exceed `capacity` tokens (0 = unchecked).
  Marking fire(const Marking& m, TransitionId t, std::uint32_t capacity = 0) const;

  // --- Structural queries ---------------------------------------------------

  /// Places with two or more output transitions (choice places).
  std::vector<PlaceId> choice_places() const;

  /// Extended free choice: any two transitions sharing an input place have
  /// identical presets.
  bool is_free_choice() const;

  /// Marked graph: every place has at most one producer and one consumer.
  bool is_marked_graph() const;

  /// Structural sanity: every transition has a nonempty preset and postset
  /// (a transition with an empty preset would be always-enabled and the net
  /// trivially unbounded).  Throws ValidationError describing the offender.
  void validate() const;

 private:
  std::vector<std::string> place_names_;
  std::vector<std::string> transition_names_;
  std::unordered_map<std::string, PlaceId> place_index_;
  std::unordered_map<std::string, TransitionId> transition_index_;

  std::vector<std::vector<PlaceId>> t_pre_, t_post_;
  std::vector<std::vector<TransitionId>> p_pre_, p_post_;

  Marking initial_;
};

}  // namespace punt::pn
