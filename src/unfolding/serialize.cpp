#include "src/unfolding/serialize.hpp"

#include <functional>
#include <utility>

#include "src/util/error.hpp"

namespace punt::unf {
namespace {

/// Plausibility ceiling for any element count in a segment payload: far
/// above the event budgets real runs use, low enough that a corrupt length
/// cannot drive a multi-gigabyte allocation before the checksum/validation
/// catches it.
constexpr std::uint64_t kMaxElements = 1u << 28;

void write_bitset(const Bitset& bits, util::BinaryWriter& out) {
  out.u64(bits.size());
  for (const std::uint64_t word : bits.words()) out.u64(word);
}

Bitset read_bitset(util::BinaryReader& in) {
  const std::size_t size = in.count(kMaxElements, "bitset bits");
  std::vector<std::uint64_t> words((size + 63) / 64);
  for (std::uint64_t& word : words) word = in.u64();
  return Bitset::from_words(size, std::move(words));
}

template <typename IdType>
void write_id_vector(const std::vector<IdType>& ids, util::BinaryWriter& out) {
  out.u64(ids.size());
  for (const IdType id : ids) out.u32(id.value);
}

/// Reads a dense id vector, requiring every *valid* id below `universe`.
/// Invalid (default-constructed) ids round-trip as the max sentinel — the
/// segment uses them for ⊥'s transition and non-cutoff images.
template <typename IdType>
std::vector<IdType> read_id_vector(util::BinaryReader& in, std::size_t universe,
                                   const char* what) {
  const std::size_t n = in.count(kMaxElements, what);
  std::vector<IdType> ids;
  ids.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const IdType id(in.u32());
    if (id.valid() && id.index() >= universe) {
      throw ValidationError("unfolding payload corrupt: " + std::string(what) + " id " +
                            std::to_string(id.value) + " is outside the universe of " +
                            std::to_string(universe));
    }
    ids.push_back(id);
  }
  return ids;
}

void write_marking(const pn::Marking& marking, util::BinaryWriter& out) {
  out.u64(marking.place_count());
  for (std::size_t p = 0; p < marking.place_count(); ++p) {
    out.u32(marking.tokens(pn::PlaceId(static_cast<std::uint32_t>(p))));
  }
}

pn::Marking read_marking(util::BinaryReader& in, std::size_t place_count) {
  const std::size_t n = in.count(kMaxElements, "marking places");
  if (n != place_count) {
    throw ValidationError("unfolding payload corrupt: a marking covers " +
                          std::to_string(n) + " place(s) but the STG has " +
                          std::to_string(place_count));
  }
  pn::Marking marking(n);
  for (std::size_t p = 0; p < n; ++p) {
    marking.set_tokens(pn::PlaceId(static_cast<std::uint32_t>(p)), in.u32());
  }
  return marking;
}

}  // namespace

void write_unfolding(const Unfolding& unf, util::BinaryWriter& out) {
  const std::size_t events = unf.transitions_.size();
  const std::size_t conditions = unf.places_.size();

  out.u64(unf.stats_.events);
  out.u64(unf.stats_.conditions);
  out.u64(unf.stats_.cutoffs);

  // Events (index 0 = ⊥).
  write_id_vector(unf.transitions_, out);
  out.u64(events);
  for (std::size_t e = 0; e < events; ++e) write_id_vector(unf.e_pre_[e], out);
  out.u64(events);
  for (std::size_t e = 0; e < events; ++e) write_id_vector(unf.e_post_[e], out);
  out.u64(events);
  for (std::size_t e = 0; e < events; ++e) write_bitset(unf.configs_[e], out);
  out.u64(events);
  for (std::size_t e = 0; e < events; ++e) out.u64(unf.config_sizes_[e]);
  out.u64(events);
  for (std::size_t e = 0; e < events; ++e) {
    out.u64(unf.codes_[e].size());
    for (const std::uint8_t bit : unf.codes_[e]) out.u8(bit);
  }
  out.u64(events);
  for (std::size_t e = 0; e < events; ++e) write_marking(unf.markings_[e], out);
  out.u64(events);
  for (std::size_t e = 0; e < events; ++e) out.u8(unf.cutoff_[e]);
  write_id_vector(unf.cutoff_image_, out);

  // Conditions.
  write_id_vector(unf.places_, out);
  write_id_vector(unf.producers_, out);
  out.u64(conditions);
  for (std::size_t c = 0; c < conditions; ++c) write_id_vector(unf.consumers_[c], out);
  out.u64(conditions);
  for (std::size_t c = 0; c < conditions; ++c) write_bitset(unf.co_[c], out);
}

Unfolding read_unfolding(util::BinaryReader& in, std::shared_ptr<const stg::Stg> stg) {
  if (!stg) {
    throw ValidationError("read_unfolding requires the STG the segment was built from");
  }
  const std::size_t net_transitions = stg->net().transition_count();
  const std::size_t net_places = stg->net().place_count();
  const std::size_t signals = stg->signal_count();

  Unfolding unf;
  unf.stg_ = std::move(stg);
  unf.stats_.events = in.count(kMaxElements, "stat events");
  unf.stats_.conditions = in.count(kMaxElements, "stat conditions");
  unf.stats_.cutoffs = in.count(kMaxElements, "stat cutoffs");

  unf.transitions_ =
      read_id_vector<pn::TransitionId>(in, net_transitions, "event transition");
  const std::size_t events = unf.transitions_.size();
  const auto expect_events = [&](const char* what) {
    const std::size_t n = in.count(kMaxElements, what);
    if (n != events) {
      throw ValidationError("unfolding payload corrupt: " + std::string(what) +
                            " covers " + std::to_string(n) + " event(s), expected " +
                            std::to_string(events));
    }
  };

  // Condition ids forward-reference the condition tables, so bound them by
  // the payload's own declared universe once it is known; until then accept
  // any id and validate after the condition tables are read.
  expect_events("event presets");
  unf.e_pre_.reserve(events);
  for (std::size_t e = 0; e < events; ++e) {
    unf.e_pre_.push_back(
        read_id_vector<ConditionId>(in, kMaxElements, "event preset"));
  }
  expect_events("event postsets");
  unf.e_post_.reserve(events);
  for (std::size_t e = 0; e < events; ++e) {
    unf.e_post_.push_back(
        read_id_vector<ConditionId>(in, kMaxElements, "event postset"));
  }
  expect_events("event configs");
  unf.configs_.reserve(events);
  for (std::size_t e = 0; e < events; ++e) {
    unf.configs_.push_back(read_bitset(in));
    // The unfolder sizes [e] over the events that existed when e was added
    // (bits 0..e), not over the final universe.
    if (unf.configs_.back().size() != e + 1) {
      throw ValidationError("unfolding payload corrupt: local configuration " +
                            std::to_string(e) + " spans " +
                            std::to_string(unf.configs_.back().size()) +
                            " event(s), expected " + std::to_string(e + 1));
    }
  }
  expect_events("event config sizes");
  unf.config_sizes_.reserve(events);
  for (std::size_t e = 0; e < events; ++e) {
    unf.config_sizes_.push_back(in.count(kMaxElements, "config size"));
  }
  expect_events("event codes");
  unf.codes_.reserve(events);
  for (std::size_t e = 0; e < events; ++e) {
    const std::size_t bits = in.count(kMaxElements, "code bits");
    if (bits != signals) {
      throw ValidationError("unfolding payload corrupt: an event code carries " +
                            std::to_string(bits) + " bit(s) but the STG has " +
                            std::to_string(signals) + " signal(s)");
    }
    stg::Code code(bits);
    for (std::size_t b = 0; b < bits; ++b) code[b] = in.u8();
    unf.codes_.push_back(std::move(code));
  }
  expect_events("event markings");
  unf.markings_.reserve(events);
  for (std::size_t e = 0; e < events; ++e) {
    unf.markings_.push_back(read_marking(in, net_places));
  }
  expect_events("event cutoff flags");
  unf.cutoff_.reserve(events);
  for (std::size_t e = 0; e < events; ++e) unf.cutoff_.push_back(in.u8());
  unf.cutoff_image_ = read_id_vector<EventId>(in, events, "cutoff image");

  unf.places_ = read_id_vector<pn::PlaceId>(in, net_places, "condition place");
  const std::size_t conditions = unf.places_.size();
  unf.producers_ = read_id_vector<EventId>(in, events, "condition producer");
  const std::size_t consumer_rows = in.count(kMaxElements, "condition consumers");
  if (consumer_rows != conditions) {
    throw ValidationError("unfolding payload corrupt: consumer lists cover " +
                          std::to_string(consumer_rows) + " condition(s), expected " +
                          std::to_string(conditions));
  }
  unf.consumers_.reserve(conditions);
  for (std::size_t c = 0; c < conditions; ++c) {
    unf.consumers_.push_back(
        read_id_vector<EventId>(in, events, "condition consumer"));
  }
  const std::size_t co_rows = in.count(kMaxElements, "co rows");
  if (co_rows != conditions) {
    throw ValidationError("unfolding payload corrupt: the co matrix covers " +
                          std::to_string(co_rows) + " condition(s), expected " +
                          std::to_string(conditions));
  }
  unf.co_.reserve(conditions);
  for (std::size_t c = 0; c < conditions; ++c) {
    unf.co_.push_back(read_bitset(in));
    if (unf.co_.back().size() != c) {
      throw ValidationError("unfolding payload corrupt: triangular co row " +
                            std::to_string(c) + " spans " +
                            std::to_string(unf.co_.back().size()) + " condition(s)");
    }
  }

  // Deferred validation of the pre/postset condition ids, and the size
  // cross-checks a truncation would otherwise leave silently inconsistent.
  for (const auto& sets : {std::cref(unf.e_pre_), std::cref(unf.e_post_)}) {
    for (const auto& set : sets.get()) {
      for (const ConditionId c : set) {
        if (!c.valid() || c.index() >= conditions) {
          throw ValidationError("unfolding payload corrupt: an event pre/postset "
                                "references condition " + std::to_string(c.value) +
                                " of " + std::to_string(conditions));
        }
      }
    }
  }
  if (unf.cutoff_image_.size() != events || unf.producers_.size() != conditions) {
    throw ValidationError("unfolding payload corrupt: table sizes disagree");
  }
  if (events == 0 || unf.transitions_[0].valid()) {
    throw ValidationError("unfolding payload corrupt: event 0 must be the virtual "
                          "initial transition");
  }
  // The invalid-id sentinel is only legitimate where the semantics allow it
  // (⊥'s transition, a non-cutoff's image); everywhere else downstream code
  // indexes without checking, so reject sentinels the range checks above
  // let through.
  for (std::size_t e = 1; e < events; ++e) {
    if (!unf.transitions_[e].valid()) {
      throw ValidationError("unfolding payload corrupt: event " + std::to_string(e) +
                            " carries no transition");
    }
    if (unf.cutoff_[e] != 0 && !unf.cutoff_image_[e].valid()) {
      throw ValidationError("unfolding payload corrupt: cutoff event " +
                            std::to_string(e) + " has no image");
    }
  }
  for (std::size_t c = 0; c < conditions; ++c) {
    if (!unf.producers_[c].valid()) {
      throw ValidationError("unfolding payload corrupt: condition " +
                            std::to_string(c) + " has no producer");
    }
    for (const EventId consumer : unf.consumers_[c]) {
      if (!consumer.valid()) {
        throw ValidationError("unfolding payload corrupt: condition " +
                              std::to_string(c) + " lists an invalid consumer");
      }
    }
  }
  return unf;
}

}  // namespace punt::unf
