// The STG-unfolding segment (paper §3.1).
//
// An occurrence net unfolding of the STG's underlying Petri net, cut off
// when the ⟨final marking, binary code⟩ of a new instance's local
// configuration repeats (McMillan's criterion lifted to STGs).  Each event
// carries the binary code reached by firing its local configuration, so the
// segment implicitly represents every reachable SG state as the cut of some
// configuration.
//
// Conditions (place instances) and events (transition instances) are dense
// ids.  Event 0 is the virtual initial transition ⊥ whose postset maps onto
// the initial marking and whose code is the initial binary state.
//
// Relations (paper §3):
//   * causality  e ≤ f  — e belongs to the local configuration of f;
//   * conflict   e # f  — their pasts consume a shared condition;
//   * concurrency (co)  — neither ordered nor in conflict; maintained
//     incrementally between conditions, derived for events.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/pn/ids.hpp"
#include "src/pn/marking.hpp"
#include "src/stg/stg.hpp"
#include "src/util/bitset.hpp"

namespace punt::util {
class BinaryReader;  // binio.hpp
class BinaryWriter;
}  // namespace punt::util

namespace punt::unf {

struct UnfoldOptions {
  enum class CutoffPolicy {
    /// McMillan's original rule: e is a cutoff iff an existing event f has
    /// the same ⟨marking, code⟩ and a strictly smaller local configuration.
    McMillan,
    /// Total adequate order (size, then insertion order): any repeat of an
    /// already-seen ⟨marking, code⟩ is a cutoff.  Produces smaller segments;
    /// the ablation A3 compares the two.
    TotalOrder,
  };
  CutoffPolicy cutoff = CutoffPolicy::McMillan;
  /// Hard bound on instantiated events (⊥ excluded); exceeded => CapacityError.
  std::size_t event_budget = 100000;
  /// Safety bound on cut markings (1 = safe nets); 0 disables the check.
  std::uint32_t capacity = 1;
};

struct UnfoldStats {
  std::size_t events = 0;      // excluding ⊥
  std::size_t conditions = 0;
  std::size_t cutoffs = 0;
};

/// The finite STG-unfolding segment.  Immutable once built.
class Unfolding {
 public:
  /// Unfolds `stg` until every continuation is behind a cutoff.  Throws
  /// ImplementabilityError on inconsistent state assignment, CapacityError
  /// on unsafe markings or budget exhaustion.  The unfolding keeps its own
  /// copy of the STG, so temporaries are safe to pass.
  static Unfolding build(const stg::Stg& stg, const UnfoldOptions& options = {});

  const stg::Stg& stg() const { return *stg_; }
  const UnfoldStats& stats() const { return stats_; }

  static constexpr EventId initial_event() { return EventId(0); }
  bool is_initial(EventId e) const { return e.value == 0; }

  std::size_t event_count() const { return transitions_.size(); }
  std::size_t condition_count() const { return places_.size(); }

  // --- Per-event data ---------------------------------------------------

  /// The STG transition this event instantiates (invalid for ⊥).
  pn::TransitionId transition(EventId e) const { return transitions_[e.index()]; }

  /// Label of the instantiated transition, or nullptr for ⊥.
  const stg::Label* label(EventId e) const;

  const std::vector<ConditionId>& preset(EventId e) const { return e_pre_[e.index()]; }
  const std::vector<ConditionId>& postset(EventId e) const { return e_post_[e.index()]; }

  /// Bitset of the local configuration [e] over event ids (⊥'s bit is set).
  const Bitset& local_config(EventId e) const { return configs_[e.index()]; }

  /// |[e]| excluding ⊥ (0 for ⊥ itself) — McMillan's adequate measure.
  std::size_t config_size(EventId e) const { return config_sizes_[e.index()]; }

  /// Binary code reached by firing [e] from the initial state.
  const stg::Code& code(EventId e) const { return codes_[e.index()]; }

  /// Binary code at the minimal excitation cut of e: code([e] \ {e}).
  stg::Code excitation_code(EventId e) const;

  /// Final state of [e]: the marking of the original STG reached by [e].
  const pn::Marking& final_marking(EventId e) const { return markings_[e.index()]; }

  bool is_cutoff(EventId e) const { return cutoff_[e.index()] != 0; }
  /// The earlier event with the same ⟨marking, code⟩ (valid iff is_cutoff).
  EventId cutoff_image(EventId e) const { return cutoff_image_[e.index()]; }

  /// Readable instance name, e.g. "b+/2@7" (or "_|_" for ⊥).
  std::string event_name(EventId e) const;

  // --- Per-condition data -------------------------------------------------

  pn::PlaceId place(ConditionId c) const { return places_[c.index()]; }
  EventId producer(ConditionId c) const { return producers_[c.index()]; }
  const std::vector<EventId>& consumers(ConditionId c) const {
    return consumers_[c.index()];
  }
  /// Readable instance name, e.g. "p4@9".
  std::string condition_name(ConditionId c) const;

  // --- Relations ------------------------------------------------------------

  /// Causal precedence e ≤ f (reflexive).
  bool precedes(EventId e, EventId f) const;

  /// Concurrency between conditions (irreflexive).
  bool co(ConditionId a, ConditionId b) const;
  /// Concurrency between a condition and an event: c can be marked while e
  /// fires (c co every input of e).
  bool co(ConditionId c, EventId e) const;
  /// Concurrency between events (both can fire in one run, unordered).
  bool co(EventId e, EventId f) const;
  /// Conflict: no single run fires both.
  bool in_conflict(EventId e, EventId f) const;

  // --- STG-specific queries ---------------------------------------------

  /// Non-⊥ instances of any transition of `signal`, ascending.
  std::vector<EventId> instances_of_signal(stg::SignalId signal) const;

  /// next(e): instances of e's signal causally after e with no intermediate
  /// instance of that signal (paper §3.1).
  std::vector<EventId> next_instances(EventId e) const;

  /// first(a): instances of `signal` with no preceding instance of it.
  std::vector<EventId> first_instances(stg::SignalId signal) const;

  // --- Configurations and cuts ----------------------------------------------

  /// Cut (condition set) reached by firing the configuration: conditions
  /// produced by its events (incl. ⊥'s postset) and not consumed by them.
  Bitset cut_of_config(const Bitset& config_events) const;

  /// Maps a cut onto a marking of the original STG.
  pn::Marking marking_of_cut(const Bitset& cut) const;

  /// Fires the configuration from the initial state (topological order);
  /// throws ImplementabilityError on an inconsistent edge.
  stg::Code code_of_config(const Bitset& config_events) const;

  /// Minimal stable cut of e: the cut of [e] (paper §3.2).
  Bitset min_stable_cut(EventId e) const { return cut_of_config(configs_[e.index()]); }

  /// Minimal excitation cut of e: the cut of [e] \ {e} — the first state at
  /// which e is enabled.
  Bitset min_excitation_cut(EventId e) const;

 private:
  friend class Unfolder;
  // Binary (de)serialisation (serialize.hpp) — the disk tier of the model
  // cache persists the segment verbatim instead of re-unfolding.
  friend void write_unfolding(const Unfolding& unf, util::BinaryWriter& out);
  friend Unfolding read_unfolding(util::BinaryReader& in,
                                  std::shared_ptr<const stg::Stg> stg);
  Unfolding() = default;

  std::shared_ptr<const stg::Stg> stg_;
  UnfoldStats stats_;

  // Events (index 0 = ⊥).
  std::vector<pn::TransitionId> transitions_;
  std::vector<std::vector<ConditionId>> e_pre_, e_post_;
  std::vector<Bitset> configs_;
  std::vector<std::size_t> config_sizes_;
  std::vector<stg::Code> codes_;
  std::vector<pn::Marking> markings_;
  std::vector<std::uint8_t> cutoff_;
  std::vector<EventId> cutoff_image_;

  // Conditions.
  std::vector<pn::PlaceId> places_;
  std::vector<EventId> producers_;
  std::vector<std::vector<EventId>> consumers_;

  // Triangular concurrency matrix: co_[c] holds bits for conditions with
  // ids < c; co(a, b) is looked up in the row of the larger id.
  std::vector<Bitset> co_;
};

/// A persistency (semi-modularity) violation found on the segment: firing
/// `disabler` steals a token from the excited output instance `victim`.
struct SegmentPersistencyViolation {
  EventId victim;
  EventId disabler;
  std::string describe(const Unfolding& unf) const;
};

/// Linear-time semi-modularity check on the segment (paper §3.1): direct
/// conflicts between an output-labelled instance and an instance of a
/// different signal that can be co-enabled.
std::vector<SegmentPersistencyViolation> segment_persistency_violations(
    const Unfolding& unf);

/// Enumerates the distinct markings of all cuts reachable inside the
/// segment (BFS over configurations).  Exponential in concurrency — used by
/// completeness tests and the exact synthesis path, never by approximation.
/// Throws CapacityError beyond `budget` distinct markings (0 = unlimited).
std::vector<pn::Marking> reachable_cut_markings(const Unfolding& unf,
                                                std::size_t budget = 0);

}  // namespace punt::unf
