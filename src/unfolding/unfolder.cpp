// Construction of the STG-unfolding segment (McMillan-style, lifted to
// STGs by cutting off on repeated ⟨final marking, binary code⟩).
#include <algorithm>
#include <map>
#include <memory>
#include <queue>
#include <set>

#include "src/unfolding/unfolding.hpp"
#include "src/util/error.hpp"

namespace punt::unf {
namespace {

/// A possible extension: transition instance with a chosen co-set preset.
struct Candidate {
  std::size_t size;                  // |[e]| excluding ⊥
  pn::TransitionId transition;
  std::vector<ConditionId> preset;   // sorted ascending
  Bitset config;                     // [e] \ {e}, bits over event ids

  /// Adequate total order: size first, then a deterministic tiebreak.
  bool operator>(const Candidate& other) const {
    if (size != other.size) return size > other.size;
    if (transition != other.transition) return transition > other.transition;
    return preset > other.preset;
  }
};

}  // namespace

/// Stateful builder; see Unfolding::build for the public entry point.
class Unfolder {
 public:
  Unfolder(const stg::Stg& stg, const UnfoldOptions& options)
      : stg_(stg), options_(options) {
    unf_.stg_ = std::make_shared<const stg::Stg>(stg);
  }

  Unfolding run() {
    stg_.validate();
    if (options_.capacity != 0 &&
        stg_.net().initial_marking().max_tokens() > options_.capacity) {
      throw CapacityError("the initial marking already exceeds the capacity bound of " +
                          std::to_string(options_.capacity));
    }
    create_initial_event();
    while (!queue_.empty()) {
      Candidate cand = queue_.top();
      queue_.pop();
      instantiate(std::move(cand));
    }
    unf_.stats_.events = unf_.event_count() - 1;
    unf_.stats_.conditions = unf_.condition_count();
    return std::move(unf_);
  }

 private:
  using StateKey = std::pair<std::size_t, std::size_t>;  // (marking, code) hashes

  static std::size_t code_hash(const stg::Code& code) {
    std::size_t h = 1469598103934665603ull;
    for (const std::uint8_t v : code) {
      h ^= v;
      h *= 1099511628211ull;
    }
    return h;
  }

  ConditionId add_condition(pn::PlaceId place, EventId producer, const Bitset& co_base,
                            const std::vector<ConditionId>& earlier_siblings) {
    const ConditionId c(static_cast<std::uint32_t>(unf_.condition_count()));
    unf_.places_.push_back(place);
    unf_.producers_.push_back(producer);
    unf_.consumers_.emplace_back();
    Bitset row = co_base;  // conditions concurrent with the producing event
    row.resize(c.index());
    for (const ConditionId s : earlier_siblings) row.set(s.index());
    unf_.co_.push_back(std::move(row));
    return c;
  }

  void create_initial_event() {
    unf_.transitions_.push_back(pn::TransitionId());  // invalid: ⊥
    unf_.e_pre_.emplace_back();
    unf_.e_post_.emplace_back();
    Bitset config(1);
    config.set(0);
    unf_.configs_.push_back(std::move(config));
    unf_.config_sizes_.push_back(0);
    unf_.codes_.push_back(stg_.initial_code());
    unf_.markings_.push_back(stg_.net().initial_marking());
    unf_.cutoff_.push_back(0);
    unf_.cutoff_image_.push_back(EventId());

    const pn::Marking& m0 = stg_.net().initial_marking();
    std::vector<ConditionId> created;
    const Bitset empty_base;  // nothing exists before the initial conditions
    for (std::size_t p = 0; p < stg_.net().place_count(); ++p) {
      const pn::PlaceId place(static_cast<std::uint32_t>(p));
      for (std::uint32_t k = 0; k < m0.tokens(place); ++k) {
        const ConditionId c = add_condition(place, EventId(0), empty_base, created);
        created.push_back(c);
        unf_.e_post_[0].push_back(c);
      }
    }
    seen_states_.emplace(state_key(m0, stg_.initial_code()),
                         std::vector<EventId>{EventId(0)});
    for (const ConditionId c : created) index_and_scan(c);
  }

  StateKey state_key(const pn::Marking& m, const stg::Code& code) const {
    return {m.hash(), code_hash(code)};
  }

  /// Pops one possible extension and adds it to the segment.
  void instantiate(Candidate cand) {
    // Duplicate candidates cannot arise (generation deduplicates), but a
    // candidate may have been registered before one of its input conditions'
    // producers was identified as a cutoff — impossible too, since cutoff
    // postsets are never scanned.  Instantiate unconditionally.
    if (unf_.event_count() > options_.event_budget) {
      throw CapacityError(
          "unfolding exceeded the event budget of " +
          std::to_string(options_.event_budget) +
          " instances; the STG is unbounded or the budget is too small");
    }
    const EventId e(static_cast<std::uint32_t>(unf_.event_count()));
    unf_.transitions_.push_back(cand.transition);
    unf_.e_pre_.push_back(cand.preset);
    unf_.e_post_.emplace_back();
    Bitset config = std::move(cand.config);
    config.resize(e.index() + 1);
    config.set(e.index());
    unf_.configs_.push_back(std::move(config));
    unf_.config_sizes_.push_back(cand.size);
    unf_.cutoff_.push_back(0);
    unf_.cutoff_image_.push_back(EventId());
    for (const ConditionId c : cand.preset) {
      unf_.consumers_[c.index()].push_back(e);
    }

    // Binary code of [e] — also verifies consistency along this run.
    stg::Code code = unf_.code_of_config(unf_.configs_[e.index()]);
    unf_.codes_.push_back(code);

    // Conditions concurrent with e: concurrent with every input of e.
    Bitset co_base(unf_.condition_count());
    if (!cand.preset.empty()) {
      const ConditionId first = cand.preset.front();
      for (std::size_t d = 0; d < unf_.condition_count(); ++d) {
        const ConditionId cd(static_cast<std::uint32_t>(d));
        bool ok = true;
        for (const ConditionId x : cand.preset) {
          if (!unf_.co(cd, x)) {
            ok = false;
            break;
          }
        }
        (void)first;
        if (ok) co_base.set(d);
      }
    }

    // Postset conditions (cutoff events keep theirs: their final cuts bound
    // slices, per paper §4.1).
    std::vector<ConditionId> created;
    for (const pn::PlaceId p : stg_.net().post(cand.transition)) {
      co_base.resize(unf_.condition_count());
      const ConditionId c = add_condition(p, e, co_base, created);
      created.push_back(c);
      unf_.e_post_[e.index()].push_back(c);
    }

    // Final state of [e] and safeness check.
    const Bitset cut = unf_.cut_of_config(unf_.configs_[e.index()]);
    pn::Marking marking = unf_.marking_of_cut(cut);
    if (options_.capacity != 0 && marking.max_tokens() > options_.capacity) {
      throw CapacityError("the cut of instance " + unf_.event_name(e) +
                          " marks a place with more than " +
                          std::to_string(options_.capacity) +
                          " tokens; the STG is not safe");
    }
    unf_.markings_.push_back(std::move(marking));

    // Cutoff determination.
    const StateKey key = state_key(unf_.markings_[e.index()], code);
    auto [it, inserted] = seen_states_.try_emplace(key);
    bool cutoff = false;
    EventId image;
    if (!inserted) {
      for (const EventId f : it->second) {
        const bool same_state = unf_.markings_[f.index()] == unf_.markings_[e.index()] &&
                                unf_.codes_[f.index()] == code;
        if (!same_state) continue;
        const bool smaller =
            options_.cutoff == UnfoldOptions::CutoffPolicy::McMillan
                ? unf_.config_sizes_[f.index()] < cand.size
                : true;  // total order: any earlier event with this state wins
        if (smaller) {
          cutoff = true;
          image = f;
          break;
        }
      }
    }
    it->second.push_back(e);
    unf_.cutoff_[e.index()] = cutoff ? 1 : 0;
    unf_.cutoff_image_[e.index()] = image;
    if (cutoff) {
      ++unf_.stats_.cutoffs;
      return;  // postset exists but generates no extensions
    }
    for (const ConditionId c : created) index_and_scan(c);
  }

  /// Adds `b` to the per-place index and registers every possible extension
  /// whose preset contains `b`.
  void index_and_scan(ConditionId b) {
    by_place_.resize(stg_.net().place_count());
    by_place_[unf_.place(b).index()].push_back(b);
    const pn::PlaceId pb = unf_.place(b);
    for (const pn::TransitionId t : stg_.net().post(pb)) {
      std::vector<ConditionId> chosen;
      assemble(t, stg_.net().pre(t), 0, b, chosen);
    }
  }

  void assemble(pn::TransitionId t, const std::vector<pn::PlaceId>& places,
                std::size_t idx, ConditionId anchor, std::vector<ConditionId>& chosen) {
    if (idx == places.size()) {
      register_candidate(t, chosen);
      return;
    }
    const pn::PlaceId p = places[idx];
    if (p == unf_.place(anchor)) {
      // The anchor fills its own place slot: extensions not involving the
      // anchor were already generated when their newest condition appeared.
      if (coherent(anchor, chosen)) {
        chosen.push_back(anchor);
        assemble(t, places, idx + 1, anchor, chosen);
        chosen.pop_back();
      }
      return;
    }
    for (const ConditionId c : by_place_[p.index()]) {
      if (!unf_.co(c, anchor) || !coherent(c, chosen)) continue;
      chosen.push_back(c);
      assemble(t, places, idx + 1, anchor, chosen);
      chosen.pop_back();
    }
  }

  bool coherent(ConditionId c, const std::vector<ConditionId>& chosen) const {
    for (const ConditionId x : chosen) {
      if (!unf_.co(c, x)) return false;
    }
    return true;
  }

  void register_candidate(pn::TransitionId t, const std::vector<ConditionId>& preset) {
    std::vector<ConditionId> sorted = preset;
    std::sort(sorted.begin(), sorted.end());
    if (!known_presets_.emplace(t, sorted).second) return;

    Bitset config(unf_.event_count());
    for (const ConditionId c : sorted) {
      const Bitset& pc = unf_.configs_[unf_.producer(c).index()];
      pc.for_each([&config](std::size_t bit) { config.set(bit); });
    }
    const std::size_t size = config.count();  // includes ⊥, excludes e itself
    queue_.push(Candidate{size, t, std::move(sorted), std::move(config)});
  }

  const stg::Stg& stg_;
  UnfoldOptions options_;
  Unfolding unf_;

  std::vector<std::vector<ConditionId>> by_place_;
  std::set<std::pair<pn::TransitionId, std::vector<ConditionId>>> known_presets_;
  std::map<StateKey, std::vector<EventId>> seen_states_;
  std::priority_queue<Candidate, std::vector<Candidate>, std::greater<Candidate>> queue_;
};

Unfolding Unfolding::build(const stg::Stg& stg, const UnfoldOptions& options) {
  return Unfolder(stg, options).run();
}

}  // namespace punt::unf
