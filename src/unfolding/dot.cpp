#include "src/unfolding/dot.hpp"

namespace punt::unf {
namespace {

std::string quoted(const std::string& s) { return "\"" + s + "\""; }

}  // namespace

std::string to_dot(const Unfolding& unf) {
  std::string out = "digraph " + quoted(unf.stg().name() + "_unfolding") + " {\n";
  out += "  rankdir=TB;\n  node [fontname=\"Helvetica\"];\n";

  for (std::size_t i = 0; i < unf.event_count(); ++i) {
    const EventId e(static_cast<std::uint32_t>(i));
    std::string label = unf.event_name(e) + "\\n" + stg::code_to_string(unf.code(e));
    out += "  " + quoted(unf.event_name(e)) + " [shape=box, label=" + quoted(label);
    if (unf.is_cutoff(e)) out += ", style=dashed";
    out += "];\n";
  }
  for (std::size_t i = 0; i < unf.condition_count(); ++i) {
    const ConditionId c(static_cast<std::uint32_t>(i));
    out += "  " + quoted(unf.condition_name(c)) + " [shape=circle];\n";
    out += "  " + quoted(unf.event_name(unf.producer(c))) + " -> " +
           quoted(unf.condition_name(c)) + ";\n";
    for (const EventId consumer : unf.consumers(c)) {
      out += "  " + quoted(unf.condition_name(c)) + " -> " +
             quoted(unf.event_name(consumer)) + ";\n";
    }
  }
  // Dotted links from cutoffs to their images.
  for (std::size_t i = 1; i < unf.event_count(); ++i) {
    const EventId e(static_cast<std::uint32_t>(i));
    if (unf.is_cutoff(e)) {
      out += "  " + quoted(unf.event_name(e)) + " -> " +
             quoted(unf.event_name(unf.cutoff_image(e))) +
             " [style=dotted, constraint=false];\n";
    }
  }
  out += "}\n";
  return out;
}

}  // namespace punt::unf
