// Graphviz (DOT) export of STG-unfolding segments.
//
// Events render as boxes (cutoffs dashed, with an arrow-free dotted edge to
// their image), conditions as circles; each event shows the binary code of
// its local configuration — the same annotations the paper draws in
// Fig. 2/3.
#pragma once

#include <string>

#include "src/unfolding/unfolding.hpp"

namespace punt::unf {

/// Renders the segment as a DOT digraph (pipe into `dot -Tsvg`).
std::string to_dot(const Unfolding& unf);

}  // namespace punt::unf
