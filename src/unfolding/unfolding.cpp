#include "src/unfolding/unfolding.hpp"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "src/util/error.hpp"

namespace punt::unf {

const stg::Label* Unfolding::label(EventId e) const {
  if (is_initial(e)) return nullptr;
  return &stg_->label(transitions_[e.index()]);
}

stg::Code Unfolding::excitation_code(EventId e) const {
  stg::Code out = codes_[e.index()];
  if (const stg::Label* l = label(e); l != nullptr && !l->dummy) {
    out[l->signal.index()] ^= 1;  // undo e's own edge
  }
  return out;
}

std::string Unfolding::event_name(EventId e) const {
  if (is_initial(e)) return "_|_";
  return stg_->transition_name(transitions_[e.index()]) + "@" + std::to_string(e.value);
}

std::string Unfolding::condition_name(ConditionId c) const {
  return stg_->net().place_name(places_[c.index()]) + "@" + std::to_string(c.value);
}

bool Unfolding::precedes(EventId e, EventId f) const {
  if (e == f) return true;
  const Bitset& config = configs_[f.index()];
  return e.index() < config.size() && config.test(e.index());
}

bool Unfolding::co(ConditionId a, ConditionId b) const {
  if (a == b) return false;
  const ConditionId lo = a < b ? a : b;
  const ConditionId hi = a < b ? b : a;
  return co_[hi.index()].test(lo.index());
}

bool Unfolding::co(ConditionId c, EventId e) const {
  const auto& pre = e_pre_[e.index()];
  if (pre.empty()) return false;  // only ⊥; nothing is concurrent with it
  for (const ConditionId x : pre) {
    if (!co(c, x)) return false;
  }
  return true;
}

bool Unfolding::co(EventId e, EventId f) const {
  if (e == f || precedes(e, f) || precedes(f, e)) return false;
  const auto& pe = e_pre_[e.index()];
  const auto& pf = e_pre_[f.index()];
  if (pe.empty() || pf.empty()) return false;  // ⊥ precedes everything
  for (const ConditionId x : pe) {
    for (const ConditionId y : pf) {
      if (x == y || !co(x, y)) return false;
    }
  }
  return true;
}

bool Unfolding::in_conflict(EventId e, EventId f) const {
  return e != f && !precedes(e, f) && !precedes(f, e) && !co(e, f);
}

std::vector<EventId> Unfolding::instances_of_signal(stg::SignalId signal) const {
  std::vector<EventId> out;
  for (std::size_t i = 1; i < event_count(); ++i) {
    const EventId e(static_cast<std::uint32_t>(i));
    const stg::Label* l = label(e);
    if (l != nullptr && !l->dummy && l->signal == signal) out.push_back(e);
  }
  return out;
}

std::vector<EventId> Unfolding::next_instances(EventId e) const {
  const stg::Label* mine = label(e);
  std::vector<EventId> candidates;
  if (mine == nullptr) return candidates;  // use first_instances for ⊥
  for (const EventId f : instances_of_signal(mine->signal)) {
    if (f != e && precedes(e, f)) candidates.push_back(f);
  }
  // Keep the causally minimal ones: no other candidate strictly in between.
  std::vector<EventId> out;
  for (const EventId f : candidates) {
    bool minimal = true;
    for (const EventId g : candidates) {
      if (g != f && precedes(g, f)) {
        minimal = false;
        break;
      }
    }
    if (minimal) out.push_back(f);
  }
  return out;
}

std::vector<EventId> Unfolding::first_instances(stg::SignalId signal) const {
  const std::vector<EventId> all = instances_of_signal(signal);
  std::vector<EventId> out;
  for (const EventId f : all) {
    bool minimal = true;
    for (const EventId g : all) {
      if (g != f && precedes(g, f)) {
        minimal = false;
        break;
      }
    }
    if (minimal) out.push_back(f);
  }
  return out;
}

Bitset Unfolding::cut_of_config(const Bitset& config_events) const {
  Bitset cut(condition_count());
  config_events.for_each([&](std::size_t ev) {
    for (const ConditionId c : e_post_[ev]) cut.set(c.index());
  });
  config_events.for_each([&](std::size_t ev) {
    for (const ConditionId c : e_pre_[ev]) cut.reset(c.index());
  });
  return cut;
}

pn::Marking Unfolding::marking_of_cut(const Bitset& cut) const {
  pn::Marking m(stg_->net().place_count());
  cut.for_each([&](std::size_t c) { m.add_token(places_[c]); });
  return m;
}

stg::Code Unfolding::code_of_config(const Bitset& config_events) const {
  std::vector<EventId> events;
  config_events.for_each([&](std::size_t ev) {
    if (ev != 0) events.push_back(EventId(static_cast<std::uint32_t>(ev)));
  });
  std::sort(events.begin(), events.end(), [this](EventId a, EventId b) {
    return config_sizes_[a.index()] < config_sizes_[b.index()];
  });
  stg::Code code = stg_->initial_code();
  for (const EventId e : events) stg_->apply(transitions_[e.index()], code);
  return code;
}

Bitset Unfolding::min_excitation_cut(EventId e) const {
  Bitset config = configs_[e.index()];
  config.reset(e.index());
  return cut_of_config(config);
}

std::string SegmentPersistencyViolation::describe(const Unfolding& unf) const {
  return "output instance " + unf.event_name(victim) +
         " can be disabled by firing " + unf.event_name(disabler);
}

std::vector<SegmentPersistencyViolation> segment_persistency_violations(
    const Unfolding& unf) {
  const stg::Stg& stg = unf.stg();
  std::vector<SegmentPersistencyViolation> out;
  for (std::size_t ci = 0; ci < unf.condition_count(); ++ci) {
    const ConditionId c(static_cast<std::uint32_t>(ci));
    const auto& consumers = unf.consumers(c);
    if (consumers.size() < 2) continue;
    for (const EventId e : consumers) {
      const stg::Label* le = unf.label(e);
      if (le == nullptr || le->dummy) continue;
      const stg::SignalKind kind = stg.signal_kind(le->signal);
      if (kind != stg::SignalKind::Output && kind != stg::SignalKind::Internal) continue;
      for (const EventId f : consumers) {
        if (f == e) continue;
        const stg::Label* lf = unf.label(f);
        if (lf != nullptr && !lf->dummy && lf->signal == le->signal) continue;
        // e and f are in direct conflict over c; a hazard exists iff some
        // reachable cut enables both, i.e. their presets are jointly
        // consistent (pairwise concurrent apart from the shared conditions).
        bool coenabled = true;
        for (const ConditionId x : unf.preset(e)) {
          for (const ConditionId y : unf.preset(f)) {
            if (x != y && !unf.co(x, y)) {
              coenabled = false;
              break;
            }
          }
          if (!coenabled) break;
        }
        if (coenabled) out.push_back(SegmentPersistencyViolation{e, f});
      }
    }
  }
  return out;
}

std::vector<pn::Marking> reachable_cut_markings(const Unfolding& unf, std::size_t budget) {
  // BFS over cuts, firing any event whose preset lies inside the cut.
  std::unordered_map<std::size_t, std::vector<Bitset>> seen_cuts;
  std::unordered_map<std::size_t, std::vector<pn::Marking>> seen_markings;
  std::vector<pn::Marking> out;
  std::deque<Bitset> queue;

  auto push_cut = [&](const Bitset& cut) {
    auto& bucket = seen_cuts[cut.hash()];
    for (const Bitset& b : bucket) {
      if (b == cut) return;
    }
    bucket.push_back(cut);
    queue.push_back(cut);
    pn::Marking m = unf.marking_of_cut(cut);
    auto& mbucket = seen_markings[m.hash()];
    for (const pn::Marking& e : mbucket) {
      if (e == m) return;
    }
    if (budget != 0 && out.size() >= budget) {
      throw CapacityError("cut enumeration exceeded the budget of " +
                          std::to_string(budget) + " distinct markings");
    }
    mbucket.push_back(m);
    out.push_back(std::move(m));
  };

  Bitset initial(unf.condition_count());
  for (const ConditionId c : unf.postset(Unfolding::initial_event())) {
    initial.set(c.index());
  }
  push_cut(initial);
  while (!queue.empty()) {
    const Bitset cut = queue.front();
    queue.pop_front();
    for (std::size_t ei = 1; ei < unf.event_count(); ++ei) {
      const EventId e(static_cast<std::uint32_t>(ei));
      bool enabled = true;
      for (const ConditionId c : unf.preset(e)) {
        if (!cut.test(c.index())) {
          enabled = false;
          break;
        }
      }
      if (!enabled) continue;
      Bitset next = cut;
      for (const ConditionId c : unf.preset(e)) next.reset(c.index());
      for (const ConditionId c : unf.postset(e)) next.set(c.index());
      push_cut(next);
    }
  }
  return out;
}

}  // namespace punt::unf
