// Binary (de)serialisation of the STG-unfolding segment.
//
// The unfolding is the expensive phase-1 artefact of the synthesis flow, and
// the on-disk model store (core/model_store.*) persists it so successive CLI
// invocations and CI shards skip re-unfolding.  The writer dumps the
// segment's dense vectors (per-event/per-condition data, local-configuration
// and concurrency bitsets) verbatim; the reader rebuilds an Unfolding that
// is indistinguishable from a freshly built one.
//
// The STG itself is NOT part of this payload: the store serialises it once
// (as canonical `.g` text) at the model level, and the reader receives the
// parsed copy — the segment's ids index into it unchanged.
//
// Corruption handling: the reader bounds-checks every id and cross-checks
// the vector sizes; a damaged payload throws ParseError / ValidationError
// (which the store converts into a rebuild), never yields a malformed
// segment.
#pragma once

#include <memory>

#include "src/unfolding/unfolding.hpp"
#include "src/util/binio.hpp"

namespace punt::unf {

/// Appends the segment's full state (events, conditions, relations, stats)
/// to `out`.
void write_unfolding(const Unfolding& unf, util::BinaryWriter& out);

/// Rebuilds a segment from write_unfolding() output.  `stg` is the STG the
/// segment was built from (ids must match — the model store guarantees this
/// by persisting the canonical `.g` text alongside).  Throws ParseError on a
/// truncated payload and ValidationError on out-of-range ids or
/// inconsistent sizes.
Unfolding read_unfolding(util::BinaryReader& in, std::shared_ptr<const stg::Stg> stg);

}  // namespace punt::unf
