#include "src/server/client.hpp"

#include <errno.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <csignal>
#include <cstring>

#include "src/util/error.hpp"

namespace punt::server {

Client::Client(const std::string& socket_path) {
  // A daemon dying mid-exchange must surface as the Error below (or an
  // EPIPE throw from write_frame), not kill the client with SIGPIPE.
  std::signal(SIGPIPE, SIG_IGN);
  sockaddr_un address = unix_address(socket_path);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    throw Error("cannot create socket: " + std::string(std::strerror(errno)));
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&address), sizeof address) != 0) {
    const std::string why(std::strerror(errno));
    ::close(fd_);
    fd_ = -1;
    throw Error("cannot connect to '" + socket_path + "': " + why +
                " (is `punt serve --socket=" + socket_path + "` running?)");
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Response Client::request(const Request& request) {
  write_frame(fd_, to_json(request));
  if (read_frame(fd_, payload_) == FrameStatus::Eof) {
    throw Error("the server closed the connection without answering");
  }
  Response response = response_from_json(payload_);
  if (!response.ok) {
    throw Error("the server refused the request: " + response.error);
  }
  return response;
}

Response request_once(const std::string& socket_path, const Request& request) {
  Client client(socket_path);
  return client.request(request);
}

}  // namespace punt::server
