#include "src/server/client.hpp"

#include <unistd.h>

#include <csignal>

#include "src/util/error.hpp"

namespace punt::server {

Client::Client(const Endpoint& endpoint, const std::string& token) {
  // A daemon dying mid-exchange must surface as an Error throw (connect
  // refused, EPIPE from write_frame), not kill the client with SIGPIPE.
  std::signal(SIGPIPE, SIG_IGN);
  fd_ = connect_endpoint(endpoint);
  if (endpoint.transport == Transport::Tcp) {
    try {
      client_handshake(fd_, token);
    } catch (...) {
      ::close(fd_);
      fd_ = -1;
      throw;
    }
  }
}

Client::Client(const std::string& socket_path)
    : Client(unix_endpoint(socket_path)) {}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Response Client::request(const Request& request) {
  write_frame(fd_, to_json(request));
  if (read_frame(fd_, payload_) == FrameStatus::Eof) {
    throw Error("the server closed the connection without answering");
  }
  Response response = response_from_json(payload_);
  if (!response.ok) {
    throw Error("the server refused the request: " + response.error);
  }
  return response;
}

Response request_once(const Endpoint& endpoint, const std::string& token,
                      const Request& request) {
  Client client(endpoint, token);
  return client.request(request);
}

Response request_once(const std::string& socket_path, const Request& request) {
  return request_once(unix_endpoint(socket_path), {}, request);
}

}  // namespace punt::server
