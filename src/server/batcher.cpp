#include "src/server/batcher.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <future>
#include <span>
#include <utility>

#include "src/core/model_cache.hpp"
#include "src/core/pipeline.hpp"
#include "src/util/strings.hpp"

namespace punt::server {

using punt::printf_string;

/// One admitted request: the prepared job plus the channel its connection
/// handler blocks on.  Heap-allocated (unique_ptr in the queue) so the
/// promise never moves while a handler holds its future.
struct Batcher::Item {
  SynthJob job;
  std::uint64_t connection = 0;
  std::promise<Response> promise;
};

Batcher::Batcher(BatcherOptions options, core::ModelCache* cache,
                 core::Executor* executor, core::CostLedger* ledger)
    : options_(options), cache_(cache), executor_(executor), ledger_(ledger) {
  dispatcher_ = std::thread([this] { dispatch_loop(); });
}

Batcher::~Batcher() { drain(); }

Response Batcher::submit(SynthJob job, std::uint64_t connection) {
  if (!job.ok) return job.failure;  // parse failure: answered, never admitted
  std::future<Response> future;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_) {
      Response refusal;
      refusal.error = "the server is shutting down";
      return refusal;
    }
    if (queue_.size() >= options_.max_queue) {
      ++stats_.shed_queue_full;
      Response refusal;
      refusal.error = printf_string(
          "overloaded: the admission queue is full (%zu item(s) queued); "
          "retry later, or serve with a larger --max-queue",
          queue_.size());
      return refusal;
    }
    std::size_t& in_flight = in_flight_[connection];
    if (in_flight >= options_.max_per_connection) {
      ++stats_.shed_connection_cap;
      Response refusal;
      refusal.error = printf_string(
          "overloaded: this connection already has %zu request(s) in flight",
          in_flight);
      return refusal;
    }
    ++in_flight;
    ++stats_.admitted;
    auto item = std::make_unique<Item>();
    item->job = std::move(job);
    item->connection = connection;
    future = item->promise.get_future();
    queue_.push_back(std::move(item));
    stats_.queue_high_water = std::max(stats_.queue_high_water, queue_.size());
  }
  wake_.notify_all();
  return future.get();
}

void Batcher::begin_drain() {
  std::lock_guard<std::mutex> lock(mutex_);
  draining_ = true;
  wake_.notify_all();
}

void Batcher::drain() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    draining_ = true;
    stopped_ = true;
    wake_.notify_all();
  }
  if (dispatcher_.joinable()) dispatcher_.join();
  // Defensive: the dispatcher only exits on an empty queue, so nothing
  // should remain — but a promise must never die unfulfilled, so answer any
  // straggler rather than hang its handler.
  std::deque<std::unique_ptr<Item>> leftovers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    leftovers.swap(queue_);
  }
  for (auto& item : leftovers) {
    Response refusal;
    refusal.error = "the server is shutting down";
    item->promise.set_value(std::move(refusal));
  }
}

BatcherStats Batcher::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t Batcher::queued() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void Batcher::dispatch_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    wake_.wait(lock, [this] { return stopped_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stopped_) return;
      continue;
    }
    if (options_.window_seconds > 0 && !draining_ && !stopped_) {
      // Accumulate: the window runs from the batch's first item.  Every
      // submit notifies, so keep waiting until the deadline passes (or a
      // drain begins) — arrivals during an *executing* batch pile up for
      // the next one without any window at all.
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(options_.window_seconds));
      while (!draining_ && !stopped_ &&
             wake_.wait_until(lock, deadline) != std::cv_status::timeout) {
      }
    }
    std::vector<std::unique_ptr<Item>> batch;
    batch.reserve(queue_.size());
    while (!queue_.empty()) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    // Record the batch before executing it, so a client whose response just
    // arrived already sees it in the counters (tests rely on that order).
    ++stats_.batches;
    stats_.fused_requests += batch.size();
    stats_.max_batch = std::max(stats_.max_batch, batch.size());
    ++stats_.batch_size_histogram[std::min(
        batch.size(), BatcherStats::kHistogramBuckets) - 1];
    lock.unlock();
    run_batch(batch);
    lock.lock();
    for (const auto& item : batch) {
      const auto it = in_flight_.find(item->connection);
      if (it != in_flight_.end() && --it->second == 0) in_flight_.erase(it);
    }
  }
}

void Batcher::run_batch(std::vector<std::unique_ptr<Item>>& batch) {
  std::vector<core::BatchRequest> requests;
  requests.reserve(batch.size());
  for (const auto& item : batch) {
    requests.push_back(core::BatchRequest{&item->job.stg, item->job.options});
  }
  const core::ModelCacheStats before =
      cache_ != nullptr ? cache_->stats() : core::ModelCacheStats{};
  core::BatchOptions options;
  options.jobs = 1;  // executor (when given) supersedes this
  options.cache = cache_;
  options.executor = executor_;
  options.ledger = ledger_;  // learned-cost dispatch + online cost fold
  core::BatchResult result;
  std::string batch_error;
  try {
    result = core::synthesize_batch(std::span<const core::BatchRequest>(requests),
                                    options);
  } catch (const std::exception& e) {
    // synthesize_batch captures per-entry failures itself; only an
    // infrastructure fault lands here.  Refuse (protocol-level) rather than
    // fabricate synthesis output.
    batch_error = e.what();
  }
  std::string summary;
  if (cache_ != nullptr && batch_error.empty()) {
    summary = core::summarize(core::delta_stats(before, cache_->stats()));
  }
  for (std::size_t i = 0; i < batch.size(); ++i) {
    Response response;
    if (!batch_error.empty()) {
      response.error = "serve: batch execution failed: " + batch_error;
    } else {
      response = render_synth(batch[i]->job, result.entries[i]);
      // One delta for the whole fused batch: every member reports the union
      // graph's cache traffic.  A batch of one degenerates to exactly the
      // old inline per-request summary.
      response.log += summary;
    }
    batch[i]->promise.set_value(std::move(response));
  }
}

}  // namespace punt::server
