#include "src/server/server.hpp"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <sys/file.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstring>
#include <utility>

#include "src/core/model_store.hpp"
#include "src/server/protocol.hpp"
#include "src/server/service.hpp"
#include "src/util/error.hpp"

namespace punt::server {
namespace {

/// How often the accept loop re-checks the stop flag.  Short enough that
/// SIGTERM feels immediate, long enough that an idle daemon costs nothing.
constexpr int kPollMillis = 100;

/// Per-write() send timeout on every connection.  A client that stops
/// reading (suspended mid-response with a full socket buffer) would
/// otherwise park its handler in write_exact forever — and the shutdown
/// drain joins handlers without a timeout, so one stuck reader could pin
/// the daemon past any number of SIGTERMs.  The clock resets on every
/// successful write, so a merely *slow* reader making progress is fine.
constexpr time_t kSendTimeoutSeconds = 30;

std::string errno_text() { return std::string(std::strerror(errno)); }

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      cache_(std::make_shared<core::ModelCache>(
          options_.cache_capacity == 0 ? core::ModelCache::kDefaultCapacity
                                       : options_.cache_capacity,
          options_.model_cache_dir.empty()
              ? nullptr
              : std::make_shared<core::ModelStore>(options_.model_cache_dir))),
      executor_(options_.jobs) {}

Server::~Server() {
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(options_.socket_path.c_str());
  }
  reap_connections(true);
  release_ownership();
}

void Server::start() {
  // A client vanishing mid-response must surface as an EPIPE write error on
  // that one connection, not kill the whole daemon.
  std::signal(SIGPIPE, SIG_IGN);

  // Path ownership is an flock on <socket>.lock, not a connect probe: a
  // probe-then-unlink has a window in which two concurrently starting
  // daemons both see a dead socket and one unlinks the other's fresh bind.
  // The lock dies with its holder, so a crashed server's path is reclaimed
  // without any staleness heuristic, and the lock file itself is never
  // unlinked (removing it would hand a second daemon a different inode to
  // lock, reopening the race).
  sockaddr_un address = unix_address(options_.socket_path);
  const std::string lock_path = options_.socket_path + ".lock";
  lock_fd_ = ::open(lock_path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
  if (lock_fd_ < 0) {
    throw Error("serve: cannot open lock file '" + lock_path + "': " + errno_text());
  }
  if (::flock(lock_fd_, LOCK_EX | LOCK_NB) != 0) {
    ::close(lock_fd_);
    lock_fd_ = -1;
    throw Error("serve: a server is already listening on '" + options_.socket_path +
                "' (shut it down first, or pick another --socket path)");
  }

  // Holding the lock, any file at the socket path is ours to replace: a
  // previous owner either exited (unlinking it) or crashed (leaving it
  // stale).
  ::unlink(options_.socket_path.c_str());
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    const std::string why = errno_text();
    release_ownership();
    throw Error("serve: cannot create socket: " + why);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&address), sizeof address) != 0) {
    const std::string why = errno_text();
    ::close(listen_fd_);
    listen_fd_ = -1;
    release_ownership();
    throw Error("serve: cannot bind '" + options_.socket_path + "': " + why);
  }
  if (::listen(listen_fd_, 64) != 0) {
    const std::string why = errno_text();
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(options_.socket_path.c_str());
    release_ownership();
    throw Error("serve: cannot listen on '" + options_.socket_path + "': " + why);
  }
}

void Server::release_ownership() {
  if (lock_fd_ >= 0) {
    ::close(lock_fd_);  // closing drops the flock
    lock_fd_ = -1;
  }
}

void Server::serve() {
  if (listen_fd_ < 0) throw Error("serve: start() the server before serve()");
  while (!stop_.load(std::memory_order_relaxed)) {
    reap_connections(false);
    pollfd poll_fd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&poll_fd, 1, kPollMillis);
    if (ready < 0) {
      if (errno == EINTR) continue;  // a signal; the loop re-checks stop_
      throw Error("serve: poll failed: " + errno_text());
    }
    if (ready == 0) continue;  // timeout: just re-check the stop flag
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS || errno == ENOMEM) {
        // Transient resource pressure — often fd exhaustion from the
        // daemon's own concurrent connections.  Dying here would throw
        // away the warm cache exactly when load is highest; back off one
        // poll interval and let finishing connections free the resources.
        std::this_thread::sleep_for(std::chrono::milliseconds(kPollMillis));
        continue;
      }
      throw Error("serve: accept failed: " + errno_text());
    }
    const timeval send_timeout{kSendTimeoutSeconds, 0};
    (void)::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &send_timeout, sizeof send_timeout);
    auto done = std::make_shared<std::atomic<bool>>(false);
    std::thread thread([this, fd, done] {
      handle_connection(fd);
      done->store(true, std::memory_order_release);
    });
    std::lock_guard<std::mutex> lock(connections_mutex_);
    connections_.push_back(Connection{std::move(thread), std::move(done), fd});
  }
  // Drain: no new connections; every accepted request runs to completion
  // (its graph finishes on the resident pool) before the socket goes away.
  ::close(listen_fd_);
  listen_fd_ = -1;
  reap_connections(true);
  ::unlink(options_.socket_path.c_str());
  release_ownership();
}

void Server::reap_connections(bool all) {
  std::vector<Connection> finished;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (auto it = connections_.begin(); it != connections_.end();) {
      if (all || it->done->load(std::memory_order_acquire)) {
        if (all) {
          // Half-close the read side: a handler parked in read_frame
          // between requests wakes with EOF and winds down, while one mid-
          // request keeps its write side to deliver the response.  The fd
          // stays valid (owned here, closed after the join below), so this
          // cannot race a close-and-reuse.
          ::shutdown(it->fd, SHUT_RD);
        }
        finished.push_back(std::move(*it));
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
  }
  // Join outside the lock: a drain join can wait on a whole synthesis run,
  // and new connections must not block on it (they only do during `all`,
  // when accepting already stopped).
  for (Connection& connection : finished) {
    connection.thread.join();
    ::close(connection.fd);
  }
}

void Server::handle_connection(int fd) {
  active_connections_.fetch_add(1, std::memory_order_relaxed);
  std::string payload;
  while (true) {
    // Frame or protocol errors answer best-effort and close the connection
    // (the stream cannot be trusted past a framing fault); request-level
    // failures are ordinary ok-responses carrying the CLI's exit code.
    try {
      if (read_frame(fd, payload) == FrameStatus::Eof) break;
    } catch (const std::exception& e) {
      Response refusal;
      refusal.error = e.what();
      try {
        write_frame(fd, to_json(refusal));
      } catch (...) {
        // The peer is gone; nothing left to tell it.
      }
      break;
    }
    Response response;
    bool shutdown = false;
    try {
      const Request request = request_from_json(payload);
      switch (request.op) {
        case Op::Synth:
          response = run_synth(request, cache_.get(), &executor_);
          break;
        case Op::Check:
          response = run_check(request, *cache_, &executor_);
          break;
        case Op::CacheStats:
          response.ok = true;
          response.output = cache_stats_json(cache_->stats(), requests_served(),
                                             executor_.jobs(), options_.model_cache_dir);
          break;
        case Op::Ping:
          response.ok = true;
          response.output = "pong\n";
          break;
        case Op::Shutdown:
          response.ok = true;
          shutdown = true;
          break;
      }
    } catch (const std::exception& e) {
      response = Response{};
      response.error = e.what();
    }
    try {
      write_frame(fd, to_json(response));
    } catch (...) {
      break;  // the peer is gone; drop the connection, keep the server
    }
    requests_served_.fetch_add(1, std::memory_order_relaxed);
    if (shutdown) {
      // Acknowledge first (the frame above), then stop: the accept loop
      // drains every other in-flight connection before the socket is
      // unlinked, so a shutdown never truncates a neighbour's synthesis.
      request_stop();
      break;
    }
    if (!response.ok) break;  // framing/JSON fault: resync is impossible
  }
  // The fd is closed by the reaper after this thread is joined — closing it
  // here would race the drain's ::shutdown() against kernel fd reuse.
  active_connections_.fetch_sub(1, std::memory_order_relaxed);
}

}  // namespace punt::server
