#include "src/server/server.hpp"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstring>
#include <utility>

#include "src/core/model_store.hpp"
#include "src/server/protocol.hpp"
#include "src/server/service.hpp"
#include "src/util/error.hpp"

namespace punt::server {
namespace {

/// Backoff when accept() hits transient resource exhaustion; the loop
/// otherwise blocks in poll() with no timeout at all.
constexpr int kAcceptBackoffMillis = 100;

std::string errno_text() { return std::string(std::strerror(errno)); }

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      cache_(std::make_shared<core::ModelCache>(
          options_.cache_capacity == 0 ? core::ModelCache::kDefaultCapacity
                                       : options_.cache_capacity,
          options_.model_cache_dir.empty()
              ? nullptr
              : std::make_shared<core::ModelStore>(options_.model_cache_dir))),
      executor_(options_.jobs),
      listener_(make_listener(options_.endpoint)) {
  // Seed the resident cost table from the ledger published beside the model
  // cache (best-effort: a missing or corrupt file just starts it cold); it
  // then self-tunes online as requests are served.
  if (!options_.model_cache_dir.empty()) {
    ledger_.load(core::CostLedger::path_in(options_.model_cache_dir));
  }
  if (options_.batch_window_ms > 0) {
    BatcherOptions batcher;
    batcher.window_seconds = options_.batch_window_ms / 1000.0;
    batcher.max_queue = options_.max_queue;
    batcher.max_per_connection = options_.max_inflight_per_connection;
    batcher_ = std::make_unique<Batcher>(batcher, cache_.get(), &executor_, &ledger_);
  }
  // Self-pipe for the accept loop: non-blocking (a full pipe must not block
  // a finishing handler — one unread byte is wake enough) and CLOEXEC.
  if (::pipe2(wake_fds_, O_NONBLOCK | O_CLOEXEC) != 0) {
    throw Error("serve: cannot create wake pipe: " + errno_text());
  }
}

Server::~Server() {
  listener_->close_fd();
  if (batcher_ != nullptr) batcher_->begin_drain();
  reap_connections(true);
  if (batcher_ != nullptr) batcher_->drain();
  for (int& fd : wake_fds_) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
  listener_->cleanup();
}

void Server::request_stop() {
  stop_.store(true, std::memory_order_relaxed);
  wake_accept_loop();
}

void Server::wake_accept_loop() {
  // Async-signal-safe (write on an int fd) and non-blocking: if the pipe is
  // already full the loop has unread wakes pending, which is just as good.
  if (wake_fds_[1] >= 0) {
    const char byte = 0;
    [[maybe_unused]] const ssize_t n = ::write(wake_fds_[1], &byte, 1);
  }
}

void Server::start() {
  // A client vanishing mid-response must surface as an EPIPE write error on
  // that one connection, not kill the whole daemon.
  std::signal(SIGPIPE, SIG_IGN);

  // An unauthenticated network listener is never acceptable; refusing here
  // (not per-connection) means a misconfigured daemon fails loudly at
  // startup instead of serving the world.
  if (options_.endpoint.transport == Transport::Tcp && options_.token.empty()) {
    throw Error("serve: a TCP listener requires --token-file (the daemon "
                "refuses to serve the network unauthenticated)");
  }
  // Ownership arbitration lives in the listener: flock-on-<path>.lock for
  // Unix, bind-succeeds-or-refuse for TCP (see endpoint.cpp).
  listener_->open();
}

void Server::serve() {
  if (listener_->fd() < 0) throw Error("serve: start() the server before serve()");
  while (!stop_.load(std::memory_order_relaxed)) {
    reap_connections(false);
    // Block until a connection arrives or the self-pipe is written (by
    // request_stop(), or by a handler finishing so it gets reaped).  No
    // timeout: an idle daemon makes no wakeups at all, where the old loop
    // re-polled a stop flag 10x a second.
    pollfd poll_fds[2] = {{listener_->fd(), POLLIN, 0}, {wake_fds_[0], POLLIN, 0}};
    const int ready = ::poll(poll_fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;  // a signal; the loop re-checks stop_
      throw Error("serve: poll failed: " + errno_text());
    }
    if (poll_fds[1].revents != 0) {
      // Drain every pending wake byte; the work (reap / stop check) happens
      // at the top of the loop.
      char buffer[64];
      while (::read(wake_fds_[0], buffer, sizeof buffer) > 0) {
      }
    }
    if ((poll_fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept4(listener_->fd(), nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN ||
          errno == EWOULDBLOCK) {
        continue;
      }
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS || errno == ENOMEM) {
        // Transient resource pressure — often fd exhaustion from the
        // daemon's own concurrent connections.  Dying here would throw
        // away the warm cache exactly when load is highest; back off a
        // beat and let finishing connections free the resources.
        std::this_thread::sleep_for(std::chrono::milliseconds(kAcceptBackoffMillis));
        continue;
      }
      throw Error("serve: accept failed: " + errno_text());
    }
    listener_->configure_connection(fd);
    const timeval send_timeout{options_.send_timeout_seconds, 0};
    (void)::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &send_timeout, sizeof send_timeout);
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    const bool authenticate = listener_->needs_handshake();
    auto done = std::make_shared<std::atomic<bool>>(false);
    std::thread thread([this, fd, authenticate, done] {
      handle_connection(fd, authenticate);
      done->store(true, std::memory_order_release);
      // Wake the accept loop so the finished thread is reaped promptly —
      // with an infinite poll timeout nobody else would notice.
      wake_accept_loop();
    });
    std::lock_guard<std::mutex> lock(connections_mutex_);
    connections_.push_back(Connection{std::move(thread), std::move(done), fd});
  }
  // Drain: no new connections; every accepted request runs to completion
  // (its graph finishes on the resident pool) before the socket goes away.
  // The Batcher flushes first (queued items dispatch without waiting out
  // the window) but keeps admitting and serving while the handlers that
  // feed it are joined; only then is it fully drained.
  listener_->close_fd();
  if (batcher_ != nullptr) batcher_->begin_drain();
  reap_connections(true);
  if (batcher_ != nullptr) batcher_->drain();
  // Republish whatever the daemon learned about node costs while it served
  // (atomic rename; racing daemons sharing the dir last-writer-win) so the
  // next process — daemon or direct CLI — starts with a warm cost model.
  if (!options_.model_cache_dir.empty()) {
    ledger_.save(core::CostLedger::path_in(options_.model_cache_dir));
  }
  listener_->cleanup();
}

void Server::reap_connections(bool all) {
  std::vector<Connection> finished;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (auto it = connections_.begin(); it != connections_.end();) {
      if (all || it->done->load(std::memory_order_acquire)) {
        if (all) {
          // Half-close the read side: a handler parked in read_frame
          // between requests wakes with EOF and winds down, while one mid-
          // request keeps its write side to deliver the response.  The fd
          // stays valid (owned here, closed after the join below), so this
          // cannot race a close-and-reuse.
          ::shutdown(it->fd, SHUT_RD);
        }
        finished.push_back(std::move(*it));
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
  }
  // Join outside the lock: a drain join can wait on a whole synthesis run,
  // and new connections must not block on it (they only do during `all`,
  // when accepting already stopped).
  for (Connection& connection : finished) {
    connection.thread.join();
    ::close(connection.fd);
  }
}

void Server::handle_connection(int fd, bool authenticate) {
  active_connections_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t connection =
      next_connection_id_.fetch_add(1, std::memory_order_relaxed);
  if (authenticate) {
    // Handshake first, under its own (tighter) deadline: an off-host
    // connection has proven nothing yet and gets no unbounded patience.
    try {
      set_receive_timeout(fd, options_.handshake_timeout_seconds);
    } catch (...) {
      // Deadline arming failed (fd already dead); the handshake read below
      // will surface it.
    }
    std::string why;
    if (!server_handshake(fd, options_.token, why)) {
      auth_failures_.fetch_add(1, std::memory_order_relaxed);
      active_connections_.fetch_sub(1, std::memory_order_relaxed);
      return;  // the fd is closed by the reaper, like any other exit path
    }
    try {
      set_receive_timeout(fd, options_.idle_timeout_seconds);
    } catch (...) {
    }
  }
  // One read buffer for the connection's whole lifetime: read_frame resizes
  // it per frame, so steady traffic stops allocating once the buffer has
  // seen its largest request.
  std::string payload;
  while (true) {
    // Frame or protocol errors answer best-effort and close the connection
    // (the stream cannot be trusted past a framing fault); request-level
    // failures are ordinary ok-responses carrying the CLI's exit code.
    try {
      const FrameStatus status = read_frame(fd, payload);
      if (status == FrameStatus::Eof) break;
      if (status == FrameStatus::IdleTimeout) {
        // The idle deadline expired at a frame boundary: the peer is merely
        // quiet, so tell it why before closing (best-effort).
        idle_timeouts_.fetch_add(1, std::memory_order_relaxed);
        Response timed_out;
        timed_out.error = "idle timeout: no request within " +
                          std::to_string(options_.idle_timeout_seconds) +
                          " second(s); reconnect to continue";
        try {
          write_frame(fd, to_json(timed_out));
        } catch (...) {
        }
        break;
      }
    } catch (const std::exception& e) {
      Response refusal;
      refusal.error = e.what();
      try {
        write_frame(fd, to_json(refusal));
      } catch (...) {
        // The peer is gone; nothing left to tell it.
      }
      break;
    }
    Response response;
    bool shutdown = false;
    try {
      Request request = request_from_json(payload);
      switch (request.op) {
        case Op::Synth:
          if (batcher_ != nullptr) {
            // Fused path: block here (the handler thread is the natural
            // per-request wait context) while the dispatcher folds this
            // request into a union batch with whatever else the window
            // catches.  Shed work comes back ok=false and the `!ok` exit
            // below closes the connection, per the protocol contract.
            response = batcher_->submit(prepare_synth(std::move(request)), connection);
          } else {
            response = run_synth(request, cache_.get(), &executor_, &ledger_);
          }
          break;
        case Op::Check:
          // Deliberately inline, not fused: the check's stdout embeds its
          // own request-scoped cache delta ("built N time(s)"), which a
          // shared batch delta would corrupt.
          response = run_check(request, *cache_, &executor_, /*summarize_cache=*/true,
                               &ledger_);
          break;
        case Op::Lint:
          // Inline like check (the request carries a whole client batch
          // already — its files fan out on the resident executor inside the
          // handler, and the appended cache delta is request-scoped).
          response = run_lint(request, *cache_, &executor_, &ledger_);
          break;
        case Op::CacheStats: {
          response.ok = true;
          const BatcherStats fused = batcher_stats();
          ServeInfo info;
          info.requests_served = requests_served();
          info.jobs = executor_.jobs();
          info.model_cache_dir = options_.model_cache_dir;
          info.transport =
              options_.endpoint.transport == Transport::Tcp ? "tcp" : "unix";
          info.listen = listener_->local_endpoint().describe();
          info.connections = connections_accepted();
          info.auth_failures = auth_failures();
          info.idle_timeouts = idle_timeouts();
          info.batch_window_ms = options_.batch_window_ms;
          response.output = cache_stats_json(cache_->stats(), info,
                                             batcher_ != nullptr ? &fused : nullptr);
          break;
        }
        case Op::Ping:
          response.ok = true;
          response.output = "pong\n";
          break;
        case Op::Shutdown:
          response.ok = true;
          shutdown = true;
          break;
      }
    } catch (const std::exception& e) {
      response = Response{};
      response.error = e.what();
    }
    try {
      write_frame(fd, to_json(response));
    } catch (...) {
      break;  // the peer is gone; drop the connection, keep the server
    }
    requests_served_.fetch_add(1, std::memory_order_relaxed);
    if (shutdown) {
      // Acknowledge first (the frame above), then stop: the accept loop
      // drains every other in-flight connection before the socket is
      // unlinked, so a shutdown never truncates a neighbour's synthesis.
      request_stop();
      break;
    }
    if (!response.ok) break;  // framing/JSON fault: resync is impossible
  }
  // The fd is closed by the reaper after this thread is joined — closing it
  // here would race the drain's ::shutdown() against kernel fd reuse.
  active_connections_.fetch_sub(1, std::memory_order_relaxed);
}

}  // namespace punt::server
