// Micro-batched request fusion for `punt serve` (DESIGN.md §9).
//
// Without fusion the daemon runs every synth request as a one-entry batch:
// N clients arriving together get N separate task graphs whose nodes merely
// interleave on the shared pool, so none of the union-graph scheduling that
// makes `punt bench run` fast (distinct-keys-first model builds, in-batch
// dedup, cross-entry critical-path shortening) ever applies to served
// traffic.  The Batcher closes that gap: connection handlers stop executing
// synthesis inline and instead submit() a prepared job onto a bounded
// admission queue, blocking on a per-item response channel; one dispatcher
// thread drains whatever accumulated within the batching window and runs it
// as ONE core::synthesize_batch union graph over the resident cache and
// executor, then routes each rendered response back to its waiting handler.
//
// Admission control instead of unbounded buffering: a queue-depth bound and
// a per-connection in-flight cap, each refusing excess work with an explicit
// ok=false "overloaded: ..." response (which, per the protocol contract,
// also closes that connection).  Graceful drain still completes every
// admitted item: begin_drain() makes the dispatcher skip the accumulation
// window so queued work flushes immediately, and drain() joins it only after
// the queue is empty.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/server/protocol.hpp"
#include "src/server/service.hpp"

namespace punt::core {
class CostLedger;
class Executor;
class ModelCache;
}  // namespace punt::core

namespace punt::server {

struct BatcherOptions {
  /// Accumulation window measured from the first item of a forming batch.
  /// 0 = dispatch as soon as the dispatcher wakes (still fuses whatever
  /// already queued while a previous batch executed).
  double window_seconds = 0.002;
  /// Admission bound: submit() sheds when this many items are queued.
  std::size_t max_queue = 256;
  /// Per-connection in-flight cap.  The stock client is strictly
  /// request/response so it never holds more than one; a cap > 1 leaves
  /// room for future pipelining clients without letting one connection
  /// monopolise the queue.
  std::size_t max_per_connection = 8;
};

/// Monotonic fusion counters, self-consistent under one snapshot (copied out
/// under the Batcher's lock).  Exposed through `punt cache stats --connect`
/// so operators can see whether fusion is happening at all.
struct BatcherStats {
  /// batch_size_histogram[i] counts batches that fused i+1 requests; the
  /// last bucket also collects anything larger.
  static constexpr std::size_t kHistogramBuckets = 16;

  std::size_t admitted = 0;             // items accepted onto the queue
  std::size_t shed_queue_full = 0;      // refusals: queue depth bound
  std::size_t shed_connection_cap = 0;  // refusals: per-connection cap
  std::size_t batches = 0;              // union graphs dispatched
  std::size_t fused_requests = 0;       // items across all batches
  std::size_t max_batch = 0;            // largest batch so far
  std::size_t queue_high_water = 0;     // deepest the queue has been
  std::vector<std::size_t> batch_size_histogram =
      std::vector<std::size_t>(kHistogramBuckets, 0);

  double mean_batch() const {
    return batches == 0 ? 0.0
                        : static_cast<double>(fused_requests) /
                              static_cast<double>(batches);
  }
  std::size_t shed() const { return shed_queue_full + shed_connection_cap; }
};

class Batcher {
 public:
  /// `cache`, `ledger` (both nullable) and `executor` are the daemon's
  /// residents; not owned, must outlive the Batcher.  Every fused batch
  /// dispatches by the ledger's learned costs and folds its measured costs
  /// back in, so the resident daemon self-tunes across requests.  Starts
  /// the dispatcher thread.
  Batcher(BatcherOptions options, core::ModelCache* cache,
          core::Executor* executor, core::CostLedger* ledger = nullptr);
  ~Batcher();  // drain()s

  Batcher(const Batcher&) = delete;
  Batcher& operator=(const Batcher&) = delete;

  /// Enqueues one prepared job and BLOCKS the calling connection handler
  /// until its response is ready — the handler thread is the natural
  /// per-request wait context, exactly as when it executed inline.  Returns
  /// immediately (without admission) for jobs whose prepare failed, for
  /// shed work (ok=false, error starting "overloaded: ...") and after
  /// drain() (ok=false shutdown refusal).  `connection` scopes the
  /// in-flight cap; handlers pass their connection id.
  Response submit(SynthJob job, std::uint64_t connection);

  /// Flush mode for the shutdown drain: the dispatcher stops honouring the
  /// accumulation window so admitted work completes as fast as it can.
  /// submit() still admits — handlers are joined after this, and their
  /// in-flight requests must finish normally.
  void begin_drain();

  /// Completes every queued item, then stops and joins the dispatcher.
  /// Call only once no submitter can still be running (the server joins its
  /// connection handlers first); submit() after drain() is refused, not
  /// queued.  Idempotent.
  void drain();

  BatcherStats stats() const;
  /// Items currently queued (excludes a batch already handed to the
  /// dispatcher).  Tests use this to sequence admissions deterministically.
  std::size_t queued() const;

 private:
  struct Item;

  void dispatch_loop();
  void run_batch(std::vector<std::unique_ptr<Item>>& batch);

  BatcherOptions options_;
  core::ModelCache* cache_ = nullptr;
  core::Executor* executor_ = nullptr;
  core::CostLedger* ledger_ = nullptr;

  mutable std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<std::unique_ptr<Item>> queue_;
  std::unordered_map<std::uint64_t, std::size_t> in_flight_;  // per connection
  BatcherStats stats_;
  bool draining_ = false;
  bool stopped_ = false;
  std::thread dispatcher_;
};

}  // namespace punt::server
