// The `punt serve` wire protocol (DESIGN.md §9).
//
// Transport: a stream socket — Unix domain or TCP (server/endpoint.hpp);
// the framing is transport-agnostic.  Every message — request or
// response — is one *frame*:
//
//   u32 length (little-endian)   byte count of the JSON body that follows
//   length bytes of UTF-8 JSON   one complete JSON object
//
// The length prefix makes message boundaries explicit (JSON itself is not
// self-delimiting over a stream) and lets the server reject an oversized
// request before reading it: a frame longer than kMaxFrameBytes is refused
// with an error response and the connection is closed — the declared bytes
// are never buffered, so a hostile length cannot balloon server memory.
//
// Requests ({"op": ...}):
//   {"op":"synth","g":<.g text>,
//    "method":"approx"|"exact"|"sg", "arch":"acg"|"c"|"rs",
//    "minimize":bool, "eqn":bool, "verilog":bool}   (all but "g" optional)
//   {"op":"check","g":<.g text>}
//   {"op":"lint","files":[{"name":<label>,"g":<.g text>},...],
//    "deep":bool, "json":bool, "werror":bool,
//    "werror_rules":["STG006",...]}      (all but "files" optional)
//   {"op":"cache-stats"}     resident two-tier cache counters, as JSON
//   {"op":"ping"}            liveness probe
//   {"op":"shutdown"}        acknowledge, then drain and exit
//
// Responses:
//   {"ok":true, "exit":N, "output":<stdout text>, "log":<stderr text>}
//   {"ok":false, "error":<protocol-level diagnostic>}
//
// "ok" is a *protocol* verdict: a synthesis failure (CSC conflict, bad .g
// text) is a successful response with a nonzero "exit" and the diagnostic
// in "log" — exactly the exit code and stderr a direct `punt` invocation
// produces.  "ok":false means the request was not served — malformed frame
// or JSON, unknown op, or the daemon shed it under load ("error" starting
// "overloaded: ...", see server/batcher.hpp) — and the connection will be
// closed; a shed client reconnects to retry.
//
// TCP connections additionally start with a mandatory authentication
// handshake *before* any request frame (Unix connections skip it — the
// socket file's permissions already arbitrate access):
//
//   frame 0  server → client   {"auth":"hmac-sha256","nonce":<64 hex>}
//   frame 1  client → server   {"mac":<64 hex>}       HMAC-SHA256(token, nonce)
//   frame 2  server → client   ordinary Response      ok=true admits the
//                              connection; ok=false ("unauthorized: ...")
//                              refuses it and the server closes
//
// The nonce is fresh per connection (32 CSPRNG bytes), so a captured MAC
// cannot be replayed, and the token itself never crosses the wire.  The
// explicit ack frame makes refusals deterministic for the client — without
// it a refusal could race the server's close and be discarded with the
// connection reset.
#pragma once

#include <sys/un.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace punt::server {

/// The AF_UNIX address for `path`.  Throws Error on an empty path or one
/// exceeding the sun_path limit (~107 bytes) — shared by server bind,
/// server liveness probe and client connect so the validation and its
/// diagnostic cannot drift apart.
sockaddr_un unix_address(const std::string& path);

/// Upper bound on one frame's JSON body.  Generous for any registry-sized
/// `.g` text (the largest is a few KiB) while still bounding what a broken
/// or hostile client can make the server allocate.
constexpr std::uint32_t kMaxFrameBytes = 16u << 20;  // 16 MiB

enum class Op : std::uint8_t { Synth, Check, Lint, CacheStats, Ping, Shutdown };

/// One decoded request.  The synthesis fields mirror the CLI flags a
/// `--connect` client forwards; they are carried as validated enums-as-text
/// (parse_request rejects unknown values, so the service layer never sees
/// an invalid method/arch).
struct Request {
  /// One spec of a lint batch: the client's filename (a display label on
  /// the server — never opened there) plus the `.g` text it read locally.
  struct LintFile {
    std::string name;
    std::string text;
  };

  Op op = Op::Ping;
  std::string g_text;             // synth/check: the STG source (.g text)
  std::string method = "approx";  // synth: approx | exact | sg
  std::string arch = "acg";       // synth: acg | c | rs
  bool minimize = true;           // synth: run espresso
  bool eqn = false;               // synth: explicit .eqn writer
  bool verilog = false;           // synth: Verilog writer
  std::vector<LintFile> lint_files;            // lint: the batch, in order
  bool lint_deep = false;                      // lint: semantic tier too
  bool lint_json = false;                      // lint: one v2 JSON document
  bool lint_werror = false;                    // lint: promote all warnings
  std::vector<std::string> lint_werror_rules;  // lint: promote these rules
};

struct Response {
  bool ok = false;
  int exit_code = 0;    // meaningful when ok: the client process exits with it
  std::string output;   // ok: what a direct invocation printed to stdout
  std::string log;      // ok: what a direct invocation printed to stderr
  std::string error;    // !ok: protocol-level diagnostic
};

std::string to_json(const Request& request);
std::string to_json(const Response& response);

/// Throws ParseError on malformed JSON, a missing/unknown "op", a missing
/// "g" on synth/check, a missing/malformed "files" array on lint, or an
/// unknown method/arch value.
Request request_from_json(std::string_view text);

/// Throws ParseError when the frame body is not a response object.
Response response_from_json(std::string_view text);

enum class FrameStatus : std::uint8_t {
  Ok,   // payload holds one complete frame body
  Eof,  // the peer closed the stream cleanly before a length prefix
  /// The receive deadline (set_receive_timeout) expired at a frame
  /// boundary — the peer is idle, not broken.  A deadline expiring
  /// *mid-frame* throws instead: a half-delivered frame means the stream
  /// cannot be resynchronised.
  IdleTimeout,
};

/// Arms SO_RCVTIMEO on `fd` so blocked reads give up after `seconds`
/// (0 disables the deadline).  This is how the daemon bounds both handshake
/// and idle time per TCP connection without a timer thread.
void set_receive_timeout(int fd, double seconds);

/// Reads one frame from `fd` into `payload`.  Returns Eof only on a clean
/// close at a frame boundary (and IdleTimeout only when a receive deadline
/// is armed); throws Error on a short/failed read or on a
/// length prefix above kMaxFrameBytes (the oversized body is not read).
/// `payload` is a *reusable* buffer: it is resized, never reallocated from
/// scratch, so callers looping over a connection (the server's frame loop,
/// Client::request) keep one buffer for the connection's lifetime and stop
/// allocating once it has seen their largest frame.
FrameStatus read_frame(int fd, std::string& payload);

/// Writes one frame to `fd`; throws Error when the peer is gone (EPIPE) or
/// the write fails.  Callers sending a best-effort error reply before
/// closing should swallow that throw themselves.
void write_frame(int fd, std::string_view payload);

/// Nonce width for the TCP auth handshake: 32 CSPRNG bytes (64 hex chars),
/// matching the MAC width so neither side's buffers are guessable-short.
constexpr std::size_t kNonceBytes = 32;

/// The hex MAC a client must answer a challenge with:
/// HMAC-SHA256(token, nonce_hex) over the nonce *as transmitted* (its hex
/// text), so there is no decode step to disagree on.
std::string auth_mac_hex(const std::string& token, const std::string& nonce_hex);

/// Server side of the TCP handshake: challenge, read the answer, verify in
/// constant time, then send the verdict frame (ok=true admits; a refusal is
/// sent best-effort).  Returns false with a diagnostic in `why` on any
/// failure — bad MAC, malformed answer, peer gone, deadline expired; the
/// caller counts and closes.  Never throws.
bool server_handshake(int fd, const std::string& token, std::string& why);

/// Client side: read the challenge, answer with the MAC over `token`, read
/// the verdict.  Throws Error on refusal or transport failure.  A client
/// with no token still answers (with an empty-key MAC), so "missing token"
/// is refused by the server's verdict rather than hanging the exchange.
void client_handshake(int fd, const std::string& token);

}  // namespace punt::server
