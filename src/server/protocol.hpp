// The `punt serve` wire protocol (DESIGN.md §9).
//
// Transport: a Unix domain stream socket.  Every message — request or
// response — is one *frame*:
//
//   u32 length (little-endian)   byte count of the JSON body that follows
//   length bytes of UTF-8 JSON   one complete JSON object
//
// The length prefix makes message boundaries explicit (JSON itself is not
// self-delimiting over a stream) and lets the server reject an oversized
// request before reading it: a frame longer than kMaxFrameBytes is refused
// with an error response and the connection is closed — the declared bytes
// are never buffered, so a hostile length cannot balloon server memory.
//
// Requests ({"op": ...}):
//   {"op":"synth","g":<.g text>,
//    "method":"approx"|"exact"|"sg", "arch":"acg"|"c"|"rs",
//    "minimize":bool, "eqn":bool, "verilog":bool}   (all but "g" optional)
//   {"op":"check","g":<.g text>}
//   {"op":"cache-stats"}     resident two-tier cache counters, as JSON
//   {"op":"ping"}            liveness probe
//   {"op":"shutdown"}        acknowledge, then drain and exit
//
// Responses:
//   {"ok":true, "exit":N, "output":<stdout text>, "log":<stderr text>}
//   {"ok":false, "error":<protocol-level diagnostic>}
//
// "ok" is a *protocol* verdict: a synthesis failure (CSC conflict, bad .g
// text) is a successful response with a nonzero "exit" and the diagnostic
// in "log" — exactly the exit code and stderr a direct `punt` invocation
// produces.  "ok":false means the request was not served — malformed frame
// or JSON, unknown op, or the daemon shed it under load ("error" starting
// "overloaded: ...", see server/batcher.hpp) — and the connection will be
// closed; a shed client reconnects to retry.
#pragma once

#include <sys/un.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace punt::server {

/// The AF_UNIX address for `path`.  Throws Error on an empty path or one
/// exceeding the sun_path limit (~107 bytes) — shared by server bind,
/// server liveness probe and client connect so the validation and its
/// diagnostic cannot drift apart.
sockaddr_un unix_address(const std::string& path);

/// Upper bound on one frame's JSON body.  Generous for any registry-sized
/// `.g` text (the largest is a few KiB) while still bounding what a broken
/// or hostile client can make the server allocate.
constexpr std::uint32_t kMaxFrameBytes = 16u << 20;  // 16 MiB

enum class Op : std::uint8_t { Synth, Check, CacheStats, Ping, Shutdown };

/// One decoded request.  The synthesis fields mirror the CLI flags a
/// `--connect` client forwards; they are carried as validated enums-as-text
/// (parse_request rejects unknown values, so the service layer never sees
/// an invalid method/arch).
struct Request {
  Op op = Op::Ping;
  std::string g_text;             // synth/check: the STG source (.g text)
  std::string method = "approx";  // synth: approx | exact | sg
  std::string arch = "acg";       // synth: acg | c | rs
  bool minimize = true;           // synth: run espresso
  bool eqn = false;               // synth: explicit .eqn writer
  bool verilog = false;           // synth: Verilog writer
};

struct Response {
  bool ok = false;
  int exit_code = 0;    // meaningful when ok: the client process exits with it
  std::string output;   // ok: what a direct invocation printed to stdout
  std::string log;      // ok: what a direct invocation printed to stderr
  std::string error;    // !ok: protocol-level diagnostic
};

std::string to_json(const Request& request);
std::string to_json(const Response& response);

/// Throws ParseError on malformed JSON, a missing/unknown "op", a missing
/// "g" on synth/check, or an unknown method/arch value.
Request request_from_json(std::string_view text);

/// Throws ParseError when the frame body is not a response object.
Response response_from_json(std::string_view text);

enum class FrameStatus : std::uint8_t {
  Ok,   // payload holds one complete frame body
  Eof,  // the peer closed the stream cleanly before a length prefix
};

/// Reads one frame from `fd` into `payload`.  Returns Eof only on a clean
/// close at a frame boundary; throws Error on a short/failed read or on a
/// length prefix above kMaxFrameBytes (the oversized body is not read).
/// `payload` is a *reusable* buffer: it is resized, never reallocated from
/// scratch, so callers looping over a connection (the server's frame loop,
/// Client::request) keep one buffer for the connection's lifetime and stop
/// allocating once it has seen their largest frame.
FrameStatus read_frame(int fd, std::string& payload);

/// Writes one frame to `fd`; throws Error when the peer is gone (EPIPE) or
/// the write fails.  Callers sending a best-effort error reply before
/// closing should swallow that throw themselves.
void write_frame(int fd, std::string_view payload);

}  // namespace punt::server
