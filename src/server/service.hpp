// Request handlers behind `punt serve`: one function per traffic-bearing op,
// mapping a decoded protocol::Request onto the synthesis pipeline and
// rendering the exact stdout/stderr text (and exit code) the equivalent
// direct `punt` invocation produces.  Keeping the rendering here — not in
// the connection loop — is what makes the daemon's responses byte-comparable
// to the CLI and lets tests drive the handlers without a socket.
//
// Handlers never throw: every failure (unparseable .g text, CSC conflict,
// capacity blowup) becomes a Response with ok=true, a nonzero exit code and
// the same diagnostic a direct invocation prints to stderr.  Protocol-level
// failures are the caller's (the connection loop's) concern.
#pragma once

#include <cstddef>
#include <string>

#include "src/server/protocol.hpp"

namespace punt::core {
class Executor;
class ModelCache;
struct ModelCacheStats;
}  // namespace punt::core

namespace punt::server {

/// Handles {"op":"synth"}.  `cache` (nullable) resolves phase 1; when given,
/// the per-request cache delta summary is appended to the response log —
/// the line a `--connect` client streams to its stderr.  `executor`
/// (nullable) runs the graph; the daemon passes its resident one, a null
/// falls back to an inline single-job run.
Response run_synth(const Request& request, core::ModelCache* cache,
                   core::Executor* executor);

/// Handles {"op":"check"} — and IS the direct `punt check` implementation
/// (tools/punt_cli.cpp prints the returned output/log verbatim), so the
/// daemon's byte-parity with the CLI holds by construction rather than by
/// hand-maintained duplication.  The cache is required (the checks and the
/// embedded synthesis run share one semantic model through it — the same
/// single-build guarantee `punt check` has); the "semantic model" verdict
/// line reports this *request's* cache delta, so a warm daemon truthfully
/// prints "built 0 time(s)".  `summarize_cache` controls the trailing
/// per-request summary line in the log: the daemon always wants it, the
/// direct CLI only when `--model-cache-dir` was given.
Response run_check(const Request& request, core::ModelCache& cache,
                   core::Executor* executor, bool summarize_cache = true);

/// The {"op":"cache-stats"} payload: resident two-tier counters plus the
/// server identity fields ("punt-serve-stats" schema, version 1).
std::string cache_stats_json(const core::ModelCacheStats& stats,
                             std::size_t requests_served, std::size_t jobs,
                             const std::string& model_cache_dir);

}  // namespace punt::server
