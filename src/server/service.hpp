// Request handlers behind `punt serve`: one function per traffic-bearing op,
// mapping a decoded protocol::Request onto the synthesis pipeline and
// rendering the exact stdout/stderr text (and exit code) the equivalent
// direct `punt` invocation produces.  Keeping the rendering here — not in
// the connection loop — is what makes the daemon's responses byte-comparable
// to the CLI and lets tests drive the handlers without a socket.
//
// Handlers never throw: every failure (unparseable .g text, CSC conflict,
// capacity blowup) becomes a Response with ok=true, a nonzero exit code and
// the same diagnostic a direct invocation prints to stderr.  Protocol-level
// failures are the caller's (the connection loop's) concern.
#pragma once

#include <cstddef>
#include <string>

#include "src/core/synthesis.hpp"
#include "src/server/protocol.hpp"
#include "src/stg/stg.hpp"

namespace punt::core {
class CostLedger;
class Executor;
class ModelCache;
struct ModelCacheStats;
struct BatchEntry;
}  // namespace punt::core

namespace punt::server {

struct BatcherStats;  // batcher.hpp; forward-declared to avoid a cycle

/// Handles {"op":"synth"}.  `cache` (nullable) resolves phase 1; when given,
/// the per-request cache delta summary is appended to the response log —
/// the line a `--connect` client streams to its stderr.  `executor`
/// (nullable) runs the graph; the daemon passes its resident one, a null
/// falls back to an inline single-job run.  `ledger` (nullable) orders
/// dispatch by learned node costs and absorbs this request's measured ones —
/// the daemon passes its resident, self-tuning table.
Response run_synth(const Request& request, core::ModelCache* cache,
                   core::Executor* executor, core::CostLedger* ledger = nullptr);

/// One synth request decoded as far as it can be *before* batch execution:
/// the parsed STG and its per-entry SynthesisOptions — the
/// core::BatchRequest shape the daemon's request fusion feeds into one
/// union graph — or, when parsing failed, the fully rendered failure
/// response.  Splitting run_synth into prepare (here) + render (below)
/// around the batch boundary is what lets N fused requests share one
/// synthesize_batch call and still answer byte-identically to N direct CLI
/// invocations.
struct SynthJob {
  Request request;
  stg::Stg stg;                    // meaningful only when ok
  core::SynthesisOptions options;  // meaningful only when ok
  bool ok = false;
  Response failure;  // rendered (exit 2, CLI diagnostic) when !ok
};

/// Parses the request's .g text and maps its method/arch flags; never
/// throws — an unparseable request comes back with ok=false and `failure`
/// carrying exactly the Response run_synth would have produced (minus the
/// cache summary line, which the caller appends).
SynthJob prepare_synth(Request request);

/// Renders the response for a prepared job from its executed batch entry:
/// the same bytes run_synth produces for the same request, so fused and
/// inline execution are indistinguishable to clients.  Never throws; entry
/// failures re-surface as the CLI's stderr diagnostics with exit code 2.
/// The caller appends the cache summary line (per request when inline, per
/// fused batch in the dispatcher).
Response render_synth(const SynthJob& job, const core::BatchEntry& entry);

/// Handles {"op":"check"} — and IS the direct `punt check` implementation
/// (tools/punt_cli.cpp prints the returned output/log verbatim), so the
/// daemon's byte-parity with the CLI holds by construction rather than by
/// hand-maintained duplication.  The cache is required (the checks and the
/// embedded synthesis run share one semantic model through it — the same
/// single-build guarantee `punt check` has); the "semantic model" verdict
/// line reports this *request's* cache delta, so a warm daemon truthfully
/// prints "built 0 time(s)".  `summarize_cache` controls the trailing
/// per-request summary line in the log: the daemon always wants it, the
/// direct CLI only when `--model-cache-dir` was given.
Response run_check(const Request& request, core::ModelCache& cache,
                   core::Executor* executor, bool summarize_cache = true,
                   core::CostLedger* ledger = nullptr);

/// Handles {"op":"lint"} — the whole client batch in one request, linted
/// as one TaskGraph on the daemon's resident executor so multi-file deep
/// lints parallelise under the daemon's --jobs exactly like a direct
/// `punt lint --deep --jobs=N`.  The response output is byte-identical to
/// the direct CLI's stdout for the same files (per-file human renderings in
/// request order, or one punt-lint-report v2 document), and the exit code
/// follows the same rule (1 when any file has an error-severity finding).
/// The cache is required: deep lint resolves its exact state-graph models
/// through it, so a warm daemon deep-lints a known spec with zero rebuilds —
/// the per-request delta summary appended to the log is the proof.  The
/// structural tier never touches the cache, so structural-only lints report
/// an all-zero delta.
Response run_lint(const Request& request, core::ModelCache& cache,
                  core::Executor* executor, core::CostLedger* ledger = nullptr);

/// The daemon-identity slice of the {"op":"cache-stats"} payload: who is
/// serving (transport, listen address, worker count) and the connection
/// ledger (accepted / refused-at-handshake / idle-timed-out) the TCP
/// transport introduced in v3.
struct ServeInfo {
  std::size_t requests_served = 0;
  std::size_t jobs = 0;
  std::string model_cache_dir;
  std::string transport = "unix";  // "unix" | "tcp"
  std::string listen;              // Endpoint::describe() of the listener
  std::size_t connections = 0;     // accepted since start()
  std::size_t auth_failures = 0;   // TCP handshakes refused
  std::size_t idle_timeouts = 0;   // connections closed by the idle deadline
  double batch_window_ms = 0;
};

/// The {"op":"cache-stats"} payload: resident two-tier counters plus the
/// server identity/connection fields and the request-fusion counters
/// ("punt-serve-stats" schema, version 3 — v3 added transport, listen,
/// connections, auth_failures and idle_timeouts; every v2 field is
/// unchanged, so v2 consumers keep working by ignoring the additions).
/// `batcher` is null when the daemon runs with `--batch-window=0` (no
/// fusion); the fusion fields are then emitted as zeros so the schema is
/// stable for consumers like `punt bench serve`.
std::string cache_stats_json(const core::ModelCacheStats& stats,
                             const ServeInfo& info, const BatcherStats* batcher);

}  // namespace punt::server
