#include "src/server/service.hpp"

#include <exception>
#include <span>
#include <utility>
#include <vector>

#include "src/core/model_cache.hpp"
#include "src/core/pipeline.hpp"
#include "src/core/synthesis.hpp"
#include "src/lint/lint.hpp"
#include "src/server/batcher.hpp"
#include "src/util/diagnostics.hpp"
#include "src/netlist/netlist.hpp"
#include "src/stg/g_format.hpp"
#include "src/util/error.hpp"
#include "src/util/json.hpp"
#include "src/util/strings.hpp"

namespace punt::server {
namespace {

// Non-truncating (util/strings.hpp): an STG name or diagnostic longer than
// any stack buffer must still match the direct CLI's printf byte for byte.
using punt::printf_string;

core::SynthesisOptions options_of(const Request& request) {
  core::SynthesisOptions options;
  if (request.method == "exact") {
    options.method = core::Method::UnfoldingExact;
  } else if (request.method == "sg") {
    options.method = core::Method::StateGraph;
  } else {
    options.method = core::Method::UnfoldingApprox;
  }
  if (request.arch == "c") {
    options.architecture = core::Architecture::StandardC;
  } else if (request.arch == "rs") {
    options.architecture = core::Architecture::RsLatch;
  } else {
    options.architecture = core::Architecture::ComplexGate;
  }
  options.minimize = request.minimize;
  return options;
}

/// Runs one STG through the pipeline on the (possibly resident) executor
/// and rethrows the entry's own typed exception on failure — the shape the
/// CLI-identical catch blocks below expect.
core::SynthesisResult synthesize_on(const stg::Stg& stg,
                                    const core::SynthesisOptions& options,
                                    core::ModelCache* cache,
                                    core::Executor* executor,
                                    core::CostLedger* ledger) {
  core::BatchOptions batch_options;
  batch_options.synthesis = options;
  batch_options.jobs = 1;  // executor (when given) supersedes this
  batch_options.cache = cache;
  batch_options.executor = executor;
  batch_options.ledger = ledger;
  const std::span<const stg::Stg> one(&stg, 1);
  core::BatchResult batch = core::synthesize_batch(one, batch_options);
  core::BatchEntry& entry = batch.entries.front();
  if (!entry.ok) {
    if (entry.exception) std::rethrow_exception(entry.exception);
    throw Error(entry.error);
  }
  return std::move(entry.result);
}

/// The snapshot the per-request delta is computed against; zeros without a
/// cache (no summary line is emitted then).
core::ModelCacheStats snapshot(const core::ModelCache* cache) {
  return cache != nullptr ? cache->stats() : core::ModelCacheStats{};
}

void append_cache_summary(Response& response, const core::ModelCache* cache,
                          const core::ModelCacheStats& before) {
  if (cache == nullptr) return;
  response.log += core::summarize(core::delta_stats(before, cache->stats()));
}

}  // namespace

SynthJob prepare_synth(Request request) {
  SynthJob job;
  job.request = std::move(request);
  // Admission control: the error-severity lint rules run before any parse
  // throw or model construction, so a structurally broken spec is refused
  // with every defect rendered (rule ids, line:column spans, hints) and
  // never reaches the batcher, the ModelCache or the executor.  Lint errors
  // are a strict subset of what parse_g/validate reject, so this gate never
  // refuses a spec direct `punt synth` would accept.
  const std::vector<util::Diagnostic> defects = lint::lint_errors(job.request.g_text);
  if (!defects.empty()) {
    job.failure.ok = true;
    job.failure.log = util::render_diagnostics(defects, job.request.g_text, "request.g") +
                      printf_string("error: specification refused by lint: %zu defect(s)\n",
                                    defects.size());
    job.failure.exit_code = 2;
    return job;
  }
  try {
    job.stg = stg::parse_g(job.request.g_text);
    job.options = options_of(job.request);
    job.ok = true;
  } catch (const Error& e) {
    // Dynamic rejections lint cannot see statically (initial-code inference
    // inconsistencies, capacity limits): same diagnostic (and exit code) a
    // direct `punt synth` prints; render_synth is never reached for this job.
    job.failure.ok = true;
    job.failure.log = printf_string("error: %s\n", e.what());
    job.failure.exit_code = 2;
  }
  return job;
}

Response render_synth(const SynthJob& job, const core::BatchEntry& entry) {
  if (!job.ok) return job.failure;
  Response response;
  response.ok = true;
  try {
    if (!entry.ok) {
      // Rethrow the entry's own typed exception so the catch blocks below
      // render exactly what an inline run would have.
      if (entry.exception) std::rethrow_exception(entry.exception);
      throw Error(entry.error);
    }
    const core::SynthesisResult& result = entry.result;
    const stg::Stg& stg = job.stg;
    const net::Netlist netlist = net::Netlist::from_synthesis(stg, result);

    // Byte-for-byte the stdout of a direct `punt synth` (tools/punt_cli.cpp
    // cmd_synth); the server_test and the CI smoke job compare the two.
    response.output += printf_string("# %s: %zu signals, %zu literals\n",
                                   stg.name().c_str(), stg.signal_count(),
                                   netlist.literal_count());
    response.output += printf_string(
        "# unfold %.4fs derive %.4fs minimise %.4fs total %.4fs\n",
        result.unfold_seconds, result.derive_seconds, result.minimize_seconds,
        result.total_seconds);
    const bool any_writer = job.request.eqn || job.request.verilog;
    if (job.request.eqn || !any_writer) response.output += netlist.to_eqn();
    if (job.request.verilog) response.output += netlist.to_verilog(stg.name());
    response.exit_code = 0;
  } catch (const CscError& e) {
    response.log += printf_string("CSC conflict: %s\n(try `punt resolve`)\n", e.what());
    response.exit_code = 2;
  } catch (const Error& e) {
    response.log += printf_string("error: %s\n", e.what());
    response.exit_code = 2;
  }
  return response;
}

Response run_synth(const Request& request, core::ModelCache* cache,
                   core::Executor* executor, core::CostLedger* ledger) {
  const core::ModelCacheStats before = snapshot(cache);
  SynthJob job = prepare_synth(request);
  Response response;
  if (!job.ok) {
    response = job.failure;
  } else {
    core::BatchOptions batch_options;
    batch_options.jobs = 1;  // executor (when given) supersedes this
    batch_options.cache = cache;
    batch_options.executor = executor;
    batch_options.ledger = ledger;
    const core::BatchRequest one{&job.stg, job.options};
    const core::BatchResult batch = core::synthesize_batch(
        std::span<const core::BatchRequest>(&one, 1), batch_options);
    response = render_synth(job, batch.entries.front());
  }
  append_cache_summary(response, cache, before);
  return response;
}

Response run_check(const Request& request, core::ModelCache& cache,
                   core::Executor* executor, bool summarize_cache,
                   core::CostLedger* ledger) {
  Response response;
  response.ok = true;
  const core::ModelCacheStats before = cache.stats();
  try {
    const stg::Stg stg = stg::parse_g(request.g_text);
    core::SynthesisOptions options;
    options.throw_on_csc = false;
    // Persistency is reported below, not thrown, so the check prints a full
    // verdict for non-semi-modular STGs too (mirrors cmd_check).
    options.check_persistency = false;
    const auto model = cache.lookup_or_build(stg, options);
    const unf::Unfolding& unfolding = *model->unfolding;
    response.output += "consistent state assignment : yes (segment built)\n";
    response.output += printf_string(
        "bounded / safe              : yes (%zu events, %zu conditions)\n",
        unfolding.stats().events, unfolding.stats().conditions);
    const auto persistency = unf::segment_persistency_violations(unfolding);
    response.output += printf_string(
        "output persistency          : %s\n",
        persistency.empty() ? "yes" : persistency.front().describe(unfolding).c_str());
    const core::SynthesisResult result =
        synthesize_on(stg, options, &cache, executor, ledger);
    bool csc_ok = true;
    for (const auto& impl : result.signals) {
      if (impl.csc_conflict) {
        csc_ok = false;
        response.output += printf_string("complete state coding       : conflict on '%s'\n",
                                       stg.signal_name(impl.signal).c_str());
      }
    }
    if (csc_ok) response.output += "complete state coding       : yes\n";
    // This *request's* share of the resident cache: on a cold daemon the
    // delta equals what a direct `punt check` reports; on a warm one it
    // truthfully reads "built 0 time(s)" — the saving the daemon exists to
    // deliver.  (The displayed rate counts disk hits as reuse, matching
    // cmd_check.)
    const core::ModelCacheStats stats = core::delta_stats(before, cache.stats());
    const std::size_t lookups = stats.hits + stats.misses;
    const double reuse_rate =
        lookups == 0 ? 0.0
                     : static_cast<double>(stats.hits + stats.disk_hits) /
                           static_cast<double>(lookups);
    response.output += printf_string(
        "semantic model              : built %zu time(s), reused %zu time(s) "
        "(%.0f%% cache hit rate)\n",
        stats.builds, stats.hits + stats.disk_hits, reuse_rate * 100.0);
    response.exit_code = csc_ok && persistency.empty() ? 0 : 2;
  } catch (const Error& e) {
    response.log += printf_string("error: %s\n", e.what());
    response.exit_code = 2;
  }
  if (summarize_cache) append_cache_summary(response, &cache, before);
  return response;
}

Response run_lint(const Request& request, core::ModelCache& cache,
                  core::Executor* executor, core::CostLedger* ledger) {
  Response response;
  response.ok = true;
  const core::ModelCacheStats before = cache.stats();
  lint::LintOptions options;
  options.promote_all_warnings = request.lint_werror;
  options.promote_rules = request.lint_werror_rules;
  options.deep = request.lint_deep;
  options.cache = &cache;
  options.executor = executor;
  options.ledger = ledger;
  std::vector<lint::FileInput> inputs;
  inputs.reserve(request.lint_files.size());
  for (const Request::LintFile& file : request.lint_files) {
    inputs.push_back({file.name, file.text});
  }
  try {
    const std::vector<lint::FileLint> lints = lint::lint_files(inputs, options);
    bool any_errors = false;
    for (std::size_t i = 0; i < lints.size(); ++i) {
      any_errors = any_errors || !lints[i].ok();
      // Render against the request's own text so excerpts and caret lines
      // match a direct invocation over the same file byte for byte.
      if (!request.lint_json) {
        response.output += lint::render_human(lints[i], inputs[i].text);
      }
    }
    if (request.lint_json) response.output += lint::render_json(lints);
    response.exit_code = any_errors ? 1 : 0;
  } catch (const Error& e) {
    // lint never throws on spec content; this is a real defect (resource
    // exhaustion, logic error) surfacing with the CLI's error shape.
    response.log += printf_string("error: %s\n", e.what());
    response.exit_code = 2;
  }
  append_cache_summary(response, &cache, before);
  return response;
}

std::string cache_stats_json(const core::ModelCacheStats& stats,
                             const ServeInfo& info, const BatcherStats* batcher) {
  // The fusion counters report zeros when the daemon runs unfused
  // (--batch-window=0): field presence must not depend on configuration.
  const BatcherStats fused = batcher != nullptr ? *batcher : BatcherStats{};
  std::string out = "{\n";
  out += "  \"schema\": \"punt-serve-stats\",\n";
  out += "  \"version\": 3,\n";
  out += printf_string("  \"requests\": %zu,\n", info.requests_served);
  out += printf_string("  \"jobs\": %zu,\n", info.jobs);
  out += "  \"model_cache_dir\": \"" + util::json_escape(info.model_cache_dir) + "\",\n";
  out += "  \"transport\": \"" + util::json_escape(info.transport) + "\",\n";
  out += "  \"listen\": \"" + util::json_escape(info.listen) + "\",\n";
  out += printf_string("  \"connections\": %zu,\n", info.connections);
  out += printf_string("  \"auth_failures\": %zu,\n", info.auth_failures);
  out += printf_string("  \"idle_timeouts\": %zu,\n", info.idle_timeouts);
  out += printf_string("  \"hits\": %zu,\n", stats.hits);
  out += printf_string("  \"misses\": %zu,\n", stats.misses);
  out += printf_string("  \"builds\": %zu,\n", stats.builds);
  out += printf_string("  \"evictions\": %zu,\n", stats.evictions);
  out += printf_string("  \"failed_builds\": %zu,\n", stats.failed_builds);
  out += printf_string("  \"in_flight\": %zu,\n", stats.in_flight);
  out += printf_string("  \"resident\": %zu,\n", stats.resident);
  out += printf_string("  \"saved_seconds\": %.17g,\n", stats.saved_seconds);
  out += printf_string("  \"disk_hits\": %zu,\n", stats.disk_hits);
  out += printf_string("  \"disk_misses\": %zu,\n", stats.disk_misses);
  out += printf_string("  \"disk_load_errors\": %zu,\n", stats.disk_load_errors);
  out += printf_string("  \"disk_stores\": %zu,\n", stats.disk_stores);
  out += printf_string("  \"disk_store_failures\": %zu,\n", stats.disk_store_failures);
  out += printf_string("  \"batch_window_ms\": %.17g,\n", info.batch_window_ms);
  out += printf_string("  \"admitted\": %zu,\n", fused.admitted);
  out += printf_string("  \"batches\": %zu,\n", fused.batches);
  out += printf_string("  \"fused_requests\": %zu,\n", fused.fused_requests);
  out += printf_string("  \"mean_batch\": %.17g,\n", fused.mean_batch());
  out += printf_string("  \"max_batch\": %zu,\n", fused.max_batch);
  out += printf_string("  \"queue_high_water\": %zu,\n", fused.queue_high_water);
  out += printf_string("  \"shed_queue_full\": %zu,\n", fused.shed_queue_full);
  out += printf_string("  \"shed_connection_cap\": %zu,\n", fused.shed_connection_cap);
  out += "  \"batch_size_histogram\": [";
  for (std::size_t i = 0; i < fused.batch_size_histogram.size(); ++i) {
    if (i != 0) out += ", ";
    out += printf_string("%zu", fused.batch_size_histogram[i]);
  }
  out += "]\n";
  out += "}\n";
  return out;
}

}  // namespace punt::server
