// Client side of the `punt serve` protocol: connect to a daemon's endpoint
// (Unix socket path or tcp://host:port), send framed requests, read framed
// responses.  This is what `punt synth|check --connect=<endpoint>` (and
// ping/shutdown/cache stats) runs instead of the in-process pipeline — the
// synthesis happens in the daemon against its warm ModelCache, and the
// client merely replays the response's stdout/stderr text and exit code.
// Connecting over TCP runs the HMAC-SHA256 handshake (protocol.hpp) before
// the first request; Unix connections need no token.
#pragma once

#include <string>

#include "src/server/endpoint.hpp"
#include "src/server/protocol.hpp"

namespace punt::server {

/// One connection to a serve daemon.  Requests on one client are
/// sequential (frame out, frame in); open several clients for concurrency.
class Client {
 public:
  /// Connects (and, over TCP, authenticates with `token`); throws Error
  /// when nothing listens at `endpoint` (with a hint to start
  /// `punt serve`) or when the daemon refuses the handshake.
  explicit Client(const Endpoint& endpoint, const std::string& token = {});

  /// Convenience for the Unix transport — exactly the PR 5 surface, so the
  /// many local-socket call sites stay one-argument.
  explicit Client(const std::string& socket_path);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Round-trips one request.  Throws Error on transport failure or when
  /// the server answered ok=false (the protocol-level refusal's text — the
  /// daemon's "overloaded: ..." load-shed refusal surfaces here too, and
  /// the server closes the connection after any refusal, so a shed client
  /// must reconnect to retry).
  Response request(const Request& request);

 private:
  int fd_ = -1;
  /// Reused across requests: read_frame resizes it per frame, so a client
  /// looping over a registry (the `punt bench serve` load generator) stops
  /// allocating once the buffer has seen its largest response.
  std::string payload_;
};

/// Convenience: connect, send one request, disconnect.
Response request_once(const Endpoint& endpoint, const std::string& token,
                      const Request& request);
Response request_once(const std::string& socket_path, const Request& request);

}  // namespace punt::server
