// The `punt serve` daemon (DESIGN.md §9): a Unix-domain-socket server that
// keeps one two-tier ModelCache and one Executor (thread pool) resident
// across requests, so repeated synthesis of the same STG pays neither
// process startup nor phase-1 reconstruction nor even disk deserialisation —
// the regime where the unfolding-segment approach amortises best.
//
// Concurrency model: an accept loop (poll with a short timeout, so the stop
// flag is honoured promptly) hands each connection to its own thread; every
// connection thread parses frames, dispatches into server/service.hpp over
// the *shared* cache and executor, and writes response frames.  Synthesis
// graphs of concurrent requests interleave on the one pool — the TaskGraph
// contract that any number of graphs may execute over one pool is exactly
// what makes thread-per-connection safe here at a fixed worker budget.
//
// Lifecycle: serve() accepts until stop is requested — by a client
// {"op":"shutdown"} (acknowledged before the drain begins) or by
// request_stop() (the CLI's SIGTERM/SIGINT handler).  It then stops
// accepting, joins every in-flight connection thread (each finishes its
// request; nothing is aborted mid-graph), unlinks the socket and returns.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/core/model_cache.hpp"
#include "src/core/pipeline.hpp"

namespace punt::server {

struct ServerOptions {
  std::string socket_path;      // required; at most ~100 bytes (sun_path)
  std::size_t jobs = 1;         // executor width; 0 = hardware default
  std::string model_cache_dir;  // optional disk tier under the resident cache
  std::size_t cache_capacity = core::ModelCache::kDefaultCapacity;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds and listens on the socket path.  Ownership of the path is
  /// arbitrated by an flock on `<socket>.lock` (released automatically if
  /// the holder dies), so a stale socket file left by a crashed server is
  /// reclaimed while a path another daemon owns — live or mid-start —
  /// throws Error; concurrent starts cannot unlink each other's socket.
  /// The small .lock file itself is deliberately never deleted: unlinking
  /// it would reopen the very race it closes.
  void start();

  /// The accept loop; blocks until shutdown is requested, then drains
  /// in-flight connections and removes the socket file.  start() first.
  void serve();

  /// Asks serve() to stop accepting and drain.  Async-signal-safe in the
  /// only way that matters: it just stores an atomic flag the poll loop
  /// reads, so the CLI's SIGTERM handler may call it directly.
  void request_stop() { stop_.store(true, std::memory_order_relaxed); }

  const std::string& socket_path() const { return options_.socket_path; }
  core::ModelCache& cache() { return *cache_; }
  std::size_t jobs() const { return executor_.jobs(); }

  /// Requests fully handled (response frame written) since start().
  std::size_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }
  /// Connections currently being handled — what tests poll to order a
  /// shutdown *behind* an in-flight request deterministically.
  std::size_t active_connections() const {
    return active_connections_.load(std::memory_order_relaxed);
  }

 private:
  /// One connection's frame loop; runs on its own thread.  The fd is owned
  /// by the Connection record (closed by the reaper after the join), so the
  /// drain can safely ::shutdown() it while the handler still runs.
  void handle_connection(int fd);

  /// Drops the <socket>.lock flock (the file stays; see start()).
  void release_ownership();

  /// Joins finished connection threads (all of them when `all`, otherwise
  /// just the ones whose handler already returned) and closes their fds.
  /// The `all` drain first half-closes every connection's read side, so a
  /// handler idling in read_frame between requests wakes with EOF and
  /// finishes — in-flight *requests* complete, idle keep-alives don't stall
  /// the shutdown forever.
  void reap_connections(bool all);

  struct Connection {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
    int fd = -1;
  };

  ServerOptions options_;
  std::shared_ptr<core::ModelCache> cache_;
  core::Executor executor_;
  int listen_fd_ = -1;
  int lock_fd_ = -1;  // flock'd <socket>.lock; held for the server's lifetime
  std::atomic<bool> stop_{false};
  std::atomic<std::size_t> requests_served_{0};
  std::atomic<std::size_t> active_connections_{0};
  std::mutex connections_mutex_;
  std::vector<Connection> connections_;
};

}  // namespace punt::server
