// The `punt serve` daemon (DESIGN.md §9): a stream-socket server — Unix
// domain or authenticated TCP, selected by the Endpoint in its options —
// that keeps one two-tier ModelCache and one Executor (thread pool)
// resident across requests, so repeated synthesis of the same STG pays
// neither process startup nor phase-1 reconstruction nor even disk
// deserialisation — the regime where the unfolding-segment approach
// amortises best.  TCP connections must pass the HMAC-SHA256
// challenge–response handshake (protocol.hpp) before their first request
// and live under per-connection handshake/idle receive deadlines; Unix
// connections skip both, so existing local clients are untouched.
//
// Concurrency model: an accept loop (poll on the listen fd plus a self-pipe
// wake, so an idle daemon sleeps indefinitely yet stop/reap requests are
// honoured immediately) hands each connection to its own thread; every
// connection thread parses frames, dispatches into server/service.hpp over
// the *shared* cache and executor, and writes response frames.  Synth
// requests are not executed inline: with a nonzero batch window they are
// submitted to the Batcher (server/batcher.hpp), which fuses whatever
// arrives within the window into ONE union synthesize_batch graph — so
// concurrent clients share scheduling the way `punt bench run` entries do —
// and sheds excess load with an explicit "overloaded" refusal instead of
// buffering without bound.  Synthesis graphs of concurrent batches
// interleave on the one pool — the TaskGraph contract that any number of
// graphs may execute over one pool is exactly what makes this safe at a
// fixed worker budget.
//
// Lifecycle: serve() accepts until stop is requested — by a client
// {"op":"shutdown"} (acknowledged before the drain begins) or by
// request_stop() (the CLI's SIGTERM/SIGINT handler).  It then stops
// accepting, puts the Batcher into flush mode (queued work dispatches
// without waiting out the window), joins every in-flight connection thread
// (each finishes its request; nothing is aborted mid-graph — admitted fused
// work completes too), drains the Batcher, unlinks the socket and returns.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/core/cost_ledger.hpp"
#include "src/core/model_cache.hpp"
#include "src/core/pipeline.hpp"
#include "src/server/batcher.hpp"
#include "src/server/endpoint.hpp"

namespace punt::server {

struct ServerOptions {
  /// Where to listen: a Unix socket path (`--socket`) or a TCP address
  /// (`--listen=tcp://…`).  Required.
  Endpoint endpoint;
  /// Shared auth secret (`--token-file` contents).  Required for TCP —
  /// start() refuses an unauthenticated network listener; ignored for Unix.
  std::string token;
  std::size_t jobs = 1;         // executor width; 0 = hardware default
  std::string model_cache_dir;  // optional disk tier under the resident cache
  std::size_t cache_capacity = core::ModelCache::kDefaultCapacity;
  /// Request-fusion accumulation window (`--batch-window`).  0 disables the
  /// Batcher entirely: synth requests execute inline on their connection
  /// threads, exactly the pre-fusion daemon.
  double batch_window_ms = 2.0;
  /// Admission-queue depth bound (`--max-queue`); beyond it synth requests
  /// are shed with an "overloaded" refusal.  Ignored when the window is 0.
  std::size_t max_queue = 256;
  /// Per-connection in-flight cap.  Ignored when the window is 0.
  std::size_t max_inflight_per_connection = 8;
  /// Per-write() SO_SNDTIMEO on every connection (`--send-timeout`), so a
  /// client that stops reading cannot pin its handler — and therefore the
  /// shutdown drain — forever.  Must be positive.
  long send_timeout_seconds = 30;
  /// TCP only: how long an accepted connection may take to complete the
  /// auth handshake (`--handshake-timeout`) and how long it may then sit
  /// idle between requests (`--idle-timeout`) before the daemon closes it —
  /// an off-host client that connects and stalls must not pin a handler
  /// thread forever.  0 disables the respective deadline.
  double handshake_timeout_seconds = 10;
  double idle_timeout_seconds = 300;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds and listens on the endpoint.  For Unix sockets, path ownership
  /// is arbitrated by an flock on `<socket>.lock` (see endpoint.cpp) so a
  /// stale socket file left by a crashed server is reclaimed while a live
  /// daemon's path is refused; for TCP the kernel arbitrates the port —
  /// bind succeeds or this throws.  A TCP endpoint without a token throws:
  /// the network listener is never unauthenticated.
  void start();

  /// The accept loop; blocks until shutdown is requested, then drains
  /// in-flight connections and removes the socket file.  start() first.
  void serve();

  /// Asks serve() to stop accepting and drain.  Async-signal-safe in the
  /// only way that matters: it stores an atomic flag and write()s one byte
  /// down the self-pipe the poll loop watches, so the CLI's SIGTERM handler
  /// may call it directly and the shutdown is immediate, not
  /// next-poll-interval.
  void request_stop();

  /// The endpoint as actually bound — after start() on a TCP endpoint with
  /// port 0 this carries the kernel-assigned ephemeral port, so it is what
  /// clients (and the self-spawned bench) should connect to.
  const Endpoint& endpoint() const { return listener_->local_endpoint(); }
  core::ModelCache& cache() { return *cache_; }
  /// The resident cost table: seeded from `costs.puntledger` beside the
  /// model-cache dir (when one is configured), updated online by every
  /// served request, republished on shutdown — the self-tuning half of the
  /// warm daemon.
  core::CostLedger& ledger() { return ledger_; }
  std::size_t jobs() const { return executor_.jobs(); }

  /// Snapshot of the request-fusion counters (zeros when the daemon runs
  /// with batch_window_ms == 0, i.e. without a Batcher).
  BatcherStats batcher_stats() const {
    return batcher_ != nullptr ? batcher_->stats() : BatcherStats{};
  }

  /// Requests fully handled (response frame written) since start().
  std::size_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }
  /// Connections currently being handled — what tests poll to order a
  /// shutdown *behind* an in-flight request deterministically.
  std::size_t active_connections() const {
    return active_connections_.load(std::memory_order_relaxed);
  }

  /// Connections accepted since start() (whether or not they authenticated).
  std::size_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }
  /// TCP connections refused at the handshake (wrong/missing/garbled MAC,
  /// handshake deadline) — the counter `punt-serve-stats` v3 reports.
  std::size_t auth_failures() const {
    return auth_failures_.load(std::memory_order_relaxed);
  }
  /// Connections closed by the idle deadline at a frame boundary.
  std::size_t idle_timeouts() const {
    return idle_timeouts_.load(std::memory_order_relaxed);
  }

 private:
  /// One connection's frame loop; runs on its own thread.  The fd is owned
  /// by the Connection record (closed by the reaper after the join), so the
  /// drain can safely ::shutdown() it while the handler still runs.
  /// `authenticate` (TCP connections) runs the handshake — and arms the
  /// receive deadlines — before the first request frame.
  void handle_connection(int fd, bool authenticate);

  /// Joins finished connection threads (all of them when `all`, otherwise
  /// just the ones whose handler already returned) and closes their fds.
  /// The `all` drain first half-closes every connection's read side, so a
  /// handler idling in read_frame between requests wakes with EOF and
  /// finishes — in-flight *requests* complete, idle keep-alives don't stall
  /// the shutdown forever.
  void reap_connections(bool all);

  struct Connection {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
    int fd = -1;
  };

  /// Writes one byte down the self-pipe so the accept loop's poll returns.
  /// Used by request_stop() and by finishing connection handlers (so the
  /// loop reaps them promptly despite its infinite poll timeout).
  void wake_accept_loop();

  ServerOptions options_;
  std::shared_ptr<core::ModelCache> cache_;
  /// Measured node costs driving dispatch order (DESIGN.md §10).  Always
  /// resident — online self-tuning needs no disk — and additionally
  /// persisted beside the model cache when a cache dir is configured.
  /// Declared before the Batcher that borrows it.
  core::CostLedger ledger_;
  core::Executor executor_;
  /// Created only when batch_window_ms > 0.  Declared after the cache and
  /// executor it borrows, so it is destroyed (and drained) first.
  std::unique_ptr<Batcher> batcher_;
  /// The transport behind the accept loop (endpoint.hpp); owns the listen
  /// fd and whatever the transport holds beyond it (Unix: socket file +
  /// path lock).  Never null after construction.
  std::unique_ptr<Listener> listener_;
  /// Self-pipe: [0] is polled by the accept loop, [1] is written by
  /// request_stop() / finishing handlers.  Created in the constructor so a
  /// pre-start() request_stop() still works.
  int wake_fds_[2] = {-1, -1};
  std::atomic<bool> stop_{false};
  std::atomic<std::size_t> requests_served_{0};
  std::atomic<std::size_t> active_connections_{0};
  std::atomic<std::size_t> connections_accepted_{0};
  std::atomic<std::size_t> auth_failures_{0};
  std::atomic<std::size_t> idle_timeouts_{0};
  std::atomic<std::uint64_t> next_connection_id_{1};  // scopes the in-flight cap
  std::mutex connections_mutex_;
  std::vector<Connection> connections_;
};

}  // namespace punt::server
