#include "src/server/endpoint.hpp"

#include <errno.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/file.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstddef>
#include <cstring>
#include <string_view>
#include <utility>

#include "src/server/protocol.hpp"
#include "src/util/error.hpp"

namespace punt::server {
namespace {

std::string errno_text() { return std::string(std::strerror(errno)); }

/// "host:port" with IPv6 hosts re-bracketed, as in the accepted grammar.
std::string tcp_text(const std::string& host, std::uint16_t port) {
  const bool ipv6 = host.find(':') != std::string::npos;
  return "tcp://" + (ipv6 ? "[" + host + "]" : host) + ":" + std::to_string(port);
}

/// getaddrinfo for a TCP endpoint; `passive` selects bind-side semantics
/// (AI_PASSIVE wildcards an empty host).  The caller owns the returned list.
addrinfo* resolve_tcp(const Endpoint& endpoint, bool passive) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = passive ? AI_PASSIVE : 0;
  addrinfo* found = nullptr;
  const std::string port = std::to_string(endpoint.port);
  const int rc = ::getaddrinfo(endpoint.host.empty() ? nullptr : endpoint.host.c_str(),
                               port.c_str(), &hints, &found);
  if (rc != 0) {
    throw Error("cannot resolve '" + endpoint.describe() +
                "': " + std::string(::gai_strerror(rc)));
  }
  return found;
}

void set_nodelay(int fd) {
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

/// The Unix listener keeps PR 5's flock-on-`<path>.lock` ownership story
/// verbatim (moved here from Server::start()): a probe-then-unlink has a
/// window in which two concurrently starting daemons both see a dead socket
/// and one unlinks the other's fresh bind; an flock dies with its holder,
/// so a crashed server's path is reclaimed with no staleness heuristic.
/// The small .lock file itself is deliberately never deleted — unlinking it
/// would hand a second daemon a different inode to lock, reopening the race.
class UnixListener final : public Listener {
 public:
  explicit UnixListener(Endpoint endpoint) : endpoint_(std::move(endpoint)) {}
  ~UnixListener() override {
    close_fd();
    cleanup();
  }

  void open() override {
    sockaddr_un address = unix_address(endpoint_.path);
    const std::string lock_path = endpoint_.path + ".lock";
    lock_fd_ = ::open(lock_path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
    if (lock_fd_ < 0) {
      throw Error("serve: cannot open lock file '" + lock_path + "': " + errno_text());
    }
    if (::flock(lock_fd_, LOCK_EX | LOCK_NB) != 0) {
      ::close(lock_fd_);
      lock_fd_ = -1;
      throw Error("serve: a server is already listening on '" + endpoint_.path +
                  "' (shut it down first, or pick another --socket path)");
    }
    // Holding the lock, any file at the socket path is ours to replace: a
    // previous owner either exited (unlinking it) or crashed (leaving it
    // stale).
    ::unlink(endpoint_.path.c_str());
    fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) {
      const std::string why = errno_text();
      cleanup();
      throw Error("serve: cannot create socket: " + why);
    }
    if (::bind(fd_, reinterpret_cast<sockaddr*>(&address), sizeof address) != 0) {
      const std::string why = errno_text();
      close_fd();
      cleanup();
      throw Error("serve: cannot bind '" + endpoint_.path + "': " + why);
    }
    if (::listen(fd_, 64) != 0) {
      const std::string why = errno_text();
      close_fd();
      ::unlink(endpoint_.path.c_str());
      cleanup();
      throw Error("serve: cannot listen on '" + endpoint_.path + "': " + why);
    }
    bound_ = true;
  }

  void cleanup() override {
    if (bound_) {
      ::unlink(endpoint_.path.c_str());
      bound_ = false;
    }
    if (lock_fd_ >= 0) {
      ::close(lock_fd_);  // closing drops the flock; the file stays
      lock_fd_ = -1;
    }
  }

  bool needs_handshake() const override { return false; }
  const Endpoint& local_endpoint() const override { return endpoint_; }

 private:
  Endpoint endpoint_;
  int lock_fd_ = -1;
  bool bound_ = false;
};

class TcpListener final : public Listener {
 public:
  explicit TcpListener(Endpoint endpoint) : endpoint_(std::move(endpoint)) {}
  ~TcpListener() override { close_fd(); }

  void open() override {
    addrinfo* found = resolve_tcp(endpoint_, /*passive=*/true);
    std::string last_error = "no usable address";
    for (addrinfo* entry = found; entry != nullptr; entry = entry->ai_next) {
      fd_ = ::socket(entry->ai_family, entry->ai_socktype | SOCK_CLOEXEC,
                     entry->ai_protocol);
      if (fd_ < 0) {
        last_error = errno_text();
        continue;
      }
      // SO_REUSEADDR skips the TIME_WAIT cooldown on restart; a *live*
      // listener on the port still refuses the bind — which is the whole
      // TCP ownership story (no lock file: the kernel arbitrates).
      const int one = 1;
      (void)::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
      if (::bind(fd_, entry->ai_addr, entry->ai_addrlen) == 0 &&
          ::listen(fd_, 64) == 0) {
        break;
      }
      last_error = errno_text();
      close_fd();
    }
    ::freeaddrinfo(found);
    if (fd_ < 0) {
      throw Error("serve: cannot listen on '" + endpoint_.describe() +
                  "': " + last_error +
                  " (is another daemon bound there? TCP ownership is "
                  "bind-succeeds-or-refuse)");
    }
    // An ephemeral bind (port 0) learns its kernel-assigned port here, so
    // local_endpoint() is always reconnectable.
    sockaddr_storage bound{};
    socklen_t length = sizeof bound;
    if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &length) == 0) {
      if (bound.ss_family == AF_INET) {
        endpoint_.port =
            ntohs(reinterpret_cast<const sockaddr_in*>(&bound)->sin_port);
      } else if (bound.ss_family == AF_INET6) {
        endpoint_.port =
            ntohs(reinterpret_cast<const sockaddr_in6*>(&bound)->sin6_port);
      }
    }
  }

  void cleanup() override {}  // the kernel releases the port with the fd

  void configure_connection(int connection_fd) const override {
    set_nodelay(connection_fd);
  }

  bool needs_handshake() const override { return true; }
  const Endpoint& local_endpoint() const override { return endpoint_; }

 private:
  Endpoint endpoint_;
};

}  // namespace

std::string Endpoint::describe() const {
  return transport == Transport::Unix ? path : tcp_text(host, port);
}

Endpoint unix_endpoint(std::string path) {
  Endpoint endpoint;
  endpoint.transport = Transport::Unix;
  endpoint.path = std::move(path);
  return endpoint;
}

Endpoint tcp_endpoint(std::string host, std::uint16_t port) {
  Endpoint endpoint;
  endpoint.transport = Transport::Tcp;
  endpoint.host = std::move(host);
  endpoint.port = port;
  return endpoint;
}

Endpoint parse_endpoint(const std::string& text) {
  if (text.empty()) {
    throw Error("endpoint must not be empty: expected a Unix socket path or "
                "tcp://host:port");
  }
  constexpr std::string_view kPrefix = "tcp://";
  if (text.rfind(kPrefix, 0) != 0) return unix_endpoint(text);

  const std::string rest = text.substr(kPrefix.size());
  const std::string grammar =
      "'" + text + "': expected tcp://host:port (IPv6 in brackets, port 1..65535)";
  std::string host;
  std::string port_text;
  if (!rest.empty() && rest.front() == '[') {
    const std::size_t closing = rest.find(']');
    if (closing == std::string::npos) {
      throw Error("unterminated '[' in TCP endpoint " + grammar);
    }
    host = rest.substr(1, closing - 1);
    if (closing + 1 >= rest.size() || rest[closing + 1] != ':') {
      throw Error("missing ':port' after ']' in TCP endpoint " + grammar);
    }
    port_text = rest.substr(closing + 2);
  } else {
    const std::size_t colon = rest.find(':');
    if (colon == std::string::npos) {
      throw Error("missing ':port' in TCP endpoint " + grammar);
    }
    if (rest.find(':', colon + 1) != std::string::npos) {
      throw Error("unbracketed IPv6 literal in TCP endpoint " + grammar);
    }
    host = rest.substr(0, colon);
    port_text = rest.substr(colon + 1);
  }
  if (host.empty()) {
    throw Error("missing host in TCP endpoint " + grammar);
  }
  if (port_text.empty() ||
      port_text.find_first_not_of("0123456789") != std::string::npos ||
      port_text.size() > 5) {
    throw Error("malformed port in TCP endpoint " + grammar);
  }
  const unsigned long port = std::stoul(port_text);
  if (port < 1 || port > 65535) {
    throw Error("port out of range in TCP endpoint " + grammar);
  }
  return tcp_endpoint(std::move(host), static_cast<std::uint16_t>(port));
}

void Listener::configure_connection(int) const {}

void Listener::close_fd() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::unique_ptr<Listener> make_listener(Endpoint endpoint) {
  if (endpoint.transport == Transport::Tcp) {
    return std::make_unique<TcpListener>(std::move(endpoint));
  }
  return std::make_unique<UnixListener>(std::move(endpoint));
}

int connect_endpoint(const Endpoint& endpoint) {
  if (endpoint.transport == Transport::Unix) {
    sockaddr_un address = unix_address(endpoint.path);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
      throw Error("cannot create socket: " + errno_text());
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&address), sizeof address) != 0) {
      const std::string why = errno_text();
      ::close(fd);
      throw Error("cannot connect to '" + endpoint.path + "': " + why +
                  " (is `punt serve --socket=" + endpoint.path + "` running?)");
    }
    return fd;
  }
  addrinfo* found = resolve_tcp(endpoint, /*passive=*/false);
  std::string last_error = "no usable address";
  int fd = -1;
  for (addrinfo* entry = found; entry != nullptr; entry = entry->ai_next) {
    fd = ::socket(entry->ai_family, entry->ai_socktype | SOCK_CLOEXEC,
                  entry->ai_protocol);
    if (fd < 0) {
      last_error = errno_text();
      continue;
    }
    if (::connect(fd, entry->ai_addr, entry->ai_addrlen) == 0) break;
    last_error = errno_text();
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(found);
  if (fd < 0) {
    throw Error("cannot connect to '" + endpoint.describe() + "': " + last_error +
                " (is `punt serve --listen=" + endpoint.describe() +
                "` running there?)");
  }
  set_nodelay(fd);
  return fd;
}

}  // namespace punt::server
