// Transport endpoints for `punt serve` (DESIGN.md §9): one `Endpoint` type
// that both sides of every flag parse into — `--socket=<path>` /
// `--listen=tcp://<addr>:<port>` on the daemon, `--connect=<path|tcp://…>`
// on clients — plus the `Listener` seam that lets the accept loop in
// server.cpp run identically over a Unix domain socket and a TCP socket.
//
// Grammar: a `tcp://` prefix selects TCP and must be followed by
// `host:port` (IPv6 literals in brackets, `tcp://[::1]:9000`; port in
// 1..65535 — 0 is rejected at parse time because a *named* endpoint must be
// reconnectable, while tests and the self-spawned bench construct
// ephemeral-port endpoints directly).  Anything else is a Unix socket path.
//
// Ownership stories differ per transport and live in the listeners: the
// Unix listener keeps the flock-on-`<path>.lock` arbitration (a stale
// socket file left by a crash is reclaimed, a live daemon's path is
// refused), while TCP needs none of it — the kernel already arbitrates a
// (host, port): bind succeeds or the endpoint is taken.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

namespace punt::server {

enum class Transport : std::uint8_t { Unix, Tcp };

struct Endpoint {
  Transport transport = Transport::Unix;
  std::string path;         // Unix: the socket filesystem path
  std::string host;         // Tcp: address or name, without brackets
  std::uint16_t port = 0;   // Tcp: 0 = ephemeral (direct construction only)

  /// Human-readable form for diagnostics and stats: the bare path for Unix,
  /// "tcp://host:port" (IPv6 re-bracketed) for TCP.
  std::string describe() const;
};

Endpoint unix_endpoint(std::string path);
Endpoint tcp_endpoint(std::string host, std::uint16_t port);

/// Parses the shared endpoint grammar above.  Throws Error on an empty
/// string or a malformed/out-of-range `tcp://` form; never inspects the
/// filesystem (a Unix path's validity is the bind's concern).
Endpoint parse_endpoint(const std::string& text);

/// One listening socket, owned.  open() binds and listens (throwing Error
/// with the transport's own diagnostic), cleanup() idempotently releases
/// whatever the transport holds beyond the fd (the Unix socket file and
/// path lock; nothing for TCP).  The accept loop only ever touches fd().
class Listener {
 public:
  virtual ~Listener() = default;

  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Binds and listens.  Throws Error when the endpoint is unavailable —
  /// for TCP that *is* the ownership story: the kernel refuses a taken
  /// (host, port), so there is no lock file to arbitrate.
  virtual void open() = 0;

  /// Releases transport-held resources beyond the fd (socket file, path
  /// lock).  Idempotent; called by the server's drain and destructor.
  virtual void cleanup() = 0;

  /// Per-accepted-connection socket options (TCP_NODELAY on TCP — the
  /// request/response frames are latency-bound, not throughput-bound).
  virtual void configure_connection(int connection_fd) const;

  /// Whether accepted connections must pass the HMAC handshake before any
  /// request frame (true exactly for TCP; Unix connections are arbitrated
  /// by filesystem permissions already and stay handshake-free).
  virtual bool needs_handshake() const = 0;

  /// The endpoint as actually bound — for TCP with an ephemeral port this
  /// carries the kernel-assigned port after open().
  virtual const Endpoint& local_endpoint() const = 0;

  int fd() const { return fd_; }
  /// Closes the listening fd (stops accepting) without cleanup().
  void close_fd();

 protected:
  Listener() = default;
  int fd_ = -1;
};

/// The matching listener for an endpoint (not yet open()ed).
std::unique_ptr<Listener> make_listener(Endpoint endpoint);

/// Client side: a connected stream socket to `endpoint` (CLOEXEC;
/// TCP_NODELAY on TCP).  Throws Error with a "is `punt serve` running?"
/// hint when nothing listens there.
int connect_endpoint(const Endpoint& endpoint);

}  // namespace punt::server
