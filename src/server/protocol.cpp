#include "src/server/protocol.hpp"

#include <errno.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cmath>
#include <cstring>

#include "src/util/error.hpp"
#include "src/util/hmac.hpp"
#include "src/util/json.hpp"

namespace punt::server {
namespace {

constexpr const char* kDocument = "serve request JSON";

std::string errno_text() { return std::string(std::strerror(errno)); }

enum class ReadStatus : std::uint8_t { Ok, Eof, Timeout };

/// Reads exactly `count` bytes (retrying on EINTR and short reads) or
/// reports how the stream ended: EOF or a receive-deadline expiry at byte 0
/// are clean outcomes when `start_ok` (the stream is still at a frame
/// boundary); either of them mid-count throws — a half-delivered frame
/// cannot be resynchronised.
ReadStatus read_exact(int fd, char* buffer, std::size_t count, bool start_ok) {
  std::size_t got = 0;
  while (got < count) {
    const ssize_t n = ::read(fd, buffer + got, count - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // SO_RCVTIMEO expired (these fds are otherwise blocking).
        if (got == 0 && start_ok) return ReadStatus::Timeout;
        throw Error("serve protocol: read timed out mid-frame (" +
                    std::to_string(got) + " of " + std::to_string(count) +
                    " byte(s))");
      }
      throw Error("serve protocol: read failed: " + errno_text());
    }
    if (n == 0) {
      if (got == 0 && start_ok) return ReadStatus::Eof;
      throw Error("serve protocol: peer closed the stream mid-frame (" +
                  std::to_string(got) + " of " + std::to_string(count) + " byte(s))");
    }
    got += static_cast<std::size_t>(n);
  }
  return ReadStatus::Ok;
}

/// Writes all of `buffer`, retrying on EINTR and short writes.  SIGPIPE is
/// the caller's concern: the server ignores it process-wide and takes the
/// EPIPE throw; tests over pipes do the same.
void write_exact(int fd, const char* buffer, std::size_t count) {
  std::size_t sent = 0;
  while (sent < count) {
    const ssize_t n = ::write(fd, buffer + sent, count - sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw Error("serve protocol: write failed: " + errno_text());
    }
    sent += static_cast<std::size_t>(n);
  }
}

bool optional_bool(const util::JsonValue& object, const std::string& key, bool fallback) {
  const util::JsonValue* value = object.find(key);
  if (value == nullptr) return fallback;
  if (value->type != util::JsonValue::Type::Bool) {
    throw ParseError(std::string(kDocument) + " field '" + key + "' must be a boolean");
  }
  return value->boolean;
}

std::string optional_string(const util::JsonValue& object, const std::string& key,
                            const std::string& fallback) {
  const util::JsonValue* value = object.find(key);
  if (value == nullptr) return fallback;
  if (value->type != util::JsonValue::Type::String) {
    throw ParseError(std::string(kDocument) + " field '" + key + "' must be a string");
  }
  return value->string;
}

}  // namespace

sockaddr_un unix_address(const std::string& path) {
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof address.sun_path) {
    throw Error("serve socket path '" + path + "' must be 1.." +
                std::to_string(sizeof address.sun_path - 1) +
                " bytes (a Unix socket path limit)");
  }
  std::memcpy(address.sun_path, path.c_str(), path.size() + 1);
  return address;
}

std::string to_json(const Request& request) {
  const char* op = nullptr;
  switch (request.op) {
    case Op::Synth: op = "synth"; break;
    case Op::Check: op = "check"; break;
    case Op::Lint: op = "lint"; break;
    case Op::CacheStats: op = "cache-stats"; break;
    case Op::Ping: op = "ping"; break;
    case Op::Shutdown: op = "shutdown"; break;
  }
  std::string out = "{\"op\": \"" + std::string(op) + "\"";
  if (request.op == Op::Synth || request.op == Op::Check) {
    out += ", \"g\": \"" + util::json_escape(request.g_text) + "\"";
  }
  if (request.op == Op::Synth) {
    out += ", \"method\": \"" + util::json_escape(request.method) + "\"";
    out += ", \"arch\": \"" + util::json_escape(request.arch) + "\"";
    out += std::string(", \"minimize\": ") + (request.minimize ? "true" : "false");
    out += std::string(", \"eqn\": ") + (request.eqn ? "true" : "false");
    out += std::string(", \"verilog\": ") + (request.verilog ? "true" : "false");
  }
  if (request.op == Op::Lint) {
    out += ", \"files\": [";
    for (std::size_t i = 0; i < request.lint_files.size(); ++i) {
      if (i != 0) out += ", ";
      out += "{\"name\": \"" + util::json_escape(request.lint_files[i].name) +
             "\", \"g\": \"" + util::json_escape(request.lint_files[i].text) + "\"}";
    }
    out += "]";
    out += std::string(", \"deep\": ") + (request.lint_deep ? "true" : "false");
    out += std::string(", \"json\": ") + (request.lint_json ? "true" : "false");
    out += std::string(", \"werror\": ") + (request.lint_werror ? "true" : "false");
    out += ", \"werror_rules\": [";
    for (std::size_t i = 0; i < request.lint_werror_rules.size(); ++i) {
      if (i != 0) out += ", ";
      out += "\"" + util::json_escape(request.lint_werror_rules[i]) + "\"";
    }
    out += "]";
  }
  out += "}";
  return out;
}

std::string to_json(const Response& response) {
  std::string out = std::string("{\"ok\": ") + (response.ok ? "true" : "false");
  if (response.ok) {
    out += ", \"exit\": " + std::to_string(response.exit_code);
    out += ", \"output\": \"" + util::json_escape(response.output) + "\"";
    out += ", \"log\": \"" + util::json_escape(response.log) + "\"";
  } else {
    out += ", \"error\": \"" + util::json_escape(response.error) + "\"";
  }
  out += "}";
  return out;
}

Request request_from_json(std::string_view text) {
  const util::JsonValue root = util::parse_json(text);
  if (root.type != util::JsonValue::Type::Object) {
    throw ParseError(std::string(kDocument) + " must be an object");
  }
  Request request;
  const std::string op = util::json_string(root, "op", kDocument);
  if (op == "synth") {
    request.op = Op::Synth;
  } else if (op == "check") {
    request.op = Op::Check;
  } else if (op == "lint") {
    request.op = Op::Lint;
  } else if (op == "cache-stats") {
    request.op = Op::CacheStats;
  } else if (op == "ping") {
    request.op = Op::Ping;
  } else if (op == "shutdown") {
    request.op = Op::Shutdown;
  } else {
    throw ParseError("serve request has unknown op '" + op +
                     "'; this build handles synth, check, lint, cache-stats, "
                     "ping, shutdown");
  }
  if (request.op == Op::Synth || request.op == Op::Check) {
    request.g_text = util::json_string(root, "g", kDocument);
  }
  if (request.op == Op::Synth) {
    request.method = optional_string(root, "method", request.method);
    if (request.method != "approx" && request.method != "exact" &&
        request.method != "sg") {
      throw ParseError("serve request has unknown method '" + request.method +
                       "'; expected approx, exact or sg");
    }
    request.arch = optional_string(root, "arch", request.arch);
    if (request.arch != "acg" && request.arch != "c" && request.arch != "rs") {
      throw ParseError("serve request has unknown arch '" + request.arch +
                       "'; expected acg, c or rs");
    }
    request.minimize = optional_bool(root, "minimize", request.minimize);
    request.eqn = optional_bool(root, "eqn", request.eqn);
    request.verilog = optional_bool(root, "verilog", request.verilog);
  }
  if (request.op == Op::Lint) {
    const util::JsonValue& files =
        util::json_require(root, "files", util::JsonValue::Type::Array, kDocument);
    request.lint_files.reserve(files.array.size());
    for (const util::JsonValue& entry : files.array) {
      if (entry.type != util::JsonValue::Type::Object) {
        throw ParseError(std::string(kDocument) +
                         " field 'files' must hold objects with 'name' and 'g'");
      }
      Request::LintFile file;
      file.name = util::json_string(entry, "name", kDocument);
      file.text = util::json_string(entry, "g", kDocument);
      request.lint_files.push_back(std::move(file));
    }
    request.lint_deep = optional_bool(root, "deep", request.lint_deep);
    request.lint_json = optional_bool(root, "json", request.lint_json);
    request.lint_werror = optional_bool(root, "werror", request.lint_werror);
    if (const util::JsonValue* rules = root.find("werror_rules")) {
      if (rules->type != util::JsonValue::Type::Array) {
        throw ParseError(std::string(kDocument) +
                         " field 'werror_rules' must be an array of rule ids");
      }
      for (const util::JsonValue& rule : rules->array) {
        if (rule.type != util::JsonValue::Type::String) {
          throw ParseError(std::string(kDocument) +
                           " field 'werror_rules' must be an array of rule ids");
        }
        request.lint_werror_rules.push_back(rule.string);
      }
    }
  }
  return request;
}

Response response_from_json(std::string_view text) {
  const util::JsonValue root = util::parse_json(text);
  if (root.type != util::JsonValue::Type::Object) {
    throw ParseError("serve response JSON must be an object");
  }
  Response response;
  response.ok = util::json_bool(root, "ok", "serve response JSON");
  if (response.ok) {
    const double exit = util::json_number(root, "exit", "serve response JSON");
    // The socket peer is untrusted; a double outside int range makes the
    // cast undefined behaviour.  Real exit codes live in [0, 255].
    if (!(exit >= 0) || exit > 255 || exit != static_cast<int>(exit)) {
      throw ParseError("serve response has exit code " + std::to_string(exit) +
                       "; expected an integer in 0..255");
    }
    response.exit_code = static_cast<int>(exit);
    response.output = util::json_string(root, "output", "serve response JSON");
    response.log = util::json_string(root, "log", "serve response JSON");
  } else {
    response.error = util::json_string(root, "error", "serve response JSON");
  }
  return response;
}

void set_receive_timeout(int fd, double seconds) {
  timeval deadline{};
  if (seconds > 0) {
    deadline.tv_sec = static_cast<time_t>(seconds);
    deadline.tv_usec = static_cast<suseconds_t>(
        (seconds - std::floor(seconds)) * 1e6);
    // A sub-microsecond positive deadline must not round to "disabled".
    if (deadline.tv_sec == 0 && deadline.tv_usec == 0) deadline.tv_usec = 1;
  }
  if (::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &deadline, sizeof deadline) != 0) {
    throw Error("serve protocol: cannot set receive deadline: " + errno_text());
  }
}

FrameStatus read_frame(int fd, std::string& payload) {
  unsigned char prefix[4];
  switch (read_exact(fd, reinterpret_cast<char*>(prefix), sizeof prefix, true)) {
    case ReadStatus::Eof:
      return FrameStatus::Eof;
    case ReadStatus::Timeout:
      return FrameStatus::IdleTimeout;
    case ReadStatus::Ok:
      break;
  }
  const std::uint32_t length = static_cast<std::uint32_t>(prefix[0]) |
                               (static_cast<std::uint32_t>(prefix[1]) << 8) |
                               (static_cast<std::uint32_t>(prefix[2]) << 16) |
                               (static_cast<std::uint32_t>(prefix[3]) << 24);
  if (length == 0) {
    throw Error("serve protocol: zero-length frame");
  }
  if (length > kMaxFrameBytes) {
    // Refuse before buffering: the declared size is the attack, reading it
    // would be the damage.
    throw Error("serve protocol: frame of " + std::to_string(length) +
                " bytes exceeds the " + std::to_string(kMaxFrameBytes) + "-byte limit");
  }
  payload.resize(length);
  read_exact(fd, payload.data(), length, false);
  return FrameStatus::Ok;
}

void write_frame(int fd, std::string_view payload) {
  if (payload.size() > kMaxFrameBytes) {
    throw Error("serve protocol: refusing to send a frame of " +
                std::to_string(payload.size()) + " bytes (limit " +
                std::to_string(kMaxFrameBytes) + ")");
  }
  const std::uint32_t length = static_cast<std::uint32_t>(payload.size());
  const unsigned char prefix[4] = {
      static_cast<unsigned char>(length & 0xFF),
      static_cast<unsigned char>((length >> 8) & 0xFF),
      static_cast<unsigned char>((length >> 16) & 0xFF),
      static_cast<unsigned char>((length >> 24) & 0xFF),
  };
  // Prefix and body are written separately — the fd is used by one thread
  // per connection, so there is no interleaving to guard against and no
  // reason to copy a multi-megabyte payload just to prepend 4 bytes.
  write_exact(fd, reinterpret_cast<const char*>(prefix), sizeof prefix);
  write_exact(fd, payload.data(), payload.size());
}

namespace {

/// Best-effort refusal verdict; the peer may already be gone.
void send_refusal(int fd, const std::string& why) {
  Response refusal;
  refusal.error = "unauthorized: " + why;
  try {
    write_frame(fd, to_json(refusal));
  } catch (...) {
  }
}

}  // namespace

std::string auth_mac_hex(const std::string& token, const std::string& nonce_hex) {
  return util::to_hex(util::hmac_sha256(token, nonce_hex));
}

bool server_handshake(int fd, const std::string& token, std::string& why) {
  std::string nonce_hex;
  try {
    nonce_hex = util::random_hex(kNonceBytes);
    write_frame(fd, "{\"auth\": \"hmac-sha256\", \"nonce\": \"" + nonce_hex + "\"}");
  } catch (const std::exception& e) {
    why = e.what();
    return false;
  }
  std::string mac;
  try {
    std::string payload;
    switch (read_frame(fd, payload)) {
      case FrameStatus::Eof:
        why = "peer closed during the handshake";
        return false;  // nobody left to refuse
      case FrameStatus::IdleTimeout:
        why = "handshake deadline expired";
        send_refusal(fd, why);
        return false;
      case FrameStatus::Ok:
        break;
    }
    const util::JsonValue root = util::parse_json(payload);
    if (root.type != util::JsonValue::Type::Object) {
      throw ParseError("serve auth answer must be a JSON object");
    }
    mac = util::json_string(root, "mac", "serve auth answer JSON");
  } catch (const std::exception& e) {
    why = std::string("malformed handshake answer: ") + e.what();
    send_refusal(fd, why);
    return false;
  }
  // Constant-time verify: a remote peer must not learn the prefix length at
  // which its guess diverged.
  if (!util::constant_time_equal(mac, auth_mac_hex(token, nonce_hex))) {
    why = "MAC mismatch (wrong or missing token)";
    send_refusal(fd, why);
    return false;
  }
  Response admitted;
  admitted.ok = true;
  try {
    write_frame(fd, to_json(admitted));
  } catch (const std::exception& e) {
    why = std::string("peer vanished before the auth verdict: ") + e.what();
    return false;
  }
  return true;
}

void client_handshake(int fd, const std::string& token) {
  std::string payload;
  if (read_frame(fd, payload) == FrameStatus::Eof) {
    throw Error("the server closed the connection during the auth handshake");
  }
  const util::JsonValue root = util::parse_json(payload);
  if (root.type != util::JsonValue::Type::Object) {
    throw ParseError("serve auth challenge must be a JSON object");
  }
  const std::string scheme = util::json_string(root, "auth", "serve auth challenge");
  if (scheme != "hmac-sha256") {
    throw Error("the server requires unsupported auth scheme '" + scheme + "'");
  }
  const std::string nonce_hex =
      util::json_string(root, "nonce", "serve auth challenge");
  write_frame(fd, "{\"mac\": \"" + auth_mac_hex(token, nonce_hex) + "\"}");
  if (read_frame(fd, payload) == FrameStatus::Eof) {
    throw Error("the server closed the connection without an auth verdict");
  }
  const Response verdict = response_from_json(payload);
  if (!verdict.ok) {
    throw Error("the server refused the connection: " + verdict.error +
                " (does --token-file match the daemon's?)");
  }
}

}  // namespace punt::server
