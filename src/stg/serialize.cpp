#include "src/stg/serialize.hpp"

#include <utility>

#include "src/util/error.hpp"

namespace punt::stg {
namespace {

constexpr std::uint64_t kMaxElements = 1u << 24;

}  // namespace

void write_stg(const Stg& stg, util::BinaryWriter& out) {
  out.str(stg.name());

  out.u64(stg.signal_count());
  for (std::size_t s = 0; s < stg.signal_count(); ++s) {
    const SignalId id(static_cast<std::uint32_t>(s));
    out.str(stg.signal_name(id));
    out.u8(static_cast<std::uint8_t>(stg.signal_kind(id)));
    out.u8(stg.initial_value(id));
  }

  const pn::PetriNet& net = stg.net();
  out.u64(net.transition_count());
  for (std::size_t t = 0; t < net.transition_count(); ++t) {
    const Label& label = stg.label(pn::TransitionId(static_cast<std::uint32_t>(t)));
    out.u32(label.signal.value);
    out.u8(static_cast<std::uint8_t>(label.polarity));
    out.u8(label.dummy ? 1 : 0);
  }

  out.u64(net.place_count());
  for (std::size_t p = 0; p < net.place_count(); ++p) {
    const pn::PlaceId id(static_cast<std::uint32_t>(p));
    out.str(net.place_name(id));
    out.u32(net.initial_marking().tokens(id));
  }

  // Arcs, grouped per transition (preset then postset) in id order — the
  // replay order is immaterial for ids but kept deterministic anyway.
  for (std::size_t t = 0; t < net.transition_count(); ++t) {
    const pn::TransitionId id(static_cast<std::uint32_t>(t));
    out.u64(net.pre(id).size());
    for (const pn::PlaceId p : net.pre(id)) out.u32(p.value);
    out.u64(net.post(id).size());
    for (const pn::PlaceId p : net.post(id)) out.u32(p.value);
  }
}

Stg read_stg(util::BinaryReader& in) {
  Stg stg;
  stg.set_name(in.str());

  const std::size_t signals = in.count(kMaxElements, "signal");
  for (std::size_t s = 0; s < signals; ++s) {
    const std::string name = in.str();
    const auto kind = static_cast<SignalKind>(in.u8());
    if (kind != SignalKind::Input && kind != SignalKind::Output &&
        kind != SignalKind::Internal && kind != SignalKind::Dummy) {
      throw ParseError("STG payload corrupt: unknown signal kind for '" + name + "'");
    }
    const SignalId id = stg.add_signal(name, kind);
    const std::uint8_t initial = in.u8();
    if (initial > 1) {
      throw ParseError("STG payload corrupt: initial value of '" + name +
                       "' is " + std::to_string(initial) + ", expected 0 or 1");
    }
    // Unconditional (dummies included): the writer records every signal's
    // bit, and codes serialised elsewhere embed it.
    stg.set_initial_value(id, initial);
  }

  const std::size_t transitions = in.count(kMaxElements, "transition");
  for (std::size_t t = 0; t < transitions; ++t) {
    const SignalId signal(in.u32());
    const std::uint8_t polarity = in.u8();
    const bool dummy = in.u8() != 0;
    if (!signal.valid() || signal.index() >= signals || polarity > 1) {
      throw ParseError("STG payload corrupt: transition " + std::to_string(t) +
                       " has an out-of-range label");
    }
    // Replaying add_transition in id order regenerates the ids 0..n-1 and
    // the astg-convention instance names ("a+", "a+/2", ...).
    if (dummy) {
      stg.add_dummy_transition(signal);
    } else {
      stg.add_transition(signal, static_cast<Polarity>(polarity));
    }
  }

  pn::PetriNet& net = stg.net();
  const std::size_t places = in.count(kMaxElements, "place");
  for (std::size_t p = 0; p < places; ++p) {
    const std::string name = in.str();
    const pn::PlaceId id = net.add_place(name);
    net.set_initial_tokens(id, in.u32());
  }

  for (std::size_t t = 0; t < transitions; ++t) {
    const pn::TransitionId id(static_cast<std::uint32_t>(t));
    const auto read_place = [&](const char* what) {
      const pn::PlaceId p(in.u32());
      if (!p.valid() || p.index() >= places) {
        throw ParseError("STG payload corrupt: " + std::string(what) +
                         " arc of transition " + std::to_string(t) +
                         " names place " + std::to_string(p.value) + " of " +
                         std::to_string(places));
      }
      return p;
    };
    const std::size_t pre = in.count(kMaxElements, "preset arc");
    for (std::size_t k = 0; k < pre; ++k) net.add_arc(read_place("preset"), id);
    const std::size_t post = in.count(kMaxElements, "postset arc");
    for (std::size_t k = 0; k < post; ++k) net.add_arc(id, read_place("postset"));
  }
  return stg;
}

}  // namespace punt::stg
