// Binary (de)serialisation of an STG, preserving element ids exactly.
//
// The on-disk model store cannot persist the STG as `.g` text: parse_g
// assigns transition ids in parse order, which differs from the original
// construction order, and the persisted unfolding/state-graph payloads
// reference transitions *by id*.  This writer dumps the STG structurally —
// signals, transitions, places, arcs and the initial state in id order —
// and the reader replays the same construction through the public builder
// API, so every SignalId / TransitionId / PlaceId of the rebuilt STG equals
// its original.
//
// A damaged payload throws ParseError / ValidationError, never yields a
// malformed STG (the builder API re-validates names and ids as it replays).
#pragma once

#include "src/stg/stg.hpp"
#include "src/util/binio.hpp"

namespace punt::stg {

/// Appends the STG's full structure to `out`.
void write_stg(const Stg& stg, util::BinaryWriter& out);

/// Rebuilds an STG from write_stg() output with identical ids throughout.
Stg read_stg(util::BinaryReader& in);

}  // namespace punt::stg
