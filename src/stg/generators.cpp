#include "src/stg/generators.hpp"

#include <string>

#include "src/util/error.hpp"

namespace punt::stg {
namespace {

/// Adds a fresh place `name` with arcs src -> place -> dst.
pn::PlaceId connect(Stg& stg, pn::TransitionId src, pn::TransitionId dst,
                    const std::string& name, bool marked = false) {
  const pn::PlaceId p = stg.net().add_place(name);
  stg.net().add_arc(src, p);
  stg.net().add_arc(p, dst);
  if (marked) stg.net().set_initial_tokens(p, 1);
  return p;
}

}  // namespace

Stg make_paper_fig1() {
  Stg stg;
  stg.set_name("paper_fig1");
  // The free choice at p1 is between +a and +c/2, so a and c belong to the
  // environment; the paper synthesises the output b.
  const SignalId a = stg.add_signal("a", SignalKind::Input);
  const SignalId b = stg.add_signal("b", SignalKind::Output);
  const SignalId c = stg.add_signal("c", SignalKind::Input);

  const pn::TransitionId a_up = stg.add_transition(a, Polarity::Rise);
  const pn::TransitionId a_dn = stg.add_transition(a, Polarity::Fall);
  const pn::TransitionId b_up1 = stg.add_transition(b, Polarity::Rise);
  const pn::TransitionId b_up2 = stg.add_transition(b, Polarity::Rise);  // b+/2
  const pn::TransitionId b_dn = stg.add_transition(b, Polarity::Fall);
  const pn::TransitionId c_up1 = stg.add_transition(c, Polarity::Rise);
  const pn::TransitionId c_up2 = stg.add_transition(c, Polarity::Rise);  // c+/2
  const pn::TransitionId c_dn = stg.add_transition(c, Polarity::Fall);

  pn::PetriNet& net = stg.net();
  const pn::PlaceId p1 = net.add_place("p1");
  const pn::PlaceId p2 = net.add_place("p2");
  const pn::PlaceId p3 = net.add_place("p3");
  const pn::PlaceId p4 = net.add_place("p4");
  const pn::PlaceId p5 = net.add_place("p5");
  const pn::PlaceId p6 = net.add_place("p6");
  const pn::PlaceId p7 = net.add_place("p7");
  const pn::PlaceId p8 = net.add_place("p8");
  const pn::PlaceId p9 = net.add_place("p9");

  // Branch A: +a forks (p2, p3); +b consumes p2, +c consumes p3; -a joins.
  net.add_arc(p1, a_up);
  net.add_arc(a_up, p2);
  net.add_arc(a_up, p3);
  net.add_arc(p2, b_up1);
  net.add_arc(b_up1, p5);
  net.add_arc(p3, c_up1);
  net.add_arc(c_up1, p6);
  net.add_arc(c_up1, p8);
  net.add_arc(p5, a_dn);
  net.add_arc(p6, a_dn);
  net.add_arc(a_dn, p7);
  // Branch B: +c/2 then +b/2 (the choice at p1).
  net.add_arc(p1, c_up2);
  net.add_arc(c_up2, p4);
  net.add_arc(p4, b_up2);
  net.add_arc(b_up2, p7);
  net.add_arc(b_up2, p8);
  // Common tail: -c then -b back to p1.
  net.add_arc(p7, c_dn);
  net.add_arc(p8, c_dn);
  net.add_arc(c_dn, p9);
  net.add_arc(p9, b_dn);
  net.add_arc(b_dn, p1);

  net.set_initial_tokens(p1, 1);
  stg.validate();
  return stg;
}

Stg make_paper_fig4ab() {
  Stg stg;
  stg.set_name("paper_fig4ab");
  const SignalId a = stg.add_signal("a", SignalKind::Output);
  const SignalId b = stg.add_signal("b", SignalKind::Output);
  const SignalId c = stg.add_signal("c", SignalKind::Output);
  const SignalId d = stg.add_signal("d", SignalKind::Output);
  const SignalId e = stg.add_signal("e", SignalKind::Output);
  const SignalId f = stg.add_signal("f", SignalKind::Output);
  const SignalId g = stg.add_signal("g", SignalKind::Output);

  const pn::TransitionId a_up = stg.add_transition(a, Polarity::Rise);
  const pn::TransitionId a_dn = stg.add_transition(a, Polarity::Fall);
  const pn::TransitionId b_up = stg.add_transition(b, Polarity::Rise);
  const pn::TransitionId c_up = stg.add_transition(c, Polarity::Rise);
  const pn::TransitionId d_up = stg.add_transition(d, Polarity::Rise);
  const pn::TransitionId e_up = stg.add_transition(e, Polarity::Rise);
  const pn::TransitionId f_up = stg.add_transition(f, Polarity::Rise);
  const pn::TransitionId g_up = stg.add_transition(g, Polarity::Rise);

  pn::PetriNet& net = stg.net();
  const pn::PlaceId p1 = net.add_place("p1");
  const pn::PlaceId p2 = net.add_place("p2");
  const pn::PlaceId p3 = net.add_place("p3");
  const pn::PlaceId p4 = net.add_place("p4");
  const pn::PlaceId p5 = net.add_place("p5");
  const pn::PlaceId p6 = net.add_place("p6");
  const pn::PlaceId p7 = net.add_place("p7");
  const pn::PlaceId p8 = net.add_place("p8");
  const pn::PlaceId p9 = net.add_place("p9");
  const pn::PlaceId p10 = net.add_place("p10");
  const pn::PlaceId p11 = net.add_place("p11");

  net.add_arc(p1, a_up);
  net.add_arc(a_up, p2);
  net.add_arc(a_up, p3);
  net.add_arc(a_up, p4);
  net.add_arc(p2, b_up);
  net.add_arc(b_up, p5);
  net.add_arc(p5, e_up);
  net.add_arc(e_up, p8);
  net.add_arc(p3, c_up);
  net.add_arc(c_up, p6);
  net.add_arc(p6, f_up);
  net.add_arc(f_up, p9);
  net.add_arc(p4, d_up);
  net.add_arc(d_up, p7);
  net.add_arc(p7, g_up);
  net.add_arc(g_up, p10);
  net.add_arc(p8, a_dn);
  net.add_arc(p9, a_dn);
  net.add_arc(p10, a_dn);
  net.add_arc(a_dn, p11);

  net.set_initial_tokens(p1, 1);
  stg.validate();
  return stg;
}

Stg make_paper_fig4c() {
  Stg stg;
  stg.set_name("paper_fig4c");
  const SignalId a = stg.add_signal("a", SignalKind::Output);
  const SignalId b = stg.add_signal("b", SignalKind::Output);
  const SignalId c = stg.add_signal("c", SignalKind::Output);
  const SignalId d = stg.add_signal("d", SignalKind::Output);
  const SignalId e = stg.add_signal("e", SignalKind::Output);

  const pn::TransitionId a_up = stg.add_transition(a, Polarity::Rise);
  const pn::TransitionId a_dn = stg.add_transition(a, Polarity::Fall);
  const pn::TransitionId b_up = stg.add_transition(b, Polarity::Rise);
  const pn::TransitionId c_up = stg.add_transition(c, Polarity::Rise);
  const pn::TransitionId d_up = stg.add_transition(d, Polarity::Rise);
  const pn::TransitionId e_up = stg.add_transition(e, Polarity::Rise);

  pn::PetriNet& net = stg.net();
  const pn::PlaceId p1 = net.add_place("p1");
  const pn::PlaceId pa = net.add_place("pa");
  const pn::PlaceId p2 = net.add_place("p2");
  const pn::PlaceId p4 = net.add_place("p4");
  const pn::PlaceId p5 = net.add_place("p5");
  const pn::PlaceId p7 = net.add_place("p7");
  const pn::PlaceId p8 = net.add_place("p8");
  const pn::PlaceId p9 = net.add_place("p9");

  net.add_arc(p1, a_up);
  net.add_arc(a_up, pa);
  net.add_arc(pa, d_up);
  net.add_arc(d_up, p2);
  net.add_arc(d_up, p5);
  net.add_arc(p2, b_up);
  net.add_arc(b_up, p4);
  net.add_arc(p4, c_up);
  net.add_arc(c_up, p7);
  net.add_arc(p7, a_dn);
  net.add_arc(a_dn, p9);
  net.add_arc(p5, e_up);
  net.add_arc(e_up, p8);

  net.set_initial_tokens(p1, 1);
  stg.validate();
  return stg;
}

Stg make_muller_pipeline(std::size_t n) {
  if (n == 0) throw ValidationError("a Muller pipeline needs at least one stage");
  Stg stg;
  stg.set_name("muller" + std::to_string(n));

  std::vector<SignalId> sig(n + 1);
  std::vector<pn::TransitionId> up(n + 1), dn(n + 1);
  for (std::size_t i = 0; i <= n; ++i) {
    sig[i] = stg.add_signal("a" + std::to_string(i),
                            i == 0 ? SignalKind::Input : SignalKind::Output);
    up[i] = stg.add_transition(sig[i], Polarity::Rise);
    dn[i] = stg.add_transition(sig[i], Polarity::Fall);
  }
  for (std::size_t i = 0; i < n; ++i) {
    const std::string s = std::to_string(i);
    connect(stg, up[i], up[i + 1], "req_up" + s);            // a_i+   -> a_{i+1}+
    connect(stg, up[i + 1], dn[i], "ack_up" + s);            // a_{i+1}+ -> a_i-
    connect(stg, dn[i], dn[i + 1], "req_dn" + s);            // a_i-   -> a_{i+1}-
    connect(stg, dn[i + 1], up[i], "ack_dn" + s, true);      // a_{i+1}- -> a_i+ (marked)
  }
  // Boundary: the last stage acknowledges itself (the right environment is
  // eager), closing each signal's +/- alternation cycle.
  connect(stg, up[n], dn[n], "tail_up");
  connect(stg, dn[n], up[n], "tail_dn", true);
  stg.validate();
  return stg;
}

Stg make_counterflow_pipeline(std::size_t stages) {
  if (stages == 0) throw ValidationError("a counterflow pipeline needs at least one stage");
  Stg stg;
  stg.set_name("counterflow" + std::to_string(stages));

  // Forward (data) pipeline f0..fN and backward (results) pipeline b0..bN;
  // see DESIGN.md §4 for the substitution rationale.
  auto build_pipe = [&stg](const std::string& prefix, std::size_t n, bool input_head) {
    std::vector<pn::TransitionId> up(n + 1), dn(n + 1);
    for (std::size_t i = 0; i <= n; ++i) {
      const SignalId s = stg.add_signal(
          prefix + std::to_string(i),
          (i == 0 && input_head) ? SignalKind::Input : SignalKind::Output);
      up[i] = stg.add_transition(s, Polarity::Rise);
      dn[i] = stg.add_transition(s, Polarity::Fall);
    }
    for (std::size_t i = 0; i < n; ++i) {
      const std::string tag = prefix + std::to_string(i);
      connect(stg, up[i], up[i + 1], "ru_" + tag);
      connect(stg, up[i + 1], dn[i], "au_" + tag);
      connect(stg, dn[i], dn[i + 1], "rd_" + tag);
      connect(stg, dn[i + 1], up[i], "ad_" + tag, true);
    }
    connect(stg, up[n], dn[n], "tu_" + prefix);
    connect(stg, dn[n], up[n], "td_" + prefix, true);
  };
  build_pipe("f", stages, /*input_head=*/true);
  build_pipe("b", stages, /*input_head=*/true);
  stg.validate();
  return stg;
}

Stg make_vme_bus() {
  Stg stg;
  stg.set_name("vme_read");
  const SignalId dsr = stg.add_signal("dsr", SignalKind::Input);
  const SignalId ldtack = stg.add_signal("ldtack", SignalKind::Input);
  const SignalId d = stg.add_signal("d", SignalKind::Output);
  const SignalId lds = stg.add_signal("lds", SignalKind::Output);
  const SignalId dtack = stg.add_signal("dtack", SignalKind::Output);

  const pn::TransitionId dsr_up = stg.add_transition(dsr, Polarity::Rise);
  const pn::TransitionId dsr_dn = stg.add_transition(dsr, Polarity::Fall);
  const pn::TransitionId ldtack_up = stg.add_transition(ldtack, Polarity::Rise);
  const pn::TransitionId ldtack_dn = stg.add_transition(ldtack, Polarity::Fall);
  const pn::TransitionId d_up = stg.add_transition(d, Polarity::Rise);
  const pn::TransitionId d_dn = stg.add_transition(d, Polarity::Fall);
  const pn::TransitionId lds_up = stg.add_transition(lds, Polarity::Rise);
  const pn::TransitionId lds_dn = stg.add_transition(lds, Polarity::Fall);
  const pn::TransitionId dtack_up = stg.add_transition(dtack, Polarity::Rise);
  const pn::TransitionId dtack_dn = stg.add_transition(dtack, Polarity::Fall);

  // Read cycle; the next dsr+ only waits for dtack-, so lds-/ldtack- lag
  // into the next cycle and create the classic CSC conflict.
  connect(stg, dsr_up, lds_up, "c1");
  connect(stg, lds_up, ldtack_up, "c2");
  connect(stg, ldtack_up, d_up, "c3");
  connect(stg, d_up, dtack_up, "c4");
  connect(stg, dtack_up, dsr_dn, "c5");
  connect(stg, dsr_dn, d_dn, "c6");
  connect(stg, d_dn, dtack_dn, "c7");
  connect(stg, d_dn, lds_dn, "c8");
  connect(stg, lds_dn, ldtack_dn, "c9");
  connect(stg, dtack_dn, dsr_up, "c10", true);
  connect(stg, ldtack_dn, lds_up, "c11", true);
  stg.validate();
  return stg;
}

}  // namespace punt::stg
