#include "src/stg/g_format.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "src/util/error.hpp"
#include "src/util/strings.hpp"

namespace punt::stg {
namespace {

using util::Severity;
using util::SourceSpan;

/// Parser diagnostics carry the syntax rule id; duplicated constructs (a
/// signal declared twice, a duplicate arc) carry the duplicate-directive id
/// so `punt lint` groups them with the other STG001 findings.
constexpr const char* kSyntaxRule = "STG000";
constexpr const char* kDuplicateRule = "STG001";

/// A transition token decomposed into signal name, polarity and occurrence.
struct TransitionToken {
  std::string signal;
  std::optional<Polarity> polarity;  // nullopt for dummy tokens
  std::size_t occurrence = 1;
};

/// Splits "sig+/2" into its parts; returns nullopt when the token carries no
/// polarity sign (it is then either a dummy transition or a place name).
/// A malformed occurrence suffix sets `error` (same message the fail-fast
/// parser used to throw) and reads as a place.
std::optional<TransitionToken> parse_transition_token(std::string_view token,
                                                      std::string* error) {
  std::string_view body = token;
  std::size_t occurrence = 1;
  if (const std::size_t slash = body.rfind('/'); slash != std::string_view::npos) {
    const std::string_view suffix = body.substr(slash + 1);
    if (suffix.empty()) {
      if (error != nullptr) {
        *error = "empty occurrence suffix in '" + std::string(token) + "'";
      }
      return std::nullopt;
    }
    occurrence = 0;
    for (const char c : suffix) {
      if (c < '0' || c > '9') return std::nullopt;  // e.g. a name containing '/'
      occurrence = occurrence * 10 + static_cast<std::size_t>(c - '0');
    }
    if (occurrence == 0) {
      if (error != nullptr) {
        *error = "occurrence suffix 0 in '" + std::string(token) + "'";
      }
      return std::nullopt;
    }
    body = body.substr(0, slash);
  }
  if (body.empty()) return std::nullopt;
  TransitionToken out;
  out.occurrence = occurrence;
  const char last = body.back();
  if (last == '+' || last == '-') {
    out.polarity = last == '+' ? Polarity::Rise : Polarity::Fall;
    body.remove_suffix(1);
    if (body.empty()) return std::nullopt;
  }
  out.signal = std::string(body);
  return out;
}

/// Canonical token spelling used as map key ("a+", "a+/2", "dum/3").
std::string canonical_token(const TransitionToken& t) {
  std::string out = t.signal;
  if (t.polarity) out += *t.polarity == Polarity::Rise ? '+' : '-';
  if (t.occurrence > 1) out += "/" + std::to_string(t.occurrence);
  return out;
}

/// One whitespace-delimited token of a logical line, with the physical
/// source position it started at (continuation lines resolve to their own
/// physical line/column).
struct Token {
  std::string text;
  SourceSpan span;
};

/// A logical line: physical lines joined over trailing-backslash
/// continuations, comment-stripped and tokenized, with per-token provenance.
struct LogicalLine {
  std::vector<Token> tokens;
  std::string trimmed;  // comment-stripped, trimmed text (for diagnostics)
};

/// Splits `text` into provenance-carrying logical lines.  Mirrors
/// util::logical_lines exactly (trailing '\\' joins, '\r' stripped, '#'
/// comments stripped from the *joined* text), with each token mapped back to
/// the physical line/column it began at.
std::vector<LogicalLine> lex_lines(std::string_view text) {
  struct Segment {
    std::uint32_t line = 0;     // 1-based physical line
    std::size_t begin = 0;      // offset of the segment in the joined text
    std::size_t length = 0;
  };
  std::vector<LogicalLine> out;
  std::string joined;
  std::vector<Segment> segments;
  std::uint32_t line_no = 0;
  std::size_t pos = 0;

  auto flush = [&] {
    LogicalLine logical;
    // Comments strip from the joined text, exactly like the pre-provenance
    // parser (a '#' on the first physical line of a continuation comments
    // out the continuation too).
    std::string_view effective = joined;
    if (const std::size_t hash = effective.find('#'); hash != std::string_view::npos) {
      effective = effective.substr(0, hash);
    }
    logical.trimmed = std::string(trim(effective));
    // Tokenize, mapping each token's start offset through the segment table.
    std::size_t i = 0;
    while (i < effective.size()) {
      while (i < effective.size() && (effective[i] == ' ' || effective[i] == '\t')) ++i;
      std::size_t j = i;
      while (j < effective.size() && effective[j] != ' ' && effective[j] != '\t') ++j;
      if (j > i) {
        Token token;
        token.text = std::string(effective.substr(i, j - i));
        for (const Segment& seg : segments) {
          if (i >= seg.begin && i < seg.begin + std::max<std::size_t>(seg.length, 1)) {
            token.span.line = seg.line;
            token.span.column = static_cast<std::uint32_t>(i - seg.begin + 1);
            // Clamp the caret run to the segment so a token broken across a
            // continuation doesn't underline into the next physical line.
            token.span.length = static_cast<std::uint32_t>(
                std::min(j, seg.begin + seg.length) - i);
            break;
          }
        }
        logical.tokens.push_back(std::move(token));
      }
      i = j;
    }
    if (!logical.tokens.empty() || !logical.trimmed.empty()) out.push_back(std::move(logical));
    joined.clear();
    segments.clear();
  };

  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    std::string_view line =
        nl == std::string_view::npos ? text.substr(pos) : text.substr(pos, nl - pos);
    ++line_no;
    while (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    const bool continued = !line.empty() && line.back() == '\\';
    if (continued) line.remove_suffix(1);
    segments.push_back(Segment{line_no, joined.size(), line.size()});
    joined += line;
    if (!continued) flush();
    if (nl == std::string_view::npos) break;
    pos = nl + 1;
  }
  if (!joined.empty()) flush();  // dangling continuation at EOF
  return out;
}

/// Accumulates a non-negative integer with an overflow cap; returns nullopt
/// on non-digits or overflow (the pre-provenance parser crashed through
/// std::stoul on these).
std::optional<std::uint32_t> parse_count(std::string_view digits) {
  if (digits.empty()) return std::nullopt;
  std::uint64_t value = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
    if (value > 1'000'000'000) return std::nullopt;
  }
  return static_cast<std::uint32_t>(value);
}

}  // namespace

util::SourceSpan ParsedG::transition_span(const std::string& name) const {
  const auto it = transition_spans.find(name);
  return it != transition_spans.end() ? it->second : util::SourceSpan{};
}

util::SourceSpan ParsedG::place_span(const std::string& name) const {
  const auto it = place_spans.find(name);
  return it != place_spans.end() ? it->second : util::SourceSpan{};
}

util::SourceSpan ParsedG::signal_span(const std::string& name) const {
  const auto it = signal_spans.find(name);
  return it != signal_spans.end() ? it->second : util::SourceSpan{};
}

Code infer_initial_code(const Stg& stg, std::size_t state_budget) {
  const pn::PetriNet& net = stg.net();
  const std::size_t n = stg.signal_count();
  Code initial(n, 0);
  std::vector<std::uint8_t> resolved(n, 0);
  std::size_t unresolved = 0;
  for (std::size_t s = 0; s < n; ++s) {
    const SignalId sig(static_cast<std::uint32_t>(s));
    if (stg.signal_kind(sig) == SignalKind::Dummy || stg.instances_of(sig).empty()) {
      resolved[s] = 1;  // constants and dummies default to 0
    } else {
      ++unresolved;
    }
  }
  if (unresolved == 0) return initial;

  // Parity of signal toggles along the path to each visited marking.  For a
  // consistent STG the parity is path-independent, so storing one parity per
  // marking is sound; an actual inconsistency surfaces as a parity conflict.
  struct State {
    pn::Marking marking;
    std::vector<std::uint8_t> parity;
  };
  std::unordered_map<std::size_t, std::vector<std::size_t>> seen;  // hash -> state ids
  std::vector<State> states;
  std::deque<std::size_t> queue;

  auto intern = [&](pn::Marking m, std::vector<std::uint8_t> parity) {
    const std::size_t h = m.hash();
    for (const std::size_t id : seen[h]) {
      if (states[id].marking == m) {
        if (states[id].parity != parity) {
          throw ImplementabilityError(
              "inconsistent state assignment detected while inferring the "
              "initial code: a marking is reachable with two different signal "
              "parities");
        }
        return;
      }
    }
    seen[h].push_back(states.size());
    queue.push_back(states.size());
    states.push_back(State{std::move(m), std::move(parity)});
  };

  intern(net.initial_marking(), std::vector<std::uint8_t>(n, 0));
  while (!queue.empty() && unresolved > 0) {
    if (states.size() > state_budget) {
      throw CapacityError(
          "initial-code inference exceeded the state budget (" +
          std::to_string(state_budget) +
          " markings); add an explicit .init_values line to the .g source");
    }
    const std::size_t id = queue.front();
    queue.pop_front();
    const pn::Marking marking = states[id].marking;           // copy: states may grow
    const std::vector<std::uint8_t> parity = states[id].parity;
    for (const pn::TransitionId t : net.enabled_transitions(marking)) {
      const Label& label = stg.label(t);
      std::vector<std::uint8_t> next_parity = parity;
      if (!label.dummy) {
        const std::size_t s = label.signal.index();
        // value(marking) = initial ^ parity; firing a+ needs value 0, a- needs 1.
        const std::uint8_t implied_initial =
            label.rising() ? parity[s] : static_cast<std::uint8_t>(1 - parity[s]);
        if (!resolved[s]) {
          initial[s] = implied_initial;
          resolved[s] = 1;
          --unresolved;
        } else if (initial[s] != implied_initial) {
          throw ImplementabilityError(
              "inconsistent state assignment: transition '" + stg.transition_name(t) +
              "' implies initial value " + std::to_string(int(implied_initial)) +
              " for signal '" + stg.signal_name(label.signal) +
              "' but an earlier edge implied " + std::to_string(int(initial[s])));
        }
        next_parity[s] ^= 1;
      }
      intern(net.fire(marking, t), std::move(next_parity));
    }
  }
  if (unresolved > 0) {
    std::string names;
    for (std::size_t s = 0; s < n; ++s) {
      if (!resolved[s]) names += (names.empty() ? "" : ", ") +
                                 stg.signal_name(SignalId(static_cast<std::uint32_t>(s)));
    }
    throw ImplementabilityError(
        "could not infer initial values for signal(s) " + names +
        ": none of their transitions is reachable from the initial marking");
  }
  return initial;
}

ParsedG parse_g_collect(std::string_view text, util::DiagnosticSink& sink,
                        const ParseOptions& options) {
  (void)options;  // inference (the only option consumer) runs in parse_g()
  ParsedG parsed;
  Stg& stg = parsed.stg;
  std::map<std::string, SignalKind> declared;  // signal name -> kind
  std::vector<std::vector<Token>> graph_lines;
  std::vector<Token> marking_tokens;
  bool in_graph = false;

  auto declare = [&](const Token& token, SignalKind kind) {
    if (declared.contains(token.text)) {
      sink.report(kDuplicateRule, Severity::Error, token.span,
                  "signal '" + token.text + "' declared twice",
                  "remove the duplicate declaration (the first one wins)");
      return;
    }
    declared.emplace(token.text, kind);
    stg.add_signal(token.text, kind);
    parsed.signal_spans.emplace(token.text, token.span);
  };

  for (const LogicalLine& line : lex_lines(text)) {
    if (line.tokens.empty()) continue;
    const Token& head = line.tokens.front();

    if (head.text.front() == '.') {
      in_graph = false;
      const std::string& directive = head.text;
      if (directive == ".model" || directive == ".name") {
        if (line.tokens.size() >= 2) stg.set_name(line.tokens[1].text);
        parsed.model_spans.push_back(head.span);
      } else if (directive == ".inputs") {
        for (std::size_t i = 1; i < line.tokens.size(); ++i) {
          declare(line.tokens[i], SignalKind::Input);
        }
      } else if (directive == ".outputs") {
        for (std::size_t i = 1; i < line.tokens.size(); ++i) {
          declare(line.tokens[i], SignalKind::Output);
        }
      } else if (directive == ".internal") {
        for (std::size_t i = 1; i < line.tokens.size(); ++i) {
          declare(line.tokens[i], SignalKind::Internal);
        }
      } else if (directive == ".dummy") {
        for (std::size_t i = 1; i < line.tokens.size(); ++i) {
          declare(line.tokens[i], SignalKind::Dummy);
        }
      } else if (directive == ".graph") {
        in_graph = true;
      } else if (directive == ".marking") {
        parsed.marking_spans.push_back(head.span);
        for (std::size_t i = 1; i < line.tokens.size(); ++i) {
          // Braces are decoration: "{p0}", "{", "p0}" all reduce to names.
          Token token = line.tokens[i];
          std::erase(token.text, '{');
          std::erase(token.text, '}');
          if (!token.text.empty()) marking_tokens.push_back(std::move(token));
        }
      } else if (directive == ".init_values") {
        parsed.has_init_values = true;
        for (std::size_t i = 1; i < line.tokens.size(); ++i) {
          const Token& word = line.tokens[i];
          const std::size_t eq = word.text.find('=');
          if (eq == std::string::npos) {
            sink.report(kSyntaxRule, Severity::Error, word.span,
                        ".init_values entries must look like name=0|1, got '" +
                            word.text + "'");
            continue;
          }
          const std::string name = word.text.substr(0, eq);
          const std::string value = word.text.substr(eq + 1);
          if (value != "0" && value != "1") {
            sink.report(kSyntaxRule, Severity::Error, word.span,
                        "initial value of '" + name + "' must be 0 or 1");
            continue;
          }
          parsed.init_value_entries.push_back(ParsedG::InitValueEntry{
              name, static_cast<std::uint8_t>(value == "1"), word.span});
        }
      } else if (directive == ".end") {
        parsed.saw_end = true;
        break;
      } else if (directive == ".capacity" || directive == ".coords" ||
                 directive == ".slowenv" || directive == ".level") {
        // Accepted and ignored: these carry tool-specific hints that do not
        // affect the synthesis semantics.
      } else {
        sink.report(kSyntaxRule, Severity::Error, head.span,
                    "unknown directive '" + directive + "'");
      }
      continue;
    }

    if (!in_graph) {
      sink.report(kSyntaxRule, Severity::Error, head.span,
                  "unexpected line outside .graph section: '" + line.trimmed + "'",
                  "graph adjacency lines must follow a .graph directive");
      continue;
    }
    graph_lines.push_back(line.tokens);
  }
  if (!parsed.saw_end) {
    sink.report(kSyntaxRule, Severity::Error, SourceSpan{},
                "missing .end directive");
  }
  if (graph_lines.empty()) {
    sink.report(kSyntaxRule, Severity::Error, SourceSpan{}, "empty .graph section");
  } else {
    parsed.usable = true;
  }

  // Pass 1: find every transition token so instances can be created with
  // their canonical names ("a+" before "a+/2").
  struct InstanceKey {
    std::string signal;
    int polarity;  // 0 rise, 1 fall, 2 dummy
    bool operator<(const InstanceKey& o) const {
      return std::tie(signal, polarity) < std::tie(o.signal, o.polarity);
    }
  };
  std::map<InstanceKey, std::set<std::size_t>> occurrences;
  std::map<std::string, SourceSpan> token_sites;  // canonical spelling -> first site
  auto classify = [&](const Token& token) -> std::optional<TransitionToken> {
    std::string error;
    std::optional<TransitionToken> result = parse_transition_token(token.text, &error);
    if (!error.empty()) {
      sink.report(kSyntaxRule, Severity::Error, token.span, error);
      return std::nullopt;
    }
    if (!result) return std::nullopt;
    const auto it = declared.find(result->signal);
    if (it == declared.end()) return std::nullopt;  // an undeclared name is a place
    if (result->polarity && it->second == SignalKind::Dummy) {
      sink.report(kSyntaxRule, Severity::Error, token.span,
                  "dummy signal '" + result->signal + "' used with a polarity sign",
                  "dummy transitions are written without +/-");
      return std::nullopt;
    }
    if (!result->polarity && it->second != SignalKind::Dummy) {
      sink.report(kSyntaxRule, Severity::Error, token.span,
                  "signal '" + result->signal +
                      "' used as a transition without +/- (only dummies may be)",
                  "write '" + result->signal + "+' or '" + result->signal + "-'");
      return std::nullopt;
    }
    return result;
  };
  for (const auto& words : graph_lines) {
    for (const Token& token : words) {
      if (const auto result = classify(token)) {
        const int pol = result->polarity ? (*result->polarity == Polarity::Rise ? 0 : 1) : 2;
        occurrences[InstanceKey{result->signal, pol}].insert(result->occurrence);
        token_sites.emplace(canonical_token(*result), token.span);
      }
    }
  }
  std::unordered_map<std::string, pn::TransitionId> transition_by_name;
  for (const auto& [key, occs] : occurrences) {
    std::size_t expected = 1;
    bool gap_reported = false;
    for (const std::size_t occ : occs) {
      if (occ != expected && !gap_reported) {
        TransitionToken probe;
        probe.signal = key.signal;
        if (key.polarity != 2) {
          probe.polarity = key.polarity == 0 ? Polarity::Rise : Polarity::Fall;
        }
        probe.occurrence = occ;
        sink.report(kSyntaxRule, Severity::Error,
                    token_sites.contains(canonical_token(probe))
                        ? token_sites[canonical_token(probe)]
                        : SourceSpan{},
                    "occurrences of transition '" + key.signal +
                        "' are not contiguous: missing /" + std::to_string(expected),
                    "renumber the /k suffixes to run 1, 2, 3, ...");
        gap_reported = true;
      }
      ++expected;
      const SignalId sig = *stg.find_signal(key.signal);
      const pn::TransitionId t =
          key.polarity == 2
              ? stg.add_dummy_transition(sig)
              : stg.add_transition(sig, key.polarity == 0 ? Polarity::Rise : Polarity::Fall);
      TransitionToken tok;
      tok.signal = key.signal;
      if (key.polarity != 2) tok.polarity = key.polarity == 0 ? Polarity::Rise : Polarity::Fall;
      tok.occurrence = occ;
      const std::string written = canonical_token(tok);
      transition_by_name.emplace(written, t);
      const auto site = token_sites.find(written);
      parsed.transition_spans.emplace(stg.transition_name(t),
                                      site != token_sites.end() ? site->second
                                                                : SourceSpan{});
    }
  }

  // Pass 2: create places and arcs.
  std::unordered_map<std::string, pn::PlaceId> place_by_name;
  auto get_place = [&](const Token& token) {
    const auto it = place_by_name.find(token.text);
    if (it != place_by_name.end()) return it->second;
    const pn::PlaceId p = stg.net().add_place(token.text);
    place_by_name.emplace(token.text, p);
    parsed.place_spans.emplace(token.text, token.span);
    return p;
  };
  auto lookup_transition = [&](const std::string& token) -> std::optional<pn::TransitionId> {
    const auto it = transition_by_name.find(token);
    if (it == transition_by_name.end()) return std::nullopt;
    return it->second;
  };
  auto arc_t_to_p = [&](pn::TransitionId t, pn::PlaceId p, const SourceSpan& span) {
    const auto& post = stg.net().post(t);
    if (std::find(post.begin(), post.end(), p) != post.end()) {
      sink.report(kDuplicateRule, Severity::Error, span,
                  "duplicate arc " + stg.net().transition_name(t) + " -> " +
                      stg.net().place_name(p),
                  "remove the repeated adjacency");
      return;
    }
    stg.net().add_arc(t, p);
  };
  auto arc_p_to_t = [&](pn::PlaceId p, pn::TransitionId t, const SourceSpan& span) {
    const auto& pre = stg.net().pre(t);
    if (std::find(pre.begin(), pre.end(), p) != pre.end()) {
      sink.report(kDuplicateRule, Severity::Error, span,
                  "duplicate arc " + stg.net().place_name(p) + " -> " +
                      stg.net().transition_name(t),
                  "remove the repeated adjacency");
      return;
    }
    stg.net().add_arc(p, t);
  };
  for (const auto& words : graph_lines) {
    if (words.size() < 2) {
      sink.report(kSyntaxRule, Severity::Error, words.front().span,
                  "a .graph line needs a source and at least one target");
      continue;
    }
    const std::optional<pn::TransitionId> src_t = lookup_transition(words.front().text);
    for (std::size_t i = 1; i < words.size(); ++i) {
      const std::optional<pn::TransitionId> dst_t = lookup_transition(words[i].text);
      if (src_t && dst_t) {
        Token implicit = words[i];
        implicit.text = "<" + words.front().text + "," + words[i].text + ">";
        const pn::PlaceId p = get_place(implicit);
        arc_t_to_p(*src_t, p, words[i].span);
        arc_p_to_t(p, *dst_t, words[i].span);
      } else if (src_t && !dst_t) {
        arc_t_to_p(*src_t, get_place(words[i]), words[i].span);
      } else if (!src_t && dst_t) {
        arc_p_to_t(get_place(words.front()), *dst_t, words[i].span);
      } else {
        sink.report(kSyntaxRule, Severity::Error, words[i].span,
                    "arc between two places: '" + words.front().text + "' -> '" +
                        words[i].text + "'",
                    "at least one endpoint of every arc must be a transition");
      }
    }
  }

  // Initial marking.  Tokens: "p", "p=2", "<a+,b->", "<a+,b->=2".
  for (const Token& token : marking_tokens) {
    std::string name = token.text;
    std::uint32_t count = 1;
    std::size_t eq = std::string::npos;
    if (const std::size_t last_eq = token.text.rfind('='); last_eq != std::string::npos) {
      if (token.text.find('>') < last_eq ||
          token.text.find('<') == std::string::npos) {
        eq = last_eq;
      }
    }
    if (eq != std::string::npos) {
      name = token.text.substr(0, eq);
      const auto parsed_count = parse_count(token.text.substr(eq + 1));
      if (!parsed_count) {
        // The pre-provenance parser crashed through std::stoul here.
        sink.report(kSyntaxRule, Severity::Error, token.span,
                    "invalid token count in marking token '" + token.text + "'",
                    "write '" + name + "' or '" + name + "=<count>'");
        continue;
      }
      count = *parsed_count;
    }
    const auto it = place_by_name.find(name);
    if (it == place_by_name.end()) {
      sink.report(kSyntaxRule, Severity::Error, token.span,
                  "marked place '" + name + "' does not appear in .graph",
                  "every marked place must occur on a .graph adjacency line");
      continue;
    }
    parsed.marking_entries.emplace_back(name, token.span);
    stg.net().set_initial_tokens(it->second, count);
  }

  // Explicit initial values apply here (last entry wins, matching the
  // pre-provenance parser); inference for the implicit case is parse_g()'s
  // job — the lint path deliberately never explores the state space.
  for (const ParsedG::InitValueEntry& entry : parsed.init_value_entries) {
    const auto sig = stg.find_signal(entry.name);
    if (!sig) {
      sink.report(kSyntaxRule, Severity::Error, entry.span,
                  ".init_values mentions unknown signal '" + entry.name + "'",
                  "declare the signal or drop the entry");
      continue;
    }
    stg.set_initial_value(*sig, entry.value);
  }
  return parsed;
}

Stg parse_g(std::string_view text, const ParseOptions& options) {
  util::DiagnosticSink sink;
  ParsedG parsed = parse_g_collect(text, sink, options);
  // First-error-throw semantics: the first Error-severity diagnostic in
  // discovery order is exactly what the fail-fast parser used to throw.
  sink.throw_first_error();
  parsed.stg.validate();
  if (!parsed.has_init_values) {
    const Code inferred = infer_initial_code(parsed.stg, options.inference_state_budget);
    for (std::size_t s = 0; s < inferred.size(); ++s) {
      parsed.stg.set_initial_value(SignalId(static_cast<std::uint32_t>(s)), inferred[s]);
    }
  }
  return std::move(parsed.stg);
}

std::string write_g(const Stg& stg) {
  const pn::PetriNet& net = stg.net();
  std::string out = ".model " + stg.name() + "\n";
  auto emit_signals = [&](SignalKind kind, const char* directive) {
    std::string line;
    for (std::size_t s = 0; s < stg.signal_count(); ++s) {
      const SignalId sig(static_cast<std::uint32_t>(s));
      if (stg.signal_kind(sig) == kind) line += " " + stg.signal_name(sig);
    }
    if (!line.empty()) out += directive + line + "\n";
  };
  emit_signals(SignalKind::Input, ".inputs");
  emit_signals(SignalKind::Output, ".outputs");
  emit_signals(SignalKind::Internal, ".internal");
  emit_signals(SignalKind::Dummy, ".dummy");

  out += ".graph\n";
  // Every arc is written through its place; implicit "<x,y>" names from a
  // previous parse are preserved verbatim, so round-trips are stable.
  for (std::size_t i = 0; i < net.transition_count(); ++i) {
    const pn::TransitionId t(static_cast<std::uint32_t>(i));
    std::string line = net.transition_name(t);
    for (const pn::PlaceId p : net.post(t)) line += " " + net.place_name(p);
    out += line + "\n";
  }
  for (std::size_t i = 0; i < net.place_count(); ++i) {
    const pn::PlaceId p(static_cast<std::uint32_t>(i));
    if (net.post(p).empty()) continue;
    std::string line = net.place_name(p);
    for (const pn::TransitionId t : net.post(p)) line += " " + net.transition_name(t);
    out += line + "\n";
  }

  out += ".marking {";
  for (const pn::PlaceId p : net.initial_marking().marked_places()) {
    out += " " + net.place_name(p);
    if (net.initial_marking().tokens(p) > 1) {
      out += "=" + std::to_string(net.initial_marking().tokens(p));
    }
  }
  out += " }\n";

  out += ".init_values";
  for (std::size_t s = 0; s < stg.signal_count(); ++s) {
    const SignalId sig(static_cast<std::uint32_t>(s));
    if (stg.signal_kind(sig) == SignalKind::Dummy) continue;
    out += " " + stg.signal_name(sig) + "=" + (stg.initial_value(sig) ? "1" : "0");
  }
  out += "\n.end\n";
  return out;
}

}  // namespace punt::stg
