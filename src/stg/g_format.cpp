#include "src/stg/g_format.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "src/util/error.hpp"
#include "src/util/strings.hpp"

namespace punt::stg {
namespace {

/// A transition token decomposed into signal name, polarity and occurrence.
struct TransitionToken {
  std::string signal;
  std::optional<Polarity> polarity;  // nullopt for dummy tokens
  std::size_t occurrence = 1;
};

/// Splits "sig+/2" into its parts; returns nullopt when the token carries no
/// polarity sign (it is then either a dummy transition or a place name).
std::optional<TransitionToken> parse_transition_token(std::string_view token) {
  std::string_view body = token;
  std::size_t occurrence = 1;
  if (const std::size_t slash = body.rfind('/'); slash != std::string_view::npos) {
    const std::string_view suffix = body.substr(slash + 1);
    if (suffix.empty()) throw ParseError("empty occurrence suffix in '" + std::string(token) + "'");
    occurrence = 0;
    for (const char c : suffix) {
      if (c < '0' || c > '9') return std::nullopt;  // e.g. a name containing '/'
      occurrence = occurrence * 10 + static_cast<std::size_t>(c - '0');
    }
    if (occurrence == 0) throw ParseError("occurrence suffix 0 in '" + std::string(token) + "'");
    body = body.substr(0, slash);
  }
  if (body.empty()) return std::nullopt;
  TransitionToken out;
  out.occurrence = occurrence;
  const char last = body.back();
  if (last == '+' || last == '-') {
    out.polarity = last == '+' ? Polarity::Rise : Polarity::Fall;
    body.remove_suffix(1);
    if (body.empty()) return std::nullopt;
  }
  out.signal = std::string(body);
  return out;
}

/// Canonical token spelling used as map key ("a+", "a+/2", "dum/3").
std::string canonical_token(const TransitionToken& t) {
  std::string out = t.signal;
  if (t.polarity) out += *t.polarity == Polarity::Rise ? '+' : '-';
  if (t.occurrence > 1) out += "/" + std::to_string(t.occurrence);
  return out;
}

}  // namespace

Code infer_initial_code(const Stg& stg, std::size_t state_budget) {
  const pn::PetriNet& net = stg.net();
  const std::size_t n = stg.signal_count();
  Code initial(n, 0);
  std::vector<std::uint8_t> resolved(n, 0);
  std::size_t unresolved = 0;
  for (std::size_t s = 0; s < n; ++s) {
    const SignalId sig(static_cast<std::uint32_t>(s));
    if (stg.signal_kind(sig) == SignalKind::Dummy || stg.instances_of(sig).empty()) {
      resolved[s] = 1;  // constants and dummies default to 0
    } else {
      ++unresolved;
    }
  }
  if (unresolved == 0) return initial;

  // Parity of signal toggles along the path to each visited marking.  For a
  // consistent STG the parity is path-independent, so storing one parity per
  // marking is sound; an actual inconsistency surfaces as a parity conflict.
  struct State {
    pn::Marking marking;
    std::vector<std::uint8_t> parity;
  };
  std::unordered_map<std::size_t, std::vector<std::size_t>> seen;  // hash -> state ids
  std::vector<State> states;
  std::deque<std::size_t> queue;

  auto intern = [&](pn::Marking m, std::vector<std::uint8_t> parity) {
    const std::size_t h = m.hash();
    for (const std::size_t id : seen[h]) {
      if (states[id].marking == m) {
        if (states[id].parity != parity) {
          throw ImplementabilityError(
              "inconsistent state assignment detected while inferring the "
              "initial code: a marking is reachable with two different signal "
              "parities");
        }
        return;
      }
    }
    seen[h].push_back(states.size());
    queue.push_back(states.size());
    states.push_back(State{std::move(m), std::move(parity)});
  };

  intern(net.initial_marking(), std::vector<std::uint8_t>(n, 0));
  while (!queue.empty() && unresolved > 0) {
    if (states.size() > state_budget) {
      throw CapacityError(
          "initial-code inference exceeded the state budget (" +
          std::to_string(state_budget) +
          " markings); add an explicit .init_values line to the .g source");
    }
    const std::size_t id = queue.front();
    queue.pop_front();
    const pn::Marking marking = states[id].marking;           // copy: states may grow
    const std::vector<std::uint8_t> parity = states[id].parity;
    for (const pn::TransitionId t : net.enabled_transitions(marking)) {
      const Label& label = stg.label(t);
      std::vector<std::uint8_t> next_parity = parity;
      if (!label.dummy) {
        const std::size_t s = label.signal.index();
        // value(marking) = initial ^ parity; firing a+ needs value 0, a- needs 1.
        const std::uint8_t implied_initial =
            label.rising() ? parity[s] : static_cast<std::uint8_t>(1 - parity[s]);
        if (!resolved[s]) {
          initial[s] = implied_initial;
          resolved[s] = 1;
          --unresolved;
        } else if (initial[s] != implied_initial) {
          throw ImplementabilityError(
              "inconsistent state assignment: transition '" + stg.transition_name(t) +
              "' implies initial value " + std::to_string(int(implied_initial)) +
              " for signal '" + stg.signal_name(label.signal) +
              "' but an earlier edge implied " + std::to_string(int(initial[s])));
        }
        next_parity[s] ^= 1;
      }
      intern(net.fire(marking, t), std::move(next_parity));
    }
  }
  if (unresolved > 0) {
    std::string names;
    for (std::size_t s = 0; s < n; ++s) {
      if (!resolved[s]) names += (names.empty() ? "" : ", ") +
                                 stg.signal_name(SignalId(static_cast<std::uint32_t>(s)));
    }
    throw ImplementabilityError(
        "could not infer initial values for signal(s) " + names +
        ": none of their transitions is reachable from the initial marking");
  }
  return initial;
}

Stg parse_g(std::string_view text, const ParseOptions& options) {
  Stg stg;
  std::map<std::string, SignalKind> declared;       // signal name -> kind
  std::vector<std::pair<std::string, SignalKind>> declaration_order;
  std::vector<std::vector<std::string>> graph_lines;
  std::vector<std::string> marking_tokens;
  std::map<std::string, std::uint8_t> init_values;
  bool has_init_values = false;
  bool in_graph = false;
  bool saw_end = false;

  auto declare = [&](const std::string& name, SignalKind kind) {
    if (declared.contains(name)) {
      throw ParseError("signal '" + name + "' declared twice");
    }
    declared.emplace(name, kind);
    declaration_order.emplace_back(name, kind);
  };

  for (const std::string& raw : logical_lines(text)) {
    std::string_view line = trim(raw);
    if (const std::size_t hash = line.find('#'); hash != std::string_view::npos) {
      line = trim(line.substr(0, hash));
    }
    if (line.empty()) continue;

    if (line.front() == '.') {
      in_graph = false;
      const std::vector<std::string> words = split(line);
      const std::string& directive = words.front();
      if (directive == ".model" || directive == ".name") {
        if (words.size() >= 2) stg.set_name(words[1]);
      } else if (directive == ".inputs") {
        for (std::size_t i = 1; i < words.size(); ++i) declare(words[i], SignalKind::Input);
      } else if (directive == ".outputs") {
        for (std::size_t i = 1; i < words.size(); ++i) declare(words[i], SignalKind::Output);
      } else if (directive == ".internal") {
        for (std::size_t i = 1; i < words.size(); ++i) declare(words[i], SignalKind::Internal);
      } else if (directive == ".dummy") {
        for (std::size_t i = 1; i < words.size(); ++i) declare(words[i], SignalKind::Dummy);
      } else if (directive == ".graph") {
        in_graph = true;
      } else if (directive == ".marking") {
        std::string rest(line.substr(directive.size()));
        std::erase(rest, '{');
        std::erase(rest, '}');
        for (std::string& token : split(rest)) marking_tokens.push_back(std::move(token));
      } else if (directive == ".init_values") {
        has_init_values = true;
        for (std::size_t i = 1; i < words.size(); ++i) {
          const std::size_t eq = words[i].find('=');
          if (eq == std::string::npos) {
            throw ParseError(".init_values entries must look like name=0|1, got '" +
                             words[i] + "'");
          }
          const std::string name = words[i].substr(0, eq);
          const std::string value = words[i].substr(eq + 1);
          if (value != "0" && value != "1") {
            throw ParseError("initial value of '" + name + "' must be 0 or 1");
          }
          init_values[name] = static_cast<std::uint8_t>(value == "1");
        }
      } else if (directive == ".end") {
        saw_end = true;
        break;
      } else if (directive == ".capacity" || directive == ".coords" ||
                 directive == ".slowenv" || directive == ".level") {
        // Accepted and ignored: these carry tool-specific hints that do not
        // affect the synthesis semantics.
      } else {
        throw ParseError("unknown directive '" + directive + "'");
      }
      continue;
    }

    if (!in_graph) {
      throw ParseError("unexpected line outside .graph section: '" + std::string(line) + "'");
    }
    graph_lines.push_back(split(line));
  }
  if (!saw_end) throw ParseError("missing .end directive");
  if (graph_lines.empty()) throw ParseError("empty .graph section");

  // Signals in declaration order.
  std::map<std::string, SignalId> signal_ids;
  for (const auto& [name, kind] : declaration_order) {
    signal_ids.emplace(name, stg.add_signal(name, kind));
  }

  // Pass 1: find every transition token so instances can be created with
  // their canonical names ("a+" before "a+/2").
  struct InstanceKey {
    std::string signal;
    int polarity;  // 0 rise, 1 fall, 2 dummy
    bool operator<(const InstanceKey& o) const {
      return std::tie(signal, polarity) < std::tie(o.signal, o.polarity);
    }
  };
  std::map<InstanceKey, std::set<std::size_t>> occurrences;
  auto classify = [&](const std::string& token) -> std::optional<TransitionToken> {
    std::optional<TransitionToken> parsed = parse_transition_token(token);
    if (!parsed) return std::nullopt;
    const auto it = declared.find(parsed->signal);
    if (it == declared.end()) return std::nullopt;  // an undeclared name is a place
    if (parsed->polarity && it->second == SignalKind::Dummy) {
      throw ParseError("dummy signal '" + parsed->signal + "' used with a polarity sign");
    }
    if (!parsed->polarity && it->second != SignalKind::Dummy) {
      throw ParseError("signal '" + parsed->signal +
                       "' used as a transition without +/- (only dummies may be)");
    }
    return parsed;
  };
  for (const auto& words : graph_lines) {
    for (const std::string& token : words) {
      if (const auto parsed = classify(token)) {
        const int pol = parsed->polarity ? (*parsed->polarity == Polarity::Rise ? 0 : 1) : 2;
        occurrences[InstanceKey{parsed->signal, pol}].insert(parsed->occurrence);
      }
    }
  }
  std::unordered_map<std::string, pn::TransitionId> transition_by_name;
  for (const auto& [key, occs] : occurrences) {
    std::size_t expected = 1;
    for (const std::size_t occ : occs) {
      if (occ != expected) {
        throw ParseError("occurrences of transition '" + key.signal +
                         "' are not contiguous: missing /" + std::to_string(expected));
      }
      ++expected;
      const SignalId sig = signal_ids.at(key.signal);
      const pn::TransitionId t =
          key.polarity == 2
              ? stg.add_dummy_transition(sig)
              : stg.add_transition(sig, key.polarity == 0 ? Polarity::Rise : Polarity::Fall);
      TransitionToken tok;
      tok.signal = key.signal;
      if (key.polarity != 2) tok.polarity = key.polarity == 0 ? Polarity::Rise : Polarity::Fall;
      tok.occurrence = occ;
      transition_by_name.emplace(canonical_token(tok), t);
    }
  }

  // Pass 2: create places and arcs.
  std::unordered_map<std::string, pn::PlaceId> place_by_name;
  auto get_place = [&](const std::string& name) {
    const auto it = place_by_name.find(name);
    if (it != place_by_name.end()) return it->second;
    const pn::PlaceId p = stg.net().add_place(name);
    place_by_name.emplace(name, p);
    return p;
  };
  auto lookup_transition = [&](const std::string& token) -> std::optional<pn::TransitionId> {
    const auto it = transition_by_name.find(token);
    if (it == transition_by_name.end()) return std::nullopt;
    return it->second;
  };
  for (const auto& words : graph_lines) {
    if (words.size() < 2) {
      throw ParseError("a .graph line needs a source and at least one target");
    }
    const std::optional<pn::TransitionId> src_t = lookup_transition(words.front());
    for (std::size_t i = 1; i < words.size(); ++i) {
      const std::optional<pn::TransitionId> dst_t = lookup_transition(words[i]);
      if (src_t && dst_t) {
        const pn::PlaceId p = get_place("<" + words.front() + "," + words[i] + ">");
        stg.net().add_arc(*src_t, p);
        stg.net().add_arc(p, *dst_t);
      } else if (src_t && !dst_t) {
        stg.net().add_arc(*src_t, get_place(words[i]));
      } else if (!src_t && dst_t) {
        stg.net().add_arc(get_place(words.front()), *dst_t);
      } else {
        throw ParseError("arc between two places: '" + words.front() + "' -> '" +
                         words[i] + "'");
      }
    }
  }

  // Initial marking.  Tokens: "p", "p=2", "<a+,b->", "<a+,b->=2".
  for (const std::string& token : marking_tokens) {
    std::string name = token;
    std::uint32_t count = 1;
    if (const std::size_t eq = token.rfind('='); eq != std::string::npos &&
                                                 token.find('>') < eq) {
      name = token.substr(0, eq);
      count = static_cast<std::uint32_t>(std::stoul(token.substr(eq + 1)));
    } else if (const std::size_t eq2 = token.rfind('=');
               eq2 != std::string::npos && token.find('<') == std::string::npos) {
      name = token.substr(0, eq2);
      count = static_cast<std::uint32_t>(std::stoul(token.substr(eq2 + 1)));
    }
    const auto it = place_by_name.find(name);
    if (it == place_by_name.end()) {
      throw ParseError("marked place '" + name + "' does not appear in .graph");
    }
    stg.net().set_initial_tokens(it->second, count);
  }

  stg.validate();

  if (has_init_values) {
    for (const auto& [name, value] : init_values) {
      const auto sig = stg.find_signal(name);
      if (!sig) throw ParseError(".init_values mentions unknown signal '" + name + "'");
      stg.set_initial_value(*sig, value);
    }
  } else {
    const Code inferred = infer_initial_code(stg, options.inference_state_budget);
    for (std::size_t s = 0; s < inferred.size(); ++s) {
      stg.set_initial_value(SignalId(static_cast<std::uint32_t>(s)), inferred[s]);
    }
  }
  return stg;
}

std::string write_g(const Stg& stg) {
  const pn::PetriNet& net = stg.net();
  std::string out = ".model " + stg.name() + "\n";
  auto emit_signals = [&](SignalKind kind, const char* directive) {
    std::string line;
    for (std::size_t s = 0; s < stg.signal_count(); ++s) {
      const SignalId sig(static_cast<std::uint32_t>(s));
      if (stg.signal_kind(sig) == kind) line += " " + stg.signal_name(sig);
    }
    if (!line.empty()) out += directive + line + "\n";
  };
  emit_signals(SignalKind::Input, ".inputs");
  emit_signals(SignalKind::Output, ".outputs");
  emit_signals(SignalKind::Internal, ".internal");
  emit_signals(SignalKind::Dummy, ".dummy");

  out += ".graph\n";
  // Every arc is written through its place; implicit "<x,y>" names from a
  // previous parse are preserved verbatim, so round-trips are stable.
  for (std::size_t i = 0; i < net.transition_count(); ++i) {
    const pn::TransitionId t(static_cast<std::uint32_t>(i));
    std::string line = net.transition_name(t);
    for (const pn::PlaceId p : net.post(t)) line += " " + net.place_name(p);
    out += line + "\n";
  }
  for (std::size_t i = 0; i < net.place_count(); ++i) {
    const pn::PlaceId p(static_cast<std::uint32_t>(i));
    if (net.post(p).empty()) continue;
    std::string line = net.place_name(p);
    for (const pn::TransitionId t : net.post(p)) line += " " + net.transition_name(t);
    out += line + "\n";
  }

  out += ".marking {";
  for (const pn::PlaceId p : net.initial_marking().marked_places()) {
    out += " " + net.place_name(p);
    if (net.initial_marking().tokens(p) > 1) {
      out += "=" + std::to_string(net.initial_marking().tokens(p));
    }
  }
  out += " }\n";

  out += ".init_values";
  for (std::size_t s = 0; s < stg.signal_count(); ++s) {
    const SignalId sig(static_cast<std::uint32_t>(s));
    if (stg.signal_kind(sig) == SignalKind::Dummy) continue;
    out += " " + stg.signal_name(sig) + "=" + (stg.initial_value(sig) ? "1" : "0");
  }
  out += "\n.end\n";
  return out;
}

}  // namespace punt::stg
