// Programmatic STG constructors.
//
// * The worked examples of the paper (Fig. 1, Fig. 4a/b, Fig. 4c),
//   reconstructed from the figures and the cover calculations in the text —
//   these anchor the unit tests of the synthesis algorithms.
// * The scalable specifications of Fig. 6: the n-stage Muller pipeline and
//   the counterflow-pipeline substitute (see DESIGN.md §4).
// * A classic VME-bus controller with a genuine CSC conflict, used by the
//   csc_diagnosis example.
#pragma once

#include <cstddef>

#include "src/stg/stg.hpp"

namespace punt::stg {

/// The STG of Fig. 1(b): three signals a, b, c; a free-choice net whose SG
/// has exactly 8 states; the paper derives C_On(b) = a + c, C_Off(b) = a'c'.
Stg make_paper_fig1();

/// The STG underlying Fig. 4(a)/(b): +a forks three concurrent chains
/// (b-e, c-f, d-g) that join in -a.  Used for the ER/MR approximation
/// examples: C*e(+d') = a d' g', C*mr(p7) = a d g', ...
Stg make_paper_fig4ab();

/// The fragment of Fig. 4(c): +a ; +d forks {p2-chain: +b,+c,-a} and
/// {p5: +e}.  Used for the refinement example: refining the MR cover of p5
/// with P'r = {p2,p4,p7,p9} yields a c' d e' + b c d e'.
Stg make_paper_fig4c();

/// n-stage Muller pipeline (n >= 1).  Signals: a0 (input request) and
/// a1..an (outputs), so n+1 signals total — the x-axis of Fig. 6.
/// Marked-graph STG: a_i+ needs a_{i-1}+ and a_{i+1}-; a_i- needs a_{i-1}-
/// and a_{i+1}+.  The SG grows exponentially with n while the unfolding
/// segment grows linearly.
Stg make_muller_pipeline(std::size_t n);

/// Counterflow-pipeline substitute: two opposing Muller pipelines of
/// `stages` stages each (forward data / backward results), 2*(stages+1)
/// signals.  stages=16 gives the paper's 34-signal configuration.  See
/// DESIGN.md §4 for why this preserves the experiment's behaviour.
Stg make_counterflow_pipeline(std::size_t stages);

/// VME bus controller (read/write cycles selected by the environment) with
/// the classic CSC conflict; used to demonstrate CSC diagnosis.
Stg make_vme_bus();

}  // namespace punt::stg
