// Graphviz (DOT) export of STGs.
//
// Transitions render as boxes labelled with their signal edge (inputs,
// outputs and internals get distinct colours), places as circles (marked
// places carry their token count); implicit single-in/single-out places
// collapse into plain arcs for readability, matching how STGs are drawn in
// the literature (and in the paper's Fig. 1).
#pragma once

#include <string>

#include "src/stg/stg.hpp"

namespace punt::stg {

struct DotOptions {
  /// Collapse places with exactly one producer and one consumer into a
  /// direct transition->transition arc.
  bool collapse_implicit_places = true;
};

/// Renders the STG as a DOT digraph (pipe into `dot -Tsvg`).
std::string to_dot(const Stg& stg, const DotOptions& options = {});

}  // namespace punt::stg
