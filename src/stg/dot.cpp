#include "src/stg/dot.hpp"

namespace punt::stg {
namespace {

const char* kind_color(SignalKind kind) {
  switch (kind) {
    case SignalKind::Input: return "lightblue";
    case SignalKind::Output: return "lightpink";
    case SignalKind::Internal: return "lightyellow";
    case SignalKind::Dummy: return "lightgray";
  }
  return "white";
}

std::string quoted(const std::string& s) { return "\"" + s + "\""; }

}  // namespace

std::string to_dot(const Stg& stg, const DotOptions& options) {
  const pn::PetriNet& net = stg.net();
  std::string out = "digraph " + quoted(stg.name()) + " {\n";
  out += "  rankdir=TB;\n  node [fontname=\"Helvetica\"];\n";

  for (std::size_t i = 0; i < net.transition_count(); ++i) {
    const pn::TransitionId t(static_cast<std::uint32_t>(i));
    const Label& label = stg.label(t);
    out += "  " + quoted(net.transition_name(t)) +
           " [shape=box, style=filled, fillcolor=" +
           kind_color(stg.signal_kind(label.signal)) + "];\n";
  }

  auto is_implicit = [&](pn::PlaceId p) {
    return options.collapse_implicit_places && net.pre(p).size() == 1 &&
           net.post(p).size() == 1 && net.initial_marking().tokens(p) == 0;
  };

  for (std::size_t i = 0; i < net.place_count(); ++i) {
    const pn::PlaceId p(static_cast<std::uint32_t>(i));
    if (is_implicit(p)) {
      out += "  " + quoted(net.transition_name(net.pre(p).front())) + " -> " +
             quoted(net.transition_name(net.post(p).front())) + ";\n";
      continue;
    }
    const std::uint32_t tokens = net.initial_marking().tokens(p);
    std::string label = net.place_name(p);
    if (tokens > 0) label += " (" + std::string(tokens, '*') + ")";
    out += "  " + quoted(net.place_name(p)) + " [shape=circle, label=" +
           quoted(label) + (tokens > 0 ? ", penwidth=2" : "") + "];\n";
    for (const pn::TransitionId t : net.pre(p)) {
      out += "  " + quoted(net.transition_name(t)) + " -> " + quoted(net.place_name(p)) +
             ";\n";
    }
    for (const pn::TransitionId t : net.post(p)) {
      out += "  " + quoted(net.place_name(p)) + " -> " + quoted(net.transition_name(t)) +
             ";\n";
    }
  }
  out += "}\n";
  return out;
}

}  // namespace punt::stg
