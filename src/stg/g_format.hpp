// Reader / writer for the astg `.g` interchange format used by SIS and
// petrify (and by the paper's benchmark suite).
//
// Supported directives: .model, .inputs, .outputs, .internal, .dummy,
// .graph, .marking, .end, plus the punt extension .init_values that pins the
// initial binary state explicitly.  When .init_values is absent the initial
// code is inferred by exploring the reachability graph until the first edge
// of every signal has been seen (the standard trick: if a+ fires first, a
// started at 0), with a configurable state budget.
//
// `.graph` lines are adjacency lists "src dst1 dst2 ..." where each node is
// a place name or a transition token ("a+", "b-/2", dummy name).  An arc
// between two transitions introduces an implicit place named "<src,dst>".
//
// Two entry points share one implementation:
//
//  - parse_g_collect() is the provenance-tracking, diagnostic-collecting
//    parser behind `punt lint`: every problem becomes a util::Diagnostic
//    with a 1-based line/column span (continuation lines resolve to their
//    physical position) and parsing continues past it, so a broken spec
//    yields *all* of its parse defects plus whatever Stg structure could
//    still be built for the structural rules to inspect.
//  - parse_g() is the strict front door the synthesis pipeline uses: it runs
//    the same collecting parse, then drains the sink by throwing the first
//    error (ParseError, same message the fail-fast parser produced), then
//    validates and resolves the initial code — so strict and lenient callers
//    can never disagree about what a `.g` file means.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/stg/stg.hpp"
#include "src/util/diagnostics.hpp"

namespace punt::stg {

struct ParseOptions {
  /// Cap on the number of markings visited while inferring the initial
  /// binary code (only used when the file lacks .init_values).
  std::size_t inference_state_budget = 500000;
};

/// The result of a collecting parse: the (possibly partial) Stg plus the
/// source provenance the lint rules anchor their diagnostics to.
struct ParsedG {
  Stg stg;

  /// True when a .graph section with at least one line was read — the gate
  /// for running structural lint rules.  Individual arcs or tokens may
  /// still have been dropped (each drop reported to the sink).
  bool usable = false;

  bool has_init_values = false;
  bool saw_end = false;

  /// Declaration site per signal name (the token inside .inputs/...).
  std::map<std::string, util::SourceSpan> signal_spans;
  /// First-use site per canonical transition name ("a+", "b-/2", "dum").
  std::map<std::string, util::SourceSpan> transition_spans;
  /// First-use site per place name (implicit "<a+,b->" places anchor at the
  /// source token of the arc that introduced them).
  std::map<std::string, util::SourceSpan> place_spans;

  /// Every .model/.name directive, in order (duplicates are a lint finding).
  std::vector<util::SourceSpan> model_spans;
  /// Every .marking directive, in order.
  std::vector<util::SourceSpan> marking_spans;
  /// Every resolved `.marking` token (place name, site), duplicates kept.
  std::vector<std::pair<std::string, util::SourceSpan>> marking_entries;
  /// Every `.init_values` entry as written: name, value, site.
  struct InitValueEntry {
    std::string name;
    std::uint8_t value = 0;
    util::SourceSpan span;
  };
  std::vector<InitValueEntry> init_value_entries;

  /// Span for a transition/place/signal by name; unknown names get a
  /// zeroed (fileless) span so lookups never fail.
  util::SourceSpan transition_span(const std::string& name) const;
  util::SourceSpan place_span(const std::string& name) const;
  util::SourceSpan signal_span(const std::string& name) const;
};

/// Parses `.g` text, reporting every problem to `sink` (rule STG000 for
/// syntax, STG001 for duplicate/contradictory constructs) instead of
/// throwing, and returns the Stg it could build plus provenance.  The
/// returned Stg is NOT validated and its initial code is all-zero unless the
/// text carries .init_values — callers that need a synthesis-ready Stg use
/// parse_g().  Never throws on any input.
ParsedG parse_g_collect(std::string_view text, util::DiagnosticSink& sink,
                        const ParseOptions& options = {});

/// Parses `.g` text into an Stg.  Throws ParseError on malformed input and
/// ImplementabilityError when initial-code inference finds an inconsistency.
Stg parse_g(std::string_view text, const ParseOptions& options = {});

/// Serialises an Stg to `.g` text (including .init_values, so round-trips
/// never need inference).
std::string write_g(const Stg& stg);

/// Infers the initial binary code of a parsed STG whose initial values are
/// unknown, by bounded reachability exploration.  Exposed for testing.
Code infer_initial_code(const Stg& stg, std::size_t state_budget);

}  // namespace punt::stg
