// Reader / writer for the astg `.g` interchange format used by SIS and
// petrify (and by the paper's benchmark suite).
//
// Supported directives: .model, .inputs, .outputs, .internal, .dummy,
// .graph, .marking, .end, plus the punt extension .init_values that pins the
// initial binary state explicitly.  When .init_values is absent the initial
// code is inferred by exploring the reachability graph until the first edge
// of every signal has been seen (the standard trick: if a+ fires first, a
// started at 0), with a configurable state budget.
//
// `.graph` lines are adjacency lists "src dst1 dst2 ..." where each node is
// a place name or a transition token ("a+", "b-/2", dummy name).  An arc
// between two transitions introduces an implicit place named "<src,dst>".
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "src/stg/stg.hpp"

namespace punt::stg {

struct ParseOptions {
  /// Cap on the number of markings visited while inferring the initial
  /// binary code (only used when the file lacks .init_values).
  std::size_t inference_state_budget = 500000;
};

/// Parses `.g` text into an Stg.  Throws ParseError on malformed input and
/// ImplementabilityError when initial-code inference finds an inconsistency.
Stg parse_g(std::string_view text, const ParseOptions& options = {});

/// Serialises an Stg to `.g` text (including .init_values, so round-trips
/// never need inference).
std::string write_g(const Stg& stg);

/// Infers the initial binary code of a parsed STG whose initial values are
/// unknown, by bounded reachability exploration.  Exposed for testing.
Code infer_initial_code(const Stg& stg, std::size_t state_budget);

}  // namespace punt::stg
