// Signal Transition Graphs: G = <N, A, L>.
//
// An STG is a marked Petri net whose transitions are labelled with signal
// edges (+a / -a).  This layer adds the signal table (with input / output /
// internal / dummy kinds), the per-transition labelling, and the initial
// binary state, on top of the pn kernel.
//
// Dummy (unlabelled) transitions are accepted by the model and the parser so
// that third-party `.g` files load, but the synthesis algorithms of the
// paper do not handle them and reject such STGs up front.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/pn/ids.hpp"
#include "src/pn/petri_net.hpp"

namespace punt::stg {

using SignalId = Id<struct SignalTag>;

/// Who drives the signal.  Only Output and Internal signals are synthesised;
/// Input edges belong to the environment.  Dummy "signals" label silent
/// transitions.
enum class SignalKind : std::uint8_t { Input, Output, Internal, Dummy };

/// Direction of a signal edge.
enum class Polarity : std::uint8_t { Rise, Fall };

/// Label of one STG transition: which signal toggles and in which direction.
/// For dummy transitions `signal` names the dummy and `polarity` is
/// meaningless.
struct Label {
  SignalId signal;
  Polarity polarity = Polarity::Rise;
  bool dummy = false;

  bool rising() const { return !dummy && polarity == Polarity::Rise; }
  bool falling() const { return !dummy && polarity == Polarity::Fall; }
};

/// Binary state over the signal alphabet; values are 0 or 1 per signal.
using Code = std::vector<std::uint8_t>;

/// Renders a code as a bit string, e.g. "101".
std::string code_to_string(const Code& code);

/// A Signal Transition Graph.
///
/// Build order: declare signals, then transitions (instances of signal
/// edges), then places and arcs through the embedded net, then the initial
/// marking / initial code, and finally call validate().
class Stg {
 public:
  /// Declares a signal; names must be unique.  The initial value defaults
  /// to 0 and can be changed with set_initial_value().
  SignalId add_signal(const std::string& name, SignalKind kind);

  /// Adds a transition instance labelled `signal±`.  The transition name is
  /// "a+" / "a-" for the first instance and "a+/2", "a+/3", ... for later
  /// ones, matching the astg convention.
  pn::TransitionId add_transition(SignalId signal, Polarity polarity);

  /// Adds a dummy (silent) transition for a SignalKind::Dummy signal.
  pn::TransitionId add_dummy_transition(SignalId dummy);

  std::size_t signal_count() const { return signal_names_.size(); }
  const std::string& signal_name(SignalId s) const { return signal_names_[s.index()]; }
  SignalKind signal_kind(SignalId s) const { return signal_kinds_[s.index()]; }
  std::optional<SignalId> find_signal(const std::string& name) const;

  /// Signals the synthesiser must implement (outputs + internals), ascending.
  std::vector<SignalId> non_input_signals() const;
  /// All non-dummy signals, ascending.
  std::vector<SignalId> real_signals() const;

  bool has_dummies() const;

  const Label& label(pn::TransitionId t) const { return labels_[t.index()]; }
  /// All transition instances of `signal` (any polarity), ascending.
  const std::vector<pn::TransitionId>& instances_of(SignalId s) const {
    return instances_[s.index()];
  }

  /// Readable transition name, e.g. "b+/2".
  const std::string& transition_name(pn::TransitionId t) const {
    return net_.transition_name(t);
  }

  std::uint8_t initial_value(SignalId s) const { return initial_code_[s.index()]; }
  void set_initial_value(SignalId s, std::uint8_t value);
  const Code& initial_code() const { return initial_code_; }

  /// Applies the edge of transition `t` to `code` in place.  Throws
  /// ImplementabilityError on an inconsistent edge (raising a signal that is
  /// already 1, or lowering one that is 0); dummy transitions are no-ops.
  void apply(pn::TransitionId t, Code& code) const;

  pn::PetriNet& net() { return net_; }
  const pn::PetriNet& net() const { return net_; }

  /// Human-readable name of the model (from `.model`, or set manually).
  const std::string& name() const { return name_; }
  void set_name(const std::string& name) { name_ = name; }

  /// Structural sanity of the whole STG (net validity, label coverage,
  /// initial code size).  Dynamic properties (consistency, boundedness,
  /// persistency, CSC) are checked by the sg / unfolding layers.
  void validate() const;

 private:
  std::string name_ = "stg";
  pn::PetriNet net_;
  std::vector<std::string> signal_names_;
  std::vector<SignalKind> signal_kinds_;
  std::vector<std::vector<pn::TransitionId>> instances_;
  std::vector<Label> labels_;
  Code initial_code_;
};

}  // namespace punt::stg
