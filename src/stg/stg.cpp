#include "src/stg/stg.hpp"

#include "src/util/error.hpp"

namespace punt::stg {

std::string code_to_string(const Code& code) {
  std::string out;
  out.reserve(code.size());
  for (const std::uint8_t v : code) out += v ? '1' : '0';
  return out;
}

SignalId Stg::add_signal(const std::string& name, SignalKind kind) {
  for (const auto& existing : signal_names_) {
    if (existing == name) throw ValidationError("duplicate signal name '" + name + "'");
  }
  const SignalId id(static_cast<std::uint32_t>(signal_names_.size()));
  signal_names_.push_back(name);
  signal_kinds_.push_back(kind);
  instances_.emplace_back();
  initial_code_.push_back(0);
  return id;
}

pn::TransitionId Stg::add_transition(SignalId signal, Polarity polarity) {
  if (signal_kind(signal) == SignalKind::Dummy) {
    throw ValidationError("signal '" + signal_name(signal) +
                          "' is a dummy; use add_dummy_transition");
  }
  const char suffix = polarity == Polarity::Rise ? '+' : '-';
  std::string name = signal_name(signal) + suffix;
  // Count existing instances with this polarity to pick the "/k" suffix.
  std::size_t occurrence = 1;
  for (const pn::TransitionId t : instances_[signal.index()]) {
    if (labels_[t.index()].polarity == polarity) ++occurrence;
  }
  if (occurrence > 1) name += "/" + std::to_string(occurrence);
  const pn::TransitionId t = net_.add_transition(name);
  labels_.push_back(Label{signal, polarity, /*dummy=*/false});
  instances_[signal.index()].push_back(t);
  return t;
}

pn::TransitionId Stg::add_dummy_transition(SignalId dummy) {
  if (signal_kind(dummy) != SignalKind::Dummy) {
    throw ValidationError("signal '" + signal_name(dummy) + "' is not a dummy");
  }
  std::string name = signal_name(dummy);
  const std::size_t occurrence = instances_[dummy.index()].size() + 1;
  if (occurrence > 1) name += "/" + std::to_string(occurrence);
  const pn::TransitionId t = net_.add_transition(name);
  labels_.push_back(Label{dummy, Polarity::Rise, /*dummy=*/true});
  instances_[dummy.index()].push_back(t);
  return t;
}

std::optional<SignalId> Stg::find_signal(const std::string& name) const {
  for (std::size_t i = 0; i < signal_names_.size(); ++i) {
    if (signal_names_[i] == name) return SignalId(static_cast<std::uint32_t>(i));
  }
  return std::nullopt;
}

std::vector<SignalId> Stg::non_input_signals() const {
  std::vector<SignalId> out;
  for (std::size_t i = 0; i < signal_kinds_.size(); ++i) {
    if (signal_kinds_[i] == SignalKind::Output || signal_kinds_[i] == SignalKind::Internal) {
      out.push_back(SignalId(static_cast<std::uint32_t>(i)));
    }
  }
  return out;
}

std::vector<SignalId> Stg::real_signals() const {
  std::vector<SignalId> out;
  for (std::size_t i = 0; i < signal_kinds_.size(); ++i) {
    if (signal_kinds_[i] != SignalKind::Dummy) {
      out.push_back(SignalId(static_cast<std::uint32_t>(i)));
    }
  }
  return out;
}

bool Stg::has_dummies() const {
  for (const Label& label : labels_) {
    if (label.dummy) return true;
  }
  return false;
}

void Stg::set_initial_value(SignalId s, std::uint8_t value) {
  if (value > 1) throw ValidationError("initial signal values must be 0 or 1");
  initial_code_[s.index()] = value;
}

void Stg::apply(pn::TransitionId t, Code& code) const {
  const Label& label = labels_[t.index()];
  if (label.dummy) return;
  std::uint8_t& bit = code[label.signal.index()];
  const std::uint8_t expected = label.rising() ? 0 : 1;
  if (bit != expected) {
    throw ImplementabilityError(
        "inconsistent state assignment: transition '" + transition_name(t) +
        "' fires while signal '" + signal_name(label.signal) + "' is already " +
        std::to_string(static_cast<int>(bit)));
  }
  bit ^= 1;
}

void Stg::validate() const {
  net_.validate();
  if (labels_.size() != net_.transition_count()) {
    throw ValidationError("every transition must carry a label");
  }
  if (initial_code_.size() != signal_names_.size()) {
    throw ValidationError("initial code size does not match the signal count");
  }
  for (std::size_t i = 0; i < signal_names_.size(); ++i) {
    if (signal_kinds_[i] != SignalKind::Dummy && instances_[i].empty()) {
      // A signal with no transitions is suspicious but legal (a constant);
      // synthesis treats it as a constant input.  Nothing to throw.
    }
  }
}

}  // namespace punt::stg
