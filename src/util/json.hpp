// Shared JSON string escaping.
//
// Three writers emit JSON by hand — the schedule-trace dump
// (util/task_graph.cpp), the Table-1 report writer (benchmarks/report.cpp)
// and `punt cache stats` — and each needs the same escaping of quotes,
// backslashes and control characters.  One definition keeps the escapes (and
// their edge cases, e.g. \u00XX for raw control bytes) from drifting apart.
#pragma once

#include <string>

namespace punt::util {

/// Escapes `text` for embedding inside a JSON string literal (the quotes
/// themselves are the caller's).  Control characters below 0x20 without a
/// short escape become \u00XX; everything else passes through verbatim.
std::string json_escape(const std::string& text);

}  // namespace punt::util
