// Shared JSON utilities: string escaping and a minimal parser.
//
// Several writers emit JSON by hand — the schedule-trace dump
// (util/task_graph.cpp), the Table-1 report writer (benchmarks/report.cpp),
// `punt cache stats` and the serve protocol (server/protocol.cpp) — and each
// needs the same escaping of quotes, backslashes and control characters.
// Two readers parse it back — the report merger and the serve protocol — and
// both need only objects, arrays, strings, numbers and booleans, so a
// ~100-line recursive-descent parser keeps the repo free of a JSON
// dependency.  One definition keeps escapes and parse behaviour (and their
// edge cases, e.g. \u00XX for raw control bytes) from drifting apart.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace punt::util {

/// Escapes `text` for embedding inside a JSON string literal (the quotes
/// themselves are the caller's).  Control characters below 0x20 without a
/// short escape become \u00XX; everything else passes through verbatim.
std::string json_escape(const std::string& text);

/// One parsed JSON value.  A tagged struct rather than a variant: the two
/// consumers (report merge, serve protocol) walk small documents and the
/// flat layout keeps the accessors trivial.
struct JsonValue {
  enum class Type { Null, Bool, Number, String, Array, Object };
  Type type = Type::Null;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  /// First value under `key` (objects preserve insertion order), or null.
  const JsonValue* find(const std::string& key) const;
};

/// Parses one complete JSON document.  Throws ParseError carrying the byte
/// offset on malformed input (including trailing characters).
JsonValue parse_json(std::string_view text);

/// Field accessors that fail with the missing/mistyped field's name.
/// `what` describes the document for the diagnostic (e.g. "report JSON");
/// it leads the message, so callers can append their own hints.
const JsonValue& json_require(const JsonValue& object, const std::string& key,
                              JsonValue::Type type, const char* what);
double json_number(const JsonValue& object, const std::string& key, const char* what);
/// json_number narrowed to a non-negative integer count.
std::size_t json_count(const JsonValue& object, const std::string& key, const char* what);
std::string json_string(const JsonValue& object, const std::string& key, const char* what);
bool json_bool(const JsonValue& object, const std::string& key, const char* what);

}  // namespace punt::util
