#include "src/util/bitset.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "src/util/error.hpp"

namespace punt {

Bitset Bitset::from_words(std::size_t size, std::vector<std::uint64_t> words) {
  if (words.size() != word_count(size)) {
    throw ValidationError("Bitset::from_words: " + std::to_string(words.size()) +
                          " word(s) cannot carry a bitset of " + std::to_string(size) +
                          " bit(s); the serialisation is corrupt");
  }
  const std::size_t used = size & 63;
  if (!words.empty() && used != 0 &&
      (words.back() & ~((std::uint64_t{1} << used) - 1)) != 0) {
    throw ValidationError("Bitset::from_words: a bit beyond the declared size of " +
                          std::to_string(size) + " is set; the serialisation is corrupt");
  }
  Bitset bits;
  bits.size_ = size;
  bits.words_ = std::move(words);
  return bits;
}

void Bitset::resize(std::size_t size) {
  size_ = size;
  words_.resize(word_count(size), 0);
  mask_tail();
}

void Bitset::mask_tail() {
  const std::size_t used = size_ & 63;
  if (!words_.empty() && used != 0) {
    words_.back() &= (std::uint64_t{1} << used) - 1;
  }
}

void Bitset::clear_all() { std::fill(words_.begin(), words_.end(), 0); }

void Bitset::set_all() {
  std::fill(words_.begin(), words_.end(), ~std::uint64_t{0});
  mask_tail();
}

std::size_t Bitset::count() const {
  std::size_t n = 0;
  for (const std::uint64_t w : words_) n += static_cast<std::size_t>(__builtin_popcountll(w));
  return n;
}

bool Bitset::any() const {
  for (const std::uint64_t w : words_) {
    if (w != 0) return true;
  }
  return false;
}

std::size_t Bitset::find_first() const {
  for (std::size_t w = 0; w < words_.size(); ++w) {
    if (words_[w] != 0) return w * 64 + static_cast<std::size_t>(__builtin_ctzll(words_[w]));
  }
  return npos;
}

std::size_t Bitset::find_next(std::size_t i) const {
  ++i;
  if (i >= size_) return npos;
  std::size_t w = i >> 6;
  std::uint64_t word = words_[w] & (~std::uint64_t{0} << (i & 63));
  while (true) {
    if (word != 0) return w * 64 + static_cast<std::size_t>(__builtin_ctzll(word));
    if (++w >= words_.size()) return npos;
    word = words_[w];
  }
}

Bitset& Bitset::operator&=(const Bitset& other) {
  assert(size_ == other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

Bitset& Bitset::operator|=(const Bitset& other) {
  assert(size_ == other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

Bitset& Bitset::operator^=(const Bitset& other) {
  assert(size_ == other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= other.words_[i];
  return *this;
}

Bitset& Bitset::subtract(const Bitset& other) {
  assert(size_ == other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
  return *this;
}

bool Bitset::intersects(const Bitset& other) const {
  assert(size_ == other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & other.words_[i]) != 0) return true;
  }
  return false;
}

bool Bitset::is_subset_of(const Bitset& other) const {
  assert(size_ == other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & ~other.words_[i]) != 0) return false;
  }
  return true;
}

bool Bitset::operator==(const Bitset& other) const {
  return size_ == other.size_ && words_ == other.words_;
}

std::vector<std::size_t> Bitset::to_indices() const {
  std::vector<std::size_t> out;
  out.reserve(count());
  for_each([&out](std::size_t i) { out.push_back(i); });
  return out;
}

std::string Bitset::to_string() const {
  std::string out = "{";
  bool first = true;
  for_each([&](std::size_t i) {
    if (!first) out += ", ";
    first = false;
    out += std::to_string(i);
  });
  out += "}";
  return out;
}

std::size_t Bitset::hash() const {
  std::uint64_t h = 1469598103934665603ull;
  for (const std::uint64_t w : words_) {
    h ^= w;
    h *= 1099511628211ull;
  }
  h ^= size_;
  h *= 1099511628211ull;
  return static_cast<std::size_t>(h);
}

}  // namespace punt
