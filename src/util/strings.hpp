// Small string utilities shared by the `.g` parser and the report writers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace punt {

/// Splits on any run of characters from `delims`; empty tokens are dropped.
std::vector<std::string> split(std::string_view text, std::string_view delims = " \t");

/// Removes leading and trailing whitespace.
std::string_view trim(std::string_view text);

/// True when `text` begins with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// Splits `text` into lines; a trailing '\\' joins a line with its successor
/// (the `.g` format's continuation convention).  '\r' is stripped.
std::vector<std::string> logical_lines(std::string_view text);

/// printf into a std::string.  Never truncates: output longer than the
/// stack buffer is measured and formatted again at exact size (truncation
/// would corrupt the JSON and CLI-parity lines this backs).
std::string printf_string(const char* format, ...) __attribute__((format(printf, 1, 2)));

}  // namespace punt
