#include "src/util/thread_pool.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "src/util/error.hpp"

namespace punt::util {
namespace {

/// -1 on every thread the pool did not create; workers overwrite it with
/// their index for the lifetime of worker_loop().
thread_local int current_worker = -1;

}  // namespace

ThreadPool::ThreadPool(std::size_t thread_count) {
  const std::size_t n = std::max<std::size_t>(1, thread_count);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(static_cast<int>(i)); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;  // idempotent: a second call (or the destructor
                            // after an explicit shutdown) has nothing to do
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void ThreadPool::post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Enqueueing into a stopped pool used to silently park the task in a
    // queue no worker will ever drain again — reject loudly instead.  The
    // worker-thread exemption keeps the drain contract intact: during
    // shutdown() workers run until the queue is empty, so a draining task's
    // continuation (the task graph posts dependents from inside nodes) is
    // still executed; but once the workers are joined no worker thread
    // exists to pass this test, so a post into the dead queue — a lifecycle
    // bug such as a daemon request racing its own teardown — always throws.
    if (stopping_ && current_worker_index() < 0) {
      throw Error("ThreadPool::post after shutdown: the pool no longer runs tasks");
    }
    queue_.push_back(std::move(task));
  }
  wake_.notify_one();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  // shared_ptr because std::function requires copyable callables; the
  // packaged_task itself is move-only.
  auto packaged = std::make_shared<std::packaged_task<void()>>(std::move(task));
  std::future<void> future = packaged->get_future();
  post([packaged] { (*packaged)(); });
  return future;
}

int ThreadPool::current_worker_index() { return current_worker; }

std::size_t ThreadPool::hardware_default() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

void ThreadPool::worker_loop(int worker_index) {
  current_worker = worker_index;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // post() contract: must not throw (submit wraps in packaged_task)
  }
}

}  // namespace punt::util
