#include "src/util/thread_pool.hpp"

#include <algorithm>
#include <utility>

namespace punt::util {

ThreadPool::ThreadPool(std::size_t thread_count) {
  const std::size_t n = std::max<std::size_t>(1, thread_count);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(packaged));
  }
  wake_.notify_one();
  return future;
}

std::size_t ThreadPool::hardware_default() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // exceptions land in the task's future
  }
}

}  // namespace punt::util
