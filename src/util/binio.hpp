// Bounds-checked binary (de)serialisation primitives.
//
// The on-disk SemanticModel store (core/model_store.*) persists the
// unfolding-segment / state-graph layers as fixed-width little-endian
// fields.  BinaryWriter appends to a growable byte string; BinaryReader
// walks a string_view and throws ParseError on any read past the end, so a
// truncated cache file surfaces as a diagnosable error (which the store
// turns into a rebuild), never as garbage data or UB.
//
// Encoding: u8/u32/u64 little-endian, f64 as the IEEE-754 bit pattern in a
// u64, strings and byte blobs as u64 length + raw bytes.  The format is a
// cache interchange between builds of this code base on one machine — not a
// network protocol — so no varints, no alignment games.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace punt::util {

/// Appends fixed-width little-endian fields to a byte buffer.
class BinaryWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }

  void u32(std::uint32_t v) {
    for (int shift = 0; shift < 32; shift += 8) {
      out_.push_back(static_cast<char>((v >> shift) & 0xff));
    }
  }

  void u64(std::uint64_t v) {
    for (int shift = 0; shift < 64; shift += 8) {
      out_.push_back(static_cast<char>((v >> shift) & 0xff));
    }
  }

  /// IEEE-754 bit pattern; exact round-trip, no text formatting loss.
  void f64(double v);

  /// u64 length prefix + raw bytes.
  void str(std::string_view text) {
    u64(text.size());
    out_.append(text);
  }

  /// Raw bytes with no length prefix — for fixed-size framing (magic
  /// numbers, pre-serialised payloads) whose extent the reader knows.
  void raw(std::string_view bytes) { out_.append(bytes); }

  const std::string& data() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Reads BinaryWriter output back; every accessor throws ParseError("…
/// truncated …") when fewer bytes remain than the field needs.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  std::string str();

  /// u64 count with an upper bound: serialized containers are length-
  /// prefixed, and a corrupt length must fail loudly instead of driving a
  /// multi-gigabyte reserve().  `what` names the field in the diagnostic.
  std::size_t count(std::uint64_t max, const char* what);

  std::size_t remaining() const { return data_.size() - pos_; }
  bool at_end() const { return pos_ == data_.size(); }

 private:
  void need(std::size_t bytes) const;

  std::string_view data_;
  std::size_t pos_ = 0;
};

/// FNV-1a 64-bit over a byte range — the store's corruption checksum and
/// its key → filename hash.
std::uint64_t fnv1a64(std::string_view bytes);

}  // namespace punt::util
