#include "src/util/hmac.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cstring>
#include <random>

#include "src/util/error.hpp"

namespace punt::util {
namespace {

// FIPS 180-4 §4.2.2: the first 32 bits of the fractional parts of the cube
// roots of the first 64 primes.
constexpr std::uint32_t kRoundConstants[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
};

constexpr std::size_t kBlockBytes = 64;

inline std::uint32_t rotr(std::uint32_t x, int n) {
  return (x >> n) | (x << (32 - n));
}

/// One 64-byte block through the SHA-256 compression function.
void compress(std::uint32_t state[8], const std::uint8_t block[kBlockBytes]) {
  std::uint32_t w[64];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<std::uint32_t>(block[4 * i]) << 24) |
           (static_cast<std::uint32_t>(block[4 * i + 1]) << 16) |
           (static_cast<std::uint32_t>(block[4 * i + 2]) << 8) |
           static_cast<std::uint32_t>(block[4 * i + 3]);
  }
  for (int i = 16; i < 64; ++i) {
    const std::uint32_t s0 =
        rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const std::uint32_t s1 =
        rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }
  std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
  std::uint32_t e = state[4], f = state[5], g = state[6], h = state[7];
  for (int i = 0; i < 64; ++i) {
    const std::uint32_t big_s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
    const std::uint32_t ch = (e & f) ^ (~e & g);
    const std::uint32_t t1 = h + big_s1 + ch + kRoundConstants[i] + w[i];
    const std::uint32_t big_s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
    const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint32_t t2 = big_s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + t1;
    d = c;
    c = b;
    b = a;
    a = t1 + t2;
  }
  state[0] += a;
  state[1] += b;
  state[2] += c;
  state[3] += d;
  state[4] += e;
  state[5] += f;
  state[6] += g;
  state[7] += h;
}

}  // namespace

std::array<std::uint8_t, 32> sha256(std::string_view data) {
  // FIPS 180-4 §5.3.3 initial hash: fractional parts of the square roots of
  // the first 8 primes.
  std::uint32_t state[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
                            0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(data.data());
  std::size_t remaining = data.size();
  while (remaining >= kBlockBytes) {
    compress(state, bytes);
    bytes += kBlockBytes;
    remaining -= kBlockBytes;
  }
  // Padding: 0x80, zeros, then the 64-bit big-endian *bit* length — at most
  // two final blocks.
  std::uint8_t tail[2 * kBlockBytes] = {};
  std::memcpy(tail, bytes, remaining);
  tail[remaining] = 0x80;
  const std::size_t tail_blocks = remaining + 1 + 8 <= kBlockBytes ? 1 : 2;
  const std::uint64_t bit_length = static_cast<std::uint64_t>(data.size()) * 8;
  for (int i = 0; i < 8; ++i) {
    tail[tail_blocks * kBlockBytes - 1 - i] =
        static_cast<std::uint8_t>(bit_length >> (8 * i));
  }
  compress(state, tail);
  if (tail_blocks == 2) compress(state, tail + kBlockBytes);

  std::array<std::uint8_t, 32> digest;
  for (int i = 0; i < 8; ++i) {
    digest[4 * i] = static_cast<std::uint8_t>(state[i] >> 24);
    digest[4 * i + 1] = static_cast<std::uint8_t>(state[i] >> 16);
    digest[4 * i + 2] = static_cast<std::uint8_t>(state[i] >> 8);
    digest[4 * i + 3] = static_cast<std::uint8_t>(state[i]);
  }
  return digest;
}

std::array<std::uint8_t, 32> hmac_sha256(std::string_view key,
                                         std::string_view message) {
  std::array<std::uint8_t, kBlockBytes> padded_key = {};
  if (key.size() > kBlockBytes) {
    const std::array<std::uint8_t, 32> hashed = sha256(key);
    std::memcpy(padded_key.data(), hashed.data(), hashed.size());
  } else {
    std::memcpy(padded_key.data(), key.data(), key.size());
  }
  std::string inner;
  inner.reserve(kBlockBytes + message.size());
  for (const std::uint8_t byte : padded_key) {
    inner.push_back(static_cast<char>(byte ^ 0x36));
  }
  inner.append(message);
  const std::array<std::uint8_t, 32> inner_digest = sha256(inner);

  std::string outer;
  outer.reserve(kBlockBytes + inner_digest.size());
  for (const std::uint8_t byte : padded_key) {
    outer.push_back(static_cast<char>(byte ^ 0x5c));
  }
  outer.append(reinterpret_cast<const char*>(inner_digest.data()),
               inner_digest.size());
  return sha256(outer);
}

bool constant_time_equal(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  unsigned char accumulator = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    accumulator = static_cast<unsigned char>(
        accumulator | (static_cast<unsigned char>(a[i]) ^
                       static_cast<unsigned char>(b[i])));
  }
  return accumulator == 0;
}

std::string to_hex(const std::uint8_t* data, std::size_t size) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(2 * size);
  for (std::size_t i = 0; i < size; ++i) {
    out.push_back(kDigits[data[i] >> 4]);
    out.push_back(kDigits[data[i] & 0xF]);
  }
  return out;
}

std::vector<std::uint8_t> random_bytes(std::size_t count) {
  std::vector<std::uint8_t> bytes(count);
  const int fd = ::open("/dev/urandom", O_RDONLY | O_CLOEXEC);
  if (fd >= 0) {
    std::size_t got = 0;
    while (got < count) {
      const ssize_t n = ::read(fd, bytes.data() + got, count - got);
      if (n <= 0) break;
      got += static_cast<std::size_t>(n);
    }
    ::close(fd);
    if (got == count) return bytes;
  }
  // Container without /dev/urandom (or a short read): std::random_device is
  // the portable CSPRNG-backed fallback.
  try {
    std::random_device device;
    for (std::size_t i = 0; i < count; i += 4) {
      const std::uint32_t word = device();
      for (std::size_t j = 0; j < 4 && i + j < count; ++j) {
        bytes[i + j] = static_cast<std::uint8_t>(word >> (8 * j));
      }
    }
  } catch (const std::exception& e) {
    throw Error(std::string("cannot gather handshake randomness: ") + e.what());
  }
  return bytes;
}

std::string random_hex(std::size_t count) {
  const std::vector<std::uint8_t> bytes = random_bytes(count);
  return to_hex(bytes.data(), bytes.size());
}

}  // namespace punt::util
