// Wall-clock stopwatch used by the benchmark harnesses to reproduce the
// paper's UnfTim / SynTim / EspTim / TotTim columns.
#pragma once

#include <chrono>
#include <ctime>

namespace punt {

/// Monotonic stopwatch; starts running on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last restart().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction or the last restart().
  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// CPU-time stopwatch for the *calling thread*.  Unlike Stopwatch it does
/// not count time the thread spent descheduled, so per-task phase times
/// summed across a worker pool measure aggregate work, not oversubscription
/// artefacts (the pipeline's SynTim / EspTim columns rely on this).  Falls
/// back to wall clock where no thread CPU clock exists.
class ThreadCpuStopwatch {
 public:
  ThreadCpuStopwatch() : start_(now()) {}

  void restart() { start_ = now(); }

  /// Elapsed CPU seconds of this thread since construction / restart().
  double seconds() const { return now() - start_; }

 private:
  static double now() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
    timespec ts;
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
      return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
    }
#endif
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  double start_;
};

}  // namespace punt
