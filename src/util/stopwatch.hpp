// Wall-clock stopwatch used by the benchmark harnesses to reproduce the
// paper's UnfTim / SynTim / EspTim / TotTim columns.
#pragma once

#include <chrono>

namespace punt {

/// Monotonic stopwatch; starts running on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last restart().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction or the last restart().
  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace punt
