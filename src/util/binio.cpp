#include "src/util/binio.hpp"

#include <cstring>

#include "src/util/error.hpp"

namespace punt::util {

void BinaryWriter::f64(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  u64(bits);
}

void BinaryReader::need(std::size_t bytes) const {
  if (data_.size() - pos_ < bytes) {
    throw ParseError("binary payload truncated: need " + std::to_string(bytes) +
                     " byte(s) at offset " + std::to_string(pos_) + " of " +
                     std::to_string(data_.size()));
  }
}

std::uint8_t BinaryReader::u8() {
  need(1);
  return static_cast<std::uint8_t>(data_[pos_++]);
}

std::uint32_t BinaryReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int shift = 0; shift < 32; shift += 8) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(data_[pos_++])) << shift;
  }
  return v;
}

std::uint64_t BinaryReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 8) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(data_[pos_++])) << shift;
  }
  return v;
}

double BinaryReader::f64() {
  const std::uint64_t bits = u64();
  double v = 0;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

std::string BinaryReader::str() {
  const std::uint64_t length = u64();
  if (length > data_.size() - pos_) {
    throw ParseError("binary payload truncated: string of " + std::to_string(length) +
                     " byte(s) at offset " + std::to_string(pos_) + " overruns the " +
                     std::to_string(data_.size()) + "-byte payload");
  }
  std::string out(data_.substr(pos_, static_cast<std::size_t>(length)));
  pos_ += static_cast<std::size_t>(length);
  return out;
}

std::size_t BinaryReader::count(std::uint64_t max, const char* what) {
  const std::uint64_t n = u64();
  if (n > max) {
    throw ParseError("binary payload corrupt: " + std::string(what) + " count " +
                     std::to_string(n) + " exceeds the plausible bound " +
                     std::to_string(max));
  }
  return static_cast<std::size_t>(n);
}

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace punt::util
