// A dependency-aware task-graph executor over util::ThreadPool.
//
// The synthesis flow is naturally a DAG — build the semantic model, derive a
// cover per output signal, minimise each, assemble — and this executor runs
// exactly that shape: nodes carry a function plus the ids of the nodes they
// depend on, and a node is enqueued on the pool the moment its last
// dependency completes (continuation scheduling).  No node ever waits on
// another inside a worker, so dependent tasks cannot park a worker and any
// number of graphs can churn through one pool without deadlock — the
// restriction the old blocking-future scheduler had to forbid.
//
// Semantics:
//   * Ready nodes are dispatched in ascending (priority, -estimated_cost,
//     id) order: the priority *band* always wins (models before derives,
//     widen-before-deepen — DESIGN.md §7), and within a band the node
//     expected to run longest goes first (longest-processing-time-first,
//     from costs a CostLedger learned on earlier runs).  Nodes with no
//     estimate (cost 0) keep the plain id order, so a cold start is exactly
//     the pre-cost-model schedule.  The inline run (no pool) follows that
//     order exactly, so single-threaded execution is fully deterministic and
//     reproducible — and because estimates only reorder *within* a band,
//     results are bit-identical whatever the ledger holds.
//   * A node that throws is recorded as Failed with its exception_ptr; its
//     transitive dependents are Cancelled (never run).  Nodes on unrelated
//     branches still run — failure is contained to the downstream cone.
//   * execute() itself never throws a task's exception: callers inspect
//     per-node status()/error() and decide what propagates (the synthesis
//     pipeline rethrows the lowest-signal-index failure per entry).
//   * Every run records a TaskTrace — per node: kind, label, dependencies,
//     the worker that ran it, wall-clock start/end and thread-CPU time —
//     from which the critical path (the longest dependency chain by wall
//     duration, the lower bound on achievable wall-clock) is computed.
//
// The graph is build-then-run: add every node, call execute() (or
// execute_inline()) once, then read results out of whatever state the node
// functions wrote.  Node ids are dense and ascending; dependencies must
// refer to already-added nodes, which makes cycles unrepresentable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <string>
#include <vector>

#include "src/util/thread_pool.hpp"

namespace punt::util {

enum class TaskStatus : std::uint8_t { Pending, Done, Failed, Cancelled };

/// The post-run record of one node, in the units the schedule trace and the
/// critical-path computation need.  Wall times are seconds since the start
/// of execute(); cpu_seconds is the node's thread-CPU time (so summed trace
/// times measure work, not oversubscription).
struct TraceNode {
  std::size_t id = 0;
  std::string kind;   // e.g. "model", "derive", "minimize", "assembly"
  std::string label;  // e.g. "chu150/y", for humans reading the trace
  std::vector<std::size_t> deps;
  int priority = 0;
  double est_cost = 0;    // predicted seconds (0 = no estimate), from add()
  TaskStatus status = TaskStatus::Pending;
  int worker = -1;        // pool worker index; -1 = inline run or never ran
  double wall_ready = 0;  // when the node became dispatchable (~0 for roots)
  double wall_start = 0;  // seconds since execute() began
  double wall_end = 0;
  double cpu_seconds = 0;

  double wall_duration() const { return wall_end - wall_start; }

  /// Ready→start latency: how long the node sat dispatchable before a worker
  /// picked it up.  The per-node signal that shows whether a dispatch-order
  /// change actually moved long tasks earlier.  Zero for cancelled nodes.
  double queue_wait() const {
    return status == TaskStatus::Cancelled ? 0 : wall_start - wall_ready;
  }
};

/// The executed schedule of one graph run.
struct TaskTrace {
  std::vector<TraceNode> nodes;  // indexed by node id
  std::size_t workers = 1;       // pool width (1 for inline runs)
  double wall_seconds = 0;       // whole-graph wall-clock

  /// Length of the critical path: the dependency chain whose wall durations
  /// sum highest.  Cancelled nodes contribute zero.  This is the shortest
  /// wall-clock any worker count could achieve for the measured node costs.
  double critical_path_seconds() const;

  /// The node ids of that chain, in execution order.
  std::vector<std::size_t> critical_path() const;

  /// Human-readable one-paragraph summary: node counts by kind, wall clock,
  /// critical-path length and the chain's labels.
  std::string summary() const;

  /// JSON dump ("punt-schedule-trace" schema, version 1) for --trace-schedule.
  std::string to_json() const;
};

/// Build-then-run DAG of tasks.  Not thread-safe during construction; one
/// execute() call per graph.
class TaskGraph {
 public:
  using NodeId = std::size_t;

  TaskGraph() = default;
  TaskGraph(const TaskGraph&) = delete;
  TaskGraph& operator=(const TaskGraph&) = delete;

  /// Adds a node.  `deps` must name already-added nodes (so the graph is
  /// acyclic by construction); violating that throws std::invalid_argument.
  /// Lower `priority` dispatches first among simultaneously-ready nodes;
  /// ties break on id, so the schedule is deterministic.
  NodeId add(std::string kind, std::string label, int priority,
             std::vector<NodeId> deps, std::function<void()> fn);

  /// As above, with a cost estimate (predicted seconds; 0 = unknown).  Among
  /// simultaneously-ready nodes of one priority band the highest estimate
  /// dispatches first (longest-processing-time-first); ties — including the
  /// all-zero cold start — fall back to id order.  Estimates influence
  /// *order only*, never which nodes run or what they compute.
  NodeId add(std::string kind, std::string label, int priority, double estimated_cost,
             std::vector<NodeId> deps, std::function<void()> fn);

  std::size_t size() const { return nodes_.size(); }

  /// Runs the graph on the calling thread in (priority, id) ready order.
  void execute_inline();

  /// Runs the graph across `pool`'s workers; the calling thread blocks until
  /// every node is Done, Failed or Cancelled.  Must not be called from a
  /// worker of the same pool (the caller blocks; workers never do).  Any
  /// number of graphs may execute over one pool concurrently.
  void execute(ThreadPool& pool);

  TaskStatus status(NodeId id) const { return nodes_[id].trace.status; }

  /// The exception a Failed node threw; null for any other status.
  std::exception_ptr error(NodeId id) const { return nodes_[id].error; }

  /// The executed schedule; meaningful after execute()/execute_inline().
  const TaskTrace& trace() const { return trace_; }

 private:
  struct Node {
    std::function<void()> fn;
    std::vector<NodeId> dependents;
    std::size_t pending_deps = 0;
    std::exception_ptr error;
    TraceNode trace;  // moved into trace_ at the end of the run
  };

  /// Marks every transitive dependent of `id` Cancelled; returns the newly
  /// cancelled ids (callers update their done-counters).  Caller holds the
  /// execution lock when running under a pool.
  std::vector<NodeId> cancel_dependents(NodeId id);

  std::vector<Node> nodes_;
  TaskTrace trace_;
  bool executed_ = false;
};

}  // namespace punt::util
