#include "src/util/json.hpp"

#include <cstdio>

namespace punt::util {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace punt::util
