#include "src/util/json.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "src/util/error.hpp"

namespace punt::util {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

/// Nesting bound for arrays/objects.  The parser recurses once per level,
/// and since the serve protocol feeds it untrusted socket input, unbounded
/// nesting ("[[[[..." inside one legal-sized frame) would overflow the
/// connection thread's stack and kill the whole daemon.  Every punt schema
/// nests < 8 deep; 64 is comfortably above any legitimate document.
constexpr std::size_t kMaxJsonDepth = 64;

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse() {
    JsonValue value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after the JSON value");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw ParseError("malformed JSON at byte " + std::to_string(pos_) + ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool try_consume(char c) {
    if (pos_ < text_.size() && peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      JsonValue value;
      value.type = JsonValue::Type::String;
      value.string = parse_string();
      return value;
    }
    if (c == 't' || c == 'f') return parse_keyword(c == 't' ? "true" : "false");
    if (c == 'n') return parse_keyword("null");
    return parse_number();
  }

  JsonValue parse_keyword(std::string_view keyword) {
    if (text_.substr(pos_, keyword.size()) != keyword) {
      fail("unrecognised literal");
    }
    pos_ += keyword.size();
    JsonValue value;
    if (keyword == "true" || keyword == "false") {
      value.type = JsonValue::Type::Bool;
      value.boolean = keyword == "true";
    }
    return value;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '-' ||
            text_[pos_] == '+' || text_[pos_] == '.' || text_[pos_] == 'e' ||
            text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    JsonValue value;
    value.type = JsonValue::Type::Number;
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    value.number = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("invalid number '" + token + "'");
    return value;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("invalid \\u escape");
          }
          // BMP-only UTF-8 encoding; the punt writers never emit surrogates.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_array() {
    expect('[');
    const DepthGuard guard(this);
    JsonValue value;
    value.type = JsonValue::Type::Array;
    if (try_consume(']')) return value;
    while (true) {
      value.array.push_back(parse_value());
      if (try_consume(']')) return value;
      expect(',');
    }
  }

  JsonValue parse_object() {
    expect('{');
    const DepthGuard guard(this);
    JsonValue value;
    value.type = JsonValue::Type::Object;
    if (try_consume('}')) return value;
    while (true) {
      std::string key = parse_string();
      expect(':');
      value.object.emplace_back(std::move(key), parse_value());
      if (try_consume('}')) return value;
      expect(',');
    }
  }

  struct DepthGuard {
    explicit DepthGuard(JsonParser* parser) : parser(parser) {
      if (++parser->depth_ > kMaxJsonDepth) {
        parser->fail("nesting deeper than " + std::to_string(kMaxJsonDepth) +
                     " levels");
      }
    }
    ~DepthGuard() { --parser->depth_; }
    JsonParser* parser;
  };

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
};

const char* type_name(JsonValue::Type type) {
  switch (type) {
    case JsonValue::Type::Null: return "null";
    case JsonValue::Type::Bool: return "boolean";
    case JsonValue::Type::Number: return "numeric";
    case JsonValue::Type::String: return "string";
    case JsonValue::Type::Array: return "array";
    case JsonValue::Type::Object: return "object";
  }
  return "unknown";
}

}  // namespace

JsonValue parse_json(std::string_view text) { return JsonParser(text).parse(); }

const JsonValue& json_require(const JsonValue& object, const std::string& key,
                              JsonValue::Type type, const char* what) {
  const JsonValue* value = object.find(key);
  if (value == nullptr || value->type != type) {
    throw ParseError(std::string(what) + " is missing " + type_name(type) + " field '" +
                     key + "'");
  }
  return *value;
}

double json_number(const JsonValue& object, const std::string& key, const char* what) {
  return json_require(object, key, JsonValue::Type::Number, what).number;
}

std::size_t json_count(const JsonValue& object, const std::string& key, const char* what) {
  const double n = json_number(object, key, what);
  // Bound before the cast: parse_number accepts 1e999 (strtod yields inf)
  // and a double-to-size_t conversion outside the representable range is
  // undefined behaviour, not a big number.  2^53 is the largest range in
  // which doubles hold every integer exactly — far above any real count.
  constexpr double kMaxExactCount = 9007199254740992.0;  // 2^53
  if (!(n >= 0) || n > kMaxExactCount) {
    throw ParseError(std::string(what) + " field '" + key +
                     "' is not a representable non-negative count");
  }
  return static_cast<std::size_t>(n);
}

std::string json_string(const JsonValue& object, const std::string& key, const char* what) {
  return json_require(object, key, JsonValue::Type::String, what).string;
}

bool json_bool(const JsonValue& object, const std::string& key, const char* what) {
  return json_require(object, key, JsonValue::Type::Bool, what).boolean;
}

}  // namespace punt::util
