// A compact dynamic bitset.
//
// std::vector<bool> lacks word-level access and std::bitset is fixed-size;
// the unfolding algorithms (co-relation maintenance, local-configuration
// sets) need fast AND/OR/subset tests over sets whose universe grows as the
// segment grows, so we keep our own small implementation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace punt {

/// Dynamically sized bitset over indices [0, size()).
///
/// Bits beyond size() inside the last word are kept at zero (all mutators
/// preserve this), so whole-word operations such as count() and the
/// comparison operators need no masking.
class Bitset {
 public:
  Bitset() = default;
  explicit Bitset(std::size_t size) : size_(size), words_(word_count(size), 0) {}

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Grows (or shrinks) to `size` bits; newly exposed bits are zero.
  void resize(std::size_t size);

  bool test(std::size_t i) const { return (words_[i >> 6] >> (i & 63)) & 1u; }
  void set(std::size_t i) { words_[i >> 6] |= std::uint64_t{1} << (i & 63); }
  void reset(std::size_t i) { words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63)); }
  void assign(std::size_t i, bool value) { value ? set(i) : reset(i); }

  void clear_all();
  void set_all();

  /// Number of set bits.
  std::size_t count() const;
  bool any() const;
  bool none() const { return !any(); }

  /// Index of the lowest set bit, or npos when none is set.
  std::size_t find_first() const;
  /// Index of the lowest set bit strictly above `i`, or npos.
  std::size_t find_next(std::size_t i) const;

  Bitset& operator&=(const Bitset& other);
  Bitset& operator|=(const Bitset& other);
  Bitset& operator^=(const Bitset& other);
  /// this := this AND NOT other.
  Bitset& subtract(const Bitset& other);

  friend Bitset operator&(Bitset a, const Bitset& b) { return a &= b; }
  friend Bitset operator|(Bitset a, const Bitset& b) { return a |= b; }

  /// True when the two sets share at least one element.
  bool intersects(const Bitset& other) const;
  /// True when every set bit of *this is also set in `other`.
  bool is_subset_of(const Bitset& other) const;

  bool operator==(const Bitset& other) const;

  /// Invokes `fn(index)` for every set bit in ascending order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t word = words_[w];
      while (word != 0) {
        const int bit = __builtin_ctzll(word);
        fn(w * 64 + static_cast<std::size_t>(bit));
        word &= word - 1;
      }
    }
  }

  /// Set bits as an ascending index vector (handy in tests).
  std::vector<std::size_t> to_indices() const;

  /// "{1, 4, 7}" style rendering for diagnostics.
  std::string to_string() const;

  /// FNV-1a hash of the payload words; suitable for unordered containers.
  std::size_t hash() const;

  /// Raw payload words (bit i lives in word i/64 at position i%64); exposed
  /// for binary serialisation, which round-trips words verbatim instead of
  /// re-setting bits one by one.
  const std::vector<std::uint64_t>& words() const { return words_; }

  /// Rebuilds a bitset from `size` and the payload produced by words().
  /// Throws ValidationError when the word count does not match the size or a
  /// bit beyond `size` is set (both indicate a corrupt serialisation, and
  /// silently masking them would hide the corruption).
  static Bitset from_words(std::size_t size, std::vector<std::uint64_t> words);

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

 private:
  static std::size_t word_count(std::size_t bits) { return (bits + 63) / 64; }
  void mask_tail();

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

struct BitsetHash {
  std::size_t operator()(const Bitset& b) const { return b.hash(); }
};

}  // namespace punt
