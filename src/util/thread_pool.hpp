// A fixed-size worker pool over std::thread.
//
// The pool exists to run the synthesis pipeline's per-signal and per-STG
// derivation tasks (src/core/pipeline.hpp); it is deliberately minimal:
// submit() hands back a std::future<void> whose get() rethrows anything the
// task threw, and the destructor drains the queue before joining.  Tasks
// must not submit further tasks into the same pool and then block on them —
// the pipeline avoids nesting for exactly that reason.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace punt::util {

class ThreadPool {
 public:
  /// Spawns `thread_count` workers; at least one worker is always created.
  explicit ThreadPool(std::size_t thread_count);

  /// Joins the workers after finishing every task already submitted.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Enqueues `task`; the returned future completes when the task ran and
  /// rethrows from get() whatever the task threw.
  std::future<void> submit(std::function<void()> task);

  /// The concurrency to use when the caller asked for "auto" (jobs = 0):
  /// std::thread::hardware_concurrency(), or 1 when that is unknown.
  static std::size_t hardware_default();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::packaged_task<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable wake_;
  bool stopping_ = false;
};

}  // namespace punt::util
