// A fixed-size worker pool over std::thread.
//
// The pool runs the synthesis task graph (src/util/task_graph.hpp): graph
// nodes are enqueued with post() as their dependencies complete, so a
// dependent task is never *submitted* before it can run and no worker ever
// parks on a future.  Tasks may freely post (or submit) further tasks into
// the same pool — enqueueing never blocks — which is what the task graph's
// continuation scheduling relies on.  The one remaining restriction is the
// obvious one: a task must not *block* on work that needs a worker of the
// same pool (that can deadlock a fully loaded pool); the task graph never
// does, it reschedules continuations instead of waiting.
//
// submit() is the future-returning convenience used by tests and one-shot
// callers; post() is the zero-overhead path the task graph uses.  The
// destructor drains the queue before joining.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace punt::util {

class ThreadPool {
 public:
  /// Spawns `thread_count` workers; at least one worker is always created.
  explicit ThreadPool(std::size_t thread_count);

  /// Joins the workers after finishing every task already enqueued.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Drains the queue and joins the workers; idempotent (the destructor
  /// calls it).  After shutdown() the pool accepts no further work —
  /// post()/submit() throw — which is what lets a long-lived holder (the
  /// serve daemon) drain deterministically before tearing state down.
  void shutdown();

  /// Enqueues `task` fire-and-forget.  The task must not throw — there is
  /// no future to carry the exception, so a throw would terminate the
  /// worker (the task graph catches everything inside the node body).
  /// Throws Error when a non-worker thread posts after shutdown began: the
  /// queue is (or is about to be) dead, and a silent enqueue would drop
  /// the task on the floor.  Posts from a pool worker stay legal even
  /// mid-drain — shutdown() runs the queue dry before joining, so a
  /// draining task's continuations still execute ("tasks may enqueue
  /// tasks" holds to the very end).
  void post(std::function<void()> task);

  /// Enqueues `task`; the returned future completes when the task ran and
  /// rethrows from get() whatever the task threw.
  std::future<void> submit(std::function<void()> task);

  /// Index of the pool worker running the calling thread (0-based), or -1
  /// when the caller is not a pool worker.  Used by the schedule trace to
  /// attribute nodes to workers.
  static int current_worker_index();

  /// The concurrency to use when the caller asked for "auto" (jobs = 0):
  /// std::thread::hardware_concurrency(), or 1 when that is unknown.
  static std::size_t hardware_default();

 private:
  void worker_loop(int worker_index);

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable wake_;
  bool stopping_ = false;
};

}  // namespace punt::util
