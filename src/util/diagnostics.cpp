#include "src/util/diagnostics.hpp"

#include <algorithm>

#include "src/util/error.hpp"
#include "src/util/strings.hpp"

namespace punt::util {

const char* severity_name(Severity severity) {
  switch (severity) {
    case Severity::Note: return "note";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "error";
}

void DiagnosticSink::report(Diagnostic diagnostic) {
  if (diagnostic.severity == Severity::Error) ++errors_;
  diagnostics_.push_back(std::move(diagnostic));
}

void DiagnosticSink::report(std::string rule, Severity severity, SourceSpan span,
                            std::string message, std::string hint) {
  report(Diagnostic{std::move(rule), severity, span, std::move(message),
                    std::move(hint), {}});
}

std::size_t DiagnosticSink::count(Severity severity) const {
  std::size_t n = 0;
  for (const Diagnostic& d : diagnostics_) {
    if (d.severity == severity) ++n;
  }
  return n;
}

void DiagnosticSink::throw_first_error() const {
  for (const Diagnostic& d : diagnostics_) {
    if (d.severity == Severity::Error) throw ParseError(d.message);
  }
}

namespace {

/// The 1-based `line` of `source`, without its trailing newline; empty when
/// the text has fewer lines.
std::string_view source_line(std::string_view source, std::uint32_t line) {
  std::size_t pos = 0;
  for (std::uint32_t i = 1; i < line; ++i) {
    const std::size_t nl = source.find('\n', pos);
    if (nl == std::string_view::npos) return std::string_view();
    pos = nl + 1;
  }
  const std::size_t nl = source.find('\n', pos);
  std::string_view text =
      nl == std::string_view::npos ? source.substr(pos) : source.substr(pos, nl - pos);
  while (!text.empty() && text.back() == '\r') text.remove_suffix(1);
  return text;
}

}  // namespace

std::string render_diagnostics(const std::vector<Diagnostic>& diagnostics,
                               std::string_view source, std::string_view filename) {
  std::string out;
  for (const Diagnostic& d : diagnostics) {
    out += filename;
    if (d.span.known()) {
      out += printf_string(":%u:%u", d.span.line, d.span.column);
    }
    out += printf_string(": %s: %s [%s]\n", severity_name(d.severity),
                         d.message.c_str(), d.rule.c_str());
    if (d.span.known()) {
      const std::string_view excerpt = source_line(source, d.span.line);
      if (!excerpt.empty()) {
        const std::string number = printf_string("%5u", d.span.line);
        out += number + " | " + std::string(excerpt) + "\n";
        // The caret column counts characters of the excerpt; tabs in the
        // excerpt are mirrored into the margin so the caret stays aligned.
        std::string margin;
        const std::size_t caret_at =
            std::min<std::size_t>(d.span.column > 0 ? d.span.column - 1 : 0,
                                  excerpt.size());
        for (std::size_t i = 0; i < caret_at; ++i) {
          margin += excerpt[i] == '\t' ? '\t' : ' ';
        }
        const std::uint32_t run = std::max<std::uint32_t>(d.span.length, 1);
        out += std::string(number.size(), ' ') + " | " + margin + "^";
        for (std::uint32_t i = 1; i < run; ++i) out += "~";
        out += "\n";
      }
    }
    if (!d.hint.empty()) out += "      hint: " + d.hint + "\n";
    for (const Witness& w : d.witnesses) {
      out += "      witness (" + w.label + "): ";
      if (w.steps.empty()) {
        out += "<initial state>";
      } else {
        for (std::size_t i = 0; i < w.steps.size(); ++i) {
          if (i != 0) out += " -> ";
          out += w.steps[i].transition;
          if (w.steps[i].span.known()) {
            out += printf_string(" @%u:%u", w.steps[i].span.line,
                                 w.steps[i].span.column);
          }
        }
      }
      out += "\n";
    }
  }
  return out;
}

}  // namespace punt::util
