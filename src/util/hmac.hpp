// SHA-256 / HMAC-SHA256 and the small auth toolkit behind the serve
// daemon's TCP handshake (DESIGN.md §9): the server proves a client knows
// the shared token by challenging it with a random nonce and checking the
// returned MAC in constant time.  Implemented here from the FIPS 180-4 /
// RFC 2104 specifications — the container deliberately carries no crypto
// library dependency, and a 200-line fixed-function digest is easier to
// audit than to link.
//
// Scope note: this authenticates, it does not encrypt.  Anyone on the path
// can read the frames; the token itself never crosses the wire (only a MAC
// over a single-use nonce does), so passive capture cannot recover it and
// captured MACs cannot be replayed against a new connection.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace punt::util {

/// FIPS 180-4 SHA-256 of `data`.
std::array<std::uint8_t, 32> sha256(std::string_view data);

/// RFC 2104 HMAC-SHA256 over `message` with `key` (keys longer than the
/// 64-byte block are pre-hashed, exactly per the RFC).
std::array<std::uint8_t, 32> hmac_sha256(std::string_view key,
                                         std::string_view message);

/// Byte equality in time independent of *where* the inputs differ.  Length
/// is compared up front (it is not secret — the protocol fixes the MAC
/// width), content with a branch-free accumulator, so a remote attacker
/// cannot binary-search a MAC one byte at a time off the comparison's
/// early exit.
bool constant_time_equal(std::string_view a, std::string_view b);

/// Lowercase hex of arbitrary bytes.
std::string to_hex(const std::uint8_t* data, std::size_t size);
template <std::size_t N>
std::string to_hex(const std::array<std::uint8_t, N>& bytes) {
  return to_hex(bytes.data(), bytes.size());
}

/// `count` bytes from the operating system's CSPRNG (/dev/urandom, with a
/// std::random_device fallback) — nonce material for the handshake.
/// Throws Error only when both sources are unavailable.
std::vector<std::uint8_t> random_bytes(std::size_t count);

/// Convenience: `count` random bytes as 2*count lowercase hex characters.
std::string random_hex(std::size_t count);

}  // namespace punt::util
