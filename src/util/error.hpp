// Error hierarchy for the punt library.
//
// All library failures are reported through exceptions derived from
// punt::Error so that callers can catch either the precise category or the
// whole family.  Error messages are complete sentences and carry enough
// context (names, counts) to act on without a debugger.
#pragma once

#include <stdexcept>
#include <string>

namespace punt {

/// Base class of every exception thrown by the punt library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed input text (e.g. an unreadable `.g` file).
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

/// A structurally invalid model (dangling ids, empty presets where they are
/// required, inconsistent initial state, ...).
class ValidationError : public Error {
 public:
  explicit ValidationError(const std::string& what) : Error(what) {}
};

/// A state-space or segment construction exceeded a configured resource
/// bound (place capacity, state budget, event budget).
class CapacityError : public Error {
 public:
  explicit CapacityError(const std::string& what) : Error(what) {}
};

/// The specification violates a *general* implementability criterion:
/// boundedness, consistent state assignment or output persistency
/// (semi-modularity).
class ImplementabilityError : public Error {
 public:
  explicit ImplementabilityError(const std::string& what) : Error(what) {}
};

/// The specification has a Complete State Coding conflict: two reachable
/// states share a binary code but imply different output behaviour.  Per the
/// paper this is only reported after covers have been fully refined (exact),
/// so it is a genuine property of the STG, not an approximation artefact.
class CscError : public Error {
 public:
  explicit CscError(const std::string& what) : Error(what) {}
};

}  // namespace punt
