// Deterministic pseudo-random generator for property tests.
//
// The library itself is fully deterministic; tests that sample random nets or
// random cubes use this seeded generator so failures reproduce exactly.
#pragma once

#include <cstdint>

namespace punt {

/// xorshift64* generator.  Not cryptographic; stable across platforms.
class XorShift {
 public:
  explicit XorShift(std::uint64_t seed = 0x9E3779B97F4A7C15ull)
      : state_(seed != 0 ? seed : 1) {}

  std::uint64_t next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545F4914F6CDD1Dull;
  }

  /// Uniform value in [0, bound); bound must be positive.
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }

  /// Bernoulli draw with probability numerator/denominator.
  bool chance(std::uint64_t numerator, std::uint64_t denominator) {
    return below(denominator) < numerator;
  }

 private:
  std::uint64_t state_;
};

}  // namespace punt
