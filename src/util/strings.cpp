#include "src/util/strings.hpp"

#include <cstdarg>
#include <cstdio>

namespace punt {

std::string printf_string(const char* format, ...) {
  va_list args;
  va_start(args, format);
  char buffer[512];
  const int n = std::vsnprintf(buffer, sizeof buffer, format, args);
  va_end(args);
  if (n < 0) return std::string();
  if (static_cast<std::size_t>(n) < sizeof buffer) return std::string(buffer, n);
  // Too long for the stack buffer (e.g. a JSON row embedding a long error
  // message): size exactly and format again — truncation here would emit
  // malformed JSON or break daemon/CLI output parity.
  std::string out(static_cast<std::size_t>(n), '\0');
  va_start(args, format);
  std::vsnprintf(out.data(), out.size() + 1, format, args);
  va_end(args);
  return out;
}

std::vector<std::string> split(std::string_view text, std::string_view delims) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && delims.find(text[i]) != std::string_view::npos) ++i;
    std::size_t j = i;
    while (j < text.size() && delims.find(text[j]) == std::string_view::npos) ++j;
    if (j > i) out.emplace_back(text.substr(i, j - i));
    i = j;
  }
  return out;
}

std::string_view trim(std::string_view text) {
  std::size_t b = 0;
  std::size_t e = text.size();
  while (b < e && (text[b] == ' ' || text[b] == '\t' || text[b] == '\r' || text[b] == '\n')) ++b;
  while (e > b && (text[e - 1] == ' ' || text[e - 1] == '\t' || text[e - 1] == '\r' ||
                   text[e - 1] == '\n')) {
    --e;
  }
  return text.substr(b, e - b);
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::vector<std::string> logical_lines(std::string_view text) {
  std::vector<std::string> out;
  std::string current;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    std::string_view line =
        nl == std::string_view::npos ? text.substr(pos) : text.substr(pos, nl - pos);
    while (!line.empty() && (line.back() == '\r')) line.remove_suffix(1);
    if (!line.empty() && line.back() == '\\') {
      line.remove_suffix(1);
      current += line;
    } else {
      current += line;
      out.push_back(current);
      current.clear();
    }
    if (nl == std::string_view::npos) break;
    pos = nl + 1;
  }
  return out;
}

}  // namespace punt
