#include "src/util/task_graph.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <queue>
#include <stdexcept>
#include <utility>

#include "src/util/json.hpp"
#include "src/util/stopwatch.hpp"

namespace punt::util {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(const Clock::time_point& base) {
  return std::chrono::duration<double>(Clock::now() - base).count();
}

/// Min-heap entry: dispatch order is ascending (priority, -cost, id) — the
/// priority band first, the costliest node within the band first, id as the
/// deterministic tiebreak (and the whole order, when no costs are known).
struct ReadyEntry {
  int priority;
  double cost;
  std::size_t id;
  bool operator>(const ReadyEntry& other) const {
    if (priority != other.priority) return priority > other.priority;
    if (cost != other.cost) return cost < other.cost;
    return id > other.id;
  }
};

/// The one dispatch-order definition, shared by the inline heap (via
/// ReadyEntry) and the pool paths: ascending (priority, -cost, id).
bool dispatches_before(const ReadyEntry& a, const ReadyEntry& b) { return b > a; }

using ReadyQueue =
    std::priority_queue<ReadyEntry, std::vector<ReadyEntry>, std::greater<ReadyEntry>>;

const char* status_name(TaskStatus status) {
  switch (status) {
    case TaskStatus::Pending: return "pending";
    case TaskStatus::Done: return "done";
    case TaskStatus::Failed: return "failed";
    case TaskStatus::Cancelled: return "cancelled";
  }
  return "?";
}

}  // namespace

// --- TaskTrace ----------------------------------------------------------------

double TaskTrace::critical_path_seconds() const {
  double best = 0;
  std::vector<double> cp(nodes.size(), 0);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    double longest_dep = 0;
    for (const std::size_t d : nodes[i].deps) longest_dep = std::max(longest_dep, cp[d]);
    cp[i] = longest_dep + nodes[i].wall_duration();
    best = std::max(best, cp[i]);
  }
  return best;
}

std::vector<std::size_t> TaskTrace::critical_path() const {
  if (nodes.empty()) return {};
  // cp[i] = longest chain ending at i; pred[i] = the dep that realises it.
  std::vector<double> cp(nodes.size(), 0);
  std::vector<std::size_t> pred(nodes.size(), nodes.size());
  std::size_t tail = 0;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (const std::size_t d : nodes[i].deps) {
      if (cp[d] > cp[i]) {
        cp[i] = cp[d];
        pred[i] = d;
      }
    }
    cp[i] += nodes[i].wall_duration();
    if (cp[i] > cp[tail]) tail = i;
  }
  std::vector<std::size_t> path;
  for (std::size_t at = tail; at != nodes.size(); at = pred[at]) path.push_back(at);
  std::reverse(path.begin(), path.end());
  return path;
}

std::string TaskTrace::summary() const {
  // Node counts by kind, in first-appearance order.
  std::vector<std::pair<std::string, std::size_t>> kinds;
  for (const TraceNode& node : nodes) {
    auto it = std::find_if(kinds.begin(), kinds.end(),
                           [&](const auto& k) { return k.first == node.kind; });
    if (it == kinds.end()) {
      kinds.emplace_back(node.kind, 1);
    } else {
      ++it->second;
    }
  }
  char buffer[160];
  std::string out = "schedule: " + std::to_string(nodes.size()) + " node(s)";
  if (!kinds.empty()) {
    out += " (";
    for (std::size_t i = 0; i < kinds.size(); ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(kinds[i].second) + " " + kinds[i].first;
    }
    out += ")";
  }
  const double critical = critical_path_seconds();
  std::snprintf(buffer, sizeof buffer,
                " over %zu worker(s); wall %.4fs, critical path %.4fs (%.2fx headroom)\n",
                workers, wall_seconds, critical,
                critical > 0 ? wall_seconds / critical : 0.0);
  out += buffer;
  const std::vector<std::size_t> path = critical_path();
  if (!path.empty()) {
    out += "critical path:";
    for (const std::size_t id : path) {
      const TraceNode& node = nodes[id];
      std::snprintf(buffer, sizeof buffer, " %s%s%s%s(%.4fs)",
                    id == path.front() ? " " : "-> ", node.kind.c_str(),
                    node.label.empty() ? "" : ":", node.label.c_str(),
                    node.wall_duration());
      out += buffer;
    }
    out += "\n";
  }
  return out;
}

std::string TaskTrace::to_json() const {
  char buffer[256];
  std::string out = "{\n";
  out += "  \"schema\": \"punt-schedule-trace\",\n";
  out += "  \"version\": 1,\n";
  std::snprintf(buffer, sizeof buffer,
                "  \"workers\": %zu,\n  \"wall_seconds\": %.9f,\n"
                "  \"critical_path_seconds\": %.9f,\n",
                workers, wall_seconds, critical_path_seconds());
  out += buffer;
  out += "  \"nodes\": [\n";
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const TraceNode& node = nodes[i];
    out += "    {\"id\": " + std::to_string(node.id) + ", \"kind\": \"" +
           json_escape(node.kind) + "\", \"label\": \"" + json_escape(node.label) +
           "\", \"deps\": [";
    for (std::size_t d = 0; d < node.deps.size(); ++d) {
      if (d > 0) out += ", ";
      out += std::to_string(node.deps[d]);
    }
    // est_cost / wall_ready / queue_wait are additive fields of schema
    // version 1 — readers of older dumps treat their absence as zero.
    std::snprintf(buffer, sizeof buffer,
                  "], \"priority\": %d, \"est_cost\": %.9f, \"status\": \"%s\", "
                  "\"worker\": %d, \"wall_ready\": %.9f, \"wall_start\": %.9f, "
                  "\"wall_end\": %.9f, \"queue_wait\": %.9f, \"cpu_seconds\": %.9f}%s\n",
                  node.priority, node.est_cost, status_name(node.status), node.worker,
                  node.wall_ready, node.wall_start, node.wall_end, node.queue_wait(),
                  node.cpu_seconds, i + 1 < nodes.size() ? "," : "");
    out += buffer;
  }
  out += "  ]\n}\n";
  return out;
}

// --- TaskGraph ----------------------------------------------------------------

TaskGraph::NodeId TaskGraph::add(std::string kind, std::string label, int priority,
                                 std::vector<NodeId> deps, std::function<void()> fn) {
  return add(std::move(kind), std::move(label), priority, /*estimated_cost=*/0,
             std::move(deps), std::move(fn));
}

TaskGraph::NodeId TaskGraph::add(std::string kind, std::string label, int priority,
                                 double estimated_cost, std::vector<NodeId> deps,
                                 std::function<void()> fn) {
  if (executed_) {
    throw std::invalid_argument("TaskGraph::add called after execute()");
  }
  const NodeId id = nodes_.size();
  for (const NodeId dep : deps) {
    if (dep >= id) {
      throw std::invalid_argument(
          "TaskGraph::add: node " + std::to_string(id) + " depends on node " +
          std::to_string(dep) + ", which has not been added yet (dependencies "
          "must point backwards, keeping the graph acyclic)");
    }
  }
  Node node;
  node.fn = std::move(fn);
  node.pending_deps = deps.size();
  node.trace.id = id;
  node.trace.kind = std::move(kind);
  node.trace.label = std::move(label);
  node.trace.priority = priority;
  // A non-finite or negative estimate must not scramble the heap order.
  node.trace.est_cost =
      std::isfinite(estimated_cost) && estimated_cost > 0 ? estimated_cost : 0;
  node.trace.deps = deps;
  for (const NodeId dep : deps) nodes_[dep].dependents.push_back(id);
  nodes_.push_back(std::move(node));
  return id;
}

std::vector<TaskGraph::NodeId> TaskGraph::cancel_dependents(NodeId id) {
  std::vector<NodeId> cancelled;
  std::vector<NodeId> frontier = nodes_[id].dependents;
  while (!frontier.empty()) {
    const NodeId at = frontier.back();
    frontier.pop_back();
    Node& node = nodes_[at];
    if (node.trace.status != TaskStatus::Pending) continue;
    node.trace.status = TaskStatus::Cancelled;
    cancelled.push_back(at);
    frontier.insert(frontier.end(), node.dependents.begin(), node.dependents.end());
  }
  return cancelled;
}

void TaskGraph::execute_inline() {
  if (executed_) throw std::invalid_argument("TaskGraph executed twice");
  executed_ = true;
  const Clock::time_point base = Clock::now();

  ReadyQueue ready;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].pending_deps == 0) {
      nodes_[i].trace.wall_ready = seconds_since(base);
      ready.push({nodes_[i].trace.priority, nodes_[i].trace.est_cost, i});
    }
  }
  while (!ready.empty()) {
    const NodeId id = ready.top().id;
    ready.pop();
    Node& node = nodes_[id];
    if (node.trace.status != TaskStatus::Pending) continue;  // cancelled meanwhile
    node.trace.worker = -1;  // inline: no pool worker
    node.trace.wall_start = seconds_since(base);
    ThreadCpuStopwatch cpu;
    try {
      node.fn();
      node.trace.status = TaskStatus::Done;
    } catch (...) {
      node.error = std::current_exception();
      node.trace.status = TaskStatus::Failed;
    }
    node.trace.cpu_seconds = cpu.seconds();
    node.trace.wall_end = seconds_since(base);
    if (node.trace.status == TaskStatus::Failed) {
      (void)cancel_dependents(id);
      continue;
    }
    for (const NodeId dep : node.dependents) {
      Node& next = nodes_[dep];
      if (--next.pending_deps == 0 && next.trace.status == TaskStatus::Pending) {
        next.trace.wall_ready = seconds_since(base);
        ready.push({next.trace.priority, next.trace.est_cost, dep});
      }
    }
  }

  trace_.nodes.clear();
  trace_.nodes.reserve(nodes_.size());
  for (Node& node : nodes_) trace_.nodes.push_back(std::move(node.trace));
  trace_.workers = 1;
  trace_.wall_seconds = seconds_since(base);
}

void TaskGraph::execute(ThreadPool& pool) {
  if (executed_) throw std::invalid_argument("TaskGraph executed twice");
  executed_ = true;
  const Clock::time_point base = Clock::now();

  if (nodes_.empty()) {
    trace_.workers = pool.thread_count();
    trace_.wall_seconds = seconds_since(base);
    return;
  }

  // Shared execution state.  Lives on this stack frame; execute() blocks
  // until `finished == nodes_.size()`, so worker lambdas never outlive it.
  std::mutex mutex;
  std::condition_variable all_done;
  std::size_t finished = 0;

  // dispatch posts one node's run to the pool.  The node body runs without
  // the lock; completion bookkeeping (dependent wake-ups, cancellation)
  // takes it briefly.
  std::function<void(NodeId)> dispatch = [&](NodeId id) {
    pool.post([&, id] {
      Node& node = nodes_[id];
      node.trace.worker = ThreadPool::current_worker_index();
      node.trace.wall_start = seconds_since(base);
      ThreadCpuStopwatch cpu;
      try {
        node.fn();
        node.trace.status = TaskStatus::Done;
      } catch (...) {
        node.error = std::current_exception();
        node.trace.status = TaskStatus::Failed;
      }
      node.trace.cpu_seconds = cpu.seconds();
      node.trace.wall_end = seconds_since(base);

      std::size_t newly_finished = 1;
      std::vector<NodeId> to_dispatch;
      {
        std::lock_guard<std::mutex> lock(mutex);
        if (node.trace.status == TaskStatus::Failed) {
          newly_finished += cancel_dependents(id).size();
        } else {
          for (const NodeId dep : node.dependents) {
            Node& next = nodes_[dep];
            if (--next.pending_deps == 0 && next.trace.status == TaskStatus::Pending) {
              next.trace.wall_ready = seconds_since(base);
              to_dispatch.push_back(dep);
            }
          }
        }
        finished += newly_finished;
        if (finished == nodes_.size()) all_done.notify_one();
      }
      // Continuations go out in (priority, -cost, id) order — outside the
      // lock, so a free worker can start the first one while we enqueue the
      // rest.
      std::sort(to_dispatch.begin(), to_dispatch.end(), [&](NodeId a, NodeId b) {
        return dispatches_before({nodes_[a].trace.priority, nodes_[a].trace.est_cost, a},
                                 {nodes_[b].trace.priority, nodes_[b].trace.est_cost, b});
      });
      for (const NodeId next : to_dispatch) dispatch(next);
    });
  };

  // Seed the pool with the initially-ready nodes in (priority, -cost, id)
  // order.
  {
    std::vector<NodeId> seeds;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      if (nodes_[i].pending_deps == 0) {
        nodes_[i].trace.wall_ready = seconds_since(base);
        seeds.push_back(i);
      }
    }
    std::sort(seeds.begin(), seeds.end(), [&](NodeId a, NodeId b) {
      return dispatches_before({nodes_[a].trace.priority, nodes_[a].trace.est_cost, a},
                               {nodes_[b].trace.priority, nodes_[b].trace.est_cost, b});
    });
    for (const NodeId id : seeds) dispatch(id);
  }

  {
    std::unique_lock<std::mutex> lock(mutex);
    all_done.wait(lock, [&] { return finished == nodes_.size(); });
  }

  trace_.nodes.clear();
  trace_.nodes.reserve(nodes_.size());
  for (Node& node : nodes_) trace_.nodes.push_back(std::move(node.trace));
  trace_.workers = pool.thread_count();
  trace_.wall_seconds = seconds_since(base);
}

}  // namespace punt::util
