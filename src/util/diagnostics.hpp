// Source-anchored diagnostics: the data model shared by the `.g` parser and
// the `punt lint` rule engine.
//
// A Diagnostic is one finding — a stable rule id ("STG004"), a severity, a
// 1-based line/column span into the source text, a one-sentence message and
// an optional fix hint.  A DiagnosticSink collects findings in discovery
// order instead of throwing at the first one, which is what lets `punt lint`
// report every defect of a spec in a single pass while the strict parser
// (`stg::parse_g`) keeps its first-error-throw contract by draining the sink.
//
// This header is a leaf: it depends only on util/error.hpp, so both the stg
// layer (which emits parse diagnostics) and the lint layer (which emits rule
// diagnostics and renders reports) can share it without a cycle.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace punt::util {

enum class Severity : std::uint8_t { Note, Warning, Error };

/// "note" / "warning" / "error" — the spelling used by renderers and the
/// punt-lint-report JSON schema.
const char* severity_name(Severity severity);

/// A half-open span into the source text; line and column are 1-based and 0
/// means "unknown" (the finding is about the file as a whole, e.g. a missing
/// .end).  `length` is the caret run under the offending token (min 1 when
/// the position is known).
struct SourceSpan {
  std::uint32_t line = 0;
  std::uint32_t column = 0;
  std::uint32_t length = 0;

  bool known() const { return line != 0; }
};

/// One step of a witness trace: a transition instance name ("a+", "b-/2")
/// and the span of its first-use site in the source text (zeroed when the
/// name has no source anchor, e.g. a synthesized spec).
struct WitnessStep {
  std::string transition;
  SourceSpan span;
};

/// A firing sequence that demonstrates a finding — e.g. the path from the
/// initial state to one of the two states of a CSC conflict.  `label` names
/// what the trace reaches ("trace to state 12"); an empty `steps` vector
/// means the witness is the initial state itself.
struct Witness {
  std::string label;
  std::vector<WitnessStep> steps;
};

struct Diagnostic {
  std::string rule;   // stable id, e.g. "STG004"
  Severity severity = Severity::Error;
  SourceSpan span;
  std::string message;  // one sentence, no trailing period convention kept
  std::string hint;     // optional "fix it like this" line; may be empty
  /// Witness firing sequences (deep-tier findings only; structural findings
  /// leave this empty).  Rendered after the hint and carried in the
  /// punt-lint-report v2 "witnesses" array.
  std::vector<Witness> witnesses;
};

/// Collects diagnostics in discovery order.  Never throws on report(); the
/// strict-parse compatibility path throws the *first* error afterwards via
/// throw_first_error(), so collecting and fail-fast callers share one parse.
class DiagnosticSink {
 public:
  void report(Diagnostic diagnostic);
  void report(std::string rule, Severity severity, SourceSpan span,
              std::string message, std::string hint = std::string());

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  bool has_errors() const { return errors_ > 0; }
  std::size_t count(Severity severity) const;

  /// Throws ParseError carrying the first Error-severity message (exactly the
  /// exception the pre-provenance parser used to throw at that point); no-op
  /// when the sink holds no errors.
  void throw_first_error() const;

 private:
  std::vector<Diagnostic> diagnostics_;
  std::size_t errors_ = 0;
};

/// Renders diagnostics human-readably, one block per finding:
///
///   file.g:12:4: warning: transition 'b+' is unreachable ... [STG004]
///      12 | p1 b+ p2
///         |    ^~
///      hint: mark a place on some path to 'b+'
///      witness (trace to state 5): a+ @3:1 -> b+ @12:4
///
/// `source` is the original text (for the line excerpt; findings with an
/// unknown span render without one), `filename` prefixes each finding.
std::string render_diagnostics(const std::vector<Diagnostic>& diagnostics,
                               std::string_view source, std::string_view filename);

}  // namespace punt::util
