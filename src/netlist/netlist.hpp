// Gate-level implementation model and writers.
//
// A synthesis result maps onto a netlist of:
//   * atomic complex gates — one SOP function per signal, possibly with
//     internal feedback (the gate's own output appears as a literal), active
//     high (function covers the on-set) or active low (covers the off-set,
//     gate output inverted);
//   * C-element / RS-latch cells — a memory element per signal driven by
//     minimised set and reset SOP functions.
//
// The module also provides the conformance verifier: replaying every
// reachable SG state and checking each gate's Boolean behaviour against the
// signal's implied next value.  The Table-1 harness and the integration
// tests run it on every synthesised circuit whose SG fits in memory.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/core/synthesis.hpp"
#include "src/logic/cover.hpp"
#include "src/sg/state_graph.hpp"
#include "src/stg/stg.hpp"

namespace punt::net {

/// One gate of the implementation.
struct Gate {
  enum class Kind { ComplexGate, CElement, RsLatch };
  Kind kind = Kind::ComplexGate;
  stg::SignalId output;

  // ComplexGate: `function` drives the output (inverted when !active_high).
  logic::Cover function;
  bool active_high = true;

  // CElement / RsLatch.
  logic::Cover set_function;
  logic::Cover reset_function;

  std::size_t literal_count() const;
};

/// A speed-independent circuit implementation of an STG.
class Netlist {
 public:
  /// Assembles the netlist for a synthesis result.  The STG is copied, so
  /// the netlist is self-contained.
  static Netlist from_synthesis(const stg::Stg& stg, const core::SynthesisResult& result);

  const stg::Stg& stg() const { return *stg_; }
  const std::vector<Gate>& gates() const { return gates_; }
  const Gate& gate_for(stg::SignalId signal) const;

  /// Total literal count over all gates (Table 1's LitCnt metric).
  std::size_t literal_count() const;

  /// Boolean value the gate of `signal` produces in state `code` (for
  /// memory elements: the value the element would move to / hold).
  bool next_value(stg::SignalId signal, const stg::Code& code) const;

  /// EQN-style text: one equation (or set/reset pair) per signal.
  std::string to_eqn() const;

  /// Behavioural Verilog module (complex gates as continuous assignments
  /// with feedback; memory elements as always-blocks).
  std::string to_verilog(const std::string& module_name = "circuit") const;

 private:
  std::shared_ptr<const stg::Stg> stg_;
  std::vector<Gate> gates_;
};

/// One state where a gate's behaviour contradicts the specification.
struct ConformanceViolation {
  stg::SignalId signal;
  std::size_t state = 0;
  std::string detail;
};

/// Replays every reachable state of the SG against the netlist:
///   * complex gate — its value must equal the signal's implied value;
///   * C-element / RS-latch — set must hold through ER(+a) and stay off
///     throughout the off-set; reset symmetrically.
/// An empty result means the circuit conforms to the specification.
std::vector<ConformanceViolation> verify_conformance(const sg::StateGraph& sgraph,
                                                     const Netlist& netlist);

}  // namespace punt::net
