// The `punt lint` rule catalog: static analyses over a collecting-parsed STG.
//
// Every rule works on the structure parse_g_collect() built — the labelled
// net, the provenance spans, the raw directive entries — and never explores
// the state space.  That keeps a lint pass microsecond-cheap on benchmark
// specs and makes it safe to run on every serve request as admission control.
//
// Severity policy (the admission contract depends on it):
//
//  - Error: the strict pipeline (`parse_g` + `Stg::validate`) would reject
//    the spec with an exception.  Only the parser (STG000/STG001) and the
//    dangling-transition half of STG005 emit errors, so `punt serve` never
//    refuses a spec that `punt synth` would accept.
//  - Warning: the spec is synthesisable but a structural necessary condition
//    of a sane speed-independent specification is violated or at risk
//    (unreachable transitions, broken alternation, 1-safety hints, choice
//    shape).  Promotable to Error with --Werror.
//  - Note: informational observations (constant signals, CSC pre-screen).
#pragma once

#include <vector>

#include "src/stg/g_format.hpp"
#include "src/util/diagnostics.hpp"

namespace punt::lint {

/// One catalog entry, as shown by `punt lint --help`.
struct RuleInfo {
  const char* id;            // stable id, e.g. "STG004"
  util::Severity severity;   // default (pre-promotion) severity
  const char* summary;       // one line: what the rule detects
};

/// The full rule catalog in id order (STG000 ... STG010).
const std::vector<RuleInfo>& rule_catalog();

/// Runs every structural rule over `parsed`, reporting to `sink`.  Assumes
/// the caller already ran parse_g_collect() with the same sink (so parser
/// diagnostics precede rule diagnostics); structural rules run even when the
/// parse reported errors, as long as the graph section was usable.
void run_rules(const stg::ParsedG& parsed, util::DiagnosticSink& sink);

/// Runs only the rules that can emit Error-severity findings (today: the
/// dangling-transition halves of STG005) — the serve-admission fast path.
/// Emits byte-identical Error diagnostics to run_rules(), in the same order,
/// without paying for the warning-tier fixed points.
void run_error_rules(const stg::ParsedG& parsed, util::DiagnosticSink& sink);

}  // namespace punt::lint
