#include "src/lint/lint.hpp"

#include <algorithm>

#include "src/lint/rules.hpp"
#include "src/stg/g_format.hpp"
#include "src/util/json.hpp"
#include "src/util/strings.hpp"

namespace punt::lint {
namespace {

using util::Diagnostic;
using util::Severity;

std::vector<Diagnostic> collect(std::string_view text) {
  util::DiagnosticSink sink;
  const stg::ParsedG parsed = stg::parse_g_collect(text, sink);
  if (parsed.usable) run_rules(parsed, sink);
  return sink.diagnostics();
}

}  // namespace

FileLint lint_text(std::string_view text, std::string_view filename,
                   const LintOptions& options) {
  FileLint out;
  out.filename = std::string(filename);
  out.diagnostics = collect(text);
  for (Diagnostic& d : out.diagnostics) {
    if (d.severity == Severity::Warning &&
        (options.promote_all_warnings ||
         std::find(options.promote_rules.begin(), options.promote_rules.end(),
                   d.rule) != options.promote_rules.end())) {
      d.severity = Severity::Error;
    }
    switch (d.severity) {
      case Severity::Error: ++out.errors; break;
      case Severity::Warning: ++out.warnings; break;
      case Severity::Note: ++out.notes; break;
    }
  }
  return out;
}

std::vector<util::Diagnostic> lint_errors(std::string_view text) {
  std::vector<Diagnostic> out = collect(text);
  std::erase_if(out, [](const Diagnostic& d) { return d.severity != Severity::Error; });
  return out;
}

std::string render_human(const FileLint& lint, std::string_view source) {
  std::string out = util::render_diagnostics(lint.diagnostics, source, lint.filename);
  auto plural = [](std::size_t n, const char* word) {
    return std::to_string(n) + " " + word + (n == 1 ? "" : "s");
  };
  out += lint.filename + ": ";
  if (lint.diagnostics.empty()) {
    out += "clean\n";
    return out;
  }
  std::string counts;
  if (lint.errors > 0) counts += plural(lint.errors, "error");
  if (lint.warnings > 0) {
    counts += (counts.empty() ? "" : ", ") + plural(lint.warnings, "warning");
  }
  if (lint.notes > 0) counts += (counts.empty() ? "" : ", ") + plural(lint.notes, "note");
  out += counts + "\n";
  return out;
}

std::string render_json(const std::vector<FileLint>& files) {
  std::string out = "{\"schema\": \"punt-lint-report\", \"version\": 1, \"files\": [";
  bool first_file = true;
  for (const FileLint& file : files) {
    if (!first_file) out += ", ";
    first_file = false;
    out += printf_string(
        "{\"file\": \"%s\", \"ok\": %s, \"errors\": %zu, \"warnings\": %zu, "
        "\"notes\": %zu, \"diagnostics\": [",
        util::json_escape(file.filename).c_str(), file.ok() ? "true" : "false",
        file.errors, file.warnings, file.notes);
    bool first_diag = true;
    for (const Diagnostic& d : file.diagnostics) {
      if (!first_diag) out += ", ";
      first_diag = false;
      out += printf_string(
          "{\"rule\": \"%s\", \"severity\": \"%s\", \"line\": %u, \"column\": %u, "
          "\"length\": %u, \"message\": \"%s\", \"hint\": \"%s\"}",
          util::json_escape(d.rule).c_str(), util::severity_name(d.severity),
          d.span.line, d.span.column, d.span.length,
          util::json_escape(d.message).c_str(), util::json_escape(d.hint).c_str());
    }
    out += "]}";
  }
  out += "]}\n";
  return out;
}

}  // namespace punt::lint
