#include "src/lint/lint.hpp"

#include <algorithm>
#include <utility>

#include "src/core/cost_ledger.hpp"
#include "src/core/pipeline.hpp"
#include "src/lint/rules.hpp"
#include "src/lint/semantic_rules.hpp"
#include "src/stg/g_format.hpp"
#include "src/util/json.hpp"
#include "src/util/strings.hpp"
#include "src/util/task_graph.hpp"

namespace punt::lint {
namespace {

using util::Diagnostic;
using util::Severity;

/// True for the structural findings the deep tier's exact verdicts replace:
/// STG004 and STG010 whole-rule (STG103/STG100 decide them), plus the
/// conservative halves of STG007 and STG008.  The message-prefix tests are
/// coupled to rules.cpp's emission text (same module, tested together); the
/// definite halves — a multi-token initial marking, self-triggering — carry
/// no "may"/"can be" uncertainty and are never retracted.
bool retracted_by_model(const Diagnostic& d) {
  if (d.rule == "STG004" || d.rule == "STG010") return true;
  if (d.rule == "STG008" && d.message.starts_with("auto-concurrency:")) return true;
  return d.rule == "STG007" &&
         d.message.find("may fire concurrently") != std::string::npos;
}

/// The subset of the above that a 1-safety verdict alone retracts (the model
/// may still be unavailable — e.g. the build stopped at the capacity bound).
bool retracted_by_safety_verdict(const Diagnostic& d) {
  return d.rule == "STG007" &&
         d.message.find("may fire concurrently") != std::string::npos;
}

}  // namespace

FileLint lint_text(std::string_view text, std::string_view filename,
                   const LintOptions& options) {
  FileLint out;
  out.filename = std::string(filename);
  util::DiagnosticSink sink;
  const stg::ParsedG parsed = stg::parse_g_collect(text, sink);
  if (parsed.usable) run_rules(parsed, sink);
  out.diagnostics = sink.diagnostics();

  // The deep tier runs only over structurally error-free specs: an
  // error-severity structural finding means the strict parse the semantic
  // model needs would throw the same defect right back.
  if (options.deep && parsed.usable && !sink.has_errors()) {
    SemanticOptions semantic;
    semantic.state_budget = options.deep_state_budget;
    semantic.cache = options.cache;
    SemanticOutcome outcome = run_semantic_rules(text, parsed, semantic);
    out.model_built = outcome.built;
    if (outcome.model_ready) {
      std::erase_if(out.diagnostics, retracted_by_model);
    } else if (outcome.safety_verdict) {
      std::erase_if(out.diagnostics, retracted_by_safety_verdict);
    }
    out.diagnostics.insert(out.diagnostics.end(),
                           std::make_move_iterator(outcome.diagnostics.begin()),
                           std::make_move_iterator(outcome.diagnostics.end()));
  }

  for (Diagnostic& d : out.diagnostics) {
    if (d.severity == Severity::Warning &&
        (options.promote_all_warnings ||
         std::find(options.promote_rules.begin(), options.promote_rules.end(),
                   d.rule) != options.promote_rules.end())) {
      d.severity = Severity::Error;
    }
    switch (d.severity) {
      case Severity::Error: ++out.errors; break;
      case Severity::Warning: ++out.warnings; break;
      case Severity::Note: ++out.notes; break;
    }
  }
  return out;
}

std::vector<FileLint> lint_files(const std::vector<FileInput>& files,
                                 const LintOptions& options) {
  std::vector<FileLint> results(files.size());
  util::TaskGraph graph;
  std::vector<std::string> keys(files.size());
  for (std::size_t i = 0; i < files.size(); ++i) {
    double estimate = 0;
    if (options.ledger != nullptr) {
      keys[i] = core::CostLedger::key_of(
          "lint", core::CostLedger::text_digest(files[i].text));
      estimate = options.ledger->estimate(keys[i]);
    }
    // Each node writes only its own slot of the pre-sized results vector, so
    // the nodes are trivially safe to run concurrently; the shared
    // ModelCache/CostLedger behind `options` are thread-safe by contract.
    graph.add("lint", files[i].filename, 0, estimate, {},
              [&results, &files, &options, i] {
                results[i] = lint_text(files[i].text, files[i].filename, options);
              });
  }
  if (options.executor != nullptr) {
    options.executor->run(graph);
  } else {
    graph.execute_inline();
  }
  for (std::size_t i = 0; i < files.size(); ++i) {
    // lint never throws on spec *content*; a failed node is a real defect
    // (bad_alloc, logic error) and must surface.
    if (graph.status(i) == util::TaskStatus::Failed) {
      std::rethrow_exception(graph.error(i));
    }
    if (options.ledger != nullptr) {
      options.ledger->observe(keys[i], graph.trace().nodes[i].cpu_seconds);
    }
  }
  return results;
}

std::vector<util::Diagnostic> lint_errors(std::string_view text) {
  // Admission fast path: the parser plus only the error-capable rules — the
  // warning-tier fixed points (place concurrency, potential firability)
  // cannot produce a refusal, so a served request never pays for them.
  util::DiagnosticSink sink;
  const stg::ParsedG parsed = stg::parse_g_collect(text, sink);
  if (parsed.usable) run_error_rules(parsed, sink);
  std::vector<Diagnostic> out = sink.diagnostics();
  std::erase_if(out, [](const Diagnostic& d) { return d.severity != Severity::Error; });
  return out;
}

std::string render_human(const FileLint& lint, std::string_view source) {
  std::string out = util::render_diagnostics(lint.diagnostics, source, lint.filename);
  auto plural = [](std::size_t n, const char* word) {
    return std::to_string(n) + " " + word + (n == 1 ? "" : "s");
  };
  out += lint.filename + ": ";
  if (lint.diagnostics.empty()) {
    out += "clean\n";
    return out;
  }
  std::string counts;
  if (lint.errors > 0) counts += plural(lint.errors, "error");
  if (lint.warnings > 0) {
    counts += (counts.empty() ? "" : ", ") + plural(lint.warnings, "warning");
  }
  if (lint.notes > 0) counts += (counts.empty() ? "" : ", ") + plural(lint.notes, "note");
  out += counts + "\n";
  return out;
}

std::string render_json(const std::vector<FileLint>& files) {
  std::string out = "{\"schema\": \"punt-lint-report\", \"version\": 2, \"files\": [";
  bool first_file = true;
  for (const FileLint& file : files) {
    if (!first_file) out += ", ";
    first_file = false;
    out += printf_string(
        "{\"file\": \"%s\", \"ok\": %s, \"errors\": %zu, \"warnings\": %zu, "
        "\"notes\": %zu, \"diagnostics\": [",
        util::json_escape(file.filename).c_str(), file.ok() ? "true" : "false",
        file.errors, file.warnings, file.notes);
    bool first_diag = true;
    for (const Diagnostic& d : file.diagnostics) {
      if (!first_diag) out += ", ";
      first_diag = false;
      out += printf_string(
          "{\"rule\": \"%s\", \"severity\": \"%s\", \"tier\": \"%s\", "
          "\"line\": %u, \"column\": %u, \"length\": %u, \"message\": \"%s\", "
          "\"hint\": \"%s\", \"witnesses\": [",
          util::json_escape(d.rule).c_str(), util::severity_name(d.severity),
          is_semantic_rule(d.rule) ? "semantic" : "structural", d.span.line,
          d.span.column, d.span.length, util::json_escape(d.message).c_str(),
          util::json_escape(d.hint).c_str());
      bool first_witness = true;
      for (const util::Witness& w : d.witnesses) {
        if (!first_witness) out += ", ";
        first_witness = false;
        out += printf_string("{\"label\": \"%s\", \"steps\": [",
                             util::json_escape(w.label).c_str());
        bool first_step = true;
        for (const util::WitnessStep& step : w.steps) {
          if (!first_step) out += ", ";
          first_step = false;
          out += printf_string(
              "{\"transition\": \"%s\", \"line\": %u, \"column\": %u, "
              "\"length\": %u}",
              util::json_escape(step.transition).c_str(), step.span.line,
              step.span.column, step.span.length);
        }
        out += "]}";
      }
      out += "]}";
    }
    out += "]}";
  }
  out += "]}\n";
  return out;
}

}  // namespace punt::lint
