#include "src/lint/semantic_rules.hpp"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <utility>

#include "src/core/model_cache.hpp"
#include "src/core/pipeline.hpp"
#include "src/core/synthesis.hpp"
#include "src/sg/analysis.hpp"
#include "src/sg/state_graph.hpp"
#include "src/stg/stg.hpp"
#include "src/util/error.hpp"
#include "src/util/strings.hpp"

namespace punt::lint {

const std::vector<RuleInfo>& semantic_rule_catalog() {
  static const std::vector<RuleInfo> catalog = {
      {"STG100", util::Severity::Error,
       "CSC conflict: two reachable states share a code but imply different outputs (exact)"},
      {"STG101", util::Severity::Error,
       "output persistency violation: a firing disables an excited output (exact)"},
      {"STG102", util::Severity::Error,
       "1-safety violation: a reachable firing overfills a place (exact)"},
      {"STG103", util::Severity::Warning,
       "dead transition: no reachable marking enables it (exact)"},
      {"STG104", util::Severity::Warning,
       "deadlock: a reachable state enables no transition (exact)"},
      {"STG105", util::Severity::Error,
       "inconsistent state assignment: a marking is reachable with two codes (exact)"},
      {"STG106", util::Severity::Error,
       "semantic model unavailable: validation failed or a budget was exceeded"},
  };
  return catalog;
}

bool is_semantic_rule(std::string_view rule_id) {
  return rule_id.size() == 6 && rule_id.starts_with("STG1");
}

namespace {

/// Findings per rule before the remainder collapses into one summarizing
/// note — a spec with thousands of CSC state pairs still lints in bounded
/// output, and the cap is never silent.
constexpr std::size_t kMaxFindingsPerRule = 16;

core::SynthesisOptions deep_options(std::size_t state_budget) {
  core::SynthesisOptions options;
  options.method = core::Method::StateGraph;
  // Persistency violations are findings (STG101), not a build failure.
  options.check_persistency = false;
  options.state_budget = state_budget;
  return options;
}

/// BFS shortest-path forest over the state graph: reconstructs, for any
/// reachable state, the firing sequence from the initial state.
class TraceIndex {
 public:
  explicit TraceIndex(const sg::StateGraph& sg)
      : parent_(sg.state_count(), kNone), via_(sg.state_count()) {
    std::deque<std::size_t> queue;
    std::vector<char> seen(sg.state_count(), 0);
    seen[sg.initial_state()] = 1;
    queue.push_back(sg.initial_state());
    while (!queue.empty()) {
      const std::size_t s = queue.front();
      queue.pop_front();
      for (const sg::Arc& arc : sg.arcs(s)) {
        if (seen[arc.target] != 0) continue;
        seen[arc.target] = 1;
        parent_[arc.target] = s;
        via_[arc.target] = arc.transition;
        queue.push_back(arc.target);
      }
    }
  }

  std::vector<pn::TransitionId> path_to(std::size_t state) const {
    std::vector<pn::TransitionId> steps;
    for (std::size_t s = state; parent_[s] != kNone; s = parent_[s]) {
      steps.push_back(via_[s]);
    }
    std::reverse(steps.begin(), steps.end());
    return steps;
  }

 private:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::vector<std::size_t> parent_;
  std::vector<pn::TransitionId> via_;
};

util::Witness make_witness(std::string label, const std::vector<pn::TransitionId>& steps,
                           const stg::Stg& stg, const stg::ParsedG& parsed) {
  util::Witness witness;
  witness.label = std::move(label);
  witness.steps.reserve(steps.size());
  for (const pn::TransitionId t : steps) {
    const std::string& name = stg.transition_name(t);
    witness.steps.push_back(util::WitnessStep{name, parsed.transition_span(name)});
  }
  return witness;
}

/// The last source-anchored step of `witness` — where the finding points.
util::SourceSpan anchor_of(const util::Witness& witness) {
  for (auto it = witness.steps.rbegin(); it != witness.steps.rend(); ++it) {
    if (it->span.known()) return it->span;
  }
  return util::SourceSpan{};
}

void report_overflow(util::DiagnosticSink& sink, const char* rule, std::size_t hidden,
                     const char* what) {
  sink.report(rule, util::Severity::Note, util::SourceSpan{},
              printf_string("%zu more %s not shown", hidden, what),
              "resolve the reported findings first; the rest often share a cause");
}

/// The name inside the first '...' of an exception message, for mapping
/// pipeline errors back to a source span ("" when the message has none).
std::string first_quoted(const std::string& text) {
  const std::size_t open = text.find('\'');
  if (open == std::string::npos) return std::string();
  const std::size_t close = text.find('\'', open + 1);
  if (close == std::string::npos) return std::string();
  return text.substr(open + 1, close - open - 1);
}

void rule_csc(const stg::Stg& stg, const sg::StateGraph& sg, const TraceIndex& trace,
              const stg::ParsedG& parsed, util::DiagnosticSink& sink) {
  const std::vector<sg::CscViolation> violations = sg::csc_violations(stg, sg);
  for (std::size_t i = 0; i < violations.size(); ++i) {
    if (i == kMaxFindingsPerRule) {
      report_overflow(sink, "STG100", violations.size() - i, "CSC conflict(s)");
      break;
    }
    const sg::CscViolation& v = violations[i];
    util::Diagnostic d;
    d.rule = "STG100";
    d.severity = util::Severity::Error;
    d.message = "CSC conflict: " + v.describe(stg, sg);
    const std::vector<pn::TransitionId> path_a = trace.path_to(v.state_a);
    const std::vector<pn::TransitionId> path_b = trace.path_to(v.state_b);
    if (!path_a.empty() && !path_b.empty()) {
      d.message += "; the states are entered by '" + stg.transition_name(path_a.back()) +
                   "' and '" + stg.transition_name(path_b.back()) + "'";
    }
    d.hint = "insert a state signal (or reorder the handshake) so the two states "
             "get distinct codes";
    d.witnesses.push_back(make_witness("trace to state " + std::to_string(v.state_a),
                                       path_a, stg, parsed));
    d.witnesses.push_back(make_witness("trace to state " + std::to_string(v.state_b),
                                       path_b, stg, parsed));
    d.span = anchor_of(d.witnesses[0]);
    if (!d.span.known()) d.span = anchor_of(d.witnesses[1]);
    sink.report(std::move(d));
  }
}

void rule_persistency(const stg::Stg& stg, const sg::StateGraph& sg,
                      const TraceIndex& trace, const stg::ParsedG& parsed,
                      util::DiagnosticSink& sink) {
  const std::vector<sg::PersistencyViolation> violations =
      sg::persistency_violations(stg, sg);
  for (std::size_t i = 0; i < violations.size(); ++i) {
    if (i == kMaxFindingsPerRule) {
      report_overflow(sink, "STG101", violations.size() - i,
                      "persistency violation(s)");
      break;
    }
    const sg::PersistencyViolation& v = violations[i];
    const std::string& disabler = stg.transition_name(v.disabler);
    util::Diagnostic d;
    d.rule = "STG101";
    d.severity = util::Severity::Error;
    d.message = "output persistency violation: " + v.describe(stg);
    d.hint = "make '" + disabler + "' wait for the excited output to fire "
             "(semi-modularity, the paper's speed-independence condition)";
    d.witnesses.push_back(make_witness("trace to state " + std::to_string(v.state),
                                       trace.path_to(v.state), stg, parsed));
    d.witnesses.push_back(
        make_witness("disabling firing", {v.disabler}, stg, parsed));
    d.span = parsed.transition_span(disabler);
    if (!d.span.known()) d.span = anchor_of(d.witnesses[0]);
    sink.report(std::move(d));
  }
}

void rule_dead_transitions(const stg::Stg& stg, const sg::StateGraph& sg,
                           const stg::ParsedG& parsed, util::DiagnosticSink& sink) {
  std::vector<char> fires(stg.net().transition_count(), 0);
  for (std::size_t s = 0; s < sg.state_count(); ++s) {
    for (const sg::Arc& arc : sg.arcs(s)) fires[arc.transition.index()] = 1;
  }
  std::size_t shown = 0;
  std::size_t dead = 0;
  for (std::size_t t = 0; t < fires.size(); ++t) {
    if (fires[t] != 0) continue;
    ++dead;
    if (shown == kMaxFindingsPerRule) continue;
    ++shown;
    const std::string& name = stg.transition_name(pn::TransitionId(
        static_cast<std::uint32_t>(t)));
    sink.report("STG103", util::Severity::Warning, parsed.transition_span(name),
                "transition '" + name + "' can never fire: no reachable marking "
                "enables it",
                "mark a place on some path to '" + name + "' or remove the "
                "transition");
  }
  if (dead > shown) report_overflow(sink, "STG103", dead - shown, "dead transition(s)");
}

void rule_deadlock(const stg::Stg& stg, const sg::StateGraph& sg,
                   const TraceIndex& trace, const stg::ParsedG& parsed,
                   util::DiagnosticSink& sink) {
  std::size_t shown = 0;
  std::size_t deadlocks = 0;
  for (std::size_t s = 0; s < sg.state_count(); ++s) {
    if (!sg.arcs(s).empty()) continue;
    ++deadlocks;
    if (shown == kMaxFindingsPerRule) continue;
    ++shown;
    util::Diagnostic d;
    d.rule = "STG104";
    d.severity = util::Severity::Warning;
    d.message = "deadlock: state " + std::to_string(s) + " (code " +
                stg::code_to_string(sg.code(s)) + ") enables no transition";
    d.hint = "a speed-independent circuit must cycle forever; close the handshake "
             "that stops here";
    d.witnesses.push_back(make_witness("trace to state " + std::to_string(s),
                                       trace.path_to(s), stg, parsed));
    d.span = anchor_of(d.witnesses[0]);
    sink.report(std::move(d));
  }
  if (deadlocks > shown) {
    report_overflow(sink, "STG104", deadlocks - shown, "deadlock(s)");
  }
}

}  // namespace

SemanticOutcome run_semantic_rules(std::string_view text, const stg::ParsedG& parsed,
                                   const SemanticOptions& options) {
  SemanticOutcome outcome;
  util::DiagnosticSink sink;
  std::shared_ptr<const core::SemanticModel> model;
  try {
    const stg::Stg stg = stg::parse_g(text);
    const core::SynthesisOptions synth = deep_options(options.state_budget);
    if (options.cache != nullptr) {
      model = options.cache->lookup_or_build(stg, synth, &outcome.built);
    } else {
      model = core::SemanticModel::build(stg, synth);
      outcome.built = true;
    }
  } catch (const CapacityError& error) {
    const std::string what = error.what();
    if (what.find("state budget") != std::string::npos) {
      // No verdict: explicit reachability gave up, but the unfolding-based
      // synthesis flow may still handle the spec — a warning, not an error.
      sink.report("STG106", util::Severity::Warning, util::SourceSpan{},
                  "semantic analysis skipped: " + what,
                  "raise the state budget, or rely on the unfolding-segment flow");
    } else {
      outcome.safety_verdict = true;
      sink.report("STG102", util::Severity::Error,
                  parsed.place_span(first_quoted(what)),
                  "the net is not 1-safe: " + what,
                  "restructure the net so every place holds at most one token");
    }
  } catch (const ImplementabilityError& error) {
    const std::string what = error.what();
    if (what.find("inconsistent state assignment") != std::string::npos) {
      sink.report("STG105", util::Severity::Error,
                  parsed.transition_span(first_quoted(what)), what,
                  "make rising and falling edges of every signal alternate along "
                  "each firing path");
    } else {
      sink.report("STG106", util::Severity::Error, util::SourceSpan{},
                  "semantic analysis unavailable: " + what, std::string());
    }
  } catch (const Error& error) {
    sink.report("STG106", util::Severity::Error, util::SourceSpan{},
                std::string("semantic analysis unavailable: ") + error.what(),
                std::string());
  }

  if (model == nullptr) outcome.built = false;  // a failed build is not a build
  if (model != nullptr && model->sgraph != nullptr) {
    outcome.model_ready = true;
    outcome.safety_verdict = true;  // built under the capacity-1 bound
    const stg::Stg& stg = model->stg;
    const sg::StateGraph& sg = *model->sgraph;
    const TraceIndex trace(sg);
    rule_csc(stg, sg, trace, parsed, sink);
    rule_persistency(stg, sg, trace, parsed, sink);
    rule_dead_transitions(stg, sg, parsed, sink);
    rule_deadlock(stg, sg, trace, parsed, sink);
  }
  outcome.diagnostics = sink.diagnostics();
  return outcome;
}

}  // namespace punt::lint
