// The lint driver behind `punt lint` and the serve admission gate.
//
// lint_text() runs the collecting parse plus every rule from rules.hpp over
// one spec and returns the findings with severities already promoted per the
// options (--Werror and friends).  lint_errors() is the admission fast path:
// it runs the same pass without promotion and keeps only Error-severity
// findings, so `server::prepare_synth` can refuse a structurally broken spec
// before it touches the batcher — refusal severities never depend on caller
// flags, only on the catalog's defaults.
//
// Rendering: render_human() produces the caret-and-excerpt blocks of
// util::render_diagnostics plus a per-file summary line; render_json()
// produces the `punt-lint-report` v1 document:
//
//   {"schema": "punt-lint-report", "version": 1,
//    "files": [{"file": ..., "ok": ..., "errors": N, "warnings": N,
//               "notes": N, "diagnostics": [{"rule", "severity", "line",
//               "column", "length", "message", "hint"}]}]}
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "src/util/diagnostics.hpp"

namespace punt::lint {

struct LintOptions {
  /// Promote every Warning to Error (--Werror).  Notes are never promoted.
  bool promote_all_warnings = false;
  /// Promote Warnings of these rule ids only (--Werror=STG006,...).
  std::vector<std::string> promote_rules;
};

/// The lint result for one spec.
struct FileLint {
  std::string filename;
  std::vector<util::Diagnostic> diagnostics;  // discovery order, post-promotion
  std::size_t errors = 0;
  std::size_t warnings = 0;
  std::size_t notes = 0;

  bool ok() const { return errors == 0; }
};

/// Lints one `.g` text.  Never throws on any spec content.
FileLint lint_text(std::string_view text, std::string_view filename,
                   const LintOptions& options = {});

/// Admission helper: the Error-severity findings of `text` under default
/// severities (no promotion).  Empty means the spec is admissible.
std::vector<util::Diagnostic> lint_errors(std::string_view text);

/// Human rendering: every finding as a caret block, then one summary line
/// ("file.g: 2 errors, 1 warning").  `source` is the original text.
std::string render_human(const FileLint& lint, std::string_view source);

/// Machine rendering of one or more files: `punt-lint-report` v1.
std::string render_json(const std::vector<FileLint>& files);

}  // namespace punt::lint
