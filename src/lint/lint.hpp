// The lint driver behind `punt lint` and the serve admission gate.
//
// lint_text() runs the collecting parse plus every structural rule from
// rules.hpp over one spec and returns the findings with severities already
// promoted per the options (--Werror and friends).  With options.deep it
// then runs the semantic tier (semantic_rules.hpp): the spec's state-graph
// model is resolved — through options.cache when given, so a warm spec
// deep-lints without rebuilding phase 1 — and the exact STG1xx verdicts are
// appended, while the structural pre-screens they retract (STG004, STG010,
// STG008's auto-concurrency half, STG007's concurrent-producer half) are
// suppressed so nothing is double-reported.
//
// lint_files() is the multi-spec front end: one TaskGraph node per file,
// executed on options.executor (the daemon's resident pool, or a per-call
// one under `punt lint --jobs=N`), with per-file costs estimated from and
// observed into options.ledger under "lint:<text digest>" keys.
//
// lint_errors() is the admission fast path: it runs the parser plus ONLY
// the error-capable structural rules (rules.hpp run_error_rules) and keeps
// the Error-severity findings, so `server::prepare_synth` refuses a
// structurally broken spec without paying for the warning-tier fixed points
// — refusal severities never depend on caller flags, only on the catalog's
// defaults, and the findings are byte-identical to a full pass's errors.
//
// Rendering: render_human() produces the caret-and-excerpt blocks of
// util::render_diagnostics plus a per-file summary line; render_json()
// produces the `punt-lint-report` v2 document (v1 plus the additive `tier`
// and `witnesses` fields, so v1 consumers keep parsing):
//
//   {"schema": "punt-lint-report", "version": 2,
//    "files": [{"file": ..., "ok": ..., "errors": N, "warnings": N,
//               "notes": N, "diagnostics": [{"rule", "severity", "tier",
//               "line", "column", "length", "message", "hint",
//               "witnesses": [{"label", "steps": [{"transition", "line",
//               "column", "length"}]}]}]}]}
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/diagnostics.hpp"

namespace punt::core {
class ModelCache;   // model_cache.hpp
class CostLedger;   // cost_ledger.hpp
class Executor;     // pipeline.hpp
}  // namespace punt::core

namespace punt::lint {

struct LintOptions {
  /// Promote every Warning to Error (--Werror).  Notes are never promoted.
  bool promote_all_warnings = false;
  /// Promote Warnings of these rule ids only (--Werror=STG006,...).
  std::vector<std::string> promote_rules;

  /// Run the semantic tier (STG1xx) after a structurally error-free pass.
  bool deep = false;
  /// State budget for the deep tier's explicit reachability (0 = unlimited).
  std::size_t deep_state_budget = 2000000;
  /// Resolve deep-tier models through this cache (not owned; may be null —
  /// each lint then builds its model fresh).
  core::ModelCache* cache = nullptr;
  /// lint_files() only: run the per-file nodes on this executor (not owned;
  /// null = inline on the calling thread).
  core::Executor* executor = nullptr;
  /// lint_files() only: estimate node costs from / observe measured costs
  /// into this ledger (not owned; may be null).
  core::CostLedger* ledger = nullptr;
};

/// The lint result for one spec.
struct FileLint {
  std::string filename;
  std::vector<util::Diagnostic> diagnostics;  // discovery order, post-promotion
  std::size_t errors = 0;
  std::size_t warnings = 0;
  std::size_t notes = 0;
  /// Deep tier ran and this call built the model (false on cache hits and
  /// structural-only passes) — surfaced so benches can count rebuilds.
  bool model_built = false;

  bool ok() const { return errors == 0; }
};

/// One input of a lint_files() batch.
struct FileInput {
  std::string filename;
  std::string text;
};

/// Lints one `.g` text.  Never throws on any spec content.
FileLint lint_text(std::string_view text, std::string_view filename,
                   const LintOptions& options = {});

/// Lints every input, one TaskGraph node per file, on options.executor.
/// Results are index-aligned with `files` and identical at any job count.
std::vector<FileLint> lint_files(const std::vector<FileInput>& files,
                                 const LintOptions& options = {});

/// Admission helper: the Error-severity findings of `text` under default
/// severities (no promotion).  Empty means the spec is admissible.
std::vector<util::Diagnostic> lint_errors(std::string_view text);

/// Human rendering: every finding as a caret block, then one summary line
/// ("file.g: 2 errors, 1 warning").  `source` is the original text.
std::string render_human(const FileLint& lint, std::string_view source);

/// Machine rendering of one or more files: `punt-lint-report` v2.
std::string render_json(const std::vector<FileLint>& files);

}  // namespace punt::lint
