#include "src/lint/rules.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace punt::lint {
namespace {

using util::Severity;
using util::SourceSpan;

const char* polarity_word(stg::Polarity polarity) {
  return polarity == stg::Polarity::Rise ? "rises" : "falls";
}

/// Structural place-concurrency relation, the classic fixed-point
/// approximation: two places may hold tokens at the same time if (seed) they
/// are both initially marked or are distinct outputs of one fork transition,
/// or (step) a transition whose whole preset is concurrent with `q` — and
/// which does not consume `q` itself — fires and deposits into them while
/// `q` stays marked.  Exact on live safe free-choice nets, an
/// overapproximation elsewhere; either way a pair it rules out is certainly
/// never co-marked, which is the safe polarity for a lint.  Path-based
/// "ordering" checks cannot do this job: in a cyclic STG every transition
/// reaches every other, so order says nothing about concurrency.
std::vector<std::vector<std::uint8_t>> place_concurrency(const pn::PetriNet& net) {
  const std::size_t np = net.place_count();
  std::vector<std::vector<std::uint8_t>> conc(np, std::vector<std::uint8_t>(np, 0));
  std::deque<std::pair<std::size_t, std::size_t>> work;
  auto add = [&](std::size_t a, std::size_t b) {
    if (a == b || conc[a][b]) return;
    conc[a][b] = conc[b][a] = 1;
    work.emplace_back(a, b);
  };
  const auto& marked = net.initial_marking().marked_places();
  for (std::size_t i = 0; i < marked.size(); ++i) {
    for (std::size_t j = i + 1; j < marked.size(); ++j) {
      add(marked[i].index(), marked[j].index());
    }
  }
  for (std::size_t i = 0; i < net.transition_count(); ++i) {
    const auto& outs = net.post(pn::TransitionId(static_cast<std::uint32_t>(i)));
    for (std::size_t a = 0; a < outs.size(); ++a) {
      for (std::size_t b = a + 1; b < outs.size(); ++b) {
        add(outs[a].index(), outs[b].index());
      }
    }
  }
  auto step = [&](std::size_t p, std::size_t q) {
    for (const pn::TransitionId t : net.post(pn::PlaceId(static_cast<std::uint32_t>(p)))) {
      const auto& pre = net.pre(t);
      const bool enabled_beside_q =
          std::all_of(pre.begin(), pre.end(), [&](pn::PlaceId r) {
            return r.index() != q && (r.index() == p || conc[r.index()][q]);
          });
      if (!enabled_beside_q) continue;
      for (const pn::PlaceId out : net.post(t)) add(out.index(), q);
    }
  };
  while (!work.empty()) {
    const auto [p, q] = work.front();
    work.pop_front();
    step(p, q);
    step(q, p);
  }
  return conc;
}

/// True when `a` and `b` may be enabled at the same time: their presets are
/// disjoint (a shared place makes them conflict, not concur) and every
/// cross-pair of pre-places may be co-marked.
bool transitions_concurrent(const pn::PetriNet& net,
                            const std::vector<std::vector<std::uint8_t>>& conc,
                            pn::TransitionId a, pn::TransitionId b) {
  const auto& pre_a = net.pre(a);
  const auto& pre_b = net.pre(b);
  if (pre_a.empty() || pre_b.empty()) return false;
  for (const pn::PlaceId pa : pre_a) {
    for (const pn::PlaceId pb : pre_b) {
      if (pa == pb || !conc[pa.index()][pb.index()]) return false;
    }
  }
  return true;
}

/// Potential firability: the fixed point of "a place is markable when it
/// holds an initial token or some producer is fireable; a transition is
/// fireable when every pre-place is markable".  Overapproximates real
/// reachability (it ignores token counts and conflicts), so a transition it
/// rules out is *certainly* dead — the right polarity for a lint.
std::vector<std::uint8_t> potentially_fireable(const pn::PetriNet& net) {
  const std::size_t nt = net.transition_count();
  const std::size_t np = net.place_count();
  std::vector<std::uint8_t> fireable(nt, 0);
  std::vector<std::uint8_t> markable(np, 0);
  for (std::size_t p = 0; p < np; ++p) {
    if (net.initial_marking().tokens(pn::PlaceId(static_cast<std::uint32_t>(p))) > 0) {
      markable[p] = 1;
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < nt; ++i) {
      if (fireable[i]) continue;
      const pn::TransitionId t(static_cast<std::uint32_t>(i));
      const auto& pre = net.pre(t);
      const bool ready =
          !pre.empty() && std::all_of(pre.begin(), pre.end(), [&](pn::PlaceId p) {
            return markable[p.index()] != 0;
          });
      if (!ready) continue;
      fireable[i] = 1;
      changed = true;
      for (const pn::PlaceId p : net.post(t)) {
        if (!markable[p.index()]) {
          markable[p.index()] = 1;
        }
      }
    }
  }
  return fireable;
}

/// "a+" with any "/k" suffix stripped -> "a"; empty when the name does not
/// look like a signed transition token.
std::string signed_token_base(const std::string& name) {
  std::string_view body = name;
  if (const std::size_t slash = body.rfind('/'); slash != std::string_view::npos) {
    const std::string_view suffix = body.substr(slash + 1);
    if (suffix.empty() ||
        !std::all_of(suffix.begin(), suffix.end(),
                     [](char c) { return c >= '0' && c <= '9'; })) {
      return std::string();
    }
    body = body.substr(0, slash);
  }
  if (body.size() < 2) return std::string();
  const char last = body.back();
  if (last != '+' && last != '-') return std::string();
  return std::string(body.substr(0, body.size() - 1));
}

// --- Rules ------------------------------------------------------------------

/// STG001 (rule half): duplicated or contradictory directives the parser
/// accepts silently (last one wins): repeated .model, a place marked twice,
/// repeated or contradictory .init_values entries.
void rule_duplicate_directives(const stg::ParsedG& parsed, util::DiagnosticSink& sink) {
  for (std::size_t i = 1; i < parsed.model_spans.size(); ++i) {
    sink.report("STG001", Severity::Warning, parsed.model_spans[i],
                "multiple .model directives; the last name wins",
                "keep a single .model line");
  }
  std::set<std::string> marked;
  for (const auto& [name, span] : parsed.marking_entries) {
    if (!marked.insert(name).second) {
      sink.report("STG001", Severity::Warning, span,
                  "place '" + name + "' is marked twice in .marking; the last count wins",
                  "remove the duplicate marking entry");
    }
  }
  std::map<std::string, std::uint8_t> init_seen;
  for (const auto& entry : parsed.init_value_entries) {
    const auto [it, inserted] = init_seen.emplace(entry.name, entry.value);
    if (inserted) continue;
    if (it->second != entry.value) {
      sink.report("STG001", Severity::Warning, entry.span,
                  "contradictory .init_values for '" + entry.name + "': both 0 and 1 given; the last one wins",
                  "keep exactly one value per signal");
    } else {
      sink.report("STG001", Severity::Warning, entry.span,
                  "duplicate .init_values entry for '" + entry.name + "'",
                  "remove the repeated entry");
    }
    it->second = entry.value;
  }
}

/// STG002: a declared signal without a single transition.  The model layer
/// deliberately accepts these as constants, so this is informational.
void rule_never_fired(const stg::ParsedG& parsed, util::DiagnosticSink& sink) {
  const stg::Stg& s = parsed.stg;
  for (std::size_t i = 0; i < s.signal_count(); ++i) {
    const stg::SignalId sig(static_cast<std::uint32_t>(i));
    if (!s.instances_of(sig).empty()) continue;
    const std::string& name = s.signal_name(sig);
    sink.report("STG002", Severity::Note, parsed.signal_span(name),
                "signal '" + name + "' is declared but never fires",
                "add transitions for '" + name + "' or drop the declaration");
  }
}

/// STG003: a place whose name reads as a signed transition token ("b+",
/// "x-/2") of an *undeclared* signal.  The parser silently turns such tokens
/// into places — the classic typo'd-signal footgun.
void rule_fired_undeclared(const stg::ParsedG& parsed, util::DiagnosticSink& sink) {
  const pn::PetriNet& net = parsed.stg.net();
  for (std::size_t i = 0; i < net.place_count(); ++i) {
    const std::string& name = net.place_name(pn::PlaceId(static_cast<std::uint32_t>(i)));
    if (!name.empty() && name.front() == '<') continue;  // implicit arc place
    const std::string base = signed_token_base(name);
    if (base.empty() || parsed.stg.find_signal(base)) continue;
    sink.report("STG003", Severity::Warning, parsed.place_span(name),
                "place '" + name + "' looks like a transition of undeclared signal '" +
                    base + "'",
                "declare '" + base + "' in .inputs/.outputs/.internal");
  }
}

/// STG004: transitions that can never fire, by the potential-firability
/// fixed point (structural, no state space).  When nothing is marked at all
/// a single finding covers the whole file instead of one per transition.
void rule_unreachable(const stg::ParsedG& parsed, util::DiagnosticSink& sink) {
  const pn::PetriNet& net = parsed.stg.net();
  if (net.transition_count() == 0) return;
  if (net.initial_marking().marked_places().empty()) {
    sink.report("STG004", Severity::Warning,
                parsed.marking_spans.empty() ? SourceSpan{} : parsed.marking_spans.front(),
                "no place is initially marked: no transition can ever fire",
                "mark at least one place in .marking");
    return;
  }
  const std::vector<std::uint8_t> fireable = potentially_fireable(net);
  for (std::size_t i = 0; i < fireable.size(); ++i) {
    if (fireable[i]) continue;
    const std::string& name =
        net.transition_name(pn::TransitionId(static_cast<std::uint32_t>(i)));
    sink.report("STG004", Severity::Warning, parsed.transition_span(name),
                "transition '" + name + "' can never fire: no token can reach its preset",
                "mark a place on some path to '" + name + "'");
  }
}

/// STG005: dangling structure.  A transition with an empty preset or postset
/// is an error (Stg::validate rejects it, so synthesis would too); a place
/// nobody feeds or nobody consumes is a warning.
void rule_dangling_transitions(const stg::ParsedG& parsed, util::DiagnosticSink& sink) {
  const pn::PetriNet& net = parsed.stg.net();
  for (std::size_t i = 0; i < net.transition_count(); ++i) {
    const pn::TransitionId t(static_cast<std::uint32_t>(i));
    const std::string& name = net.transition_name(t);
    if (net.pre(t).empty()) {
      sink.report("STG005", Severity::Error, parsed.transition_span(name),
                  "transition '" + name + "' has an empty preset (it would be always enabled)",
                  "add an arc from some place to '" + name + "'");
    }
    if (net.post(t).empty()) {
      sink.report("STG005", Severity::Error, parsed.transition_span(name),
                  "transition '" + name + "' has an empty postset (its firings vanish)",
                  "add an arc from '" + name + "' to some place");
    }
  }
}

void rule_dangling(const stg::ParsedG& parsed, util::DiagnosticSink& sink) {
  const pn::PetriNet& net = parsed.stg.net();
  rule_dangling_transitions(parsed, sink);
  for (std::size_t i = 0; i < net.place_count(); ++i) {
    const pn::PlaceId p(static_cast<std::uint32_t>(i));
    const std::string& name = net.place_name(p);
    if (net.pre(p).empty() && net.initial_marking().tokens(p) == 0) {
      sink.report("STG005", Severity::Warning, parsed.place_span(name),
                  "place '" + name + "' has no producers and no initial token",
                  "mark '" + name + "' or add a producing arc");
    }
    if (net.post(p).empty()) {
      sink.report("STG005", Severity::Warning, parsed.place_span(name),
                  "place '" + name + "' has no consumers; its tokens accumulate",
                  "add a consuming arc or drop the place");
    }
  }
}

/// STG006: rise/fall alternation, statically.  Two shapes: a signal whose
/// transitions all go one way (it can change at most once, so a cycle
/// through it breaks consistency), and a same-polarity pair in *direct*
/// succession (t2's only pre-place is fed by t1 with the same edge, so
/// firing t1 enables an immediate second rise/fall).
void rule_alternation(const stg::ParsedG& parsed, util::DiagnosticSink& sink) {
  const stg::Stg& s = parsed.stg;
  const pn::PetriNet& net = s.net();
  for (std::size_t i = 0; i < s.signal_count(); ++i) {
    const stg::SignalId sig(static_cast<std::uint32_t>(i));
    if (s.signal_kind(sig) == stg::SignalKind::Dummy) continue;
    const auto& instances = s.instances_of(sig);
    if (instances.empty()) continue;
    std::size_t rises = 0;
    std::size_t falls = 0;
    for (const pn::TransitionId t : instances) {
      (s.label(t).rising() ? rises : falls) += 1;
    }
    if (rises == 0 || falls == 0) {
      const std::string& name = s.signal_name(sig);
      sink.report("STG006", Severity::Warning, parsed.signal_span(name),
                  "signal '" + name + "' only ever " +
                      polarity_word(rises > 0 ? stg::Polarity::Rise : stg::Polarity::Fall) +
                      ": it can change at most once",
                  "a live signal needs both '" + name + "+' and '" + name + "-' transitions");
    }
  }
  for (std::size_t i = 0; i < net.place_count(); ++i) {
    const pn::PlaceId p(static_cast<std::uint32_t>(i));
    for (const pn::TransitionId producer : net.pre(p)) {
      const stg::Label& from = s.label(producer);
      if (from.dummy) continue;
      for (const pn::TransitionId consumer : net.post(p)) {
        const stg::Label& to = s.label(consumer);
        if (to.dummy || consumer == producer) continue;
        if (from.signal != to.signal || from.polarity != to.polarity) continue;
        if (net.pre(consumer).size() != 1) continue;  // other places may interleave
        sink.report("STG006", Severity::Warning,
                    parsed.transition_span(net.transition_name(consumer)),
                    "rise/fall alternation broken: '" + net.transition_name(consumer) +
                        "' fires directly after '" + net.transition_name(producer) +
                        "' with no opposite edge between them",
                    "insert the opposite edge of the signal between the two");
      }
    }
  }
}

/// STG007: structural 1-safety hints.  A place that starts with two or more
/// tokens is unsafe by construction; a place fed by two producers that may
/// fire concurrently (per the place-concurrency fixed point) can receive a
/// second token while the first is still there.  Choice merges and
/// producers ordered around a loop never become concurrent, so the sane
/// free-choice merge shapes stay silent.
void rule_unsafe_hint(const stg::ParsedG& parsed, util::DiagnosticSink& sink) {
  const pn::PetriNet& net = parsed.stg.net();
  for (std::size_t i = 0; i < net.place_count(); ++i) {
    const pn::PlaceId p(static_cast<std::uint32_t>(i));
    if (net.initial_marking().tokens(p) >= 2) {
      const std::string& name = net.place_name(p);
      sink.report("STG007", Severity::Warning, parsed.place_span(name),
                  "place '" + name + "' initially holds " +
                      std::to_string(net.initial_marking().tokens(p)) +
                      " tokens; the synthesis pipeline assumes a 1-safe net",
                  "restructure the net so every place holds at most one token");
    }
  }
  std::vector<std::vector<std::uint8_t>> conc;  // computed lazily
  for (std::size_t i = 0; i < net.place_count(); ++i) {
    const pn::PlaceId p(static_cast<std::uint32_t>(i));
    const auto& producers = net.pre(p);
    if (producers.size() < 2) continue;
    if (conc.empty()) conc = place_concurrency(net);
    for (std::size_t a = 0; a < producers.size(); ++a) {
      for (std::size_t b = a + 1; b < producers.size(); ++b) {
        const pn::TransitionId ta = producers[a];
        const pn::TransitionId tb = producers[b];
        if (!transitions_concurrent(net, conc, ta, tb)) continue;
        const std::string& name = net.place_name(p);
        sink.report("STG007", Severity::Warning, parsed.place_span(name),
                    "place '" + name + "' can receive tokens from '" +
                        net.transition_name(ta) + "' and '" + net.transition_name(tb) +
                        "' which may fire concurrently: possible 1-safety violation",
                    "order the producers or separate them with a choice");
      }
    }
  }
}

/// STG008: a signal racing with itself.  Self-triggering: the opposite edge
/// of a signal is enabled by nothing but the signal's own previous edge, so
/// the circuit would trigger itself with no environment acknowledgement.
/// Auto-concurrency: two same-edge instances of one signal whose presets may
/// be co-marked (place-concurrency fixed point) can both be enabled at once.
void rule_self_race(const stg::ParsedG& parsed, util::DiagnosticSink& sink) {
  const stg::Stg& s = parsed.stg;
  const pn::PetriNet& net = s.net();
  for (std::size_t i = 0; i < net.place_count(); ++i) {
    const pn::PlaceId p(static_cast<std::uint32_t>(i));
    for (const pn::TransitionId producer : net.pre(p)) {
      const stg::Label& from = s.label(producer);
      if (from.dummy) continue;
      for (const pn::TransitionId consumer : net.post(p)) {
        const stg::Label& to = s.label(consumer);
        if (to.dummy || consumer == producer) continue;
        if (from.signal != to.signal || from.polarity == to.polarity) continue;
        if (net.pre(consumer).size() != 1) continue;
        const std::string& name = s.signal_name(from.signal);
        sink.report("STG008", Severity::Warning,
                    parsed.transition_span(net.transition_name(consumer)),
                    "signal '" + name + "' triggers itself: '" +
                        net.transition_name(consumer) + "' is enabled by nothing but '" +
                        net.transition_name(producer) + "'",
                    "let another signal acknowledge '" + net.transition_name(producer) +
                        "' before '" + net.transition_name(consumer) + "'");
      }
    }
  }
  std::vector<std::vector<std::uint8_t>> conc;  // computed lazily
  for (std::size_t i = 0; i < s.signal_count(); ++i) {
    const stg::SignalId sig(static_cast<std::uint32_t>(i));
    if (s.signal_kind(sig) == stg::SignalKind::Dummy) continue;
    const auto& instances = s.instances_of(sig);
    for (std::size_t a = 0; a < instances.size(); ++a) {
      for (std::size_t b = a + 1; b < instances.size(); ++b) {
        const pn::TransitionId ta = instances[a];
        const pn::TransitionId tb = instances[b];
        if (s.label(ta).polarity != s.label(tb).polarity) continue;
        if (conc.empty()) conc = place_concurrency(net);
        if (!transitions_concurrent(net, conc, ta, tb)) continue;
        sink.report("STG008", Severity::Warning,
                    parsed.transition_span(net.transition_name(tb)),
                    "auto-concurrency: '" + net.transition_name(ta) + "' and '" +
                        net.transition_name(tb) + "' of signal '" + s.signal_name(sig) +
                        "' can be enabled at the same time",
                    "order the two instances or merge them; run `punt lint --deep` "
                    "for an exact verdict");
      }
    }
  }
}

/// STG009: choice-place shape.  In an arbiter-free speed-independent
/// circuit, choice must be resolved by the environment: every (non-dummy)
/// alternative of a choice place should be an input edge.  A choice between
/// output/internal edges means the circuit itself would have to arbitrate.
void rule_choice_shape(const stg::ParsedG& parsed, util::DiagnosticSink& sink) {
  const stg::Stg& s = parsed.stg;
  const pn::PetriNet& net = s.net();
  for (const pn::PlaceId p : net.choice_places()) {
    // Only free-choice-style alternatives count: consumers the place merely
    // synchronises (extra pre-places) are joins, not choice alternatives.
    std::vector<pn::TransitionId> alternatives;
    for (const pn::TransitionId t : net.post(p)) {
      if (net.pre(t).size() == 1) alternatives.push_back(t);
    }
    if (alternatives.size() < 2) continue;
    for (const pn::TransitionId t : alternatives) {
      const stg::Label& label = s.label(t);
      if (label.dummy) continue;
      if (s.signal_kind(label.signal) == stg::SignalKind::Input) continue;
      sink.report("STG009", Severity::Warning,
                  parsed.transition_span(net.transition_name(t)),
                  "choice place '" + net.place_name(p) + "' is resolved by non-input transition '" +
                      net.transition_name(t) + "'",
                  "only the environment (input edges) may resolve a choice without an arbiter");
    }
  }
}

/// STG010: CSC pre-screen.  Two same-edge instances of one signal with
/// identical presets fire from indistinguishable structural contexts — a
/// cheap necessary-condition screen for state-coding trouble around dummy
/// and internal signals (and redundant duplicate instances in general).
void rule_csc_prescreen(const stg::ParsedG& parsed, util::DiagnosticSink& sink) {
  const stg::Stg& s = parsed.stg;
  const pn::PetriNet& net = s.net();
  for (std::size_t i = 0; i < s.signal_count(); ++i) {
    const stg::SignalId sig(static_cast<std::uint32_t>(i));
    const auto& instances = s.instances_of(sig);
    for (std::size_t a = 0; a < instances.size(); ++a) {
      for (std::size_t b = a + 1; b < instances.size(); ++b) {
        const pn::TransitionId ta = instances[a];
        const pn::TransitionId tb = instances[b];
        const stg::Label& la = s.label(ta);
        const stg::Label& lb = s.label(tb);
        if (!la.dummy && la.polarity != lb.polarity) continue;
        std::vector<pn::PlaceId> pre_a(net.pre(ta));
        std::vector<pn::PlaceId> pre_b(net.pre(tb));
        std::sort(pre_a.begin(), pre_a.end());
        std::sort(pre_b.begin(), pre_b.end());
        if (pre_a.empty() || pre_a != pre_b) continue;
        sink.report("STG010", Severity::Note,
                    parsed.transition_span(net.transition_name(tb)),
                    "transitions '" + net.transition_name(ta) + "' and '" +
                        net.transition_name(tb) + "' have identical presets; they fire from indistinguishable contexts",
                    "merge the instances or distinguish their presets; run "
                    "`punt lint --deep` for an exact verdict");
      }
    }
  }
}

}  // namespace

const std::vector<RuleInfo>& rule_catalog() {
  static const std::vector<RuleInfo> catalog = {
      {"STG000", Severity::Error, "syntax: malformed directives, tokens, or graph lines"},
      {"STG001", Severity::Error, "duplicate or contradictory constructs (declarations, arcs, markings, init values)"},
      {"STG002", Severity::Note, "signal declared but never fires (constant)"},
      {"STG003", Severity::Warning, "place named like a transition of an undeclared signal"},
      {"STG004", Severity::Warning, "transition unreachable from the initial marking (graph reachability)"},
      {"STG005", Severity::Error, "dangling structure: transitions without preset/postset, source/sink places"},
      {"STG006", Severity::Warning, "rise/fall alternation inconsistency of a signal"},
      {"STG007", Severity::Warning, "structural 1-safety hint: multi-token or concurrently fed place"},
      {"STG008", Severity::Warning, "signal self-triggering or auto-concurrency with itself"},
      {"STG009", Severity::Warning, "choice place resolved by non-input transitions"},
      {"STG010", Severity::Note, "CSC pre-screen: same-edge instances with identical presets"},
  };
  return catalog;
}

void run_rules(const stg::ParsedG& parsed, util::DiagnosticSink& sink) {
  rule_duplicate_directives(parsed, sink);
  rule_never_fired(parsed, sink);
  rule_fired_undeclared(parsed, sink);
  rule_unreachable(parsed, sink);
  rule_dangling(parsed, sink);
  rule_alternation(parsed, sink);
  rule_unsafe_hint(parsed, sink);
  rule_self_race(parsed, sink);
  rule_choice_shape(parsed, sink);
  rule_csc_prescreen(parsed, sink);
}

void run_error_rules(const stg::ParsedG& parsed, util::DiagnosticSink& sink) {
  // The only rule-level Error emissions are rule_dangling's transition
  // halves (the severity policy above ties Error to strict-pipeline
  // rejection), so the admission fast path runs exactly that loop and skips
  // the place-concurrency and potential-firability fixed points the
  // warning-tier rules pay for.
  rule_dangling_transitions(parsed, sink);
}

}  // namespace punt::lint
