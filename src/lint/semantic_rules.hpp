// The `punt lint --deep` semantic tier: exact verdicts over the state graph.
//
// Where the structural rules (rules.hpp, STG000–STG010) are necessary-
// condition pre-screens that never explore the state space, the semantic
// tier builds the spec's phase-1 model (the same sg::StateGraph the
// synthesis baseline uses, resolved through the shared ModelCache so a warm
// spec deep-lints without rebuilding anything) and decides the properties
// exactly:
//
//   STG100  CSC conflict — two reachable states share a binary code but
//           imply different output behaviour (the exact verdict behind the
//           STG010 pre-screen);
//   STG101  output-persistency (semi-modularity) violation — a firing
//           disables an excited output, the paper's speed-independence
//           condition;
//   STG102  1-safety violation — a reachable firing overfills a place (the
//           exact verdict behind STG007's concurrent-producer half);
//   STG103  dead transition — no reachable marking enables it (the exact
//           verdict behind STG004);
//   STG104  deadlock — a reachable state enables no transition;
//   STG105  inconsistent state assignment — one marking is reachable with
//           two binary codes (what STG008's auto-concurrency pre-screen
//           approximates);
//   STG106  semantic model unavailable — validation failed or a budget was
//           exceeded; carries the pipeline's exception text.
//
// Severity policy mirrors the structural tier's: Error ⇔ `punt synth` with
// default options would reject the spec (CSC, persistency, safety,
// consistency, validation), so a spec that synthesises clean never deep-
// lints with error-severity semantic findings.  The one exception is a
// blown *state budget* (STG106 as a Warning): explicit reachability gave no
// verdict, but the unfolding-based flow may still synthesise the spec.
//
// Findings carry witness firing sequences (util::Witness) from the initial
// state, with each step mapped back to its source span through ParsedG's
// provenance tables — a CSC error points at the transitions whose states
// collide.
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

#include "src/lint/rules.hpp"
#include "src/stg/g_format.hpp"
#include "src/util/diagnostics.hpp"

namespace punt::core {
class ModelCache;  // model_cache.hpp
}

namespace punt::lint {

/// The deep-tier catalog in id order (STG100 ... STG106).  Disjoint from
/// rule_catalog(); `punt lint --rules` lists both.
const std::vector<RuleInfo>& semantic_rule_catalog();

/// True for deep-tier rule ids ("STG100"..."STG199").
bool is_semantic_rule(std::string_view rule_id);

struct SemanticOptions {
  /// Forwarded to sg::StateGraph::build (0 = unlimited).
  std::size_t state_budget = 2000000;
  /// Resolve the phase-1 model through this cache (lookup-or-build) instead
  /// of building it fresh; the daemon passes its resident two-tier cache so
  /// warm specs deep-lint with zero rebuilds.  Not owned; may be null.
  core::ModelCache* cache = nullptr;
};

struct SemanticOutcome {
  std::vector<util::Diagnostic> diagnostics;
  /// The state graph was resolved; every exact verdict above ran.  This is
  /// what licenses retracting the structural pre-screens (STG004, STG010,
  /// STG008's auto-concurrency half, STG007's concurrent-producer half).
  bool model_ready = false;
  /// 1-safety was decided exactly: the model built under the capacity-1
  /// bound (safe), or STG102 reported the violation.  Licenses retracting
  /// STG007's conservative half even when the model is unavailable.
  bool safety_verdict = false;
  /// This call constructed the model (false on every cache hit).
  bool built = false;
};

/// Runs the semantic tier over one spec.  `text` is re-parsed strictly
/// (stg::parse_g) because the collecting parse behind `parsed` leaves the
/// Stg unvalidated with a possibly-unresolved initial code; `parsed`
/// supplies the span tables the witness steps anchor to.  Never throws on
/// any spec content — every failure becomes a finding.
SemanticOutcome run_semantic_rules(std::string_view text, const stg::ParsedG& parsed,
                                   const SemanticOptions& options = {});

}  // namespace punt::lint
