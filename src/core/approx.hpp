// Cover approximation and refinement from the STG-unfolding segment
// (paper §4.2 and §4.3).
//
// The approximated on-set cover of a signal is assembled per slice from
//   * the excitation-region cover C*e of the slice's entry instance: the
//     binary code of its minimal excitation cut with every signal that has a
//     concurrent instance inside the slice turned into a don't-care; and
//   * marked-region covers C*mr for an approximation set P'a of conditions
//     sequential to the entry; conditions feeding a bounding instance get
//     the *restricted* sum-form cover that avoids the bound's excitation
//     states.
//
// If the resulting on- and off-set approximations intersect, the refinement
// loop (Fig. 5 of the paper) intersects the offending covers with sums of
// *restricted* MR covers over a refining set P'r, monotonically shrinking
// them towards the exact covers.  Refinement that stalls is reported so the
// driver can fall back to exact per-slice enumeration.
#pragma once

#include <cstddef>
#include <vector>

#include "src/core/slices.hpp"
#include "src/logic/cover.hpp"
#include "src/stg/stg.hpp"
#include "src/unfolding/unfolding.hpp"

namespace punt::core {

/// How the approximation set P'a is chosen (DESIGN.md §5).
enum class ApproxSetPolicy {
  /// Every slice condition sequential to the entry.  Guarantees that every
  /// quiescent-region cut is covered by some MR cover (sound by
  /// construction); espresso removes the redundancy afterwards.
  Full,
  /// The paper's choice: per bounding instance, one input condition plus
  /// the backward chain of conditions towards the entry (e.g. {p4,p7,p10}
  /// in Fig. 4(b)), plus the deadlock frontier.  Smaller initial covers;
  /// relies on the refinement/fallback safety net for exotic nets.
  PaperChains,
};

/// An element of the unfolding a cover piece is anchored to: a slice-entry
/// event (excitation cover) or a condition (marked-region cover).
struct SliceElement {
  bool is_event = true;
  unf::EventId event;
  unf::ConditionId condition;

  static SliceElement of(unf::EventId e) { return SliceElement{true, e, {}}; }
  static SliceElement of(unf::ConditionId c) { return SliceElement{false, {}, c}; }
};

/// One contribution to an approximated cover, refined independently.
struct CoverAtom {
  SliceElement element;
  std::size_t slice_index = 0;  // into ApproxCover::slices
  logic::Cover cover;
};

/// The approximated cover of one signal's on- or off-set, kept in atom form
/// so refinement can re-constrain individual pieces.
struct ApproxCover {
  stg::SignalId signal;
  bool value = true;
  std::vector<Slice> slices;
  std::vector<std::vector<unf::EventId>> slice_event_sets;  // parallel to slices
  std::vector<CoverAtom> atoms;

  /// Union of all atom covers (single-cube containment removed).
  logic::Cover combined(std::size_t variable_count) const;
};

// --- Primitives (unit-tested against the paper's worked examples) -----------

/// C*e of a non-⊥ entry: excitation-cut code with DC at every signal owning
/// an instance concurrent with the entry (paper §4.2; Fig. 4(a): C*e(+d') =
/// a d' g').
logic::Cube excitation_cover(const unf::Unfolding& unf, unf::EventId entry);

/// Plain MR cover of condition `c`: the code of its producer's local
/// configuration with DC at signals owning a slice instance concurrent with
/// `c` (Fig. 4(b): C*mr(p7) = a d g').
logic::Cube mr_cover(const unf::Unfolding& unf, unf::ConditionId c,
                     const std::vector<unf::EventId>& slice_events);

/// Restricted MR cover for a condition `c` that can be marked while the
/// bounding instance `bound` is enabled (c feeds the bound, or is concurrent
/// with the bound's whole preset): one term per *usable* trigger of the
/// bound — a preset producer that has not already fired in [producer(c)] —
/// pinning that trigger's signal to its not-yet-fired value (Fig. 4(b):
/// C(p10) = a d f' g + a d e' g).  Returns an empty cover when no trigger
/// can be pinned (every marking of `c` may excite the bound, so `c`
/// contributes nothing to this set); the caller then drops the condition.
logic::Cover restricted_next_cover(const unf::Unfolding& unf, unf::ConditionId c,
                                   unf::EventId bound,
                                   const std::vector<unf::EventId>& slice_events);

/// The refining set P'r for `element` (paper §4.3): every slice condition
/// concurrent with it.
std::vector<unf::ConditionId> refining_set(const unf::Unfolding& unf,
                                           const SliceElement& element,
                                           const Slice& slice);

/// Restricted MR cover used during refinement: DC only at signals owning a
/// slice instance concurrent with `c` *and* causally after `element`
/// (Fig. 4(c): C^r_mr(p2) = {1001-}).
logic::Cube refinement_mr_cover(const unf::Unfolding& unf, unf::ConditionId c,
                                const SliceElement& element,
                                const std::vector<unf::EventId>& slice_events);

/// One refinement step: intersects the atom's cover with the sum of
/// restricted MR covers over P'r (Fig. 4(c): refining the d e' cover of p5
/// w.r.t. signal a yields a c' d e' + b c d e').  Returns true when the
/// cover changed.
bool refine_atom(const unf::Unfolding& unf, const ApproxCover& owner, CoverAtom& atom,
                 stg::SignalId offending);

// --- Whole-signal approximation and refinement ------------------------------

/// Builds the approximated cover of `signal`'s on- (`value`=1) or off-set.
ApproxCover approximate_cover(const unf::Unfolding& unf, stg::SignalId signal,
                              bool value, ApproxSetPolicy policy = ApproxSetPolicy::Full);

struct RefineStats {
  std::size_t iterations = 0;
  std::size_t refined_atoms = 0;
  bool disjoint = false;  // success: the covers no longer intersect
};

/// Runs the Fig. 5 refinement loop until the on/off covers are disjoint or
/// no offending pair can be refined further.  Returns the stats; callers
/// fall back to exact covers when !disjoint.
RefineStats refine_until_disjoint(const unf::Unfolding& unf, ApproxCover& on,
                                  ApproxCover& off, std::size_t max_iterations = 1000);

}  // namespace punt::core
