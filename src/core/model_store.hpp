// ModelStore — the on-disk tier of the semantic-model cache (DESIGN.md §8).
//
// The in-process ModelCache amortises phase-1 (unfolding-segment / SG
// construction) within one process; every fresh CLI invocation and every CI
// bench shard still paid it again.  The store persists a versioned binary
// serialisation of SemanticModel keyed by the *same* canonical key the
// memory tier uses (stg::write_g digest + ModelOptions fingerprint), so
// successive processes sharing one `--model-cache-dir` skip phase 1 after
// the first warm run.
//
// File layout (one file per model, inside the store directory):
//
//   <fnv1a64(key) as 16 hex digits>-<key length>.puntmodel
//
//   "PUNTMODL"            8-byte magic
//   u32 format version    (kFormatVersion; bumped on any layout change)
//   payload               key text, canonical `.g`, options, targets,
//                         per-layer segment/SG payload, build stats
//   u64 checksum          FNV-1a over the payload bytes
//
// The filename hash is for addressing only: load() compares the *full* key
// text stored in the payload, so a hash collision degrades to a miss, never
// to a wrong model.  Atomicity: store() writes to a unique temp file in the
// same directory and `rename`s it over the final name, so concurrent bench
// shards sharing a directory each publish a complete file and the last
// writer wins — readers never observe a half-written model.
//
// Failure contract: load() and store() never throw — a missing, truncated,
// corrupt, version-mismatched or key-mismatched file is a miss (counted in
// ModelStoreStats) and the caller rebuilds; an unwritable directory degrades
// to build-without-persist, and a failed write removes its own temp file.
// The scan()/purge() tooling helpers are the exception: a directory that
// cannot be listed throws Error, because `punt cache stats` on a typo'd
// path must fail loudly rather than report an empty cache.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/pipeline.hpp"

namespace punt::core {

struct ModelStoreStats {
  std::size_t hits = 0;            // load() returned a model
  std::size_t misses = 0;          // no file for the key (or a filename-hash
                                   // collision, i.e. a different key's file)
  std::size_t load_errors = 0;     // corrupt / truncated / version mismatch
  std::size_t stores = 0;          // models published (temp + rename)
  std::size_t store_failures = 0;  // publish failed (e.g. read-only directory)
};

/// Serialises a model (with its cache key) into the store's file image:
/// magic, version, payload, trailing checksum.  Exposed for tests.
std::string serialize_model(const SemanticModel& model, const std::string& key);

/// Parses serialize_model() output.  Throws ParseError on a damaged or
/// version-mismatched image and ValidationError on inconsistent contents.
/// When `expected_key` is non-null and the stored key differs, returns
/// nullptr (a filename collision is a miss, not corruption).
std::shared_ptr<const SemanticModel> deserialize_model(std::string_view image,
                                                       const std::string* expected_key);

/// One model file as seen by `punt cache stats` / the scan() helper.
struct StoredModelInfo {
  std::string file;          // filename within the directory
  std::uintmax_t bytes = 0;  // file size
  bool ok = false;           // deserialised cleanly
  std::string model;         // STG name (when ok)
  std::string kind;          // "unfolding" | "state-graph" (when ok)
  std::size_t events = 0;    // segment events (unfolding kind)
  std::size_t states = 0;    // SG states (state-graph kind)
  std::string error;         // diagnostic (when !ok)
};

/// Thread-safe on-disk model store rooted at one directory.
class ModelStore {
 public:
  static constexpr std::uint32_t kFormatVersion = 1;
  static constexpr const char* kFileSuffix = ".puntmodel";

  /// Uses `directory` (created on first store() if absent).  Constructing
  /// never fails: an unusable path simply yields misses and store failures.
  explicit ModelStore(std::string directory);

  ModelStore(const ModelStore&) = delete;
  ModelStore& operator=(const ModelStore&) = delete;

  const std::string& directory() const { return directory_; }

  /// Loads the model stored under `key`, or nullptr on miss/corruption/
  /// version mismatch (the caller rebuilds).  Never throws.
  std::shared_ptr<const SemanticModel> load(const std::string& key);

  /// Atomically publishes `model` under `key` (write temp + rename).
  /// Returns false — without throwing — when the directory is unwritable.
  bool store(const std::string& key, const SemanticModel& model);

  ModelStoreStats stats() const;

  /// The store filename for a key (hash + length + suffix, no directory).
  static std::string filename_of(const std::string& key);

  /// Inventories every *.puntmodel file of `directory` (deserialising each
  /// to classify it) — the substrate of `punt cache stats`.  An existing
  /// but empty directory is an empty inventory; a directory that cannot be
  /// listed (nonexistent, unreadable) throws Error — a typo'd path must not
  /// report an empty cache.
  static std::vector<StoredModelInfo> scan(const std::string& directory);

  /// Deletes every *.puntmodel file of `directory`, plus any
  /// *.puntmodel.tmp-* leftovers of writers that died before their rename
  /// (other files are left alone); returns how many were removed.
  /// Throws Error, like scan(), when the directory cannot be listed.
  /// `punt cache purge`.
  static std::size_t purge(const std::string& directory);

 private:
  std::string directory_;
  mutable std::mutex mutex_;  // guards stats_ and the temp-name counter
  ModelStoreStats stats_;
  std::uint64_t temp_token_ = 0;  // per-instance entropy for temp names:
                                  // pids alone collide across containers
                                  // sharing one cache directory
  std::uint64_t temp_counter_ = 0;
};

}  // namespace punt::core
