#include "src/core/synthesis.hpp"

#include <span>
#include <utility>

#include "src/core/pipeline.hpp"
#include "src/util/error.hpp"

namespace punt::core {

std::size_t SignalImplementation::literal_count(Architecture arch) const {
  if (arch == Architecture::ComplexGate) return gate.literal_count();
  return set_function.literal_count() + reset_function.literal_count();
}

bool SignalImplementation::same_logic(const SignalImplementation& other) const {
  return signal == other.signal && name == other.name &&
         on_cover == other.on_cover && off_cover == other.off_cover &&
         gate == other.gate && gate_covers_on == other.gate_covers_on &&
         set_function == other.set_function &&
         reset_function == other.reset_function &&
         used_exact_fallback == other.used_exact_fallback &&
         csc_conflict == other.csc_conflict;
}

std::size_t SynthesisResult::literal_count() const {
  std::size_t n = 0;
  for (const SignalImplementation& impl : signals) n += impl.literal_count(architecture);
  return n;
}

void SynthesisResult::rebuild_signal_index() {
  signal_index_.clear();
  signal_index_.reserve(signals.size());
  for (std::size_t i = 0; i < signals.size(); ++i) {
    signal_index_.emplace(signals[i].signal.value, i);
  }
}

const SignalImplementation& SynthesisResult::implementation(stg::SignalId signal) const {
  const auto it = signal_index_.find(signal.value);
  if (it != signal_index_.end() && it->second < signals.size() &&
      signals[it->second].signal == signal) {
    return signals[it->second];
  }
  // Stale or absent index (a hand-edited result that skipped
  // rebuild_signal_index()): fall back to the linear scan rather than give
  // a wrong hit or a wrong miss.
  for (const SignalImplementation& impl : signals) {
    if (impl.signal == signal) return impl;
  }
  std::string known;
  for (const SignalImplementation& impl : signals) {
    if (!known.empty()) known += ", ";
    known += impl.name.empty() ? "#" + std::to_string(impl.signal.index()) : impl.name;
  }
  throw ValidationError(
      "no implementation for signal #" + std::to_string(signal.index()) +
      " (is it an input?); implementations exist for: " +
      (known.empty() ? "none" : known));
}

SynthesisResult synthesize(const stg::Stg& stg, const SynthesisOptions& options,
                           ModelCache* cache, util::TaskTrace* trace,
                           CostLedger* ledger) {
  // A one-entry batch: the same graph emission and executor as
  // synthesize_batch, with the per-signal derive/minimize nodes spread over
  // options.jobs workers.  The entry's failure — captured as the
  // lowest-index failing node's exception — is rethrown with its original
  // type, so callers observe exactly what the sequential loop would throw.
  BatchOptions batch_options;
  batch_options.synthesis = options;
  batch_options.jobs = options.jobs;
  batch_options.cache = cache;
  batch_options.trace = trace;
  batch_options.ledger = ledger;
  BatchResult batch = synthesize_batch(std::span<const stg::Stg>(&stg, 1), batch_options);
  BatchEntry& entry = batch.entries.front();
  if (!entry.ok) {
    if (entry.exception) std::rethrow_exception(entry.exception);
    throw ValidationError(entry.error);
  }
  return std::move(entry.result);
}

}  // namespace punt::core
