#include "src/core/synthesis.hpp"

#include <algorithm>

#include "src/sg/analysis.hpp"
#include "src/sg/state_graph.hpp"
#include "src/util/error.hpp"
#include "src/util/stopwatch.hpp"

namespace punt::core {
namespace {

using logic::Cover;

/// Raw (unminimised) single-cube-containment cleanup used when the caller
/// disables espresso.
Cover tidy(Cover cover) {
  cover.make_irredundant_scc();
  return cover;
}

}  // namespace

std::size_t SignalImplementation::literal_count(Architecture arch) const {
  if (arch == Architecture::ComplexGate) return gate.literal_count();
  return set_function.literal_count() + reset_function.literal_count();
}

std::size_t SynthesisResult::literal_count() const {
  std::size_t n = 0;
  for (const SignalImplementation& impl : signals) n += impl.literal_count(architecture);
  return n;
}

const SignalImplementation& SynthesisResult::implementation(stg::SignalId signal) const {
  for (const SignalImplementation& impl : signals) {
    if (impl.signal == signal) return impl;
  }
  throw ValidationError("no implementation for the requested signal (is it an input?)");
}

SynthesisResult synthesize(const stg::Stg& stg, const SynthesisOptions& options) {
  stg.validate();
  if (stg.has_dummies()) {
    throw ImplementabilityError(
        "the STG contains dummy transitions; the synthesis method of the "
        "paper requires every transition to carry a signal edge");
  }

  SynthesisResult result;
  result.method = options.method;
  result.architecture = options.architecture;
  const std::vector<stg::SignalId> targets = stg.non_input_signals();
  const std::size_t n = stg.signal_count();

  Stopwatch total;

  // Phase 1: build the semantic model (segment or SG) + general checks.
  Stopwatch phase;
  std::unique_ptr<unf::Unfolding> unfolding;
  std::unique_ptr<sg::StateGraph> sgraph;
  if (options.method == Method::StateGraph) {
    sg::BuildOptions build;
    build.state_budget = options.state_budget;
    sgraph = std::make_unique<sg::StateGraph>(sg::StateGraph::build(stg, build));
    result.sg_states = sgraph->state_count();
    if (options.check_persistency) {
      const auto violations = sg::persistency_violations(stg, *sgraph);
      if (!violations.empty()) {
        throw ImplementabilityError("the STG is not semi-modular: " +
                                    violations.front().describe(stg));
      }
    }
  } else {
    unf::UnfoldOptions build;
    build.event_budget = options.event_budget;
    build.cutoff = options.cutoff;
    unfolding = std::make_unique<unf::Unfolding>(unf::Unfolding::build(stg, build));
    result.unfold_stats = unfolding->stats();
    if (options.check_persistency) {
      const auto violations = segment_persistency_violations(*unfolding);
      if (!violations.empty()) {
        throw ImplementabilityError("the STG is not semi-modular: " +
                                    violations.front().describe(*unfolding));
      }
    }
  }
  result.unfold_seconds = phase.seconds();

  // Phase 2: derive correct on/off covers per signal (SynTim).
  phase.restart();
  struct Derived {
    Cover on{0};
    Cover off{0};
    Cover er_on{0};   // excitation-region covers for the latch architectures
    Cover er_off{0};
    bool exact_fallback = false;
    bool csc = false;
  };
  std::vector<Derived> derived;
  const bool need_er = options.architecture != Architecture::ComplexGate;

  for (const stg::SignalId s : targets) {
    Derived d;
    switch (options.method) {
      case Method::StateGraph: {
        d.on = sg::on_cover(*sgraph, s);
        d.off = sg::off_cover(*sgraph, s);
        if (need_er) {
          d.er_on = sg::er_cover(stg, *sgraph, s, true);
          d.er_off = sg::er_cover(stg, *sgraph, s, false);
        }
        break;
      }
      case Method::UnfoldingExact: {
        d.on = exact_cover(*unfolding, s, true, options.cut_budget);
        d.off = exact_cover(*unfolding, s, false, options.cut_budget);
        if (need_er) {
          d.er_on = exact_er_cover(*unfolding, s, true, options.cut_budget);
          d.er_off = exact_er_cover(*unfolding, s, false, options.cut_budget);
        }
        break;
      }
      case Method::UnfoldingApprox: {
        ApproxCover on = approximate_cover(*unfolding, s, true, options.approx_policy);
        ApproxCover off = approximate_cover(*unfolding, s, false, options.approx_policy);
        const RefineStats stats = refine_until_disjoint(*unfolding, on, off);
        result.refinement_iterations += stats.iterations;
        if (stats.disjoint) {
          d.on = on.combined(n);
          d.off = off.combined(n);
          if (need_er) {
            // The refined excitation atoms are the approximated ER covers.
            d.er_on = Cover(n);
            for (const CoverAtom& atom : on.atoms) {
              if (atom.element.is_event) d.er_on.add_all(atom.cover);
            }
            d.er_off = Cover(n);
            for (const CoverAtom& atom : off.atoms) {
              if (atom.element.is_event) d.er_off.add_all(atom.cover);
            }
            d.er_on.make_irredundant_scc();
            d.er_off.make_irredundant_scc();
          }
        } else {
          // Refinement stalled: restore exactness per slice (DESIGN.md §5).
          ++result.exact_fallbacks;
          d.exact_fallback = true;
          d.on = exact_cover(*unfolding, s, true, options.cut_budget);
          d.off = exact_cover(*unfolding, s, false, options.cut_budget);
          if (need_er) {
            d.er_on = exact_er_cover(*unfolding, s, true, options.cut_budget);
            d.er_off = exact_er_cover(*unfolding, s, false, options.cut_budget);
          }
        }
        break;
      }
    }
    if (d.on.intersects(d.off)) {
      // With exact covers a residual intersection is a genuine CSC conflict.
      const bool covers_exact =
          options.method != Method::UnfoldingApprox || d.exact_fallback;
      if (!covers_exact) {
        // Defensive: approximate covers reported disjoint cannot intersect;
        // reaching this line is a bug, not a property of the STG.
        throw ValidationError("internal error: refined covers intersect");
      }
      d.csc = true;
      if (options.throw_on_csc) {
        const Cover overlap = d.on.intersect(d.off);
        throw CscError("signal '" + stg.signal_name(s) +
                       "' has a Complete State Coding conflict: on- and "
                       "off-set share code(s) such as " +
                       (overlap.empty() ? "?" : overlap.cube(0).to_string()) +
                       "; insert a state signal and re-synthesise");
      }
    }
    derived.push_back(std::move(d));
  }
  result.derive_seconds = phase.seconds();

  // Phase 3: minimise and assemble per-architecture functions (EspTim).
  phase.restart();
  for (std::size_t i = 0; i < targets.size(); ++i) {
    SignalImplementation impl;
    impl.signal = targets[i];
    impl.on_cover = std::move(derived[i].on);
    impl.off_cover = std::move(derived[i].off);
    impl.used_exact_fallback = derived[i].exact_fallback;
    impl.csc_conflict = derived[i].csc;
    if (impl.csc_conflict) {
      result.signals.push_back(std::move(impl));
      continue;  // no correct gate exists; covers are still reported
    }
    if (options.architecture == Architecture::ComplexGate) {
      if (options.minimize) {
        logic::MinimizeStats stats_on;
        const Cover gate_on = logic::espresso(impl.on_cover, impl.off_cover, &stats_on);
        logic::MinimizeStats stats_off;
        const Cover gate_off = logic::espresso(impl.off_cover, impl.on_cover, &stats_off);
        // The paper implements whichever phase yields the simpler gate.
        if (gate_off.literal_count() < gate_on.literal_count()) {
          impl.gate = gate_off;
          impl.gate_covers_on = false;
          impl.min_stats = stats_off;
        } else {
          impl.gate = gate_on;
          impl.gate_covers_on = true;
          impl.min_stats = stats_on;
        }
      } else {
        impl.gate = tidy(impl.on_cover);
        impl.gate_covers_on = true;
      }
    } else {
      const Cover& er_on = derived[i].er_on;
      const Cover& er_off = derived[i].er_off;
      if (options.minimize) {
        logic::MinimizeStats stats_set;
        impl.set_function = logic::espresso(er_on, impl.off_cover, &stats_set);
        logic::MinimizeStats stats_reset;
        impl.reset_function = logic::espresso(er_off, impl.on_cover, &stats_reset);
        impl.min_stats = stats_set;
        impl.min_stats.final_literals += stats_reset.final_literals;
        impl.min_stats.initial_literals += stats_reset.initial_literals;
      } else {
        impl.set_function = tidy(er_on);
        impl.reset_function = tidy(er_off);
      }
    }
    result.signals.push_back(std::move(impl));
  }
  result.minimize_seconds = phase.seconds();
  result.total_seconds = total.seconds();
  return result;
}

}  // namespace punt::core
