#include "src/core/model_store.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <utility>

#include "src/sg/serialize.hpp"
#include "src/stg/serialize.hpp"
#include "src/unfolding/serialize.hpp"
#include "src/util/binio.hpp"
#include "src/util/error.hpp"

namespace punt::core {
namespace {

namespace fs = std::filesystem;

constexpr char kMagic[8] = {'P', 'U', 'N', 'T', 'M', 'O', 'D', 'L'};
constexpr std::size_t kHeaderBytes = sizeof kMagic + 4;  // magic + version
constexpr std::uint64_t kMaxTargets = 1u << 20;

std::string read_file_binary(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open '" + path.string() + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in && !in.eof()) throw Error("failed reading '" + path.string() + "'");
  return std::move(buffer).str();
}

}  // namespace

std::string serialize_model(const SemanticModel& model, const std::string& key) {
  util::BinaryWriter payload;
  payload.str(key);
  // The STG is serialised structurally (stg/serialize.hpp), not as `.g`
  // text: parse_g assigns transition ids in parse order, and the segment/SG
  // payloads below reference transitions by id.
  stg::write_stg(model.stg, payload);
  payload.u8(static_cast<std::uint8_t>(model.options.kind));
  payload.u8(model.options.check_persistency ? 1 : 0);
  payload.u64(model.options.state_budget);
  payload.u64(model.options.event_budget);
  payload.u8(static_cast<std::uint8_t>(model.options.cutoff));
  payload.u64(model.targets.size());
  for (const stg::SignalId target : model.targets) payload.u32(target.value);
  payload.f64(model.build_seconds);
  payload.u64(model.unfold_stats.events);
  payload.u64(model.unfold_stats.conditions);
  payload.u64(model.unfold_stats.cutoffs);
  payload.u64(model.sg_states);
  if (model.options.kind == ModelOptions::Kind::Unfolding) {
    if (model.unfolding == nullptr) {
      throw ValidationError("serialize_model: an Unfolding-kind model carries no segment");
    }
    unf::write_unfolding(*model.unfolding, payload);
  } else {
    if (model.sgraph == nullptr) {
      throw ValidationError("serialize_model: a StateGraph-kind model carries no graph");
    }
    sg::write_state_graph(*model.sgraph, payload);
  }

  util::BinaryWriter image;
  image.raw(std::string_view(kMagic, sizeof kMagic));
  image.u32(ModelStore::kFormatVersion);
  image.raw(payload.data());
  image.u64(util::fnv1a64(payload.data()));
  return image.take();
}

std::shared_ptr<const SemanticModel> deserialize_model(std::string_view image,
                                                       const std::string* expected_key) {
  if (image.size() < kHeaderBytes + 8) {
    throw ParseError("model image truncated: " + std::to_string(image.size()) +
                     " byte(s) cannot hold the header and checksum");
  }
  if (image.substr(0, sizeof kMagic) != std::string_view(kMagic, sizeof kMagic)) {
    throw ParseError("model image is not a punt model file (bad magic)");
  }
  const std::uint32_t version = util::BinaryReader(image.substr(sizeof kMagic, 4)).u32();
  if (version != ModelStore::kFormatVersion) {
    throw ParseError("model image has format version " + std::to_string(version) +
                     "; this build reads version " +
                     std::to_string(ModelStore::kFormatVersion));
  }
  const std::string_view payload =
      image.substr(kHeaderBytes, image.size() - kHeaderBytes - 8);
  util::BinaryReader trailer(image.substr(image.size() - 8));
  if (trailer.u64() != util::fnv1a64(payload)) {
    throw ParseError("model image checksum mismatch: the file is corrupt");
  }

  util::BinaryReader in(payload);
  const std::string key = in.str();
  if (expected_key != nullptr && key != *expected_key) return nullptr;

  auto model = std::make_shared<SemanticModel>();
  model->stg = stg::read_stg(in);
  model->options.kind = static_cast<ModelOptions::Kind>(in.u8());
  model->options.check_persistency = in.u8() != 0;
  model->options.state_budget = in.u64();
  model->options.event_budget = in.u64();
  model->options.cutoff = static_cast<unf::UnfoldOptions::CutoffPolicy>(in.u8());
  const std::size_t target_count = in.count(kMaxTargets, "target");
  model->targets.reserve(target_count);
  for (std::size_t t = 0; t < target_count; ++t) {
    const stg::SignalId target(in.u32());
    if (!target.valid() || target.index() >= model->stg.signal_count()) {
      throw ValidationError("model image corrupt: target signal " +
                            std::to_string(target.value) + " is outside the STG");
    }
    model->targets.push_back(target);
  }
  model->build_seconds = in.f64();
  model->unfold_stats.events = in.u64();
  model->unfold_stats.conditions = in.u64();
  model->unfold_stats.cutoffs = in.u64();
  model->sg_states = in.u64();
  if (model->options.kind == ModelOptions::Kind::Unfolding) {
    auto stg_copy = std::make_shared<const stg::Stg>(model->stg);
    model->unfolding = std::make_unique<const unf::Unfolding>(
        unf::read_unfolding(in, std::move(stg_copy)));
  } else if (model->options.kind == ModelOptions::Kind::StateGraph) {
    model->sgraph = std::make_unique<const sg::StateGraph>(
        sg::read_state_graph(in, model->stg));
  } else {
    throw ParseError("model image corrupt: unknown model kind " +
                     std::to_string(static_cast<int>(model->options.kind)));
  }
  if (!in.at_end()) {
    throw ParseError("model image corrupt: " + std::to_string(in.remaining()) +
                     " trailing byte(s) after the model payload");
  }
  return model;
}

ModelStore::ModelStore(std::string directory) : directory_(std::move(directory)) {
  std::random_device entropy;
  temp_token_ = (static_cast<std::uint64_t>(entropy()) << 32) ^ entropy();
}

std::string ModelStore::filename_of(const std::string& key) {
  char hash[17];
  std::snprintf(hash, sizeof hash, "%016llx",
                static_cast<unsigned long long>(util::fnv1a64(key)));
  return std::string(hash) + "-" + std::to_string(key.size()) + kFileSuffix;
}

std::shared_ptr<const SemanticModel> ModelStore::load(const std::string& key) {
  const fs::path path = fs::path(directory_) / filename_of(key);
  std::string image;
  try {
    image = read_file_binary(path);
  } catch (...) {
    // An absent file is the ordinary cold-cache miss; failing to read a
    // file that *exists* (EACCES, I/O error) is a load error — the
    // distinction points a debugging operator at file permissions instead
    // of at the cache key.
    std::error_code probe;
    const bool exists = fs::exists(path, probe);
    std::lock_guard<std::mutex> lock(mutex_);
    if (exists) {
      ++stats_.load_errors;
    } else {
      ++stats_.misses;
    }
    return nullptr;
  }
  try {
    std::shared_ptr<const SemanticModel> model = deserialize_model(image, &key);
    std::lock_guard<std::mutex> lock(mutex_);
    if (model == nullptr) {
      // A filename-hash collision with a different key: a miss by contract —
      // the full-text comparison makes a wrong hit impossible.
      ++stats_.misses;
    } else {
      ++stats_.hits;
    }
    return model;
  } catch (const std::exception&) {
    // Corrupt / truncated / version-mismatched file: rebuild rather than
    // fail — the cache is an accelerator, never a correctness dependency.
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.load_errors;
    return nullptr;
  }
}

bool ModelStore::store(const std::string& key, const SemanticModel& model) {
  std::uint64_t sequence = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    sequence = ++temp_counter_;
  }
  // Declared outside the try so the catch can clean up whatever temp file a
  // failed write (ENOSPC, RLIMIT_FSIZE, I/O error) left behind; the
  // rename-failure path used to be the only one that removed it, and the
  // throw on a short write leaked the half-written temp forever — invisible
  // to scan(), reclaimed only by purge().
  fs::path temp_path;
  try {
    const std::string image = serialize_model(model, key);
    fs::create_directories(directory_);
    const fs::path final_path = fs::path(directory_) / filename_of(key);
    // Unique temp name per store instance *and* per store call, so
    // concurrent shards (and concurrent builders within one process) never
    // clobber each other's half-written temp; rename() then publishes
    // atomically.  The random token covers processes whose pids coincide —
    // two containers mounting one shared cache directory both run as pid 1.
    char token[17];
    std::snprintf(token, sizeof token, "%016llx",
                  static_cast<unsigned long long>(temp_token_));
    temp_path = fs::path(directory_) /
        (filename_of(key) + ".tmp-" +
         std::to_string(static_cast<unsigned long>(::getpid())) + "-" + token + "-" +
         std::to_string(sequence));
    {
      std::ofstream out(temp_path, std::ios::binary | std::ios::trunc);
      if (!out) throw Error("cannot open temp file '" + temp_path.string() + "'");
      out.write(image.data(), static_cast<std::streamsize>(image.size()));
      // Flush before checking: ofstream buffers, so a short write (full
      // disk, file-size limit) may only surface at flush time — and a
      // failure the destructor would swallow must not let a truncated temp
      // get renamed over the final name.
      out.flush();
      if (!out) throw Error("failed writing '" + temp_path.string() + "'");
      out.close();
      if (out.fail()) throw Error("failed writing '" + temp_path.string() + "'");
    }
    std::error_code rename_error;
    fs::rename(temp_path, final_path, rename_error);
    if (rename_error) {
      throw Error("cannot publish '" + final_path.string() +
                  "': " + rename_error.message());
    }
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.stores;
    return true;
  } catch (const std::exception&) {
    if (!temp_path.empty()) {
      std::error_code ignored;  // best-effort: the failure already counts
      fs::remove(temp_path, ignored);
    }
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.store_failures;
    return false;
  }
}

ModelStoreStats ModelStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::vector<StoredModelInfo> ModelStore::scan(const std::string& directory) {
  std::vector<StoredModelInfo> entries;
  std::error_code listing_error;
  fs::directory_iterator it(directory, listing_error);
  if (listing_error) {
    // A directory that cannot be *listed* (nonexistent — a typo'd
    // --model-cache-dir — or EACCES) must not masquerade as an empty cache:
    // `punt cache stats` would report zero models and exit 0, hiding the
    // typo.  An existing-but-empty directory iterates cleanly and stays an
    // empty inventory.
    throw Error("cannot list model cache directory '" + directory +
                "': " + listing_error.message());
  }
  for (const fs::directory_entry& entry : it) {
    if (!entry.is_regular_file() || entry.path().extension() != kFileSuffix) continue;
    StoredModelInfo info;
    info.file = entry.path().filename().string();
    std::error_code size_error;
    info.bytes = entry.file_size(size_error);
    if (size_error) info.bytes = 0;  // e.g. the file vanished under a racing purge
    try {
      const std::shared_ptr<const SemanticModel> model =
          deserialize_model(read_file_binary(entry.path()), nullptr);
      info.ok = true;
      info.model = model->stg.name();
      if (model->options.kind == ModelOptions::Kind::Unfolding) {
        info.kind = "unfolding";
        info.events = model->unfold_stats.events;
      } else {
        info.kind = "state-graph";
        info.states = model->sg_states;
      }
    } catch (const std::exception& e) {
      info.error = e.what();
    }
    entries.push_back(std::move(info));
  }
  std::sort(entries.begin(), entries.end(),
            [](const StoredModelInfo& a, const StoredModelInfo& b) {
              return a.file < b.file;
            });
  return entries;
}

std::size_t ModelStore::purge(const std::string& directory) {
  std::size_t removed = 0;
  std::error_code listing_error;
  fs::directory_iterator it(directory, listing_error);
  if (listing_error) {
    // Same contract as scan(): purging a directory that cannot be listed is
    // an error the operator must see, not a successful no-op.
    throw Error("cannot list model cache directory '" + directory +
                "': " + listing_error.message());
  }
  const std::string temp_marker = std::string(kFileSuffix) + ".tmp-";
  for (const fs::directory_entry& entry : it) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    // Published models, plus temp files leaked by writers that died between
    // open and rename (a killed CI shard) — those would otherwise
    // accumulate forever, invisible to scan().
    const bool model = entry.path().extension() == kFileSuffix;
    const bool stale_temp = name.find(temp_marker) != std::string::npos;
    if (!model && !stale_temp) continue;
    std::error_code remove_error;
    if (fs::remove(entry.path(), remove_error)) ++removed;
  }
  return removed;
}

}  // namespace punt::core
