#include "src/core/csc_resolve.hpp"

#include <algorithm>

#include "src/stg/g_format.hpp"
#include "src/util/error.hpp"

namespace punt::core {
namespace {

/// Splices `edge` directly after `t`: t keeps one fresh output place feeding
/// `edge`, which inherits t's former postset.
void splice_after(stg::Stg& stg, pn::TransitionId t, pn::TransitionId edge,
                  const std::string& place_name) {
  pn::PetriNet& net = stg.net();
  const std::vector<pn::PlaceId> old_post = net.post(t);  // copy before surgery
  const pn::PlaceId p = net.add_place(place_name);
  for (const pn::PlaceId q : old_post) {
    net.remove_arc(t, q);
    net.add_arc(edge, q);
  }
  net.add_arc(t, p);
  net.add_arc(p, edge);
}

}  // namespace

stg::SignalId insert_state_signal(stg::Stg& stg, const std::string& rise_after,
                                  const std::string& fall_after,
                                  const std::string& name) {
  const auto rise_site = stg.net().find_transition(rise_after);
  if (!rise_site) throw ValidationError("unknown transition '" + rise_after + "'");
  const auto fall_site = stg.net().find_transition(fall_after);
  if (!fall_site) throw ValidationError("unknown transition '" + fall_after + "'");
  if (*rise_site == *fall_site) {
    throw ValidationError("rise and fall insertion points must differ");
  }

  std::string signal_name = name;
  if (signal_name.empty()) {
    std::size_t k = 0;
    while (stg.find_signal("csc" + std::to_string(k)).has_value()) ++k;
    signal_name = "csc" + std::to_string(k);
  }
  const stg::SignalId csc = stg.add_signal(signal_name, stg::SignalKind::Internal);
  const pn::TransitionId up = stg.add_transition(csc, stg::Polarity::Rise);
  const pn::TransitionId dn = stg.add_transition(csc, stg::Polarity::Fall);
  splice_after(stg, *rise_site, up, signal_name + "_r");
  splice_after(stg, *fall_site, dn, signal_name + "_f");

  // The initial value follows from which edge is reachable first; reuse the
  // parser's inference, which explores only until every signal is resolved.
  const stg::Code inferred = stg::infer_initial_code(stg, 200000);
  stg.set_initial_value(csc, inferred[csc.index()]);
  stg.validate();
  return csc;
}

std::optional<CscResolution> resolve_csc(const stg::Stg& stg,
                                         const SynthesisOptions& options) {
  SynthesisOptions probe = options;
  probe.throw_on_csc = false;

  // Already clean?  Nothing to insert.
  {
    const SynthesisResult result = synthesize(stg, probe);
    const bool conflicted = std::any_of(result.signals.begin(), result.signals.end(),
                                        [](const auto& s) { return s.csc_conflict; });
    if (!conflicted) {
      CscResolution res;
      res.stg = stg;
      res.signals_added = 0;
      return res;
    }
  }

  // Candidate splice sites: every transition of the STG, tried pairwise.
  std::vector<std::string> sites;
  for (std::size_t i = 0; i < stg.net().transition_count(); ++i) {
    sites.push_back(stg.net().transition_name(pn::TransitionId(static_cast<std::uint32_t>(i))));
  }
  constexpr std::size_t kMaxAttempts = 600;
  std::size_t attempts = 0;
  for (const std::string& rise : sites) {
    for (const std::string& fall : sites) {
      if (rise == fall) continue;
      if (++attempts > kMaxAttempts) return std::nullopt;
      stg::Stg candidate = stg;
      try {
        insert_state_signal(candidate, rise, fall);
        const SynthesisResult result = synthesize(candidate, probe);
        const bool conflicted =
            std::any_of(result.signals.begin(), result.signals.end(),
                        [](const auto& s) { return s.csc_conflict; });
        if (conflicted) continue;
      } catch (const Error&) {
        continue;  // inconsistent / non-persistent / unbounded candidate
      }
      CscResolution res;
      res.stg = std::move(candidate);
      res.rise_after = rise;
      res.fall_after = fall;
      res.signals_added = 1;
      return res;
    }
  }
  return std::nullopt;
}

}  // namespace punt::core
