// CSC conflict resolution by state-signal insertion.
//
// When two reachable states share a binary code but imply different output
// behaviour, the paper prescribes "changing the specification, e.g. by
// inserting additional signals" (§2.1, §4.3).  This module implements the
// standard mechanism: a fresh internal signal `cscN` whose rising edge is
// spliced after one transition and whose falling edge after another, so the
// two conflicting regions see different values of the new signal.
//
// Splicing after transition t: t's postset places are handed to the new
// edge, and a fresh place connects t to it —
//     t -> p_new -> csc± -> (former postset of t)
// This delays t's successors until the state signal has toggled, which is
// exactly the conservative sequencing a real implementation needs (the new
// signal must settle before the conflicting continuations diverge).
//
// Insertion-point *search* is provided in a simple greedy form: try splice
// pairs drawn from the conflicting states' enabled/fired transitions until
// the STG synthesises cleanly.  It solves textbook conflicts (the VME bus);
// pathological specs may still need a manual choice of insertion points.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/core/synthesis.hpp"
#include "src/stg/stg.hpp"

namespace punt::core {

/// Splices a fresh internal signal into `stg`: its rising edge directly
/// after `rise_after`, its falling edge directly after `fall_after` (both
/// named by transition, e.g. "lds+", "d-").  Returns the id of the new
/// signal.  Throws ValidationError for unknown transitions.
stg::SignalId insert_state_signal(stg::Stg& stg, const std::string& rise_after,
                                  const std::string& fall_after,
                                  const std::string& name = "");

struct CscResolution {
  stg::Stg stg;                  // the modified specification
  std::string rise_after;        // chosen splice points
  std::string fall_after;
  std::size_t signals_added = 1;
};

/// Attempts to repair all CSC conflicts of `stg` by inserting one state
/// signal (greedy search over splice-point pairs, verified by re-running
/// synthesis).  Returns nullopt when no single-signal insertion in the
/// candidate set works.
std::optional<CscResolution> resolve_csc(const stg::Stg& stg,
                                         const SynthesisOptions& options = {});

}  // namespace punt::core
