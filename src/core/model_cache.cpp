#include "src/core/model_cache.hpp"

#include <utility>

#include "src/core/model_store.hpp"
#include "src/stg/g_format.hpp"
#include "src/util/strings.hpp"

namespace punt::core {

ModelCacheStats delta_stats(const ModelCacheStats& before, const ModelCacheStats& after) {
  ModelCacheStats delta;
  delta.hits = after.hits - before.hits;
  delta.misses = after.misses - before.misses;
  delta.builds = after.builds - before.builds;
  delta.evictions = after.evictions - before.evictions;
  delta.failed_builds = after.failed_builds - before.failed_builds;
  delta.saved_seconds = after.saved_seconds - before.saved_seconds;
  delta.disk_hits = after.disk_hits - before.disk_hits;
  delta.disk_misses = after.disk_misses - before.disk_misses;
  delta.disk_load_errors = after.disk_load_errors - before.disk_load_errors;
  delta.disk_stores = after.disk_stores - before.disk_stores;
  delta.disk_store_failures = after.disk_store_failures - before.disk_store_failures;
  delta.in_flight = after.in_flight;  // gauges: a difference is meaningless
  delta.resident = after.resident;
  return delta;
}

std::string summarize(const ModelCacheStats& s) {
  const std::string failed =
      s.failed_builds == 0 ? std::string()
                           : " (" + std::to_string(s.failed_builds) + " failed)";
  return printf_string(
      "model cache: %zu lookup(s): %zu memory hit(s), %zu disk hit(s), "
      "%zu rebuild(s)%s; saved %.3fs; disk: %zu stored, %zu load error(s), "
      "%zu store failure(s)\n",
      s.hits + s.misses, s.hits, s.disk_hits, s.builds, failed.c_str(),
      s.saved_seconds, s.disk_stores, s.disk_load_errors, s.disk_store_failures);
}

ModelCache::ModelCache(std::size_t capacity, std::shared_ptr<ModelStore> store)
    : capacity_(capacity == 0 ? 1 : capacity), store_(std::move(store)) {}

std::string ModelCache::key_of(const stg::Stg& stg, const SynthesisOptions& options) {
  // write_g pins .init_values, so the text is a complete, canonical digest of
  // the model's input; '\x1f' (unit separator) cannot occur in `.g` text and
  // keeps the two key parts from bleeding into each other.
  return stg::write_g(stg) + '\x1f' + ModelOptions::from(options).fingerprint();
}

std::shared_ptr<const SemanticModel> ModelCache::lookup_or_build(
    const stg::Stg& stg, const SynthesisOptions& options, bool* built) {
  return lookup_or_build_keyed(
      key_of(stg, options), [&] { return SemanticModel::build(stg, options); }, built);
}

void ModelCache::evict_to_capacity_locked(const std::string* protect) {
  // Residency counts in-flight builds too (they hold memory just as
  // completed models do), but only completed entries can be evicted: a
  // build in flight has waiters holding its future.  With more than
  // `capacity` builds running at once the bound is therefore exceeded
  // transiently — and truthfully reported via size() / stats().  `protect`
  // pins a just-published key: when older in-flight slots occupy the whole
  // capacity, the freshly completed model must not be the victim — evicting
  // it would make the cache refuse to retain anything under sustained
  // over-capacity concurrency.
  while (slots_.size() > capacity_ && !lru_.empty()) {
    if (protect != nullptr && lru_.back() == *protect) break;
    slots_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.evictions;
  }
}

std::shared_ptr<const SemanticModel> ModelCache::lookup_or_build_keyed(
    const std::string& key, const Builder& build, bool* built) {
  if (built != nullptr) *built = false;

  std::promise<std::shared_ptr<const SemanticModel>> promise;
  ModelFuture pending;
  bool builder = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = slots_.find(key);
    if (it != slots_.end()) {
      if (it->second.ready) {
        ++stats_.hits;
        lru_.splice(lru_.begin(), lru_, it->second.lru);  // touch
        std::shared_ptr<const SemanticModel> model = it->second.future.get();
        stats_.saved_seconds += model->build_seconds;
        return model;
      }
      // In flight: someone else is building this model right now.  Joining
      // counts as a hit only once the build succeeds (the model is not
      // built a second time), and does not credit saved_seconds — the
      // joiner waits out the whole build rather than skipping it.
      pending = it->second.future;
    } else {
      ++stats_.misses;
      builder = true;
      Slot slot;
      slot.future = promise.get_future().share();
      slot.lru = lru_.end();
      slots_.emplace(key, std::move(slot));
      // The new in-flight slot occupies residency now, so make room now —
      // waiting for publish would let N concurrent distinct-key builds grow
      // the map unboundedly past the capacity the caller configured.
      evict_to_capacity_locked();
    }
  }

  if (!builder) {
    // Blocks until the builder finishes; rethrows its exception on failure
    // (a failed join is counted by the builder's failed_builds, not here).
    std::shared_ptr<const SemanticModel> model = pending.get();
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.hits;
    return model;
  }

  // Resolve outside the lock: disk loads and model construction are the
  // expensive part and other keys must stay usable meanwhile.
  std::shared_ptr<const SemanticModel> model;
  bool from_disk = false;
  if (store_ != nullptr) {
    model = store_->load(key);
    from_disk = model != nullptr;
  }
  if (!from_disk) {
    if (built != nullptr) *built = true;
    try {
      model = build();
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.failed_builds;
        slots_.erase(key);  // later lookups retry instead of caching the error
      }
      promise.set_exception(std::current_exception());
      throw;
    }
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (from_disk) {
      // A disk hit skips the whole phase-1 build — credit what it saved.
      stats_.saved_seconds += model->build_seconds;
    } else {
      ++stats_.builds;
    }
    Slot& slot = slots_[key];
    lru_.push_front(key);
    slot.lru = lru_.begin();
    slot.ready = true;
    evict_to_capacity_locked(&key);
  }
  // Unblock the waiters before touching the disk: the model is usable the
  // moment it exists, and the persist is best-effort bookkeeping (an
  // unwritable directory just forfeits the disk tier for this model).
  // The builder pays the write, exactly as it paid the build.
  promise.set_value(model);
  if (!from_disk && store_ != nullptr) (void)store_->store(key, *model);
  return model;
}

ModelCacheStats ModelCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ModelCacheStats stats = stats_;
  stats.resident = slots_.size();
  stats.in_flight = slots_.size() - lru_.size();
  if (store_ != nullptr) {
    const ModelStoreStats disk = store_->stats();
    stats.disk_hits = disk.hits;
    stats.disk_misses = disk.misses;
    stats.disk_load_errors = disk.load_errors;
    stats.disk_stores = disk.stores;
    stats.disk_store_failures = disk.store_failures;
  }
  return stats;
}

std::size_t ModelCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return slots_.size();
}

void ModelCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  // In-flight builds are kept: their builders still hold promises into the
  // map and waiters hold their futures; only completed entries are dropped.
  for (auto it = slots_.begin(); it != slots_.end();) {
    it = it->second.ready ? slots_.erase(it) : std::next(it);
  }
  lru_.clear();
}

}  // namespace punt::core
