#include "src/core/model_cache.hpp"

#include <utility>

#include "src/stg/g_format.hpp"

namespace punt::core {

ModelCache::ModelCache(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

std::string ModelCache::key_of(const stg::Stg& stg, const SynthesisOptions& options) {
  // write_g pins .init_values, so the text is a complete, canonical digest of
  // the model's input; '\x1f' (unit separator) cannot occur in `.g` text and
  // keeps the two key parts from bleeding into each other.
  return stg::write_g(stg) + '\x1f' + ModelOptions::from(options).fingerprint();
}

std::shared_ptr<const SemanticModel> ModelCache::lookup_or_build(
    const stg::Stg& stg, const SynthesisOptions& options, bool* built) {
  const std::string key = key_of(stg, options);
  if (built != nullptr) *built = false;

  std::promise<std::shared_ptr<const SemanticModel>> promise;
  ModelFuture pending;
  bool builder = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = slots_.find(key);
    if (it != slots_.end()) {
      if (it->second.ready) {
        ++stats_.hits;
        lru_.splice(lru_.begin(), lru_, it->second.lru);  // touch
        std::shared_ptr<const SemanticModel> model = it->second.future.get();
        stats_.saved_seconds += model->build_seconds;
        return model;
      }
      // In flight: someone else is building this model right now.  Joining
      // counts as a hit only once the build succeeds (the model is not
      // built a second time), and does not credit saved_seconds — the
      // joiner waits out the whole build rather than skipping it.
      pending = it->second.future;
    } else {
      ++stats_.misses;
      builder = true;
      Slot slot;
      slot.future = promise.get_future().share();
      slot.lru = lru_.end();
      slots_.emplace(key, std::move(slot));
    }
  }

  if (!builder) {
    // Blocks until the builder finishes; rethrows its exception on failure
    // (a failed join is counted by the builder's failed_builds, not here).
    std::shared_ptr<const SemanticModel> model = pending.get();
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.hits;
    return model;
  }

  // Build outside the lock: model construction is the expensive part and
  // other keys must stay usable meanwhile.
  if (built != nullptr) *built = true;
  std::shared_ptr<const SemanticModel> model;
  try {
    model = SemanticModel::build(stg, options);
  } catch (...) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.failed_builds;
      slots_.erase(key);  // later lookups retry instead of caching the error
    }
    promise.set_exception(std::current_exception());
    throw;
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    Slot& slot = slots_[key];
    lru_.push_front(key);
    slot.lru = lru_.begin();
    slot.ready = true;
    while (lru_.size() > capacity_) {
      slots_.erase(lru_.back());
      lru_.pop_back();
      ++stats_.evictions;
    }
  }
  promise.set_value(model);
  return model;
}

ModelCacheStats ModelCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t ModelCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

void ModelCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  // In-flight builds are kept: their builders still hold promises into the
  // map and waiters hold their futures; only completed entries are dropped.
  for (auto it = slots_.begin(); it != slots_.end();) {
    it = it->second.ready ? slots_.erase(it) : std::next(it);
  }
  lru_.clear();
}

}  // namespace punt::core
