#include "src/core/pipeline.hpp"

#include <algorithm>
#include <exception>
#include <unordered_map>
#include <utility>

#include "src/core/approx.hpp"
#include "src/core/cost_ledger.hpp"
#include "src/core/model_cache.hpp"
#include "src/core/slices.hpp"
#include "src/sg/analysis.hpp"
#include "src/util/error.hpp"

namespace punt::core {
namespace {

using logic::Cover;

/// Raw (unminimised) single-cube-containment cleanup used when the caller
/// disables espresso.
Cover tidy(Cover cover) {
  cover.make_irredundant_scc();
  return cover;
}

/// Dispatch priorities: among simultaneously-ready nodes, models go first
/// (distinct keys ahead of in-batch repeats), then derive ahead of minimize
/// so the graph widens before it deepens; assembly last.
constexpr int kPriorityModel = 0;
constexpr int kPriorityModelRepeat = 1;
constexpr int kPriorityDerive = 2;
constexpr int kPriorityMinimize = 3;
constexpr int kPriorityAssembly = 4;

}  // namespace

// --- Stage 1: shared semantic model ------------------------------------------

ModelOptions ModelOptions::from(const SynthesisOptions& options) {
  ModelOptions model;
  model.kind = options.method == Method::StateGraph ? Kind::StateGraph : Kind::Unfolding;
  model.check_persistency = options.check_persistency;
  model.state_budget = options.state_budget;
  model.event_budget = options.event_budget;
  model.cutoff = options.cutoff;
  return model;
}

std::string ModelOptions::fingerprint() const {
  // Only the fields that shape a model of this kind participate, so e.g.
  // two unfolding runs that differ in the (StateGraph-only) state_budget
  // still share one cache entry.
  std::string text = kind == Kind::StateGraph ? "sg" : "unf";
  text += check_persistency ? ";persist=1" : ";persist=0";
  if (kind == Kind::StateGraph) {
    text += ";states=" + std::to_string(state_budget);
  } else {
    text += ";events=" + std::to_string(event_budget);
    text += ";cutoff=" + std::to_string(static_cast<int>(cutoff));
  }
  return text;
}

std::shared_ptr<const SemanticModel> SemanticModel::build(
    const stg::Stg& stg, const SynthesisOptions& options) {
  Stopwatch phase;
  auto model = std::make_shared<SemanticModel>();
  model->stg = stg;  // owned copy: ids are preserved, lifetime is not shared
  model->options = ModelOptions::from(options);

  const stg::Stg& own = model->stg;
  own.validate();
  if (own.has_dummies()) {
    throw ImplementabilityError(
        "the STG contains dummy transitions; the synthesis method of the "
        "paper requires every transition to carry a signal edge");
  }
  model->targets = own.non_input_signals();

  if (model->options.kind == ModelOptions::Kind::StateGraph) {
    sg::BuildOptions build;
    build.state_budget = options.state_budget;
    model->sgraph = std::make_unique<const sg::StateGraph>(sg::StateGraph::build(own, build));
    model->sg_states = model->sgraph->state_count();
    if (options.check_persistency) {
      const auto violations = sg::persistency_violations(own, *model->sgraph);
      if (!violations.empty()) {
        throw ImplementabilityError("the STG is not semi-modular: " +
                                    violations.front().describe(own));
      }
    }
  } else {
    unf::UnfoldOptions build;
    build.event_budget = options.event_budget;
    build.cutoff = options.cutoff;
    model->unfolding =
        std::make_unique<const unf::Unfolding>(unf::Unfolding::build(own, build));
    model->unfold_stats = model->unfolding->stats();
    if (options.check_persistency) {
      const auto violations = segment_persistency_violations(*model->unfolding);
      if (!violations.empty()) {
        throw ImplementabilityError("the STG is not semi-modular: " +
                                    violations.front().describe(*model->unfolding));
      }
    }
  }
  model->build_seconds = phase.seconds();
  return model;
}

PipelineContext PipelineContext::build(const stg::Stg& stg,
                                       const SynthesisOptions& options,
                                       ModelCache* cache, const std::string* key) {
  Stopwatch resolve;
  PipelineContext context;
  context.options = options;
  if (cache != nullptr) {
    bool built = false;
    if (key != nullptr) {
      context.model = cache->lookup_or_build_keyed(
          *key, [&] { return SemanticModel::build(stg, options); }, &built);
    } else {
      context.model = cache->lookup_or_build(stg, options, &built);
    }
    context.model_from_cache = !built;
  } else {
    context.model = SemanticModel::build(stg, options);
  }
  context.model_seconds = resolve.seconds();
  return context;
}

// --- Phase 2: one signal's covers (DeriveTask) --------------------------------

void DeriveTask::run(const PipelineContext& context) {
  if (!context.model) {
    throw ValidationError(
        "DeriveTask::run called on a PipelineContext without a model");
  }
  const SemanticModel& model = *context.model;
  const stg::Stg& stg = model.stg;
  const SynthesisOptions& options = context.options;
  const std::size_t n = stg.signal_count();
  const bool need_er = options.architecture != Architecture::ComplexGate;
  const stg::SignalId s = signal;

  impl.signal = s;
  impl.name = stg.signal_name(s);

  // Derive correct on/off covers (this signal's share of SynTim).
  // CPU time, not wall time: summed task times must measure work even when
  // the executor oversubscribes the machine.
  ThreadCpuStopwatch phase;
  switch (options.method) {
    case Method::StateGraph: {
      impl.on_cover = sg::on_cover(*model.sgraph, s);
      impl.off_cover = sg::off_cover(*model.sgraph, s);
      if (need_er) {
        er_on = sg::er_cover(stg, *model.sgraph, s, true);
        er_off = sg::er_cover(stg, *model.sgraph, s, false);
      }
      break;
    }
    case Method::UnfoldingExact: {
      const unf::Unfolding& unf = *model.unfolding;
      impl.on_cover = exact_cover(unf, s, true, options.cut_budget);
      impl.off_cover = exact_cover(unf, s, false, options.cut_budget);
      if (need_er) {
        er_on = exact_er_cover(unf, s, true, options.cut_budget);
        er_off = exact_er_cover(unf, s, false, options.cut_budget);
      }
      break;
    }
    case Method::UnfoldingApprox: {
      const unf::Unfolding& unf = *model.unfolding;
      ApproxCover on = approximate_cover(unf, s, true, options.approx_policy);
      ApproxCover off = approximate_cover(unf, s, false, options.approx_policy);
      const RefineStats stats = refine_until_disjoint(unf, on, off);
      refinement_iterations += stats.iterations;
      if (stats.disjoint) {
        impl.on_cover = on.combined(n);
        impl.off_cover = off.combined(n);
        if (need_er) {
          // The refined excitation atoms are the approximated ER covers.
          er_on = Cover(n);
          for (const CoverAtom& atom : on.atoms) {
            if (atom.element.is_event) er_on.add_all(atom.cover);
          }
          er_off = Cover(n);
          for (const CoverAtom& atom : off.atoms) {
            if (atom.element.is_event) er_off.add_all(atom.cover);
          }
          er_on.make_irredundant_scc();
          er_off.make_irredundant_scc();
        }
      } else {
        // Refinement stalled: restore exactness per slice (DESIGN.md §5).
        ++exact_fallbacks;
        impl.used_exact_fallback = true;
        impl.on_cover = exact_cover(unf, s, true, options.cut_budget);
        impl.off_cover = exact_cover(unf, s, false, options.cut_budget);
        if (need_er) {
          er_on = exact_er_cover(unf, s, true, options.cut_budget);
          er_off = exact_er_cover(unf, s, false, options.cut_budget);
        }
      }
      break;
    }
  }
  if (impl.on_cover.intersects(impl.off_cover)) {
    // With exact covers a residual intersection is a genuine CSC conflict.
    const bool covers_exact =
        options.method != Method::UnfoldingApprox || impl.used_exact_fallback;
    if (!covers_exact) {
      // Defensive: approximate covers reported disjoint cannot intersect;
      // reaching this line is a bug, not a property of the STG.
      throw ValidationError("internal error: refined covers intersect");
    }
    impl.csc_conflict = true;
    if (options.throw_on_csc) {
      const Cover overlap = impl.on_cover.intersect(impl.off_cover);
      throw CscError("signal '" + impl.name +
                     "' has a Complete State Coding conflict: on- and "
                     "off-set share code(s) such as " +
                     (overlap.empty() ? "?" : overlap.cube(0).to_string()) +
                     "; insert a state signal and re-synthesise");
    }
  }
  derive_seconds = phase.seconds();
}

// --- Phase 3: one signal's minimisation (MinimizeTask) ------------------------

void MinimizeTask::run(const PipelineContext& context, DeriveTask& derive) {
  SignalImplementation& impl = derive.impl;
  if (impl.csc_conflict) return;  // no correct gate exists; covers reported
  const SynthesisOptions& options = context.options;

  ThreadCpuStopwatch phase;
  if (options.architecture == Architecture::ComplexGate) {
    if (options.minimize) {
      logic::MinimizeStats stats_on;
      const Cover gate_on = logic::espresso(impl.on_cover, impl.off_cover, &stats_on);
      logic::MinimizeStats stats_off;
      const Cover gate_off = logic::espresso(impl.off_cover, impl.on_cover, &stats_off);
      // The paper implements whichever phase yields the simpler gate.
      if (gate_off.literal_count() < gate_on.literal_count()) {
        impl.gate = gate_off;
        impl.gate_covers_on = false;
        impl.min_stats = stats_off;
      } else {
        impl.gate = gate_on;
        impl.gate_covers_on = true;
        impl.min_stats = stats_on;
      }
    } else {
      impl.gate = tidy(impl.on_cover);
      impl.gate_covers_on = true;
    }
  } else {
    if (options.minimize) {
      logic::MinimizeStats stats_set;
      impl.set_function = logic::espresso(derive.er_on, impl.off_cover, &stats_set);
      logic::MinimizeStats stats_reset;
      impl.reset_function = logic::espresso(derive.er_off, impl.on_cover, &stats_reset);
      // Aggregate *every* field across the set and reset runs; the seed
      // summed only the literal counts and silently kept set-phase values
      // for the rest.
      impl.min_stats = stats_set;
      impl.min_stats.initial_cubes += stats_reset.initial_cubes;
      impl.min_stats.initial_literals += stats_reset.initial_literals;
      impl.min_stats.final_cubes += stats_reset.final_cubes;
      impl.min_stats.final_literals += stats_reset.final_literals;
      impl.min_stats.iterations += stats_reset.iterations;
    } else {
      impl.set_function = tidy(derive.er_on);
      impl.reset_function = tidy(derive.er_off);
    }
  }
  minimize_seconds = phase.seconds();
}

// --- Executor -----------------------------------------------------------------

Executor::Executor(std::size_t jobs)
    : jobs_(jobs == 0 ? util::ThreadPool::hardware_default() : jobs) {}

Executor::~Executor() = default;

void Executor::run(util::TaskGraph& graph) {
  if (jobs_ <= 1) {
    graph.execute_inline();
    return;
  }
  // call_once so concurrent first runs (daemon requests arriving together on
  // a freshly started server) race to create exactly one pool; after that,
  // any number of graphs execute over it concurrently (TaskGraph contract).
  std::call_once(pool_once_, [this] { pool_ = std::make_unique<util::ThreadPool>(jobs_); });
  graph.execute(*pool_);
}

// --- Graph emission + batch front end -----------------------------------------

std::size_t BatchResult::literal_count() const {
  std::size_t n = 0;
  for (const BatchEntry& entry : entries) {
    if (entry.ok) n += entry.result.literal_count();
  }
  return n;
}

namespace {

/// The per-entry state the graph nodes write into.  Slots are preallocated
/// before execution (one derive/minimize pair per target signal — targets
/// are a property of the STG alone, so they are known before the model is
/// built) and must not move while the graph runs.
struct EntryPlan {
  const stg::Stg* stg = nullptr;
  std::string cache_key;               // ModelCache::key_of ("" when neither a
                                       // cache nor a ledger needs it)
  PipelineContext context;             // filled by the model node
  std::vector<DeriveTask> derive;      // one slot per target signal
  std::vector<MinimizeTask> minimize;  // parallel to `derive`
  SynthesisResult result;              // filled by the assembly node

  // Ledger identities of this entry's nodes (filled only with a ledger):
  // looked up for dispatch estimates before the run, observed into after it.
  std::string model_cost_key;
  std::vector<std::string> derive_cost_keys;    // parallel to `derive`
  std::vector<std::string> minimize_cost_keys;  // parallel to `minimize`

  util::TaskGraph::NodeId model_node = 0;
  std::vector<util::TaskGraph::NodeId> derive_nodes;
  std::vector<util::TaskGraph::NodeId> minimize_nodes;
  util::TaskGraph::NodeId assembly_node = 0;
  /// For an in-batch key repeat: the first builder's model node.  When that
  /// build fails, this entry's whole cone is cancelled and the primary's
  /// exception is the diagnostic (identical text — the build is
  /// deterministic — so repeats report what their own build would have).
  bool has_primary = false;
  util::TaskGraph::NodeId primary_model_node = 0;
};

/// Emits one entry's nodes: model → per-signal derive → per-signal minimize
/// → assembly.  `model_dep` chains an in-batch key repeat behind the first
/// builder's model node (distinct-key-first scheduling).  With a ledger, each
/// node carries its learned cost estimate — longest-task-first within its
/// priority band; without one (or on a cold ledger) every estimate is 0 and
/// the order is exactly the static (priority, id) schedule.
void emit_entry(util::TaskGraph& graph, EntryPlan& plan,
                const SynthesisOptions& options, ModelCache* cache,
                const CostLedger* ledger, bool repeat_key,
                std::vector<util::TaskGraph::NodeId> model_deps) {
  const stg::Stg& stg = *plan.stg;
  const std::string name = stg.name();
  const std::vector<stg::SignalId> targets = stg.non_input_signals();

  plan.derive.resize(targets.size());
  plan.minimize.resize(targets.size());
  plan.derive_nodes.reserve(targets.size());
  plan.minimize_nodes.reserve(targets.size());
  for (std::size_t k = 0; k < targets.size(); ++k) plan.derive[k].signal = targets[k];

  if (ledger != nullptr) {
    // plan.cache_key was computed by the caller whenever a ledger is given.
    const std::uint64_t model = CostLedger::model_digest_from_key(plan.cache_key);
    const std::uint64_t entry = CostLedger::entry_digest_from_key(plan.cache_key, options);
    plan.model_cost_key = CostLedger::key_of("model", model);
    plan.derive_cost_keys.reserve(targets.size());
    plan.minimize_cost_keys.reserve(targets.size());
    for (const stg::SignalId s : targets) {
      plan.derive_cost_keys.push_back(CostLedger::key_of("derive", entry, stg.signal_name(s)));
      plan.minimize_cost_keys.push_back(
          CostLedger::key_of("minimize", entry, stg.signal_name(s)));
    }
  }
  const auto cost = [&](const std::string& key) {
    return ledger != nullptr ? ledger->estimate(key) : 0.0;
  };

  plan.model_node = graph.add(
      "model", name, repeat_key ? kPriorityModelRepeat : kPriorityModel,
      cost(plan.model_cost_key), std::move(model_deps),
      [&plan, &stg, options, cache] {
        plan.context = PipelineContext::build(
            stg, options, cache, plan.cache_key.empty() ? nullptr : &plan.cache_key);
      });

  std::vector<util::TaskGraph::NodeId> assembly_deps;
  assembly_deps.reserve(targets.size() + 1);
  assembly_deps.push_back(plan.model_node);
  for (std::size_t k = 0; k < targets.size(); ++k) {
    const std::string signal_label = name + "/" + stg.signal_name(targets[k]);
    DeriveTask& derive = plan.derive[k];
    MinimizeTask& minimize = plan.minimize[k];
    const auto derive_node = graph.add(
        "derive", signal_label, kPriorityDerive,
        ledger != nullptr ? cost(plan.derive_cost_keys[k]) : 0.0,
        {plan.model_node}, [&plan, &derive] { derive.run(plan.context); });
    const auto minimize_node = graph.add(
        "minimize", signal_label, kPriorityMinimize,
        ledger != nullptr ? cost(plan.minimize_cost_keys[k]) : 0.0,
        {derive_node},
        [&plan, &derive, &minimize] { minimize.run(plan.context, derive); });
    plan.derive_nodes.push_back(derive_node);
    plan.minimize_nodes.push_back(minimize_node);
    assembly_deps.push_back(minimize_node);
  }

  plan.assembly_node =
      graph.add("assembly", name, kPriorityAssembly, std::move(assembly_deps), [&plan] {
        const SemanticModel& model = *plan.context.model;
        SynthesisResult& result = plan.result;
        result.method = plan.context.options.method;
        result.architecture = plan.context.options.architecture;
        // UnfTim always reports the model's (one-time) construction cost,
        // even when this entry got the model from a cache.
        result.unfold_seconds = model.build_seconds;
        result.unfold_stats = model.unfold_stats;
        result.sg_states = model.sg_states;
        result.signals.reserve(plan.derive.size());
        for (std::size_t k = 0; k < plan.derive.size(); ++k) {
          DeriveTask& derive = plan.derive[k];
          result.refinement_iterations += derive.refinement_iterations;
          result.exact_fallbacks += derive.exact_fallbacks;
          result.derive_seconds += derive.derive_seconds;
          result.minimize_seconds += plan.minimize[k].minimize_seconds;
          result.signals.push_back(std::move(derive.impl));
        }
        result.rebuild_signal_index();
        // TotTim is the entry's OWN work, not its span in the shared
        // schedule: in a union graph other entries' nodes interleave with
        // this one's, so a start-to-assembly wall clock would charge the
        // entry for the whole batch.  Model resolution (the full build on
        // a miss or without a cache, ~0 on a cache hit — the saving the
        // cache exists to deliver) plus the summed per-signal task times;
        // at jobs = 1 this is the sequential wall clock of the old loop.
        result.total_seconds =
            plan.context.model_seconds + result.derive_seconds + result.minimize_seconds;
      });
}

/// The entry's verdict after the run: the exception of the lowest-index
/// failing node (model first, then per-signal derive/minimize in ascending
/// target order) — the same diagnostic a sequential left-to-right loop
/// reports — or null when the entry assembled cleanly.
std::exception_ptr entry_failure(const util::TaskGraph& graph, const EntryPlan& plan) {
  if (plan.has_primary &&
      graph.status(plan.model_node) == util::TaskStatus::Cancelled) {
    return graph.error(plan.primary_model_node);
  }
  if (auto error = graph.error(plan.model_node)) return error;
  for (std::size_t k = 0; k < plan.derive_nodes.size(); ++k) {
    if (auto error = graph.error(plan.derive_nodes[k])) return error;
    if (auto error = graph.error(plan.minimize_nodes[k])) return error;
  }
  return graph.error(plan.assembly_node);
}

}  // namespace

BatchResult synthesize_batch(std::span<const BatchRequest> requests,
                             const BatchOptions& options) {
  Stopwatch wall;
  // A resident executor (the daemon's) wins over the per-call jobs policy:
  // its pool is already warm, and its width is the server's to decide.
  Executor local(options.executor != nullptr ? 1 : options.jobs);
  Executor& executor = options.executor != nullptr ? *options.executor : local;
  BatchResult batch;
  batch.jobs = executor.jobs();
  batch.entries.resize(requests.size());

  // The union graph: every entry's nodes over one executor, so signals of
  // different STGs interleave freely.
  util::TaskGraph graph;
  std::vector<EntryPlan> plans(requests.size());

  // With a cache, the first entry of each (STG, model options) key builds
  // the model and in-batch repeats depend on that build: duplicate entries
  // resolve as completed-entry hits instead of parking a worker on an
  // in-flight future, and distinct keys reach the workers first.  The key
  // covers only the model-affecting options, so two entries that differ in
  // e.g. architecture still share one model node.
  std::unordered_map<std::string, util::TaskGraph::NodeId> first_by_key;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    plans[i].stg = requests[i].stg;
    bool repeat_key = false;
    std::vector<util::TaskGraph::NodeId> model_deps;
    if (options.cache != nullptr || options.ledger != nullptr) {
      // Computed once per entry: the same text keys the in-batch dedup here,
      // the model node's cache lookup (via EntryPlan), and the ledger's
      // cost-identity digests.
      plans[i].cache_key = ModelCache::key_of(*requests[i].stg, requests[i].synthesis);
    }
    if (options.cache != nullptr) {
      const std::string& key = plans[i].cache_key;
      const auto [it, inserted] = first_by_key.try_emplace(key, 0);
      if (!inserted) {
        repeat_key = true;
        model_deps.push_back(it->second);
        plans[i].has_primary = true;
        plans[i].primary_model_node = it->second;
      }
      emit_entry(graph, plans[i], requests[i].synthesis, options.cache, options.ledger,
                 repeat_key, std::move(model_deps));
      if (inserted) it->second = plans[i].model_node;
    } else {
      emit_entry(graph, plans[i], requests[i].synthesis, options.cache, options.ledger,
                 false, {});
    }
  }

  executor.run(graph);

  if (options.ledger != nullptr) {
    // Fold the measured schedule back into the ledger — the learning half of
    // the loop.  Only Done nodes have meaningful clocks; model observations
    // are further gated on this run having *built* the model (a cache hit's
    // ~0 resolution time is not a build cost and would erode the estimate).
    const util::TaskTrace& trace = graph.trace();
    for (const EntryPlan& plan : plans) {
      if (trace.nodes[plan.model_node].status == util::TaskStatus::Done &&
          !plan.context.model_from_cache) {
        options.ledger->observe(plan.model_cost_key,
                                trace.nodes[plan.model_node].cpu_seconds);
      }
      for (std::size_t k = 0; k < plan.derive_nodes.size(); ++k) {
        if (trace.nodes[plan.derive_nodes[k]].status == util::TaskStatus::Done) {
          options.ledger->observe(plan.derive_cost_keys[k],
                                  trace.nodes[plan.derive_nodes[k]].cpu_seconds);
        }
        if (trace.nodes[plan.minimize_nodes[k]].status == util::TaskStatus::Done) {
          options.ledger->observe(plan.minimize_cost_keys[k],
                                  trace.nodes[plan.minimize_nodes[k]].cpu_seconds);
        }
      }
    }
  }

  for (std::size_t i = 0; i < requests.size(); ++i) {
    BatchEntry& entry = batch.entries[i];
    if (auto failure = entry_failure(graph, plans[i])) {
      entry.exception = failure;
      try {
        std::rethrow_exception(failure);
      } catch (const std::exception& e) {
        entry.error = e.what();
      } catch (...) {
        entry.error = "unknown exception";
      }
      ++batch.failures;
    } else if (graph.status(plans[i].assembly_node) == util::TaskStatus::Done) {
      entry.result = std::move(plans[i].result);
      entry.ok = true;
    } else {
      // Defensive: an unassembled entry without a recorded failure would be
      // an executor bug; report it rather than hand back an empty result.
      entry.error = "internal error: entry '" + requests[i].stg->name() +
                    "' was cancelled without a recorded failure";
      ++batch.failures;
    }
  }
  batch.critical_path_seconds = graph.trace().critical_path_seconds();
  if (options.trace != nullptr) *options.trace = graph.trace();
  batch.wall_seconds = wall.seconds();
  return batch;
}

BatchResult synthesize_batch(std::span<const stg::Stg> stgs,
                             const BatchOptions& options) {
  std::vector<BatchRequest> requests(stgs.size());
  for (std::size_t i = 0; i < stgs.size(); ++i) {
    requests[i].stg = &stgs[i];
    requests[i].synthesis = options.synthesis;
  }
  return synthesize_batch(std::span<const BatchRequest>(requests), options);
}

}  // namespace punt::core
