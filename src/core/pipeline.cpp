#include "src/core/pipeline.hpp"

#include <atomic>
#include <exception>
#include <future>
#include <utility>

#include "src/core/approx.hpp"
#include "src/core/model_cache.hpp"
#include "src/core/slices.hpp"
#include "src/sg/analysis.hpp"
#include "src/util/error.hpp"

namespace punt::core {
namespace {

using logic::Cover;

/// Raw (unminimised) single-cube-containment cleanup used when the caller
/// disables espresso.
Cover tidy(Cover cover) {
  cover.make_irredundant_scc();
  return cover;
}

}  // namespace

// --- Stage 1: shared semantic model ------------------------------------------

ModelOptions ModelOptions::from(const SynthesisOptions& options) {
  ModelOptions model;
  model.kind = options.method == Method::StateGraph ? Kind::StateGraph : Kind::Unfolding;
  model.check_persistency = options.check_persistency;
  model.state_budget = options.state_budget;
  model.event_budget = options.event_budget;
  model.cutoff = options.cutoff;
  return model;
}

std::string ModelOptions::fingerprint() const {
  // Only the fields that shape a model of this kind participate, so e.g.
  // two unfolding runs that differ in the (StateGraph-only) state_budget
  // still share one cache entry.
  std::string text = kind == Kind::StateGraph ? "sg" : "unf";
  text += check_persistency ? ";persist=1" : ";persist=0";
  if (kind == Kind::StateGraph) {
    text += ";states=" + std::to_string(state_budget);
  } else {
    text += ";events=" + std::to_string(event_budget);
    text += ";cutoff=" + std::to_string(static_cast<int>(cutoff));
  }
  return text;
}

std::shared_ptr<const SemanticModel> SemanticModel::build(
    const stg::Stg& stg, const SynthesisOptions& options) {
  Stopwatch phase;
  auto model = std::make_shared<SemanticModel>();
  model->stg = stg;  // owned copy: ids are preserved, lifetime is not shared
  model->options = ModelOptions::from(options);

  const stg::Stg& own = model->stg;
  own.validate();
  if (own.has_dummies()) {
    throw ImplementabilityError(
        "the STG contains dummy transitions; the synthesis method of the "
        "paper requires every transition to carry a signal edge");
  }
  model->targets = own.non_input_signals();

  if (model->options.kind == ModelOptions::Kind::StateGraph) {
    sg::BuildOptions build;
    build.state_budget = options.state_budget;
    model->sgraph = std::make_unique<const sg::StateGraph>(sg::StateGraph::build(own, build));
    model->sg_states = model->sgraph->state_count();
    if (options.check_persistency) {
      const auto violations = sg::persistency_violations(own, *model->sgraph);
      if (!violations.empty()) {
        throw ImplementabilityError("the STG is not semi-modular: " +
                                    violations.front().describe(own));
      }
    }
  } else {
    unf::UnfoldOptions build;
    build.event_budget = options.event_budget;
    build.cutoff = options.cutoff;
    model->unfolding =
        std::make_unique<const unf::Unfolding>(unf::Unfolding::build(own, build));
    model->unfold_stats = model->unfolding->stats();
    if (options.check_persistency) {
      const auto violations = segment_persistency_violations(*model->unfolding);
      if (!violations.empty()) {
        throw ImplementabilityError("the STG is not semi-modular: " +
                                    violations.front().describe(*model->unfolding));
      }
    }
  }
  model->build_seconds = phase.seconds();
  return model;
}

PipelineContext PipelineContext::build(const stg::Stg& stg,
                                       const SynthesisOptions& options,
                                       ModelCache* cache) {
  PipelineContext context;
  context.options = options;
  if (cache != nullptr) {
    bool built = false;
    context.model = cache->lookup_or_build(stg, options, &built);
    context.model_from_cache = !built;
  } else {
    context.model = SemanticModel::build(stg, options);
  }
  return context;
}

// --- Stage 2: one signal through phases 2–3 ----------------------------------

void DerivationTask::run(const PipelineContext& context) {
  if (!context.model) {
    throw ValidationError(
        "DerivationTask::run called on a PipelineContext without a model");
  }
  const SemanticModel& model = *context.model;
  const stg::Stg& stg = model.stg;
  const SynthesisOptions& options = context.options;
  const std::size_t n = stg.signal_count();
  const bool need_er = options.architecture != Architecture::ComplexGate;
  const stg::SignalId s = signal;

  impl.signal = s;
  impl.name = stg.signal_name(s);

  // Phase 2: derive correct on/off covers (this signal's share of SynTim).
  // CPU time, not wall time: summed task times must measure work even when
  // the scheduler oversubscribes the machine.
  ThreadCpuStopwatch phase;
  Cover er_on{0};   // excitation-region covers for the latch architectures
  Cover er_off{0};
  switch (options.method) {
    case Method::StateGraph: {
      impl.on_cover = sg::on_cover(*model.sgraph, s);
      impl.off_cover = sg::off_cover(*model.sgraph, s);
      if (need_er) {
        er_on = sg::er_cover(stg, *model.sgraph, s, true);
        er_off = sg::er_cover(stg, *model.sgraph, s, false);
      }
      break;
    }
    case Method::UnfoldingExact: {
      const unf::Unfolding& unf = *model.unfolding;
      impl.on_cover = exact_cover(unf, s, true, options.cut_budget);
      impl.off_cover = exact_cover(unf, s, false, options.cut_budget);
      if (need_er) {
        er_on = exact_er_cover(unf, s, true, options.cut_budget);
        er_off = exact_er_cover(unf, s, false, options.cut_budget);
      }
      break;
    }
    case Method::UnfoldingApprox: {
      const unf::Unfolding& unf = *model.unfolding;
      ApproxCover on = approximate_cover(unf, s, true, options.approx_policy);
      ApproxCover off = approximate_cover(unf, s, false, options.approx_policy);
      const RefineStats stats = refine_until_disjoint(unf, on, off);
      refinement_iterations += stats.iterations;
      if (stats.disjoint) {
        impl.on_cover = on.combined(n);
        impl.off_cover = off.combined(n);
        if (need_er) {
          // The refined excitation atoms are the approximated ER covers.
          er_on = Cover(n);
          for (const CoverAtom& atom : on.atoms) {
            if (atom.element.is_event) er_on.add_all(atom.cover);
          }
          er_off = Cover(n);
          for (const CoverAtom& atom : off.atoms) {
            if (atom.element.is_event) er_off.add_all(atom.cover);
          }
          er_on.make_irredundant_scc();
          er_off.make_irredundant_scc();
        }
      } else {
        // Refinement stalled: restore exactness per slice (DESIGN.md §5).
        ++exact_fallbacks;
        impl.used_exact_fallback = true;
        impl.on_cover = exact_cover(unf, s, true, options.cut_budget);
        impl.off_cover = exact_cover(unf, s, false, options.cut_budget);
        if (need_er) {
          er_on = exact_er_cover(unf, s, true, options.cut_budget);
          er_off = exact_er_cover(unf, s, false, options.cut_budget);
        }
      }
      break;
    }
  }
  if (impl.on_cover.intersects(impl.off_cover)) {
    // With exact covers a residual intersection is a genuine CSC conflict.
    const bool covers_exact =
        options.method != Method::UnfoldingApprox || impl.used_exact_fallback;
    if (!covers_exact) {
      // Defensive: approximate covers reported disjoint cannot intersect;
      // reaching this line is a bug, not a property of the STG.
      throw ValidationError("internal error: refined covers intersect");
    }
    impl.csc_conflict = true;
    if (options.throw_on_csc) {
      const Cover overlap = impl.on_cover.intersect(impl.off_cover);
      throw CscError("signal '" + impl.name +
                     "' has a Complete State Coding conflict: on- and "
                     "off-set share code(s) such as " +
                     (overlap.empty() ? "?" : overlap.cube(0).to_string()) +
                     "; insert a state signal and re-synthesise");
    }
  }
  derive_seconds = phase.seconds();
  if (impl.csc_conflict) return;  // no correct gate exists; covers reported

  // Phase 3: minimise and assemble the architecture (this signal's EspTim).
  phase.restart();
  if (options.architecture == Architecture::ComplexGate) {
    if (options.minimize) {
      logic::MinimizeStats stats_on;
      const Cover gate_on = logic::espresso(impl.on_cover, impl.off_cover, &stats_on);
      logic::MinimizeStats stats_off;
      const Cover gate_off = logic::espresso(impl.off_cover, impl.on_cover, &stats_off);
      // The paper implements whichever phase yields the simpler gate.
      if (gate_off.literal_count() < gate_on.literal_count()) {
        impl.gate = gate_off;
        impl.gate_covers_on = false;
        impl.min_stats = stats_off;
      } else {
        impl.gate = gate_on;
        impl.gate_covers_on = true;
        impl.min_stats = stats_on;
      }
    } else {
      impl.gate = tidy(impl.on_cover);
      impl.gate_covers_on = true;
    }
  } else {
    if (options.minimize) {
      logic::MinimizeStats stats_set;
      impl.set_function = logic::espresso(er_on, impl.off_cover, &stats_set);
      logic::MinimizeStats stats_reset;
      impl.reset_function = logic::espresso(er_off, impl.on_cover, &stats_reset);
      // Aggregate *every* field across the set and reset runs; the seed
      // summed only the literal counts and silently kept set-phase values
      // for the rest.
      impl.min_stats = stats_set;
      impl.min_stats.initial_cubes += stats_reset.initial_cubes;
      impl.min_stats.initial_literals += stats_reset.initial_literals;
      impl.min_stats.final_cubes += stats_reset.final_cubes;
      impl.min_stats.final_literals += stats_reset.final_literals;
      impl.min_stats.iterations += stats_reset.iterations;
    } else {
      impl.set_function = tidy(er_on);
      impl.reset_function = tidy(er_off);
    }
  }
  minimize_seconds = phase.seconds();
}

// --- Scheduler ---------------------------------------------------------------

Scheduler::Scheduler(std::size_t jobs)
    : jobs_(jobs == 0 ? util::ThreadPool::hardware_default() : jobs) {}

Scheduler::~Scheduler() = default;

void Scheduler::run(std::size_t count, const std::function<void(std::size_t)>& fn) {
  if (jobs_ <= 1 || count <= 1) {
    // In-order execution: the first exception IS the lowest-index one, so
    // fail fast instead of paying for the remaining tasks.
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  // Every slot is written by exactly one task; exceptions are collected and
  // the lowest-index one rethrown so the parallel run reports the same
  // failure the sequential loop above would.
  std::vector<std::exception_ptr> errors(count);
  {
    if (!pool_) pool_ = std::make_unique<util::ThreadPool>(jobs_);
    std::atomic<std::size_t> next{0};
    const std::size_t lanes = std::min(jobs_, count);
    std::vector<std::future<void>> futures;
    futures.reserve(lanes);
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      futures.push_back(pool_->submit([&] {
        for (std::size_t i; (i = next.fetch_add(1)) < count;) {
          try {
            fn(i);
          } catch (...) {
            errors[i] = std::current_exception();
          }
        }
      }));
    }
    for (std::future<void>& future : futures) future.get();
  }
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

// --- Stage 3: fan-out + deterministic assembly -------------------------------

SynthesisResult run_pipeline(const PipelineContext& context, Scheduler& scheduler) {
  if (!context.model) {
    throw ValidationError("run_pipeline called on a PipelineContext without a model");
  }
  const SemanticModel& model = *context.model;
  std::vector<DerivationTask> tasks(model.targets.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) tasks[i].signal = model.targets[i];
  scheduler.run(tasks.size(), [&](std::size_t i) { tasks[i].run(context); });

  SynthesisResult result;
  result.method = context.options.method;
  result.architecture = context.options.architecture;
  // UnfTim always reports the model's (one-time) construction cost, even
  // when this run got the model from a cache.  total_seconds is this run's
  // wall clock: it covers the build when the run paid for it (cache miss,
  // or no cache — matching the paper's TotTim) and not when a cache hit
  // skipped it — the saving the cache exists to deliver.
  result.unfold_seconds = model.build_seconds;
  result.unfold_stats = model.unfold_stats;
  result.sg_states = model.sg_states;
  result.signals.reserve(tasks.size());
  for (DerivationTask& task : tasks) {
    result.refinement_iterations += task.refinement_iterations;
    result.exact_fallbacks += task.exact_fallbacks;
    result.derive_seconds += task.derive_seconds;
    result.minimize_seconds += task.minimize_seconds;
    result.signals.push_back(std::move(task.impl));
  }
  result.rebuild_signal_index();
  result.total_seconds = context.total.seconds();
  return result;
}

// --- Batch front end ---------------------------------------------------------

std::size_t BatchResult::literal_count() const {
  std::size_t n = 0;
  for (const BatchEntry& entry : entries) {
    if (entry.ok) n += entry.result.literal_count();
  }
  return n;
}

BatchResult synthesize_batch(std::span<const stg::Stg> stgs,
                             const BatchOptions& options) {
  Stopwatch wall;
  Scheduler scheduler(options.jobs);
  BatchResult batch;
  batch.jobs = scheduler.jobs();
  batch.entries.resize(stgs.size());

  SynthesisOptions per_entry = options.synthesis;
  per_entry.jobs = 1;  // entry-level parallelism only; see BatchOptions

  scheduler.run(stgs.size(), [&](std::size_t i) {
    BatchEntry& entry = batch.entries[i];
    try {
      PipelineContext context =
          PipelineContext::build(stgs[i], per_entry, options.cache);
      Scheduler inline_scheduler(1);
      entry.result = run_pipeline(context, inline_scheduler);
      entry.ok = true;
    } catch (const std::exception& e) {
      entry.error = e.what();
    }
  });

  for (const BatchEntry& entry : batch.entries) {
    if (!entry.ok) ++batch.failures;
  }
  batch.wall_seconds = wall.seconds();
  return batch;
}

}  // namespace punt::core
