// ModelCache — shared semantic models across synthesis runs (DESIGN.md §8).
//
// Phase 1 (unfolding-segment or state-graph construction) dominates the
// per-benchmark cost, yet repeated workloads — `punt check`, the
// exact-vs-approx ablation, the A4 architecture sweep — rebuild the same
// model three or more times per STG.  The cache maps
//
//   (canonical STG digest, model kind, model-affecting options)
//     → shared immutable SemanticModel
//
// with thread-safe lookup-or-build semantics: concurrent callers racing on
// one key build the model exactly once (the losers wait on the winner's
// future), and an LRU bound keeps residency predictable on long sweeps.
//
// Two tiers.  The memory tier above is per process; an optional disk tier
// (ModelStore, model_store.hpp) persists models under the same key, so a
// memory miss consults the store before building — successive CLI
// invocations and CI bench shards sharing one `--model-cache-dir` skip
// phase 1 after the first warm run.  Disk problems of any kind (corrupt
// file, version mismatch, unwritable directory) degrade to a rebuild,
// never to an error.
//
// Keying.  The digest is the canonical `.g` serialisation of the STG
// (stg::write_g, which pins the initial code) concatenated with
// ModelOptions::fingerprint().  Entries are compared by the *full* key
// text, with hashing only used for bucketing, so a hash collision can never
// alias two different models.  Two structurally different but isomorphic
// STGs hash apart — the cache trades such misses for exactness.
//
// Sharing.  Values are `shared_ptr<const SemanticModel>`; eviction merely
// drops the cache's reference, so models handed out earlier stay valid for
// as long as any synthesis run still reads them.
#pragma once

#include <cstddef>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "src/core/pipeline.hpp"

namespace punt::core {

class ModelStore;  // model_store.hpp

/// Lookup statistics, folded into the timing reports of the benches.
/// Mostly monotonic counters; `in_flight` and `resident` are gauges
/// snapshotted when stats() is called, and the disk_* fields mirror the
/// attached ModelStore's counters (all zero without a store).
struct ModelCacheStats {
  /// Lookups served without building: completed-entry hits plus successful
  /// joins of an in-flight build (a join that ends in a build failure is
  /// counted by the builder's failed_builds, not as a hit).
  std::size_t hits = 0;
  std::size_t misses = 0;         // lookups that had to leave the memory tier
  std::size_t builds = 0;         // models actually constructed (memory AND
                                  // disk both missed); phase-1 rebuilds
  std::size_t evictions = 0;      // completed entries dropped by the LRU bound
  std::size_t failed_builds = 0;  // builds that threw (slot removed, retried)
  std::size_t in_flight = 0;      // gauge: builds running right now
  std::size_t resident = 0;       // gauge: slots held (ready + in-flight)
  /// Sum of build_seconds over completed-entry hits and disk hits: the
  /// wall-clock model construction the cache saved its callers.  Joins of an
  /// in-flight build are not credited — the joiner waits the build out
  /// rather than skips it.
  double saved_seconds = 0;

  // Disk tier (mirrors ModelStore::stats() of the attached store).
  std::size_t disk_hits = 0;
  std::size_t disk_misses = 0;
  std::size_t disk_load_errors = 0;
  std::size_t disk_stores = 0;
  std::size_t disk_store_failures = 0;

  /// hits / (hits + misses); 0 when the cache was never consulted.
  double hit_rate() const {
    const std::size_t lookups = hits + misses;
    return lookups == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(lookups);
  }
};

/// Counter difference `after - before` (gauges are taken from `after`): the
/// per-request view the serve daemon reports for one request against its
/// long-lived resident cache.  Concurrent requests can inflate each other's
/// deltas — the counters are cache-wide — so the line is attribution for a
/// human, not an exact per-request ledger.
ModelCacheStats delta_stats(const ModelCacheStats& before, const ModelCacheStats& after);

/// The one-line human summary ("model cache: N lookup(s): ...\n") printed
/// to stderr by the CLI after a cached run and appended to the daemon's
/// per-request log.  One definition so the acceptance grep ("0 rebuild(s)")
/// matches both surfaces.
std::string summarize(const ModelCacheStats& stats);

/// Hash-keyed, LRU-bounded, thread-safe, two-tier cache of semantic models.
class ModelCache {
 public:
  static constexpr std::size_t kDefaultCapacity = 128;

  /// Builds the model for a key the cache has never seen (or lost).  The
  /// stg-based lookup_or_build passes SemanticModel::build; tests inject
  /// blocking builders to pin in-flight slots.
  using Builder = std::function<std::shared_ptr<const SemanticModel>()>;

  /// `capacity`: maximum number of slots resident in memory (≥ 1).  Both
  /// completed models and in-flight builds count — N concurrent distinct-key
  /// builds occupy N slots — but only completed entries can be *evicted*, so
  /// residency exceeds the bound transiently while more than `capacity`
  /// builds are genuinely running at once.  `store` attaches the optional
  /// disk tier (shared so several caches may use one directory).
  explicit ModelCache(std::size_t capacity = kDefaultCapacity,
                      std::shared_ptr<ModelStore> store = nullptr);

  ModelCache(const ModelCache&) = delete;
  ModelCache& operator=(const ModelCache&) = delete;

  /// Returns the cached model for (stg, model-affecting options), building
  /// it on a miss.  Concurrent callers with the same key build exactly one
  /// model: the first becomes the builder, the rest wait for its result.
  /// A build failure propagates to the builder *and* every waiter, and the
  /// slot is removed so later lookups retry rather than cache the error.
  /// When `built` is given it is set to true iff *this* call constructed
  /// the model (false on memory AND disk hits).
  std::shared_ptr<const SemanticModel> lookup_or_build(const stg::Stg& stg,
                                                       const SynthesisOptions& options,
                                                       bool* built = nullptr);

  /// The underlying lookup: same semantics, but the caller supplies the key
  /// and the builder.  On a memory miss the disk tier is consulted first;
  /// only when both tiers miss does `build` run (and its result is then
  /// persisted to the store, best-effort).
  std::shared_ptr<const SemanticModel> lookup_or_build_keyed(const std::string& key,
                                                             const Builder& build,
                                                             bool* built = nullptr);

  ModelCacheStats stats() const;
  std::size_t size() const;  // resident slots: completed + in-flight
  std::size_t capacity() const { return capacity_; }
  ModelStore* store() const { return store_.get(); }
  void clear();

  /// The exact cache key: canonical `.g` text + model-options fingerprint.
  /// Exposed so tests (and diagnostics) can reason about key equality.
  static std::string key_of(const stg::Stg& stg, const SynthesisOptions& options);

 private:
  using ModelFuture = std::shared_future<std::shared_ptr<const SemanticModel>>;

  struct Slot {
    ModelFuture future;
    bool ready = false;                   // value set, entry in lru_
    std::list<std::string>::iterator lru; // valid only when ready
  };

  /// Drops LRU-tail completed entries while total residency (completed +
  /// in-flight) exceeds capacity; never evicts `protect` (the key being
  /// published).  Caller holds mutex_.
  void evict_to_capacity_locked(const std::string* protect = nullptr);

  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::shared_ptr<ModelStore> store_;  // disk tier; may be null
  std::unordered_map<std::string, Slot> slots_;
  std::list<std::string> lru_;  // most recently used first; completed only
  ModelCacheStats stats_;
};

}  // namespace punt::core
