// ModelCache — shared semantic models across synthesis runs (DESIGN.md §8).
//
// Phase 1 (unfolding-segment or state-graph construction) dominates the
// per-benchmark cost, yet repeated workloads — `punt check`, the
// exact-vs-approx ablation, the A4 architecture sweep — rebuild the same
// model three or more times per STG.  The cache maps
//
//   (canonical STG digest, model kind, model-affecting options)
//     → shared immutable SemanticModel
//
// with thread-safe lookup-or-build semantics: concurrent callers racing on
// one key build the model exactly once (the losers wait on the winner's
// future), and an LRU bound keeps residency predictable on long sweeps.
//
// Keying.  The digest is the canonical `.g` serialisation of the STG
// (stg::write_g, which pins the initial code) concatenated with
// ModelOptions::fingerprint().  Entries are compared by the *full* key
// text, with hashing only used for bucketing, so a hash collision can never
// alias two different models.  Two structurally different but isomorphic
// STGs hash apart — the cache trades such misses for exactness.
//
// Sharing.  Values are `shared_ptr<const SemanticModel>`; eviction merely
// drops the cache's reference, so models handed out earlier stay valid for
// as long as any synthesis run still reads them.
#pragma once

#include <cstddef>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "src/core/pipeline.hpp"

namespace punt::core {

/// Lookup statistics, folded into the timing reports of the benches.
struct ModelCacheStats {
  /// Lookups served without building: completed-entry hits plus successful
  /// joins of an in-flight build (a join that ends in a build failure is
  /// counted by the builder's failed_builds, not as a hit).
  std::size_t hits = 0;
  std::size_t misses = 0;         // lookups that had to build
  std::size_t evictions = 0;      // completed entries dropped by the LRU bound
  std::size_t failed_builds = 0;  // builds that threw (slot removed, retried)
  /// Sum of build_seconds over completed-entry hits: the wall-clock model
  /// construction the cache saved its callers.  Joins of an in-flight build
  /// are not credited — the joiner waits the build out rather than skips it.
  double saved_seconds = 0;

  /// hits / (hits + misses); 0 when the cache was never consulted.
  double hit_rate() const {
    const std::size_t lookups = hits + misses;
    return lookups == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(lookups);
  }
};

/// Hash-keyed, LRU-bounded, thread-safe cache of semantic models.
class ModelCache {
 public:
  static constexpr std::size_t kDefaultCapacity = 128;

  /// `capacity`: maximum number of *completed* models kept resident (≥ 1).
  /// In-flight builds are not counted — they cannot be evicted while other
  /// callers may still be waiting on them.
  explicit ModelCache(std::size_t capacity = kDefaultCapacity);

  ModelCache(const ModelCache&) = delete;
  ModelCache& operator=(const ModelCache&) = delete;

  /// Returns the cached model for (stg, model-affecting options), building
  /// it on a miss.  Concurrent callers with the same key build exactly one
  /// model: the first becomes the builder, the rest wait for its result.
  /// A build failure propagates to the builder *and* every waiter, and the
  /// slot is removed so later lookups retry rather than cache the error.
  /// When `built` is given it is set to true iff *this* call constructed
  /// the model (i.e. it was the miss).
  std::shared_ptr<const SemanticModel> lookup_or_build(const stg::Stg& stg,
                                                       const SynthesisOptions& options,
                                                       bool* built = nullptr);

  ModelCacheStats stats() const;
  std::size_t size() const;  // completed models currently resident
  std::size_t capacity() const { return capacity_; }
  void clear();

  /// The exact cache key: canonical `.g` text + model-options fingerprint.
  /// Exposed so tests (and diagnostics) can reason about key equality.
  static std::string key_of(const stg::Stg& stg, const SynthesisOptions& options);

 private:
  using ModelFuture = std::shared_future<std::shared_ptr<const SemanticModel>>;

  struct Slot {
    ModelFuture future;
    bool ready = false;                   // value set, entry in lru_
    std::list<std::string>::iterator lru; // valid only when ready
  };

  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::unordered_map<std::string, Slot> slots_;
  std::list<std::string> lru_;  // most recently used first; completed only
  ModelCacheStats stats_;
};

}  // namespace punt::core
