// The staged synthesis pipeline, as a dependency-aware task graph.
//
// The monolithic synthesize() of the seed is decomposed into explicit
// stages (DESIGN.md §7), and the stages are emitted as *graph nodes*
// (util::TaskGraph) instead of a flat index loop:
//
//   1. SemanticModel::build — the shared semantic model: STG validation,
//      unfolding segment or state graph, general implementability checks.
//      One model node per distinct (STG, model options) pair; entries that
//      repeat an in-batch key depend on the first builder's node, so a
//      parameter sweep never parks workers behind one in-flight build.
//   2. DeriveTask::run — phase 2 for one signal: cover derivation (per
//      method), refinement, exact fallback and the CSC check.
//   3. MinimizeTask::run — phase 3 for one signal: espresso and the
//      architecture assembly.  Separately schedulable from phase 2, so an
//      expensive signal's espresso no longer blocks its siblings' covers.
//   4. Assembly — a per-entry node that collects the slots *in
//      target-signal order* and sums the per-task timings, so output and
//      reported work are bit-identical whatever the worker count.
//
// synthesize() (synthesis.hpp) is a one-entry batch; synthesize_batch()
// builds the union graph of every entry over ONE Executor, letting signals
// of different STGs interleave freely — on registries where a few signals
// dominate, that shortens the critical path that the per-entry loop could
// not.  Failure stays per entry: a failed node cancels its *downstream*
// nodes only, and the diagnostic that surfaces is the one of the
// lowest-index failing signal, exactly what a sequential left-to-right loop
// would have reported.
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "src/core/synthesis.hpp"
#include "src/sg/state_graph.hpp"
#include "src/unfolding/unfolding.hpp"
#include "src/util/stopwatch.hpp"
#include "src/util/task_graph.hpp"
#include "src/util/thread_pool.hpp"

namespace punt::core {

class ModelCache;  // model_cache.hpp; forward-declared to avoid a cycle
class CostLedger;  // cost_ledger.hpp; likewise

/// The *model-affecting* subset of SynthesisOptions: exactly the fields that
/// change what SemanticModel::build() produces.  Everything else in
/// SynthesisOptions (architecture, approximation policy, minimisation,
/// cut budget, CSC handling, jobs) only steers the per-signal derivation, so
/// A1/A3/A4 architecture variants — and the exact and approximate unfolding
/// methods, which consume the same segment — of one STG share one model.
struct ModelOptions {
  /// Which semantic object phase 1 constructs.  Method::UnfoldingApprox and
  /// Method::UnfoldingExact build the *same* unfolding segment, so they map
  /// to one kind (and one cache entry).
  enum class Kind : std::uint8_t { Unfolding, StateGraph };

  Kind kind = Kind::Unfolding;
  bool check_persistency = true;
  std::size_t state_budget = 0;  // StateGraph only
  std::size_t event_budget = 0;  // Unfolding only
  unf::UnfoldOptions::CutoffPolicy cutoff = unf::UnfoldOptions::CutoffPolicy::McMillan;

  /// Projects the model-affecting fields out of the full option set.
  static ModelOptions from(const SynthesisOptions& options);

  /// Canonical text of the options that shape the model of this kind (the
  /// irrelevant budget is omitted, so e.g. two StateGraph runs that differ
  /// only in event_budget share a cache entry).  Part of the ModelCache key.
  std::string fingerprint() const;
};

/// Stage 1 output: the immutable semantic model shared (read-only) by every
/// derive/minimize node — of one synthesis run, or of *many* runs when the
/// model is handed out by a ModelCache.  It owns a copy of the source STG so
/// a cached model never dangles when the caller's STG dies.
struct SemanticModel {
  stg::Stg stg;  // owned copy; signal/transition ids match the source STG
  ModelOptions options;
  std::vector<stg::SignalId> targets;  // outputs + internals, ascending

  // Exactly one of the two is set, per options.kind.
  std::unique_ptr<const unf::Unfolding> unfolding;
  std::unique_ptr<const sg::StateGraph> sgraph;

  double build_seconds = 0;        // wall-clock model-construction time
  unf::UnfoldStats unfold_stats;   // segment size (unfolding kind)
  std::size_t sg_states = 0;       // SG size (StateGraph kind)

  /// Builds the model and runs the general checks (validation, dummy
  /// rejection, persistency).  Throws like the seed's synthesize() phase 1.
  static std::shared_ptr<const SemanticModel> build(const stg::Stg& stg,
                                                    const SynthesisOptions& options);
};

/// One synthesis run's view: the shared model plus the derivation-only
/// options and this run's clock.
struct PipelineContext {
  std::shared_ptr<const SemanticModel> model;
  SynthesisOptions options;
  /// Wall-clock this run spent *resolving* its model: the full build on a
  /// cache miss (or without a cache), near zero on a cache hit.  The run's
  /// share of TotTim — NOT the model's build_seconds, which a hit reuses.
  double model_seconds = 0;
  bool model_from_cache = false;

  /// Resolves the model — through `cache` when given (lookup-or-build),
  /// otherwise by building it fresh — and stamps the derivation options.
  /// `key`, when given with a cache, is the precomputed ModelCache::key_of
  /// text: the batch front end already serialises every entry's STG for
  /// in-batch dedup, and passing the key down avoids a second write_g per
  /// lookup (the dominant cost of an all-hit run).
  static PipelineContext build(const stg::Stg& stg, const SynthesisOptions& options,
                               ModelCache* cache = nullptr,
                               const std::string* key = nullptr);
};

/// Phase 2 for one signal: cover derivation, refinement, exact fallback and
/// the CSC check.  The task reads the shared context and writes only its own
/// slot, making derive nodes trivially safe to run concurrently; the
/// excitation-region covers it leaves behind are the inputs MinimizeTask
/// consumes for the latch architectures.
struct DeriveTask {
  stg::SignalId signal;  // input; everything below is output of run()

  SignalImplementation impl;  // covers + flags; gate functions added by phase 3
  logic::Cover er_on;         // excitation-region covers (latch archs only)
  logic::Cover er_off;
  std::size_t refinement_iterations = 0;
  std::size_t exact_fallbacks = 0;
  double derive_seconds = 0;  // this task's share of SynTim

  /// Throws CscError (when options.throw_on_csc) or ValidationError exactly
  /// as the seed's sequential loop did for this signal.
  void run(const PipelineContext& context);
};

/// Phase 3 for one signal: espresso and architecture assembly, completing
/// the SignalImplementation that `derive` started.  Scheduled as its own
/// graph node, dependent on that signal's derive node only — so one
/// expensive minimisation cannot serialise behind an unrelated derivation.
struct MinimizeTask {
  double minimize_seconds = 0;  // this task's share of EspTim

  /// No-op when the derive phase recorded a CSC conflict (no correct gate
  /// exists; the covers stay reported).
  void run(const PipelineContext& context, DeriveTask& derive);
};

/// Worker-count policy plus the (lazily created) pool that task graphs run
/// on.  Replaces the flat index Scheduler: instead of `run(count, fn)` over
/// independent indices, callers emit a TaskGraph and hand it here.
///
/// An Executor may be shared: run() is thread-safe (any number of graphs
/// can execute over the one pool concurrently — the TaskGraph contract),
/// which is what lets the serve daemon keep a single warm pool resident and
/// dispatch every client request through it.  Note that with jobs() == 1
/// graphs run inline on each *calling* thread, so sharing a 1-job executor
/// across threads serialises nothing.
class Executor {
 public:
  /// `jobs`: 1 = inline on the calling thread (no pool); 0 = one worker per
  /// hardware thread; otherwise that many workers.
  explicit Executor(std::size_t jobs = 1);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  std::size_t jobs() const { return jobs_; }

  /// Executes `graph` to completion: inline in deterministic (priority, id)
  /// order when jobs() == 1, otherwise across the shared worker pool.
  /// Node failures are captured in the graph, never thrown from here.
  /// Safe to call from several threads at once (each with its own graph).
  void run(util::TaskGraph& graph);

 private:
  std::size_t jobs_ = 1;
  std::once_flag pool_once_;                // guards racing first parallel runs
  std::unique_ptr<util::ThreadPool> pool_;  // created on first parallel run
};

// --- Batch front end ---------------------------------------------------------

struct BatchOptions {
  /// Per-entry synthesis configuration.  Its `jobs` field is ignored — the
  /// batch graph schedules model/derive/minimize nodes of *all* entries
  /// over the one executor below, so intra-entry parallelism comes free.
  SynthesisOptions synthesis;
  /// Worker threads across the union graph; 1 = inline, 0 = hardware default.
  std::size_t jobs = 1;
  /// Optional shared model cache.  Entries of one batch — and successive
  /// batches over the same STGs (the A4 architecture sweep) — then share
  /// one SemanticModel per distinct (STG, model options) pair.  Within a
  /// batch, repeats of one key *depend on* the first builder's node instead
  /// of racing it: distinct keys get built first and duplicate entries
  /// resolve as completed-entry cache hits, never as in-flight joins that
  /// park a worker.  Not owned.
  ModelCache* cache = nullptr;
  /// When set, receives the executed schedule (node timings, workers,
  /// critical path) — what `--trace-schedule` serialises.  Not owned.
  util::TaskTrace* trace = nullptr;
  /// Optional cost ledger (cost_ledger.hpp).  Before the run, each node's
  /// dispatch-cost estimate is looked up by its stable identity; after it,
  /// the measured cpu_seconds are folded back in (model nodes only when this
  /// run actually *built* the model — a cache hit is not a build, and its
  /// ~0 resolution cost must not erode the build-cost estimate).  Estimates
  /// reorder dispatch within priority bands only, so results are
  /// byte-identical with and without a ledger.  Not owned.
  CostLedger* ledger = nullptr;
  /// Optional resident executor.  When set, the batch runs over *its* pool
  /// (the `jobs` field above is ignored) instead of a per-call one — the
  /// serve daemon passes the executor it keeps warm across requests, so
  /// concurrent client batches interleave on one pool with no per-request
  /// thread spin-up.  Not owned; must outlive the call.
  Executor* executor = nullptr;
};

/// One input STG's outcome.  Failures (CSC conflicts, capacity blowups, …)
/// are captured per entry so one bad benchmark cannot sink a whole workload.
struct BatchEntry {
  bool ok = false;
  SynthesisResult result;  // meaningful only when ok
  std::string error;       // exception text when !ok
  /// The exception behind `error` — of the entry's lowest-index failing
  /// node, so the diagnostic is identical at every worker count.  Lets
  /// single-entry callers (synthesize()) rethrow the original type.
  std::exception_ptr exception;
};

struct BatchResult {
  std::vector<BatchEntry> entries;  // same order as the input span
  std::size_t jobs = 1;             // resolved worker count actually used
  double wall_seconds = 0;          // whole-batch wall-clock time
  double critical_path_seconds = 0; // longest dependency chain of the run
  std::size_t failures = 0;

  /// Sum of literal counts over the successful entries.
  std::size_t literal_count() const;
};

/// Synthesises every STG of `stgs` through one union task graph on one
/// Executor.  Results are bit-identical at any job count.
BatchResult synthesize_batch(std::span<const stg::Stg> stgs,
                             const BatchOptions& options = {});

/// One entry of a mixed-options batch: an STG plus its own full option set.
/// This is the shape the serve daemon's request fusion needs — requests that
/// arrive inside one batching window may differ in method/arch/minimise yet
/// must still share one union graph (and, because the ModelCache key covers
/// only the model-affecting options, one model node whenever those agree).
struct BatchRequest {
  const stg::Stg* stg = nullptr;  // not owned; must outlive the call
  SynthesisOptions synthesis;
};

/// The mixed-options batch front end.  Identical scheduling and failure
/// semantics to the uniform overload (which delegates here);
/// `options.synthesis` is ignored — each entry carries its own.
BatchResult synthesize_batch(std::span<const BatchRequest> requests,
                             const BatchOptions& options = {});

}  // namespace punt::core
