// The staged synthesis pipeline.
//
// The monolithic synthesize() of the seed is decomposed into three explicit
// stages (DESIGN.md §7):
//
//   1. PipelineContext::build — the shared semantic model: STG validation,
//      unfolding segment or state graph, general implementability checks.
//      Built once, then only read.
//   2. DerivationTask::run — everything one signal needs (cover derivation,
//      refinement, exact fallback, CSC check, espresso, architecture
//      assembly).  Tasks touch only the immutable context and their own
//      slot, so the Scheduler may run any number of them concurrently.
//   3. Assembly — results are collected *in target-signal order* and the
//      per-task timings are summed, so output and reported work are
//      bit-identical whatever the job count.
//
// synthesize() (synthesis.hpp) is now a thin wrapper over these stages;
// synthesize_batch() pushes whole workloads (e.g. the Table-1 registry)
// through the same Scheduler, parallelising across STGs instead of across
// signals.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/core/synthesis.hpp"
#include "src/sg/state_graph.hpp"
#include "src/unfolding/unfolding.hpp"
#include "src/util/stopwatch.hpp"
#include "src/util/thread_pool.hpp"

namespace punt::core {

/// Stage 1 output: the semantic model shared (read-only) by every
/// DerivationTask of one synthesis run.
struct PipelineContext {
  const stg::Stg* stg = nullptr;
  SynthesisOptions options;
  std::vector<stg::SignalId> targets;  // outputs + internals, ascending

  // Exactly one of the two models is set, per options.method.
  std::unique_ptr<unf::Unfolding> unfolding;
  std::unique_ptr<sg::StateGraph> sgraph;

  Stopwatch total;                 // runs from the start of build()
  double unfold_seconds = 0;       // wall-clock model-construction time
  unf::UnfoldStats unfold_stats;   // segment size (unfolding methods)
  std::size_t sg_states = 0;       // SG size (StateGraph method)

  /// Builds the model and runs the general checks (validation, dummy
  /// rejection, persistency).  Throws like the seed's synthesize() phase 1.
  static PipelineContext build(const stg::Stg& stg, const SynthesisOptions& options);
};

/// Stage 2: one signal's derivation through phases 2–3.  The task reads the
/// shared context and writes only its own members, making tasks trivially
/// safe to run concurrently.
struct DerivationTask {
  stg::SignalId signal;  // input; everything below is output of run()

  SignalImplementation impl;
  std::size_t refinement_iterations = 0;
  std::size_t exact_fallbacks = 0;
  double derive_seconds = 0;    // this task's share of SynTim
  double minimize_seconds = 0;  // this task's share of EspTim

  /// Throws CscError (when options.throw_on_csc) or ValidationError exactly
  /// as the seed's sequential loop did for this signal.
  void run(const PipelineContext& context);
};

/// Runs indexed tasks across a worker pool with deterministic failure
/// semantics: the exception of the *lowest* failing index is the one that
/// propagates, so callers observe the same error a sequential left-to-right
/// loop would, at any job count.  Inline runs (jobs == 1) fail fast on the
/// first error; pool runs let every index finish, then rethrow.
class Scheduler {
 public:
  /// `jobs`: 1 = inline on the calling thread (no pool); 0 = one worker per
  /// hardware thread; otherwise that many workers.
  explicit Scheduler(std::size_t jobs = 1);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  std::size_t jobs() const { return jobs_; }

  /// Invokes fn(0) … fn(count-1), inline or across the pool.
  void run(std::size_t count, const std::function<void(std::size_t)>& fn);

 private:
  std::size_t jobs_ = 1;
  std::unique_ptr<util::ThreadPool> pool_;  // created on first parallel run
};

/// Stages 2–3 for every target signal of `context`, then assembly.  The
/// result (covers, literal counts, signal order, flags) is bit-identical for
/// every scheduler width; only wall-clock time varies.
SynthesisResult run_pipeline(const PipelineContext& context, Scheduler& scheduler);

// --- Batch front end ---------------------------------------------------------

struct BatchOptions {
  /// Per-entry synthesis configuration.  Its `jobs` field is ignored: the
  /// batch parallelises across STGs (one task per entry, signals inline),
  /// which avoids nested blocking on one pool and keeps every entry's
  /// timing breakdown sequential-comparable.
  SynthesisOptions synthesis;
  /// Worker threads across entries; 1 = inline, 0 = hardware default.
  std::size_t jobs = 1;
};

/// One input STG's outcome.  Failures (CSC conflicts, capacity blowups, …)
/// are captured per entry so one bad benchmark cannot sink a whole workload.
struct BatchEntry {
  bool ok = false;
  SynthesisResult result;  // meaningful only when ok
  std::string error;       // exception text when !ok
};

struct BatchResult {
  std::vector<BatchEntry> entries;  // same order as the input span
  std::size_t jobs = 1;             // resolved worker count actually used
  double wall_seconds = 0;          // whole-batch wall-clock time
  std::size_t failures = 0;

  /// Sum of literal counts over the successful entries.
  std::size_t literal_count() const;
};

/// Synthesises every STG of `stgs` through one shared Scheduler.
BatchResult synthesize_batch(std::span<const stg::Stg> stgs,
                             const BatchOptions& options = {});

}  // namespace punt::core
