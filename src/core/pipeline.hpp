// The staged synthesis pipeline.
//
// The monolithic synthesize() of the seed is decomposed into three explicit
// stages (DESIGN.md §7):
//
//   1. SemanticModel::build — the shared semantic model: STG validation,
//      unfolding segment or state graph, general implementability checks.
//      Built once, immutable afterwards, and held by shared_ptr so any
//      number of synthesis runs (and the ModelCache, DESIGN.md §8) can
//      share one model concurrently.
//   2. DerivationTask::run — everything one signal needs (cover derivation,
//      refinement, exact fallback, CSC check, espresso, architecture
//      assembly).  Tasks touch only the immutable model and their own
//      slot, so the Scheduler may run any number of them concurrently.
//   3. Assembly — results are collected *in target-signal order* and the
//      per-task timings are summed, so output and reported work are
//      bit-identical whatever the job count.
//
// synthesize() (synthesis.hpp) is now a thin wrapper over these stages;
// synthesize_batch() pushes whole workloads (e.g. the Table-1 registry)
// through the same Scheduler, parallelising across STGs instead of across
// signals.  Both accept an optional ModelCache so repeated workloads
// (punt check, the A1/A4 ablations, sweeps over architecture variants)
// build each semantic model once instead of once per call.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/core/synthesis.hpp"
#include "src/sg/state_graph.hpp"
#include "src/unfolding/unfolding.hpp"
#include "src/util/stopwatch.hpp"
#include "src/util/thread_pool.hpp"

namespace punt::core {

class ModelCache;  // model_cache.hpp; forward-declared to avoid a cycle

/// The *model-affecting* subset of SynthesisOptions: exactly the fields that
/// change what SemanticModel::build() produces.  Everything else in
/// SynthesisOptions (architecture, approximation policy, minimisation,
/// cut budget, CSC handling, jobs) only steers the per-signal derivation, so
/// A1/A3/A4 architecture variants — and the exact and approximate unfolding
/// methods, which consume the same segment — of one STG share one model.
struct ModelOptions {
  /// Which semantic object phase 1 constructs.  Method::UnfoldingApprox and
  /// Method::UnfoldingExact build the *same* unfolding segment, so they map
  /// to one kind (and one cache entry).
  enum class Kind : std::uint8_t { Unfolding, StateGraph };

  Kind kind = Kind::Unfolding;
  bool check_persistency = true;
  std::size_t state_budget = 0;  // StateGraph only
  std::size_t event_budget = 0;  // Unfolding only
  unf::UnfoldOptions::CutoffPolicy cutoff = unf::UnfoldOptions::CutoffPolicy::McMillan;

  /// Projects the model-affecting fields out of the full option set.
  static ModelOptions from(const SynthesisOptions& options);

  /// Canonical text of the options that shape the model of this kind (the
  /// irrelevant budget is omitted, so e.g. two StateGraph runs that differ
  /// only in event_budget share a cache entry).  Part of the ModelCache key.
  std::string fingerprint() const;
};

/// Stage 1 output: the immutable semantic model shared (read-only) by every
/// DerivationTask — of one synthesis run, or of *many* runs when the model
/// is handed out by a ModelCache.  It owns a copy of the source STG so a
/// cached model never dangles when the caller's STG dies.
struct SemanticModel {
  stg::Stg stg;  // owned copy; signal/transition ids match the source STG
  ModelOptions options;
  std::vector<stg::SignalId> targets;  // outputs + internals, ascending

  // Exactly one of the two is set, per options.kind.
  std::unique_ptr<const unf::Unfolding> unfolding;
  std::unique_ptr<const sg::StateGraph> sgraph;

  double build_seconds = 0;        // wall-clock model-construction time
  unf::UnfoldStats unfold_stats;   // segment size (unfolding kind)
  std::size_t sg_states = 0;       // SG size (StateGraph kind)

  /// Builds the model and runs the general checks (validation, dummy
  /// rejection, persistency).  Throws like the seed's synthesize() phase 1.
  static std::shared_ptr<const SemanticModel> build(const stg::Stg& stg,
                                                    const SynthesisOptions& options);
};

/// One synthesis run's view: the shared model plus the derivation-only
/// options and this run's clock.
struct PipelineContext {
  std::shared_ptr<const SemanticModel> model;
  SynthesisOptions options;
  Stopwatch total;              // runs from the start of build()
  bool model_from_cache = false;

  /// Resolves the model — through `cache` when given (lookup-or-build),
  /// otherwise by building it fresh — and stamps the derivation options.
  static PipelineContext build(const stg::Stg& stg, const SynthesisOptions& options,
                               ModelCache* cache = nullptr);
};

/// Stage 2: one signal's derivation through phases 2–3.  The task reads the
/// shared context and writes only its own members, making tasks trivially
/// safe to run concurrently.
struct DerivationTask {
  stg::SignalId signal;  // input; everything below is output of run()

  SignalImplementation impl;
  std::size_t refinement_iterations = 0;
  std::size_t exact_fallbacks = 0;
  double derive_seconds = 0;    // this task's share of SynTim
  double minimize_seconds = 0;  // this task's share of EspTim

  /// Throws CscError (when options.throw_on_csc) or ValidationError exactly
  /// as the seed's sequential loop did for this signal.
  void run(const PipelineContext& context);
};

/// Runs indexed tasks across a worker pool with deterministic failure
/// semantics: the exception of the *lowest* failing index is the one that
/// propagates, so callers observe the same error a sequential left-to-right
/// loop would, at any job count.  Inline runs (jobs == 1) fail fast on the
/// first error; pool runs let every index finish, then rethrow.
class Scheduler {
 public:
  /// `jobs`: 1 = inline on the calling thread (no pool); 0 = one worker per
  /// hardware thread; otherwise that many workers.
  explicit Scheduler(std::size_t jobs = 1);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  std::size_t jobs() const { return jobs_; }

  /// Invokes fn(0) … fn(count-1), inline or across the pool.
  void run(std::size_t count, const std::function<void(std::size_t)>& fn);

 private:
  std::size_t jobs_ = 1;
  std::unique_ptr<util::ThreadPool> pool_;  // created on first parallel run
};

/// Stages 2–3 for every target signal of `context`, then assembly.  The
/// result (covers, literal counts, signal order, flags) is bit-identical for
/// every scheduler width; only wall-clock time varies.
SynthesisResult run_pipeline(const PipelineContext& context, Scheduler& scheduler);

// --- Batch front end ---------------------------------------------------------

struct BatchOptions {
  /// Per-entry synthesis configuration.  Its `jobs` field is ignored: the
  /// batch parallelises across STGs (one task per entry, signals inline),
  /// which avoids nested blocking on one pool and keeps every entry's
  /// timing breakdown sequential-comparable.
  SynthesisOptions synthesis;
  /// Worker threads across entries; 1 = inline, 0 = hardware default.
  std::size_t jobs = 1;
  /// Optional shared model cache.  Entries of one batch — and successive
  /// batches over the same STGs (the A4 architecture sweep) — then share
  /// one SemanticModel per distinct (STG, model options) pair; concurrent
  /// entries racing on the same key build it exactly once.  Not owned.
  ModelCache* cache = nullptr;
};

/// One input STG's outcome.  Failures (CSC conflicts, capacity blowups, …)
/// are captured per entry so one bad benchmark cannot sink a whole workload.
struct BatchEntry {
  bool ok = false;
  SynthesisResult result;  // meaningful only when ok
  std::string error;       // exception text when !ok
};

struct BatchResult {
  std::vector<BatchEntry> entries;  // same order as the input span
  std::size_t jobs = 1;             // resolved worker count actually used
  double wall_seconds = 0;          // whole-batch wall-clock time
  std::size_t failures = 0;

  /// Sum of literal counts over the successful entries.
  std::size_t literal_count() const;
};

/// Synthesises every STG of `stgs` through one shared Scheduler.
BatchResult synthesize_batch(std::span<const stg::Stg> stgs,
                             const BatchOptions& options = {});

}  // namespace punt::core
