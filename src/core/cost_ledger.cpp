#include "src/core/cost_ledger.hpp"

#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <random>
#include <sstream>
#include <utility>

#include "src/core/model_cache.hpp"
#include "src/util/binio.hpp"

namespace punt::core {
namespace {

namespace fs = std::filesystem;

constexpr char kMagic[] = "PUNTLEDG";  // 8 bytes, no terminator on disk
constexpr std::size_t kMagicSize = 8;
// A ledger holds a handful of keys per benchmark entry; even a registry of
// thousands stays far below this.  A corrupt count must not drive reserve().
constexpr std::uint64_t kMaxEntries = 1u << 22;

/// Canonical text of the derivation-only options — the fields that change
/// what phase-2/3 nodes *cost* but not what the model is.  Appended to the
/// ModelCache key before hashing, so e.g. RsLatch and ComplexGate runs of one
/// STG learn separate derive/minimize costs while sharing the model entry.
std::string derivation_fingerprint(const SynthesisOptions& options) {
  std::ostringstream text;
  text << "m=" << static_cast<int>(options.method)
       << ";a=" << static_cast<int>(options.architecture)
       << ";p=" << static_cast<int>(options.approx_policy)
       << ";min=" << (options.minimize ? 1 : 0)
       << ";cut=" << options.cut_budget;
  return text.str();
}

}  // namespace

std::string CostLedger::path_in(const std::string& cache_dir) {
  return (fs::path(cache_dir) / kFileName).string();
}

std::uint64_t CostLedger::model_digest(const stg::Stg& stg, const SynthesisOptions& options) {
  return model_digest_from_key(ModelCache::key_of(stg, options));
}

std::uint64_t CostLedger::entry_digest(const stg::Stg& stg, const SynthesisOptions& options) {
  return entry_digest_from_key(ModelCache::key_of(stg, options), options);
}

std::uint64_t CostLedger::model_digest_from_key(std::string_view model_key) {
  return util::fnv1a64(model_key);
}

std::uint64_t CostLedger::text_digest(std::string_view text) {
  return util::fnv1a64(text);
}

std::uint64_t CostLedger::entry_digest_from_key(std::string_view model_key,
                                                const SynthesisOptions& options) {
  std::string text(model_key);
  text += '\x1f';
  text += derivation_fingerprint(options);
  return util::fnv1a64(text);
}

std::string CostLedger::key_of(std::string_view kind, std::uint64_t digest,
                               std::string_view signal) {
  char hex[17];
  std::snprintf(hex, sizeof hex, "%016llx", static_cast<unsigned long long>(digest));
  std::string key;
  key.reserve(kind.size() + 1 + 16 + (signal.empty() ? 0 : signal.size() + 1));
  key.append(kind);
  key.push_back(':');
  key.append(hex);
  if (!signal.empty()) {
    key.push_back(':');
    key.append(signal);
  }
  return key;
}

double CostLedger::estimate(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.estimate_misses;
    return 0;
  }
  ++stats_.estimate_hits;
  return it->second.ewma_seconds;
}

void CostLedger::observe(const std::string& key, double seconds) {
  if (!std::isfinite(seconds) || seconds < 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = entries_[key];
  if (entry.samples == 0) {
    entry.ewma_seconds = seconds;
  } else {
    entry.ewma_seconds = kAlpha * seconds + (1 - kAlpha) * entry.ewma_seconds;
  }
  ++entry.samples;
  ++stats_.observations;
}

double CostLedger::entry_estimate(const stg::Stg& stg, const SynthesisOptions& options) const {
  const std::uint64_t model = model_digest(stg, options);
  const std::uint64_t entry = entry_digest(stg, options);
  double total = estimate(key_of("model", model));
  for (const stg::SignalId signal : stg.non_input_signals()) {
    const std::string& name = stg.signal_name(signal);
    total += estimate(key_of("derive", entry, name));
    total += estimate(key_of("minimize", entry, name));
  }
  return total;
}

std::size_t CostLedger::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

CostLedgerStats CostLedger::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  CostLedgerStats out = stats_;
  out.entries = entries_.size();
  return out;
}

void CostLedger::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  stats_ = CostLedgerStats{};
}

std::string CostLedger::serialize() const {
  // Keys are emitted sorted so the image is a deterministic function of the
  // table contents — byte-identical saves for equal tables, which keeps the
  // racing-writers story simple (any complete image is as good as another).
  std::map<std::string, Entry> sorted;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    sorted.insert(entries_.begin(), entries_.end());
  }
  util::BinaryWriter payload;
  payload.u64(sorted.size());
  for (const auto& [key, entry] : sorted) {
    payload.str(key);
    payload.f64(entry.ewma_seconds);
    payload.u64(entry.samples);
  }
  util::BinaryWriter image;
  image.raw(std::string_view(kMagic, kMagicSize));
  image.u32(kFormatVersion);
  image.raw(payload.data());
  image.u64(util::fnv1a64(payload.data()));
  return image.take();
}

bool CostLedger::is_ledger_image(std::string_view image) {
  return image.size() >= kMagicSize &&
         image.substr(0, kMagicSize) == std::string_view(kMagic, kMagicSize);
}

bool CostLedger::merge_image(std::string_view image) {
  if (!is_ledger_image(image)) return false;
  try {
    util::BinaryReader header(image.substr(kMagicSize));
    if (header.u32() != kFormatVersion) return false;
    // Everything between the version and the trailing checksum is payload.
    const std::size_t payload_size = header.remaining() < sizeof(std::uint64_t)
                                         ? 0
                                         : header.remaining() - sizeof(std::uint64_t);
    const std::string_view payload = image.substr(kMagicSize + 4, payload_size);
    util::BinaryReader trailer(image.substr(kMagicSize + 4 + payload_size));
    if (trailer.u64() != util::fnv1a64(payload)) return false;

    util::BinaryReader reader(payload);
    const std::size_t count = reader.count(kMaxEntries, "cost ledger entries");
    std::vector<std::pair<std::string, Entry>> loaded;
    loaded.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      std::string key = reader.str();
      Entry entry;
      entry.ewma_seconds = reader.f64();
      entry.samples = reader.u64();
      if (!std::isfinite(entry.ewma_seconds) || entry.ewma_seconds < 0) return false;
      loaded.emplace_back(std::move(key), entry);
    }
    if (!reader.at_end()) return false;

    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [key, entry] : loaded) {
      stats_.observations += entry.samples;
      entries_[std::move(key)] = entry;
    }
    return true;
  } catch (const std::exception&) {
    return false;  // truncated payload — BinaryReader threw ParseError
  }
}

bool CostLedger::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in.good() && !in.eof()) return false;
  return merge_image(buffer.str());
}

bool CostLedger::save(const std::string& path) const {
  const std::string image = serialize();
  try {
    const fs::path final_path(path);
    if (final_path.has_parent_path()) {
      std::error_code ec;
      fs::create_directories(final_path.parent_path(), ec);
    }
    // Unique temp name (pid + random token + sequence) so concurrent shards
    // writing into one directory never collide on the staging file; rename
    // is atomic within the filesystem, so readers only ever see a complete
    // image and the last writer wins.
    static std::atomic<std::uint64_t> sequence{0};
    std::random_device rd;
    char suffix[64];
    std::snprintf(suffix, sizeof suffix, ".tmp-%lu-%08x-%llu",
                  static_cast<unsigned long>(::getpid()), static_cast<unsigned>(rd()),
                  static_cast<unsigned long long>(sequence.fetch_add(1)));
    const fs::path temp_path = final_path.string() + suffix;

    {
      std::ofstream out(temp_path, std::ios::binary | std::ios::trunc);
      if (!out) return false;
      out.write(image.data(), static_cast<std::streamsize>(image.size()));
      out.flush();
      if (!out.good()) {
        out.close();
        std::error_code ec;
        fs::remove(temp_path, ec);
        return false;
      }
    }
    std::error_code ec;
    fs::rename(temp_path, final_path, ec);
    if (ec) {
      fs::remove(temp_path, ec);
      return false;
    }
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace punt::core
