// CostLedger — persistent measured per-node costs driving dispatch order.
//
// Every synthesis run already measures the thread-CPU cost of each task-graph
// node in its TaskTrace; until now that signal was discarded when the run
// ended.  The ledger keeps it: an EWMA cost table keyed by stable node
// identity, folded after every run and consulted before the next one, so the
// executor can dispatch ready nodes longest-processing-time-first instead of
// by static priority alone.  The same table doubles as a weights source for
// `punt bench run --weights` greedy-LPT sharding — one artifact tunes both
// intra-run dispatch and cross-shard placement.
//
// Keying.  A node's identity must survive process restarts and be immune to
// node-id renumbering across differently-shaped batches, so it is derived
// from *what the node computes*, not where it sat in a graph:
//
//   model    nodes: "model:<model digest>"            (shared by arch sweeps,
//                                                      like the ModelCache key)
//   derive   nodes: "derive:<entry digest>:<signal>"
//   minimize nodes: "minimize:<entry digest>:<signal>"
//   lint     nodes: "lint:<text digest>"              (per-file deep-lint cost,
//                                                      keyed by the raw `.g` text)
//
// where <model digest> is fnv1a64 of the ModelCache key (canonical `.g` text
// + model-options fingerprint) and <entry digest> additionally folds in the
// derivation-only options (method resolution, architecture, minimisation) —
// phase-2/3 costs genuinely differ across those, phase-1 cost does not.
//
// Persistence.  One `costs.puntledger` file living inside the model-cache
// directory (so the existing --model-cache-dir plumbing, CI actions/cache
// step and purge tooling cover it):
//
//   "PUNTLEDG"          8-byte magic
//   u32 format version  (kFormatVersion; bumped on any layout change)
//   payload             u64 entry count; per entry: key, f64 EWMA seconds,
//                       u64 observation count
//   u64 checksum        FNV-1a over the payload bytes
//
// load() never throws: a missing, truncated, corrupt or version-mismatched
// file degrades to an empty ledger (the next run simply re-learns costs).
// save() publishes via a unique temp file + atomic rename — the ModelStore
// discipline — so racing CI shards sharing a directory each publish a
// complete image and the last writer wins.
//
// The estimates only *order* work; they never change what any node computes,
// so results stay bit-identical whatever the ledger holds (tested).
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "src/core/synthesis.hpp"
#include "src/stg/stg.hpp"

namespace punt::core {

struct CostLedgerStats {
  std::size_t entries = 0;       // distinct keys resident
  std::size_t observations = 0;  // observe() calls folded in (incl. loaded)
  std::size_t estimate_hits = 0;    // estimate() calls that found a key
  std::size_t estimate_misses = 0;  // estimate() calls that did not
};

/// Thread-safe EWMA cost table with an atomic on-disk image.
class CostLedger {
 public:
  static constexpr std::uint32_t kFormatVersion = 1;
  static constexpr const char* kFileName = "costs.puntledger";
  /// EWMA smoothing: cost' = alpha * sample + (1 - alpha) * cost.  0.4 tracks
  /// drift (espresso cost changes when the spec changes) within ~3 runs while
  /// still damping scheduler-noise spikes.
  static constexpr double kAlpha = 0.4;

  CostLedger() = default;
  CostLedger(const CostLedger&) = delete;
  CostLedger& operator=(const CostLedger&) = delete;

  /// "<dir>/costs.puntledger" — where the ledger lives beside a model cache.
  static std::string path_in(const std::string& cache_dir);

  /// Digest of the phase-1 identity: fnv1a64 over the ModelCache key, so an
  /// architecture sweep shares one model-cost entry exactly as it shares one
  /// cached model.
  static std::uint64_t model_digest(const stg::Stg& stg, const SynthesisOptions& options);

  /// Digest of the per-entry derivation identity: the model digest extended
  /// with the derivation-only options (method, architecture, minimisation) —
  /// the fields that change what derive/minimize nodes cost.
  static std::uint64_t entry_digest(const stg::Stg& stg, const SynthesisOptions& options);

  /// The digests above from a precomputed ModelCache key: the batch front
  /// end already serialises every entry's STG for in-batch dedup, and
  /// re-deriving the key here would repeat that write_g per entry.
  static std::uint64_t model_digest_from_key(std::string_view model_key);
  static std::uint64_t entry_digest_from_key(std::string_view model_key,
                                             const SynthesisOptions& options);

  /// Digest of arbitrary text — what "lint:<digest>" nodes key on (the raw
  /// `.g` text, cheaper than a canonicalising parse and stable across runs).
  static std::uint64_t text_digest(std::string_view text);

  /// Key text for one node ("kind:digest" or "kind:digest:signal").
  static std::string key_of(std::string_view kind, std::uint64_t digest,
                            std::string_view signal = {});

  /// The current EWMA estimate for `key`, or 0 when the ledger has never
  /// observed it (an unknown node keeps the static band order).
  double estimate(const std::string& key) const;

  /// Folds one measured cost (seconds) into the key's EWMA.  Negative or
  /// non-finite samples are ignored — a corrupted clock must not poison the
  /// table.
  void observe(const std::string& key, double seconds);

  /// Sum of estimates over a whole entry's nodes (model + per-target-signal
  /// derive/minimize): the entry's predicted TotTim, the weight
  /// `punt bench run --weights=<ledger>` feeds the greedy-LPT partition.
  /// 0 when the ledger knows nothing about the entry.
  double entry_estimate(const stg::Stg& stg, const SynthesisOptions& options) const;

  std::size_t size() const;
  CostLedgerStats stats() const;
  void clear();

  /// Serialises the table into the file image (magic, version, payload,
  /// trailing checksum).  Exposed for tests.
  std::string serialize() const;

  /// True when `image` starts with the ledger magic — how `punt bench run
  /// --weights` tells a ledger file from a Table-1 JSON report.
  static bool is_ledger_image(std::string_view image);

  /// Merges the entries of a serialised image into this table (file entries
  /// replace same-key residents — disk is assumed at least as fresh).
  /// Returns false, leaving the table unchanged, on a damaged, truncated or
  /// version-mismatched image.  Never throws.
  bool merge_image(std::string_view image);

  /// load(): merge_image over the file at `path`; a missing or unreadable
  /// file is false (the ledger stays as it was — typically empty).
  bool load(const std::string& path);

  /// Atomically publishes the current table to `path` (unique temp + rename,
  /// creating the parent directory if needed).  Returns false — without
  /// throwing — when the path is unwritable.  Racing writers last-win with a
  /// complete image, never interleave.
  bool save(const std::string& path) const;

 private:
  struct Entry {
    double ewma_seconds = 0;
    std::uint64_t samples = 0;
  };

  mutable std::mutex mutex_;
  std::unordered_map<std::string, Entry> entries_;
  mutable CostLedgerStats stats_;
};

}  // namespace punt::core
