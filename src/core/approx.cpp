#include "src/core/approx.hpp"

#include <algorithm>
#include <set>

#include "src/util/error.hpp"

namespace punt::core {
namespace {

using logic::Cover;
using logic::Cube;
using logic::Lit;

/// True when `f` fires strictly after `element` in every run containing both.
bool after_element(const unf::Unfolding& unf, const SliceElement& element,
                   unf::EventId f) {
  if (element.is_event) {
    return f != element.event && unf.precedes(element.event, f);
  }
  const unf::EventId producer = unf.producer(element.condition);
  return f != producer && unf.precedes(producer, f) && !unf.co(element.condition, f);
}

/// Cube from `code` with the signals in `dc` dashed out.
Cube cube_with_dc(const stg::Code& code, const std::set<std::size_t>& dc) {
  Cube cube = Cube::from_code(code);
  for (const std::size_t s : dc) cube.set(s, Lit::DC);
  return cube;
}

/// Signals owning an instance in `slice_events` that is concurrent with the
/// given element.
std::set<std::size_t> concurrent_signals(const unf::Unfolding& unf,
                                         const SliceElement& element,
                                         const std::vector<unf::EventId>& slice_events) {
  std::set<std::size_t> out;
  for (const unf::EventId f : slice_events) {
    const stg::Label* label = unf.label(f);
    if (label == nullptr || label->dummy) continue;
    const bool concurrent = element.is_event ? unf.co(element.event, f)
                                             : unf.co(element.condition, f);
    if (concurrent) out.insert(label->signal.index());
  }
  return out;
}

}  // namespace

logic::Cover ApproxCover::combined(std::size_t variable_count) const {
  Cover out(variable_count);
  for (const CoverAtom& atom : atoms) out.add_all(atom.cover);
  out.make_irredundant_scc();
  return out;
}

Cube excitation_cover(const unf::Unfolding& unf, unf::EventId entry) {
  // Everything concurrent with the entry can fire while it stays excited, so
  // the ER slice's instances are exactly the events concurrent with it.
  std::set<std::size_t> dc;
  for (std::size_t i = 1; i < unf.event_count(); ++i) {
    const unf::EventId f(static_cast<std::uint32_t>(i));
    const stg::Label* label = unf.label(f);
    if (label == nullptr || label->dummy) continue;
    if (unf.co(entry, f)) dc.insert(label->signal.index());
  }
  return cube_with_dc(unf.excitation_code(entry), dc);
}

Cube mr_cover(const unf::Unfolding& unf, unf::ConditionId c,
              const std::vector<unf::EventId>& slice_events) {
  return cube_with_dc(unf.code(unf.producer(c)),
                      concurrent_signals(unf, SliceElement::of(c), slice_events));
}

Cover restricted_next_cover(const unf::Unfolding& unf, unf::ConditionId c,
                            unf::EventId bound,
                            const std::vector<unf::EventId>& slice_events) {
  const std::set<std::size_t> plain_dc =
      concurrent_signals(unf, SliceElement::of(c), slice_events);
  const stg::Code& base = unf.code(unf.producer(c));

  Cover out(base.size());
  for (const unf::ConditionId x : unf.preset(bound)) {
    if (x == c) continue;
    const unf::EventId trigger = unf.producer(x);
    const stg::Label* label = unf.label(trigger);
    if (label == nullptr || label->dummy) continue;  // ⊥ or dummy trigger: skip
    if (unf.precedes(trigger, unf.producer(c))) {
      // The trigger fired before `c` came into existence: its signal already
      // holds the fired value in the base code, so pinning it cannot exclude
      // the bound's excitation states.  An unusable term.
      continue;
    }
    std::set<std::size_t> dc = plain_dc;
    dc.erase(label->signal.index());  // pin the trigger's signal to not-yet-fired
    out.add(cube_with_dc(base, dc));
  }
  out.make_irredundant_scc();
  return out;
}

std::vector<unf::ConditionId> refining_set(const unf::Unfolding& unf,
                                           const SliceElement& element,
                                           const Slice& slice) {
  std::vector<unf::ConditionId> out;
  for (const unf::ConditionId c : slice_conditions(unf, slice)) {
    const bool concurrent = element.is_event ? unf.co(c, element.event)
                                             : unf.co(c, element.condition);
    if (concurrent) out.push_back(c);
  }
  return out;
}

Cube refinement_mr_cover(const unf::Unfolding& unf, unf::ConditionId c,
                         const SliceElement& element,
                         const std::vector<unf::EventId>& slice_events) {
  std::set<std::size_t> dc;
  for (const unf::EventId f : slice_events) {
    const stg::Label* label = unf.label(f);
    if (label == nullptr || label->dummy) continue;
    if (unf.co(c, f) && after_element(unf, element, f)) {
      dc.insert(label->signal.index());
    }
  }
  return cube_with_dc(unf.code(unf.producer(c)), dc);
}

bool refine_atom(const unf::Unfolding& unf, const ApproxCover& owner, CoverAtom& atom,
                 stg::SignalId offending) {
  const Slice& slice = owner.slices[atom.slice_index];
  const auto& slice_events = owner.slice_event_sets[atom.slice_index];

  // Only conditions produced by instances of the offending signal (or their
  // surroundings) can sharpen that signal's literal, but the paper's mask is
  // the whole refining set — restricted covers pin every non-successor
  // signal, which includes the offending one whenever possible.
  const std::vector<unf::ConditionId> refining =
      refining_set(unf, atom.element, slice);
  if (refining.empty()) return false;

  Cover mask(unf.stg().signal_count());
  for (const unf::ConditionId c : refining) {
    mask.add(refinement_mr_cover(unf, c, atom.element, slice_events));
  }
  mask.make_irredundant_scc();

  Cover refined = atom.cover.intersect(mask);
  refined.normalize();
  Cover before = atom.cover;
  before.normalize();
  if (refined == before) return false;

  // The mask may be unable to sharpen the offending signal (no instance of
  // it concurrent with the element); accept any strict shrink — progress is
  // measured by the caller through cover change.
  (void)offending;
  atom.cover = std::move(refined);
  return true;
}

namespace {

/// PaperChains policy: per bounding instance, choose the deepest input
/// condition and walk producers back to the entry; add the deadlock frontier
/// (conditions no slice event consumes) so unbounded runs stay covered.
std::vector<unf::ConditionId> chain_approximation_set(
    const unf::Unfolding& unf, const Slice& slice,
    const std::vector<unf::EventId>& slice_events,
    const std::vector<unf::ConditionId>& all_conditions) {
  std::set<unf::ConditionId> chosen;
  auto deeper = [&unf](unf::ConditionId a, unf::ConditionId b) {
    const std::size_t da = unf.config_size(unf.producer(a));
    const std::size_t db = unf.config_size(unf.producer(b));
    if (da != db) return da > db;
    return a > b;
  };
  const std::set<unf::ConditionId> in_slice(all_conditions.begin(), all_conditions.end());

  // Walk producers back towards the entry, collecting one condition per
  // level — the branch token always sits on one of them (Fig. 4(b):
  // {p10, p7, p4}).
  auto walk_back = [&](unf::ConditionId start) {
    unf::ConditionId current = start;
    while (current.valid() && chosen.insert(current).second) {
      const unf::EventId producer = unf.producer(current);
      if (producer == slice.entry || unf.is_initial(producer)) break;
      unf::ConditionId next;
      for (const unf::ConditionId x : unf.preset(producer)) {
        if (!in_slice.contains(x)) continue;
        if (!next.valid() || deeper(x, next)) next = x;
      }
      current = next;
    }
  };

  // One chain per bounding instance, from its deepest in-slice input.
  for (const unf::EventId g : slice.bounds) {
    unf::ConditionId start;
    for (const unf::ConditionId x : unf.preset(g)) {
      if (!in_slice.contains(x)) continue;
      if (!start.valid() || deeper(x, start)) start = x;
    }
    if (start.valid()) walk_back(start);
  }

  // One chain per frontier condition: a condition consumed by no live slice
  // event (cutoff consumers do not count — their postsets are excluded from
  // approximation sets, so runs effectively park there).
  std::set<unf::EventId> live_consumers;
  for (const unf::EventId f : slice_events) {
    if (!unf.is_initial(f) && !unf.is_cutoff(f)) live_consumers.insert(f);
  }
  for (const unf::EventId g : slice.bounds) {
    if (!unf.is_cutoff(g)) live_consumers.insert(g);
  }
  for (const unf::ConditionId c : all_conditions) {
    bool consumed = false;
    for (const unf::EventId f : unf.consumers(c)) {
      if (live_consumers.contains(f)) {
        consumed = true;
        break;
      }
    }
    if (!consumed) walk_back(c);
  }
  return {chosen.begin(), chosen.end()};
}

}  // namespace

ApproxCover approximate_cover(const unf::Unfolding& unf, stg::SignalId signal,
                              bool value, ApproxSetPolicy policy) {
  ApproxCover out;
  out.signal = signal;
  out.value = value;
  out.slices = signal_slices(unf, signal, value);

  for (std::size_t si = 0; si < out.slices.size(); ++si) {
    const Slice& slice = out.slices[si];
    out.slice_event_sets.push_back(slice_events(unf, slice));
    const auto& events = out.slice_event_sets.back();

    // C*e of the entry (absent for the ⊥ slice, paper §4.2).
    if (!unf.is_initial(slice.entry)) {
      CoverAtom atom;
      atom.element = SliceElement::of(slice.entry);
      atom.slice_index = si;
      atom.cover = Cover(unf.stg().signal_count());
      atom.cover.add(excitation_cover(unf, slice.entry));
      out.atoms.push_back(std::move(atom));
    }

    // Approximation set P'a and its MR covers.  Conditions produced by
    // cutoff events are skipped: their codes belong to states that the
    // cutoff's image represents with full context (DESIGN.md §5), and an
    // unrestricted frontier MR cover can poison the opposite set.
    std::vector<unf::ConditionId> all_conditions;
    for (const unf::ConditionId c : slice_conditions(unf, slice)) {
      if (!unf.is_cutoff(unf.producer(c))) all_conditions.push_back(c);
    }
    const std::vector<unf::ConditionId> pa =
        policy == ApproxSetPolicy::Full
            ? all_conditions
            : chain_approximation_set(unf, slice, events, all_conditions);

    for (const unf::ConditionId c : pa) {
      // A bound that can be enabled while c is marked makes every such
      // marking an opposite-set state; its excitation markings must be
      // excluded from c's MR cover (paper §4.2, generalised: the bound is
      // "compatible" when c feeds it or is concurrent with its whole
      // preset).
      std::vector<unf::EventId> compatible_bounds;
      for (const unf::EventId g : slice.bounds) {
        bool compatible = true;
        for (const unf::ConditionId x : unf.preset(g)) {
          if (x != c && !unf.co(c, x)) {
            compatible = false;
            break;
          }
        }
        if (compatible) compatible_bounds.push_back(g);
      }
      CoverAtom atom;
      atom.element = SliceElement::of(c);
      atom.slice_index = si;
      if (compatible_bounds.empty()) {
        atom.cover = Cover(unf.stg().signal_count());
        atom.cover.add(mr_cover(unf, c, events));
      } else {
        Cover cover = restricted_next_cover(unf, c, compatible_bounds.front(), events);
        for (std::size_t k = 1; k < compatible_bounds.size(); ++k) {
          cover =
              cover.intersect(restricted_next_cover(unf, c, compatible_bounds[k], events));
        }
        if (cover.empty()) continue;  // every marking of c excites some bound
        atom.cover = std::move(cover);
      }
      out.atoms.push_back(std::move(atom));
    }
  }
  return out;
}

RefineStats refine_until_disjoint(const unf::Unfolding& unf, ApproxCover& on,
                                  ApproxCover& off, std::size_t max_iterations) {
  RefineStats stats;
  std::set<std::pair<std::size_t, std::size_t>> stuck;
  while (stats.iterations < max_iterations) {
    // Find an offending (still refinable) pair of atoms.
    std::size_t oi = 0, oj = 0;
    bool found = false;
    bool any_intersecting = false;
    for (std::size_t i = 0; i < on.atoms.size() && !found; ++i) {
      for (std::size_t j = 0; j < off.atoms.size(); ++j) {
        if (!on.atoms[i].cover.intersects(off.atoms[j].cover)) continue;
        any_intersecting = true;
        if (stuck.contains({i, j})) continue;
        oi = i;
        oj = j;
        found = true;
        break;
      }
    }
    if (!any_intersecting) {
      stats.disjoint = true;
      return stats;
    }
    if (!found) return stats;  // every offending pair is stuck: caller falls back

    ++stats.iterations;
    const bool a = refine_atom(unf, on, on.atoms[oi], off.signal);
    const bool b = refine_atom(unf, off, off.atoms[oj], on.signal);
    if (a) ++stats.refined_atoms;
    if (b) ++stats.refined_atoms;
    if (!a && !b) stuck.insert({oi, oj});
  }
  return stats;
}

}  // namespace punt::core
