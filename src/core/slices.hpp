// Slices of the STG-unfolding segment (paper §3.3 / §4.1).
//
// A slice represents the connected set of SG states between a min-cut and a
// set of max-cuts.  For synthesis, every output signal's on-set (off-set) is
// partitioned into one slice per rising (falling) instance: the slice starts
// at the instance's minimal excitation cut and extends as far as the system
// can advance without exciting the opposite edge.
//
// Exact covers are derived by enumerating the cuts encapsulated in each
// slice (guarded BFS over the token game of the segment) and recovering
// their binary codes — the paper's exact method, exponential in concurrency
// but exactly equivalent to SG-based synthesis.
#pragma once

#include <cstddef>
#include <vector>

#include "src/logic/cover.hpp"
#include "src/stg/stg.hpp"
#include "src/unfolding/unfolding.hpp"

namespace punt::core {

/// One slice of the on- or off-set partitioning of a signal.
struct Slice {
  /// The entry instance: a rising/falling instance of the signal, or ⊥.
  unf::EventId entry;
  /// next(entry): the same-signal instances bounding the slice (empty when
  /// every continuation deadlocks or leaves through a cutoff).
  std::vector<unf::EventId> bounds;
  /// The slice's min-cut: the entry's minimal excitation cut (its minimal
  /// stable cut when entry is ⊥).
  Bitset min_cut;
  /// Value the signal's implementation must produce inside the slice.
  bool on_value = true;
};

/// The per-instance slices representing the on-set (`value`=1) or off-set
/// (`value`=0) of `signal` (paper §4.1): one per matching-polarity instance,
/// plus a ⊥ slice when the initial value already lies in the set.
std::vector<Slice> signal_slices(const unf::Unfolding& unf, stg::SignalId signal,
                                 bool value);

/// Events belonging to the slice: instances that can fire between the
/// min-cut and a max-cut — concurrent with or causally after the entry and
/// not past any bounding instance.  The entry itself is included; bounds are
/// not.
std::vector<unf::EventId> slice_events(const unf::Unfolding& unf, const Slice& slice);

/// Conditions of the slice that are *sequential to the entry*: produced by a
/// slice event causally at-or-after the entry.  These are the candidates for
/// the approximation set P'a (paper §4.2).
std::vector<unf::ConditionId> slice_conditions(const unf::Unfolding& unf,
                                               const Slice& slice);

/// Result of exact cut enumeration over one slice.
struct SliceStates {
  /// Distinct binary codes of the encapsulated cuts.
  std::vector<stg::Code> codes;
  /// Number of distinct cuts visited (>= codes.size()).
  std::size_t cut_count = 0;
};

/// Enumerates the cuts encapsulated in `slice` (guarded BFS: a cut belongs
/// iff the signal's implied value there equals slice.on_value; expansion
/// stops at excluded cuts).  The implied value is evaluated on the original
/// net's token game, so truncation at cutoffs cannot misclassify a state.
/// Throws CapacityError past `cut_budget` distinct cuts (0 = unlimited).
SliceStates enumerate_slice(const unf::Unfolding& unf, stg::SignalId signal,
                            const Slice& slice, std::size_t cut_budget = 0);

/// Exact cover of the on-set (`value`=1) or off-set (`value`=0) of `signal`,
/// as the union of its slices' state codes — one minterm cube per distinct
/// code (paper §4.1).  Equivalent to the SG-derived cover.
logic::Cover exact_cover(const unf::Unfolding& unf, stg::SignalId signal, bool value,
                         std::size_t cut_budget = 0);

/// Exact cover of the excitation region ER(+signal) (`rising`) or
/// ER(-signal): guarded BFS from each matching instance's minimal excitation
/// cut while the edge stays enabled (output persistency keeps each region
/// connected).  Used by the standard-C / RS-latch architectures.
logic::Cover exact_er_cover(const unf::Unfolding& unf, stg::SignalId signal,
                            bool rising, std::size_t cut_budget = 0);

}  // namespace punt::core
