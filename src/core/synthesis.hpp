// Synthesis drivers: the complete flow from an STG to per-signal Boolean
// covers, in three methods and three implementation architectures.
//
// Methods:
//   * UnfoldingApprox — the paper's contribution ("PUNT ACG"): build the
//     STG-unfolding segment, approximate on/off covers from slices, refine
//     until disjoint, fall back to exact per-slice enumeration if refinement
//     stalls;
//   * UnfoldingExact  — exact covers by slice-cut enumeration (paper §4.1);
//   * StateGraph      — the conventional SG flow (the SIS / Petrify stand-in
//     of Table 1 and Fig. 6).
//
// Architectures (paper §2):
//   * ComplexGate — one atomic SOP gate (with internal feedback) per signal;
//   * StandardC   — set/reset excitation functions driving a Muller
//     C-element;
//   * RsLatch     — the same functions driving an RS latch.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/approx.hpp"
#include "src/logic/cover.hpp"
#include "src/logic/espresso.hpp"
#include "src/stg/stg.hpp"
#include "src/unfolding/unfolding.hpp"

namespace punt::util {
struct TaskTrace;  // task_graph.hpp
}

namespace punt::core {

enum class Method { UnfoldingApprox, UnfoldingExact, StateGraph };
enum class Architecture { ComplexGate, StandardC, RsLatch };

struct SynthesisOptions {
  Method method = Method::UnfoldingApprox;
  Architecture architecture = Architecture::ComplexGate;
  ApproxSetPolicy approx_policy = ApproxSetPolicy::Full;
  /// Run espresso on the final covers (the paper's EspTim step).
  bool minimize = true;
  /// Reject STGs with output-persistency violations up front.
  bool check_persistency = true;
  /// Throw CscError on a Complete State Coding conflict; if false the
  /// conflict is recorded in the result and the signal is skipped.
  bool throw_on_csc = true;
  /// Worker threads for the per-signal derivation pipeline (phases 2–3).
  /// 1 = run inline (no threads); 0 = one worker per hardware thread.
  /// Results are bit-identical for every value (see DESIGN.md §7).
  std::size_t jobs = 1;
  /// Budgets forwarded to the substrates (0 = unlimited where supported).
  std::size_t state_budget = 2000000;   // StateGraph method
  std::size_t event_budget = 200000;    // unfolding construction
  std::size_t cut_budget = 2000000;     // exact slice enumeration
  unf::UnfoldOptions::CutoffPolicy cutoff = unf::UnfoldOptions::CutoffPolicy::McMillan;
};

/// The implementation of one output/internal signal.
struct SignalImplementation {
  stg::SignalId signal;
  std::string name;  // the signal's STG name, for reports and diagnostics

  /// Final correct covers (refined/exact); on ∩ off = ∅ unless csc_conflict.
  logic::Cover on_cover;
  logic::Cover off_cover;

  /// ComplexGate: the gate function (minimised) and which phase it covers.
  logic::Cover gate;
  bool gate_covers_on = true;

  /// StandardC / RsLatch: minimised set and reset excitation functions.
  logic::Cover set_function;
  logic::Cover reset_function;

  bool used_exact_fallback = false;  // refinement stalled, exact covers used
  bool csc_conflict = false;         // exact covers still intersect
  logic::MinimizeStats min_stats;

  /// Literal count of this signal's logic (gate, or set+reset).
  std::size_t literal_count(Architecture arch) const;

  /// True when both implementations describe the same circuit: identity,
  /// covers, gate/set/reset functions and derivation flags all match.
  /// MinimizeStats bookkeeping is excluded.  This is the comparison the
  /// pipeline's determinism guarantee is stated in terms of.
  bool same_logic(const SignalImplementation& other) const;
};

struct SynthesisResult {
  Method method = Method::UnfoldingApprox;
  Architecture architecture = Architecture::ComplexGate;
  std::vector<SignalImplementation> signals;

  // The paper's Table 1 time breakdown, in seconds.  unfold_seconds is the
  // model's wall-clock construction cost; derive_seconds and
  // minimize_seconds are the *sum of per-signal task CPU times*, so they
  // measure aggregate work and stay meaningful when the executor runs the
  // nodes concurrently (preemption under oversubscription is not counted).
  // total_seconds is this run's own work — model resolution wall-clock
  // (near zero on a ModelCache hit) plus the summed task times — NOT the
  // run's span in a shared batch schedule, where other entries' nodes
  // interleave.  With jobs = 1 and no cache it is the sequential wall
  // clock, matching the paper's TotTim column.
  double unfold_seconds = 0;    // UnfTim (SG construction time for StateGraph)
  double derive_seconds = 0;    // SynTim: cover derivation + refinement
  double minimize_seconds = 0;  // EspTim
  double total_seconds = 0;     // TotTim

  unf::UnfoldStats unfold_stats;   // segment size (unfolding methods)
  std::size_t sg_states = 0;       // SG size (StateGraph method)
  std::size_t refinement_iterations = 0;
  std::size_t exact_fallbacks = 0;

  /// Total literal count — the paper's LitCnt column.
  std::size_t literal_count() const;

  /// O(1) lookup via the signal index; throws ValidationError naming the
  /// known signals when `signal` has no implementation (e.g. an input).
  const SignalImplementation& implementation(stg::SignalId signal) const;

  /// Rebuilds the signal → position index after `signals` was edited by
  /// hand (the pipeline maintains it for results it produces).
  void rebuild_signal_index();

 private:
  std::unordered_map<std::uint32_t, std::size_t> signal_index_;
};

class ModelCache;  // model_cache.hpp
class CostLedger;  // cost_ledger.hpp

/// Synthesises every output/internal signal of `stg` through the task-graph
/// executor (one model node, then separately schedulable derive and
/// minimize nodes per signal — DESIGN.md §7).  Throws
/// ImplementabilityError for inconsistent/non-persistent STGs, CapacityError
/// on blown budgets, CscError on coding conflicts (when throw_on_csc); with
/// options.jobs > 1 the exception that surfaces is the one of the
/// lowest-index failing signal, exactly what the sequential run reports.
/// When `cache` is given, the phase-1 semantic model is resolved through it
/// (lookup-or-build), so repeated calls over the same STG — or calls that
/// differ only in derivation options such as the architecture — skip model
/// construction entirely.  Results are byte-identical with and without a
/// cache (the model is immutable either way).  When `trace` is given it
/// receives the executed schedule (`punt synth --trace-schedule`).  When
/// `ledger` is given, dispatch is ordered longest-task-first within each
/// priority band by its learned costs and the run's measured costs are
/// folded back in afterwards; results are byte-identical with and without
/// one (estimates only reorder dispatch — DESIGN.md §10).
SynthesisResult synthesize(const stg::Stg& stg, const SynthesisOptions& options = {},
                           ModelCache* cache = nullptr,
                           util::TaskTrace* trace = nullptr,
                           CostLedger* ledger = nullptr);

}  // namespace punt::core
