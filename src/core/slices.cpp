#include "src/core/slices.hpp"

#include <deque>
#include <set>
#include <unordered_map>

#include "src/util/error.hpp"

namespace punt::core {

std::vector<Slice> signal_slices(const unf::Unfolding& unf, stg::SignalId signal,
                                 bool value) {
  std::vector<Slice> out;
  const stg::Polarity entry_polarity = value ? stg::Polarity::Rise : stg::Polarity::Fall;
  for (const unf::EventId e : unf.instances_of_signal(signal)) {
    const stg::Label* label = unf.label(e);
    if (label->polarity != entry_polarity) continue;
    Slice slice;
    slice.entry = e;
    slice.bounds = unf.next_instances(e);
    slice.min_cut = unf.min_excitation_cut(e);
    slice.on_value = value;
    out.push_back(std::move(slice));
  }
  // The ⊥ slice: when the initial value already lies in the requested set,
  // states from the initial cut up to the first opposite instances form a
  // slice entered by the initial transition (paper §4.1).
  if ((unf.stg().initial_value(signal) != 0) == value) {
    Slice slice;
    slice.entry = unf::Unfolding::initial_event();
    slice.bounds = unf.first_instances(signal);
    slice.min_cut = unf.min_stable_cut(slice.entry);
    slice.on_value = value;
    out.push_back(std::move(slice));
  }
  return out;
}

std::vector<unf::EventId> slice_events(const unf::Unfolding& unf, const Slice& slice) {
  std::vector<unf::EventId> out;
  for (std::size_t i = 0; i < unf.event_count(); ++i) {
    const unf::EventId f(static_cast<std::uint32_t>(i));
    if (!unf.precedes(slice.entry, f) && !unf.co(slice.entry, f)) continue;
    bool past_bound = false;
    for (const unf::EventId g : slice.bounds) {
      if (unf.precedes(g, f)) {
        past_bound = true;
        break;
      }
    }
    if (!past_bound) out.push_back(f);
  }
  return out;
}

std::vector<unf::ConditionId> slice_conditions(const unf::Unfolding& unf,
                                               const Slice& slice) {
  std::vector<unf::ConditionId> out;
  for (const unf::EventId f : slice_events(unf, slice)) {
    if (!unf.precedes(slice.entry, f)) continue;  // sequential to the entry only
    for (const unf::ConditionId c : unf.postset(f)) out.push_back(c);
  }
  return out;
}

SliceStates enumerate_slice(const unf::Unfolding& unf, stg::SignalId signal,
                            const Slice& slice, std::size_t cut_budget) {
  const stg::Stg& stg = unf.stg();
  const pn::PetriNet& net = stg.net();

  // Implied value evaluated on the *original* net, so cuts at the truncation
  // frontier (behind cutoffs) are still classified exactly.
  auto implied = [&](const pn::Marking& marking, const stg::Code& code) -> bool {
    const std::uint8_t now = code[signal.index()];
    for (const pn::TransitionId t : net.enabled_transitions(marking)) {
      const stg::Label& l = stg.label(t);
      if (!l.dummy && l.signal == signal) return now == 0;  // excited: flips
    }
    return now != 0;
  };

  SliceStates result;
  std::set<stg::Code> seen_codes;
  std::unordered_map<std::size_t, std::vector<Bitset>> seen_cuts;
  std::deque<std::pair<Bitset, stg::Code>> queue;

  // The code at the min-cut: the entry's excitation code ([entry] without
  // the entry's own edge), or the initial code for the ⊥ slice.
  const stg::Code min_code = unf.is_initial(slice.entry)
                                 ? stg.initial_code()
                                 : unf.excitation_code(slice.entry);

  // Traversal never fires a bounding instance (the slice's frontier); every
  // traversed cut with the target implied value is collected.  The region of
  // member cuts is not convex (e.g. the ⊥ off-slice starts at an excitation
  // cut of the rising edge, which is an on-state), so traversal continues
  // through non-member cuts — only collection is guarded.
  std::vector<std::uint8_t> is_bound(unf.event_count(), 0);
  for (const unf::EventId g : slice.bounds) is_bound[g.index()] = 1;

  auto try_enqueue = [&](const Bitset& cut, const stg::Code& code) {
    auto& bucket = seen_cuts[cut.hash()];
    for (const Bitset& b : bucket) {
      if (b == cut) return;
    }
    bucket.push_back(cut);
    ++result.cut_count;
    if (cut_budget != 0 && result.cut_count > cut_budget) {
      throw CapacityError("slice enumeration for signal '" + stg.signal_name(signal) +
                          "' exceeded the cut budget of " + std::to_string(cut_budget) +
                          "; use the approximate method");
    }
    if (implied(unf.marking_of_cut(cut), code) == slice.on_value &&
        seen_codes.insert(code).second) {
      result.codes.push_back(code);
    }
    queue.emplace_back(cut, code);
  };

  try_enqueue(slice.min_cut, min_code);
  while (!queue.empty()) {
    auto [cut, code] = std::move(queue.front());
    queue.pop_front();
    for (std::size_t i = 1; i < unf.event_count(); ++i) {
      const unf::EventId e(static_cast<std::uint32_t>(i));
      if (is_bound[i]) continue;
      bool enabled = true;
      for (const unf::ConditionId c : unf.preset(e)) {
        if (!cut.test(c.index())) {
          enabled = false;
          break;
        }
      }
      if (!enabled) continue;
      Bitset next_cut = cut;
      for (const unf::ConditionId c : unf.preset(e)) next_cut.reset(c.index());
      for (const unf::ConditionId c : unf.postset(e)) next_cut.set(c.index());
      stg::Code next_code = code;
      stg.apply(unf.transition(e), next_code);
      try_enqueue(next_cut, next_code);
    }
  }
  return result;
}

logic::Cover exact_cover(const unf::Unfolding& unf, stg::SignalId signal, bool value,
                         std::size_t cut_budget) {
  logic::Cover cover(unf.stg().signal_count());
  std::set<stg::Code> seen;
  for (const Slice& slice : signal_slices(unf, signal, value)) {
    const SliceStates states = enumerate_slice(unf, signal, slice, cut_budget);
    for (const stg::Code& code : states.codes) {
      if (seen.insert(code).second) cover.add(logic::Cube::from_code(code));
    }
  }
  return cover;
}

logic::Cover exact_er_cover(const unf::Unfolding& unf, stg::SignalId signal,
                            bool rising, std::size_t cut_budget) {
  const stg::Stg& stg = unf.stg();
  const pn::PetriNet& net = stg.net();

  auto edge_enabled = [&](const pn::Marking& marking) {
    for (const pn::TransitionId t : net.enabled_transitions(marking)) {
      const stg::Label& l = stg.label(t);
      if (!l.dummy && l.signal == signal && l.rising() == rising) return true;
    }
    return false;
  };

  logic::Cover cover(stg.signal_count());
  std::set<stg::Code> seen_codes;
  std::unordered_map<std::size_t, std::vector<Bitset>> seen_cuts;
  std::deque<std::pair<Bitset, stg::Code>> queue;
  std::size_t cut_count = 0;

  auto try_enqueue = [&](const Bitset& cut, const stg::Code& code) {
    auto& bucket = seen_cuts[cut.hash()];
    for (const Bitset& b : bucket) {
      if (b == cut) return;
    }
    bucket.push_back(cut);
    if (!edge_enabled(unf.marking_of_cut(cut))) return;  // left the region
    if (cut_budget != 0 && ++cut_count > cut_budget) {
      throw CapacityError("ER enumeration for signal '" + stg.signal_name(signal) +
                          "' exceeded the cut budget");
    }
    if (seen_codes.insert(code).second) cover.add(logic::Cube::from_code(code));
    queue.emplace_back(cut, code);
  };

  for (const unf::EventId e : unf.instances_of_signal(signal)) {
    if (unf.label(e)->rising() != rising) continue;
    try_enqueue(unf.min_excitation_cut(e), unf.excitation_code(e));
  }
  while (!queue.empty()) {
    auto [cut, code] = std::move(queue.front());
    queue.pop_front();
    for (std::size_t i = 1; i < unf.event_count(); ++i) {
      const unf::EventId e(static_cast<std::uint32_t>(i));
      bool enabled = true;
      for (const unf::ConditionId c : unf.preset(e)) {
        if (!cut.test(c.index())) {
          enabled = false;
          break;
        }
      }
      if (!enabled) continue;
      Bitset next_cut = cut;
      for (const unf::ConditionId c : unf.preset(e)) next_cut.reset(c.index());
      for (const unf::ConditionId c : unf.postset(e)) next_cut.set(c.index());
      stg::Code next_code = code;
      stg.apply(unf.transition(e), next_code);
      try_enqueue(next_cut, next_code);
    }
  }
  return cover;
}

}  // namespace punt::core
