#include "src/logic/espresso.hpp"

#include <algorithm>

#include "src/util/error.hpp"

namespace punt::logic {
namespace {

bool cube_hits_cover(const Cube& c, const Cover& cover) {
  for (const Cube& b : cover.cubes()) {
    if (c.intersects(b)) return true;
  }
  return false;
}

/// Greedily raises literals of `c` to DC while the cube stays disjoint from
/// `blocking`.  Raising order: variables whose raising frees the most cubes
/// are tried on every pass until a fixpoint.
Cube expand_cube(Cube c, const Cover& blocking) {
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t v = 0; v < c.size(); ++v) {
      if (c.get(v) == Lit::DC) continue;
      Cube trial = c;
      trial.set(v, Lit::DC);
      if (!cube_hits_cover(trial, blocking)) {
        c = std::move(trial);
        progress = true;
      }
    }
  }
  return c;
}

/// EXPAND phase: expand every cube against the blocking cover, then drop
/// cubes swallowed by an earlier expansion (single-cube containment).
Cover expand(const Cover& f, const Cover& blocking) {
  std::vector<Cube> cubes = f.cubes();
  // Expand the widest cubes first; they are most likely to absorb others.
  std::sort(cubes.begin(), cubes.end(), [](const Cube& a, const Cube& b) {
    return a.literal_count() < b.literal_count();
  });
  Cover out(f.variable_count());
  for (const Cube& c : cubes) {
    bool covered = false;
    for (const Cube& done : out.cubes()) {
      if (done.contains(c)) {
        covered = true;
        break;
      }
    }
    if (!covered) out.add(expand_cube(c, blocking));
  }
  out.make_irredundant_scc();
  return out;
}

/// IRREDUNDANT phase: removes cubes covered by the rest of the cover plus
/// the don't-care cover.
Cover irredundant(const Cover& f, const Cover& dc) {
  std::vector<Cube> cubes = f.cubes();
  // Try to remove small cubes first; large cubes are more likely essential.
  std::sort(cubes.begin(), cubes.end(), [](const Cube& a, const Cube& b) {
    return a.literal_count() > b.literal_count();
  });
  std::vector<bool> removed(cubes.size(), false);
  for (std::size_t i = 0; i < cubes.size(); ++i) {
    Cover rest(f.variable_count());
    for (std::size_t j = 0; j < cubes.size(); ++j) {
      if (j != i && !removed[j]) rest.add(cubes[j]);
    }
    rest.add_all(dc);
    if (rest.contains_cube(cubes[i])) removed[i] = true;
  }
  Cover out(f.variable_count());
  for (std::size_t i = 0; i < cubes.size(); ++i) {
    if (!removed[i]) out.add(cubes[i]);
  }
  return out;
}

/// REDUCE phase: shrinks each cube to the smallest cube still covering the
/// points only it covers (w.r.t. the rest plus DC), freeing room for a
/// different EXPAND direction.
Cover reduce(const Cover& f, const Cover& dc) {
  Cover current = f;
  std::vector<Cube> cubes = current.cubes();
  std::sort(cubes.begin(), cubes.end(), [](const Cube& a, const Cube& b) {
    return a.literal_count() < b.literal_count();
  });
  std::vector<Cube> result;
  for (std::size_t i = 0; i < cubes.size(); ++i) {
    Cover rest(f.variable_count());
    for (std::size_t j = 0; j < cubes.size(); ++j) {
      if (j != i) rest.add(j < i ? result[j] : cubes[j]);
    }
    rest.add_all(dc);
    // Unique part of cubes[i]: complement of rest, inside cubes[i].
    const Cover unique = rest.cofactor(cubes[i]).complement();
    if (unique.empty()) {
      result.push_back(cubes[i]);  // fully redundant; leave for IRREDUNDANT
      continue;
    }
    Cube super = unique.cube(0);
    for (std::size_t k = 1; k < unique.cube_count(); ++k) {
      super = super.supercube_with(unique.cube(k));
    }
    // Pull the supercube back into the subspace of cubes[i].
    const auto reduced = super.intersect(cubes[i]);
    result.push_back(reduced ? *reduced : cubes[i]);
  }
  return Cover(f.variable_count(), std::move(result));
}

std::size_t cost(const Cover& f) { return f.literal_count() + f.cube_count(); }

}  // namespace

Cover espresso(const Cover& on, const Cover& blocking, MinimizeStats* stats,
               const EspressoOptions& options) {
  if (on.intersects(blocking)) {
    throw ValidationError(
        "espresso: the on-set cover intersects the blocking cover; the "
        "specification of the function is contradictory");
  }
  if (stats) {
    stats->initial_cubes = on.cube_count();
    stats->initial_literals = on.literal_count();
  }
  // The don't-care cover only sharpens IRREDUNDANT and REDUCE; computing it
  // needs a complement, which can blow up on adversarial (wide-cube) covers.
  // Cap the complement's size and fall back to an empty DC past the cap —
  // still correct, marginally less minimal.
  constexpr std::size_t kDcComplementCap = 200000;
  Cover combined = on;
  combined.add_all(blocking);
  const Cover dc =
      combined.complement_capped(kDcComplementCap).value_or(Cover(on.variable_count()));

  Cover f = expand(on, blocking);
  f = irredundant(f, dc);
  std::size_t best_cost = cost(f);
  std::size_t iterations = 0;
  for (; iterations < options.max_iterations; ++iterations) {
    Cover candidate = reduce(f, dc);
    candidate = expand(candidate, blocking);
    candidate = irredundant(candidate, dc);
    if (cost(candidate) >= best_cost) break;
    best_cost = cost(candidate);
    f = std::move(candidate);
  }
  if (stats) {
    stats->final_cubes = f.cube_count();
    stats->final_literals = f.literal_count();
    stats->iterations = iterations;
  }
  return f;
}

Cover espresso_with_dc(const Cover& on, const Cover& dc, MinimizeStats* stats,
                       const EspressoOptions& options) {
  Cover combined = on;
  combined.add_all(dc);
  return espresso(on, combined.complement(), stats, options);
}

}  // namespace punt::logic
