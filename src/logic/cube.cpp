#include "src/logic/cube.hpp"

#include "src/util/error.hpp"

namespace punt::logic {

Cube Cube::from_string(std::string_view text) {
  Cube out(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    switch (text[i]) {
      case '0': out.set(i, Lit::Zero); break;
      case '1': out.set(i, Lit::One); break;
      case '-': out.set(i, Lit::DC); break;
      default:
        throw ValidationError(std::string("invalid cube character '") + text[i] + "'");
    }
  }
  return out;
}

Cube Cube::from_code(const std::vector<std::uint8_t>& code) {
  Cube out(code.size());
  for (std::size_t i = 0; i < code.size(); ++i) {
    out.set(i, code[i] ? Lit::One : Lit::Zero);
  }
  return out;
}

std::size_t Cube::literal_count() const {
  std::size_t n = 0;
  for (const std::uint8_t l : lits_) {
    if (l != static_cast<std::uint8_t>(Lit::DC)) ++n;
  }
  return n;
}

bool Cube::contains(const Cube& other) const {
  for (std::size_t i = 0; i < lits_.size(); ++i) {
    if (lits_[i] != static_cast<std::uint8_t>(Lit::DC) && lits_[i] != other.lits_[i]) {
      return false;
    }
  }
  return true;
}

bool Cube::intersects(const Cube& other) const {
  for (std::size_t i = 0; i < lits_.size(); ++i) {
    const std::uint8_t a = lits_[i];
    const std::uint8_t b = other.lits_[i];
    if (a != static_cast<std::uint8_t>(Lit::DC) &&
        b != static_cast<std::uint8_t>(Lit::DC) && a != b) {
      return false;
    }
  }
  return true;
}

std::optional<Cube> Cube::intersect(const Cube& other) const {
  Cube out(lits_.size());
  for (std::size_t i = 0; i < lits_.size(); ++i) {
    const std::uint8_t a = lits_[i];
    const std::uint8_t b = other.lits_[i];
    if (a == static_cast<std::uint8_t>(Lit::DC)) {
      out.lits_[i] = b;
    } else if (b == static_cast<std::uint8_t>(Lit::DC) || a == b) {
      out.lits_[i] = a;
    } else {
      return std::nullopt;
    }
  }
  return out;
}

std::size_t Cube::distance(const Cube& other) const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < lits_.size(); ++i) {
    const std::uint8_t a = lits_[i];
    const std::uint8_t b = other.lits_[i];
    if (a != static_cast<std::uint8_t>(Lit::DC) &&
        b != static_cast<std::uint8_t>(Lit::DC) && a != b) {
      ++n;
    }
  }
  return n;
}

Cube Cube::supercube_with(const Cube& other) const {
  Cube out(lits_.size());
  for (std::size_t i = 0; i < lits_.size(); ++i) {
    out.lits_[i] = lits_[i] == other.lits_[i] ? lits_[i]
                                              : static_cast<std::uint8_t>(Lit::DC);
  }
  return out;
}

bool Cube::covers_point(const std::vector<std::uint8_t>& code) const {
  for (std::size_t i = 0; i < lits_.size(); ++i) {
    if (lits_[i] != static_cast<std::uint8_t>(Lit::DC) && lits_[i] != code[i]) {
      return false;
    }
  }
  return true;
}

std::string Cube::to_string() const {
  std::string out;
  out.reserve(lits_.size());
  for (const std::uint8_t l : lits_) {
    out += l == 0 ? '0' : (l == 1 ? '1' : '-');
  }
  return out;
}

std::string Cube::to_expr(const std::vector<std::string>& names) const {
  std::string out;
  for (std::size_t i = 0; i < lits_.size(); ++i) {
    if (lits_[i] == static_cast<std::uint8_t>(Lit::DC)) continue;
    if (!out.empty()) out += " ";
    out += names[i];
    if (lits_[i] == 0) out += "'";
  }
  return out.empty() ? "1" : out;
}

}  // namespace punt::logic
