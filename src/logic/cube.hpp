// Cubes: products of literals over a fixed variable set.
//
// A cube assigns each variable Zero, One or DC (absent from the product).
// Cubes are the paper's cover terms; a cover (cover.hpp) is a set of cubes
// interpreted as their union (SOP form).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace punt::logic {

/// Value of one variable inside a cube.
enum class Lit : std::uint8_t { Zero = 0, One = 1, DC = 2 };

/// A product term over `size()` variables.
class Cube {
 public:
  Cube() = default;
  /// All variables set to `fill` (default: the universal cube).
  explicit Cube(std::size_t variable_count, Lit fill = Lit::DC)
      : lits_(variable_count, static_cast<std::uint8_t>(fill)) {}

  /// Builds a cube from "10-" notation; characters must be 0, 1 or -.
  static Cube from_string(std::string_view text);

  /// The minterm cube of a binary code (every variable a constant).
  static Cube from_code(const std::vector<std::uint8_t>& code);

  std::size_t size() const { return lits_.size(); }

  Lit get(std::size_t v) const { return static_cast<Lit>(lits_[v]); }
  void set(std::size_t v, Lit value) { lits_[v] = static_cast<std::uint8_t>(value); }

  /// Number of non-DC positions (the paper's literal-count metric).
  std::size_t literal_count() const;

  /// True when this cube's point set includes all of `other`'s.
  bool contains(const Cube& other) const;

  /// True when the two cubes share at least one minterm (no variable with
  /// opposite constants).
  bool intersects(const Cube& other) const;

  /// The product of the two cubes, or nullopt when disjoint.
  std::optional<Cube> intersect(const Cube& other) const;

  /// Number of variables where the cubes hold opposite constants.
  std::size_t distance(const Cube& other) const;

  /// Smallest cube containing both inputs.
  Cube supercube_with(const Cube& other) const;

  /// True when the binary point `code` lies inside the cube.
  bool covers_point(const std::vector<std::uint8_t>& code) const;

  bool operator==(const Cube& other) const { return lits_ == other.lits_; }
  bool operator<(const Cube& other) const { return lits_ < other.lits_; }

  /// "10-" notation.
  std::string to_string() const;

  /// Product-term notation using variable names, e.g. "a b' d"; the
  /// universal cube renders as "1".
  std::string to_expr(const std::vector<std::string>& names) const;

 private:
  std::vector<std::uint8_t> lits_;
};

}  // namespace punt::logic
