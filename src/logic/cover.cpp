#include "src/logic/cover.hpp"

#include <algorithm>
#include <cassert>

#include "src/util/error.hpp"

namespace punt::logic {
namespace {

/// Per-variable polarity statistics across a cube list.
struct ColumnStats {
  std::vector<std::size_t> ones;
  std::vector<std::size_t> zeros;

  explicit ColumnStats(std::size_t variable_count)
      : ones(variable_count, 0), zeros(variable_count, 0) {}

  static ColumnStats of(const std::vector<Cube>& cubes, std::size_t variable_count) {
    ColumnStats stats(variable_count);
    for (const Cube& c : cubes) {
      for (std::size_t v = 0; v < variable_count; ++v) {
        if (c.get(v) == Lit::One) ++stats.ones[v];
        if (c.get(v) == Lit::Zero) ++stats.zeros[v];
      }
    }
    return stats;
  }

  /// Most binate variable (max of min(ones, zeros), ties by total count), or
  /// npos when the list is unate in every variable.
  std::size_t most_binate() const {
    std::size_t best = npos;
    std::size_t best_min = 0;
    std::size_t best_total = 0;
    for (std::size_t v = 0; v < ones.size(); ++v) {
      if (ones[v] == 0 || zeros[v] == 0) continue;
      const std::size_t lo = std::min(ones[v], zeros[v]);
      const std::size_t total = ones[v] + zeros[v];
      if (best == npos || lo > best_min || (lo == best_min && total > best_total)) {
        best = v;
        best_min = lo;
        best_total = total;
      }
    }
    return best;
  }

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

bool has_universal_cube(const std::vector<Cube>& cubes) {
  for (const Cube& c : cubes) {
    if (c.literal_count() == 0) return true;
  }
  return false;
}

/// Cofactor of a cube list w.r.t. one variable binding.
std::vector<Cube> cofactor_var(const std::vector<Cube>& cubes, std::size_t v, Lit value) {
  std::vector<Cube> out;
  out.reserve(cubes.size());
  for (const Cube& c : cubes) {
    const Lit l = c.get(v);
    if (l == Lit::DC) {
      out.push_back(c);
    } else if (l == value) {
      Cube copy = c;
      copy.set(v, Lit::DC);
      out.push_back(std::move(copy));
    }
  }
  return out;
}

bool tautology_rec(std::vector<Cube> cubes, std::size_t variable_count) {
  while (true) {
    if (cubes.empty()) return false;
    if (has_universal_cube(cubes)) return true;

    ColumnStats stats = ColumnStats::of(cubes, variable_count);

    // Unate reduction: if v appears in one polarity only, the cover is a
    // tautology iff its cofactor against the *opposite* value is — which
    // simply deletes every cube that tests v.
    bool reduced = false;
    for (std::size_t v = 0; v < variable_count; ++v) {
      const bool pos_unate = stats.ones[v] > 0 && stats.zeros[v] == 0;
      const bool neg_unate = stats.zeros[v] > 0 && stats.ones[v] == 0;
      if (!pos_unate && !neg_unate) continue;
      std::erase_if(cubes, [v](const Cube& c) { return c.get(v) != Lit::DC; });
      reduced = true;
      break;  // stats are stale; recompute from the top
    }
    if (reduced) continue;

    const std::size_t v = stats.most_binate();
    if (v == ColumnStats::npos) {
      // Fully unate with no universal cube and nothing to reduce: only
      // possible when every cube is universal (caught above) — so false.
      return false;
    }
    return tautology_rec(cofactor_var(cubes, v, Lit::Zero), variable_count) &&
           tautology_rec(cofactor_var(cubes, v, Lit::One), variable_count);
  }
}

/// Thrown internally when a capped complement exceeds its budget.
struct ComplementOverflow {};

std::vector<Cube> complement_rec(const std::vector<Cube>& cubes,
                                 std::size_t variable_count,
                                 std::size_t* budget = nullptr) {
  if (budget != nullptr && *budget == 0) throw ComplementOverflow{};
  if (cubes.empty()) {
    return {Cube(variable_count)};  // complement of 0 is 1
  }
  if (has_universal_cube(cubes)) {
    return {};
  }
  if (cubes.size() == 1) {
    // De Morgan on a single product: one cube per tested literal.
    std::vector<Cube> out;
    const Cube& c = cubes.front();
    for (std::size_t v = 0; v < variable_count; ++v) {
      const Lit l = c.get(v);
      if (l == Lit::DC) continue;
      Cube term(variable_count);
      term.set(v, l == Lit::One ? Lit::Zero : Lit::One);
      out.push_back(std::move(term));
    }
    return out;
  }

  ColumnStats stats = ColumnStats::of(cubes, variable_count);
  std::size_t v = stats.most_binate();
  if (v == ColumnStats::npos) {
    // Unate cover: split on any tested variable (there is one, otherwise a
    // universal cube would exist).
    for (std::size_t u = 0; u < variable_count; ++u) {
      if (stats.ones[u] + stats.zeros[u] > 0) {
        v = u;
        break;
      }
    }
    assert(v != ColumnStats::npos);
  }

  std::vector<Cube> lo =
      complement_rec(cofactor_var(cubes, v, Lit::Zero), variable_count, budget);
  std::vector<Cube> hi =
      complement_rec(cofactor_var(cubes, v, Lit::One), variable_count, budget);
  if (budget != nullptr) {
    const std::size_t produced = lo.size() + hi.size();
    if (produced >= *budget) throw ComplementOverflow{};
    *budget -= produced;
  }
  std::vector<Cube> out;
  out.reserve(lo.size() + hi.size());
  // Merge cubes identical up to the split variable to curb growth.
  for (Cube& c : lo) {
    bool merged = false;
    for (const Cube& h : hi) {
      if (c == h) {
        out.push_back(c);  // v stays DC: present on both branches
        merged = true;
        break;
      }
    }
    if (!merged) {
      c.set(v, Lit::Zero);
      out.push_back(std::move(c));
    }
  }
  for (Cube& c : hi) {
    bool merged = false;
    for (const Cube& l : out) {
      Cube probe = c;
      if (l == probe) {  // already emitted as a both-branches cube
        merged = true;
        break;
      }
    }
    if (!merged) {
      c.set(v, Lit::One);
      out.push_back(std::move(c));
    }
  }
  return out;
}

}  // namespace

Cover::Cover(std::size_t variable_count, std::vector<Cube> cubes)
    : variable_count_(variable_count), cubes_(std::move(cubes)) {
  for (const Cube& c : cubes_) {
    if (c.size() != variable_count_) {
      throw ValidationError("cube width does not match the cover's variable count");
    }
  }
}

Cover Cover::one(std::size_t variable_count) {
  Cover out(variable_count);
  out.add(Cube(variable_count));
  return out;
}

void Cover::add(Cube cube) {
  if (cube.size() != variable_count_) {
    throw ValidationError("cube width does not match the cover's variable count");
  }
  cubes_.push_back(std::move(cube));
}

void Cover::add_all(const Cover& other) {
  for (const Cube& c : other.cubes_) add(c);
}

std::size_t Cover::literal_count() const {
  std::size_t n = 0;
  for (const Cube& c : cubes_) n += c.literal_count();
  return n;
}

bool Cover::covers_point(const std::vector<std::uint8_t>& code) const {
  for (const Cube& c : cubes_) {
    if (c.covers_point(code)) return true;
  }
  return false;
}

Cover Cover::intersect(const Cover& other) const {
  Cover out(variable_count_);
  for (const Cube& a : cubes_) {
    for (const Cube& b : other.cubes_) {
      if (auto prod = a.intersect(b)) out.add(std::move(*prod));
    }
  }
  out.make_irredundant_scc();
  return out;
}

bool Cover::intersects(const Cover& other) const {
  for (const Cube& a : cubes_) {
    for (const Cube& b : other.cubes_) {
      if (a.intersects(b)) return true;
    }
  }
  return false;
}

void Cover::make_irredundant_scc() {
  std::vector<Cube> kept;
  // Process larger cubes first so containment removal is a single pass.
  std::sort(cubes_.begin(), cubes_.end(), [](const Cube& a, const Cube& b) {
    return a.literal_count() < b.literal_count();
  });
  for (const Cube& c : cubes_) {
    bool contained = false;
    for (const Cube& k : kept) {
      if (k.contains(c)) {
        contained = true;
        break;
      }
    }
    if (!contained) kept.push_back(c);
  }
  cubes_ = std::move(kept);
}

Cover Cover::cofactor(const Cube& c) const {
  Cover out(variable_count_);
  for (const Cube& cube : cubes_) {
    if (!cube.intersects(c)) continue;
    Cube reduced = cube;
    for (std::size_t v = 0; v < variable_count_; ++v) {
      if (c.get(v) != Lit::DC) reduced.set(v, Lit::DC);
    }
    out.add(std::move(reduced));
  }
  return out;
}

bool Cover::tautology() const { return tautology_rec(cubes_, variable_count_); }

bool Cover::contains_cube(const Cube& c) const { return cofactor(c).tautology(); }

bool Cover::contains_cover(const Cover& other) const {
  for (const Cube& c : other.cubes_) {
    if (!contains_cube(c)) return false;
  }
  return true;
}

Cover Cover::complement() const {
  Cover out(variable_count_, complement_rec(cubes_, variable_count_));
  out.make_irredundant_scc();
  return out;
}

std::optional<Cover> Cover::complement_capped(std::size_t max_cubes) const {
  std::size_t budget = max_cubes;
  try {
    Cover out(variable_count_, complement_rec(cubes_, variable_count_, &budget));
    out.make_irredundant_scc();
    return out;
  } catch (const ComplementOverflow&) {
    return std::nullopt;
  }
}

void Cover::normalize() {
  make_irredundant_scc();
  std::sort(cubes_.begin(), cubes_.end());
}

std::string Cover::to_expr(const std::vector<std::string>& names) const {
  if (cubes_.empty()) return "0";
  std::string out;
  for (const Cube& c : cubes_) {
    if (!out.empty()) out += " + ";
    out += c.to_expr(names);
  }
  return out;
}

std::string Cover::to_pla() const {
  std::string out;
  for (const Cube& c : cubes_) {
    out += c.to_string();
    out += "\n";
  }
  return out;
}

}  // namespace punt::logic
