// Heuristic two-level minimisation in the style of Espresso.
//
// This is the stand-in for the paper's "EspTim" column: the classic
// EXPAND / IRREDUNDANT / (REDUCE, EXPAND, IRREDUNDANT)* loop, driven by a
// *blocking* cover rather than a complement where possible.
//
// Blocking semantics: the result must cover every point of `on` and avoid
// every point of `blocking`; points outside both are free.  This mirrors the
// paper's stronger correctness condition for approximated covers — the
// off-set cover produced by the unfolding flow acts as the blocking set, so
// part of the true DC-set may be walled off, which the paper notes can cost
// a literal or two versus exact-DC minimisation.
#pragma once

#include <cstddef>

#include "src/logic/cover.hpp"

namespace punt::logic {

/// Size bookkeeping for reports and the ablation bench.
struct MinimizeStats {
  std::size_t initial_cubes = 0;
  std::size_t initial_literals = 0;
  std::size_t final_cubes = 0;
  std::size_t final_literals = 0;
  std::size_t iterations = 0;
};

struct EspressoOptions {
  /// Upper bound on (REDUCE, EXPAND, IRREDUNDANT) refinement rounds.
  std::size_t max_iterations = 5;
};

/// Minimises `on` against the `blocking` cover.  The result R satisfies
/// R ⊇ on and R ∩ blocking = ∅.  Throws ValidationError when `on` and
/// `blocking` already intersect (the inputs are contradictory).
Cover espresso(const Cover& on, const Cover& blocking, MinimizeStats* stats = nullptr,
               const EspressoOptions& options = {});

/// Convenience wrapper: minimise with an explicit don't-care cover; the
/// blocking set is complement(on + dc).
Cover espresso_with_dc(const Cover& on, const Cover& dc, MinimizeStats* stats = nullptr,
                       const EspressoOptions& options = {});

}  // namespace punt::logic
