// Covers: sums of cubes (SOP form) with the classic two-level operations.
//
// Tautology and complement use the unate-recursive paradigm (Shannon
// expansion on the most binate variable, with unate shortcuts), which keeps
// the synthesis pipeline polynomial-in-practice on the benchmark suite.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "src/logic/cube.hpp"

namespace punt::logic {

/// A sum of cubes over a fixed variable count.  The empty cover is the
/// constant 0; a cover containing the universal cube is the constant 1.
class Cover {
 public:
  Cover() = default;
  explicit Cover(std::size_t variable_count) : variable_count_(variable_count) {}

  /// Cover made of the given cubes (all must have `variable_count` vars).
  Cover(std::size_t variable_count, std::vector<Cube> cubes);

  /// The constant-1 cover (one universal cube).
  static Cover one(std::size_t variable_count);

  std::size_t variable_count() const { return variable_count_; }
  std::size_t cube_count() const { return cubes_.size(); }
  bool empty() const { return cubes_.empty(); }

  const std::vector<Cube>& cubes() const { return cubes_; }
  const Cube& cube(std::size_t i) const { return cubes_[i]; }

  void add(Cube cube);
  void add_all(const Cover& other);

  /// Sum of per-cube literal counts — the paper's LitCnt metric.
  std::size_t literal_count() const;

  /// Membership of one binary point.
  bool covers_point(const std::vector<std::uint8_t>& code) const;

  /// Pairwise products of the two covers' cubes (empty products dropped).
  Cover intersect(const Cover& other) const;

  /// True when some pair of cubes intersects — the paper's cover-correctness
  /// test `C*On . C*Off != 0` without materialising the product.
  bool intersects(const Cover& other) const;

  /// Removes duplicate cubes and cubes contained in another single cube.
  void make_irredundant_scc();

  /// Shannon cofactor of the cover w.r.t. a cube (the subspace where the
  /// cube's constant literals hold).  Cubes disjoint from `c` are dropped;
  /// surviving cubes get DC at c's constant positions.
  Cover cofactor(const Cube& c) const;

  /// True when the cover equals constant 1 (unate-recursive check).
  bool tautology() const;

  /// True when cube `c` is covered by this cover (possibly by several cubes
  /// jointly): tautology of this->cofactor(c).
  bool contains_cube(const Cube& c) const;

  /// True when every cube of `other` is covered by this cover.
  bool contains_cover(const Cover& other) const;

  /// Complement via unate-recursive Shannon expansion.
  Cover complement() const;

  /// Complement, abandoned when the intermediate result would exceed
  /// `max_cubes` (nullopt).  Lets callers trade optional don't-care
  /// information for bounded runtime on adversarial covers.
  std::optional<Cover> complement_capped(std::size_t max_cubes) const;

  /// Canonical order (sort + dedupe); useful for comparisons in tests.
  void normalize();

  bool operator==(const Cover& other) const {
    return variable_count_ == other.variable_count_ && cubes_ == other.cubes_;
  }

  /// SOP rendering, e.g. "a c' + b d"; constant covers render "0" / "1".
  std::string to_expr(const std::vector<std::string>& names) const;

  /// One cube per line in "10-" notation (PLA-style), for debugging.
  std::string to_pla() const;

 private:
  std::size_t variable_count_ = 0;
  std::vector<Cube> cubes_;
};

}  // namespace punt::logic
