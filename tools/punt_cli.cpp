// punt — command-line synthesis of speed-independent circuits from STGs.
//
//   punt synth <file.g> [--method=approx|exact|sg] [--arch=acg|c|rs]
//              [--eqn] [--verilog] [--dot] [--unfolding-dot] [--no-minimize]
//              [--jobs=N] [--trace-schedule=<file>] [--model-cache-dir=<dir>]
//   punt check <file.g> [--model-cache-dir=<dir>]
//                                  verify the general correctness criteria
//   punt lint <file.g ...> [--json] [--Werror[=STG006,...]] [--deep]
//             [--jobs=N] [--model-cache-dir=<dir>]
//             [--connect=<endpoint> [--token-file=<file>]] [--rules]
//                                  static analysis: every finding carries a
//                                  stable rule id, severity, line:column span
//                                  and fix hint; all findings of a file in
//                                  one pass (no first-error bail).  --json
//                                  emits punt-lint-report v2; --Werror
//                                  promotes warnings to errors.  --deep adds
//                                  the semantic tier (STG1xx): exact CSC,
//                                  persistency, 1-safety, consistency and
//                                  liveness verdicts over the reachable state
//                                  space, each carrying a witness firing
//                                  sequence mapped to source spans; exact
//                                  verdicts retract the structural
//                                  pre-screens they decide.  Files lint as
//                                  task-graph nodes (--jobs parallelises the
//                                  batch); deep models resolve through the
//                                  ModelCache (--model-cache-dir persists
//                                  them; --connect reuses a daemon's warm
//                                  ones).  Exit 0 when no error-severity
//                                  finding, else 1
//   punt resolve <file.g>          repair CSC conflicts by signal insertion
//   punt bench list                list the Table-1 registry
//   punt bench dump <name>         print a registry entry as .g text
//   punt bench run [--jobs=N] [--method=...] [--arch=...]
//                  [--shard=i/n] [--weights=<report.json>] [--report=json]
//                  [--trace-schedule=<file>] [--model-cache-dir=<dir>]
//                                  synthesise the registry (or one shard of
//                                  it) through the task-graph executor;
//                                  Table-1 table with paper columns, or JSON.
//                                  --weights partitions the shards by
//                                  measured per-entry cost (greedy LPT over
//                                  TotTim from a prior merged report);
//                                  --trace-schedule dumps the executed graph
//                                  (nodes, workers, timings) as JSON and
//                                  prints the critical-path summary
//   punt bench merge <report.json...>
//                                  combine per-shard JSON reports into the
//                                  full Table-1 table, verifying that the
//                                  shards cover the registry exactly once
//   punt bench lint [--deep] [--json=<file>]
//                                  lint throughput over the registry (the
//                                  serve-admission budget check); asserts the
//                                  error-only admission fast path beats the
//                                  full pass.  --deep measures the semantic
//                                  tier over a warm shared ModelCache
//   punt trace <trace.json>        analyse a --trace-schedule dump offline:
//                                  per-worker occupancy, an ASCII Gantt lane
//                                  per worker, queue-wait statistics, the
//                                  critical path, and a ledger-estimate vs
//                                  measured-cost error table
//   punt bench serve [--connect=<endpoint>] [--listen=tcp[://addr:port]]
//                    [--token-file=<file>] [--clients=K] [--duration=S]
//                    [--jobs=N] [--batch-window=MS] [--max-queue=N]
//                    [--no-warmup] [--json=<file>]
//                                  closed-loop load generator against a serve
//                                  daemon (self-spawned in-process unless
//                                  --connect; --listen=tcp self-spawns over
//                                  loopback TCP with a throwaway token, so
//                                  the latency gate covers the network
//                                  transport): p50/p95/p99 latency,
//                                  throughput, fused-batch histogram, shed
//                                  count; --json writes the punt-serve-bench
//                                  report
//   punt cache stats --model-cache-dir=<dir>
//                                  inventory the on-disk model cache as JSON
//   punt cache stats --connect=<endpoint>
//                                  a running daemon's resident cache counters
//   punt cache purge --model-cache-dir=<dir>
//                                  delete every persisted model in the dir
//   punt serve (--socket=<path> | --listen=tcp://<addr>:<port>
//              --token-file=<file>) [--jobs=N] [--model-cache-dir=<dir>]
//              [--batch-window=MS] [--max-queue=N] [--send-timeout=S]
//              [--handshake-timeout=S] [--idle-timeout=S]
//                                  run the warm-model daemon: one resident
//                                  ModelCache + thread pool across requests;
//                                  concurrent synth requests arriving within
//                                  the batch window fuse into one union task
//                                  graph (0 disables fusion), and load beyond
//                                  --max-queue is shed with an "overloaded"
//                                  refusal; SIGTERM (or a client
//                                  `punt shutdown`) drains admitted work and
//                                  exits cleanly.  A TCP listener requires
//                                  --token-file: every TCP connection must
//                                  pass an HMAC-SHA256 challenge–response
//                                  over the shared token before its first
//                                  request (Unix sockets skip the handshake)
//   punt synth <file.g> --connect=<endpoint> [synth flags]
//   punt check <file.g> --connect=<endpoint>
//   punt lint <file.g ...> --connect=<endpoint> [lint flags]
//                                  delegate to the daemon; the result (and
//                                  the per-request hit/rebuild summary, on
//                                  stderr) comes back over the socket.
//                                  <endpoint> is a Unix socket path or
//                                  tcp://host:port (with --token-file)
//   punt ping --connect=<endpoint> daemon liveness probe
//   punt shutdown --connect=<endpoint>
//                                  ask the daemon to drain and exit
//
// --model-cache-dir persists the phase-1 semantic models (unfolding segment
// or state graph) under the canonical STG digest, so successive punt
// invocations — and CI bench shards sharing one directory — skip phase 1
// after the first warm run.  The same directory also holds the cost ledger
// (costs.puntledger): measured per-node costs that later runs feed back into
// dispatch as longest-task-first ordering within each priority band, and
// that `punt bench run --weights=<costs.puntledger>` turns into a cost-aware
// shard partition.  Corrupt or version-mismatched cache files fall
// back to a rebuild; an unwritable directory degrades to build-without-
// persist.  Commands that used the cache print a hit/build summary (memory
// hits, disk hits, rebuilds) to stderr.  `punt serve` goes further: the
// *in-memory* tier stays warm across client invocations, so a repeated
// `--connect` synth costs neither a rebuild nor a disk load.
//
// Exit status: 0 on success, 1 on usage errors, 2 when the specification is
// not implementable (with a diagnostic on stderr).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <csignal>
#include <exception>
#include <thread>

#include <unistd.h>

#include "src/benchmarks/loadgen.hpp"
#include "src/benchmarks/registry.hpp"
#include "src/benchmarks/report.hpp"
#include "src/benchmarks/trace_view.hpp"
#include "src/core/cost_ledger.hpp"
#include "src/core/csc_resolve.hpp"
#include "src/core/model_cache.hpp"
#include "src/core/model_store.hpp"
#include "src/core/pipeline.hpp"
#include "src/core/synthesis.hpp"
#include "src/lint/lint.hpp"
#include "src/lint/rules.hpp"
#include "src/lint/semantic_rules.hpp"
#include "src/server/client.hpp"
#include "src/server/endpoint.hpp"
#include "src/server/protocol.hpp"
#include "src/server/server.hpp"
#include "src/server/service.hpp"
#include "src/netlist/netlist.hpp"
#include "src/sg/analysis.hpp"
#include "src/sg/state_graph.hpp"
#include "src/stg/dot.hpp"
#include "src/stg/g_format.hpp"
#include "src/unfolding/dot.hpp"
#include "src/unfolding/unfolding.hpp"
#include "src/util/error.hpp"
#include "src/util/hmac.hpp"
#include "src/util/json.hpp"
#include "src/util/strings.hpp"
#include "src/util/task_graph.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  punt synth <file.g> [--method=approx|exact|sg] [--arch=acg|c|rs]\n"
               "             [--eqn] [--verilog] [--dot] [--unfolding-dot]\n"
               "             [--no-minimize] [--jobs=N] [--trace-schedule=<file>]\n"
               "             [--model-cache-dir=<dir>]\n"
               "  punt check <file.g> [--model-cache-dir=<dir>]\n"
               "  punt lint <file.g ...> [--json] [--Werror[=STG006,...]] [--deep]\n"
               "            [--jobs=N] [--model-cache-dir=<dir>]\n"
               "            [--connect=<endpoint> [--token-file=<file>]] [--rules]\n"
               "  punt resolve <file.g>\n"
               "  punt bench list | punt bench dump <name>\n"
               "  punt bench lint [--deep] [--json=<file>]\n"
               "  punt bench run [--jobs=N] [--method=...] [--arch=...]\n"
               "                 [--shard=i/n] [--weights=<report.json|ledger>]\n"
               "                 [--report=json] [--trace-schedule=<file>]\n"
               "                 [--model-cache-dir=<dir>]\n"
               "  punt bench merge <report.json...>\n"
               "  punt trace <trace.json>\n"
               "  punt bench serve [--connect=<endpoint>] [--listen=tcp[://addr:port]]\n"
               "                   [--token-file=<file>] [--clients=K] [--duration=S]\n"
               "                   [--jobs=N] [--batch-window=MS] [--max-queue=N]\n"
               "                   [--no-warmup] [--json=<file>]\n"
               "  punt cache stats --model-cache-dir=<dir> | --connect=<endpoint>\n"
               "  punt cache purge --model-cache-dir=<dir>\n"
               "  punt serve (--socket=<path> | --listen=tcp://<addr>:<port>\n"
               "             --token-file=<file>) [--jobs=N] [--model-cache-dir=<dir>]\n"
               "             [--batch-window=MS] [--max-queue=N] [--send-timeout=S]\n"
               "             [--handshake-timeout=S] [--idle-timeout=S]\n"
               "  punt ping --connect=<endpoint>\n"
               "  punt shutdown --connect=<endpoint>\n"
               "(--jobs: worker threads; 0 = one per hardware thread)\n"
               "(--batch-window: serve-mode fusion window in ms; synth requests\n"
               " arriving together run as ONE union task graph; 0 = no fusion)\n"
               "(--max-queue: admitted-but-unstarted request bound; excess synth\n"
               " requests are refused with an 'overloaded' error)\n"
               "(--shard=i/n: registry entries at positions p with p %% n == i,\n"
               " or balanced by measured per-entry cost with --weights — a prior\n"
               " merged report.json, or the costs.puntledger a cached run wrote)\n"
               "(--trace-schedule: write the executed task graph as JSON and\n"
               " print its critical-path summary to stderr; `punt trace` renders\n"
               " the dump as per-worker occupancy lanes)\n"
               "(--model-cache-dir: persist phase-1 semantic models on disk so\n"
               " later invocations sharing the directory skip rebuilding them;\n"
               " the directory also carries the cost ledger that orders ready\n"
               " nodes longest-first on later runs)\n"
               "(--connect: delegate synth/check/lint to a running `punt serve`\n"
               " daemon, whose models stay warm in memory across requests;\n"
               " a Unix socket path or tcp://host:port — TCP endpoints need\n"
               " --token-file=<file> holding the daemon's shared auth token)\n");
  return 1;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw punt::Error("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::size_t parse_jobs(const std::string& value) {
  if (value.empty() || value.find_first_not_of("0123456789") != std::string::npos) {
    throw punt::Error("invalid --jobs value '" + value +
                      "'; expected a non-negative integer (0 = one worker per "
                      "hardware thread)");
  }
  const unsigned long jobs = std::strtoul(value.c_str(), nullptr, 10);
  constexpr unsigned long kMaxJobs = 256;
  if (jobs > kMaxJobs) {
    throw punt::Error("--jobs=" + value + " exceeds the maximum of " +
                      std::to_string(kMaxJobs));
  }
  return static_cast<std::size_t>(jobs);
}

/// Non-negative millisecond values (--batch-window, fractional OK).
double parse_millis(const std::string& value, const char* flag) {
  char* end = nullptr;
  const double millis = std::strtod(value.c_str(), &end);
  if (value.empty() || end != value.c_str() + value.size() || !(millis >= 0)) {
    throw punt::Error(std::string("invalid ") + flag + " value '" + value +
                      "'; expected a non-negative number of milliseconds");
  }
  constexpr double kMaxMillis = 60'000;
  if (millis > kMaxMillis) {
    throw punt::Error(std::string(flag) + "=" + value +
                      " exceeds the maximum of 60000 (one minute)");
  }
  return millis;
}

/// Positive integer counts with a named bound (--max-queue, --clients).
std::size_t parse_positive_count(const std::string& value, const char* flag,
                                 std::size_t max) {
  if (value.empty() || value.find_first_not_of("0123456789") != std::string::npos) {
    throw punt::Error(std::string("invalid ") + flag + " value '" + value +
                      "'; expected a positive integer");
  }
  const unsigned long count = std::strtoul(value.c_str(), nullptr, 10);
  if (count == 0 || count > max) {
    throw punt::Error(std::string(flag) + "=" + value + " must be in 1.." +
                      std::to_string(max));
  }
  return static_cast<std::size_t>(count);
}

/// Positive seconds (--duration, fractional OK; --send-timeout, integral).
double parse_seconds(const std::string& value, const char* flag, double max) {
  char* end = nullptr;
  const double seconds = std::strtod(value.c_str(), &end);
  if (value.empty() || end != value.c_str() + value.size() || !(seconds > 0) ||
      seconds > max) {
    throw punt::Error(std::string("invalid ") + flag + " value '" + value +
                      "'; expected seconds in (0, " + std::to_string(max) + "]");
  }
  return seconds;
}

/// Non-negative seconds (--handshake-timeout/--idle-timeout; 0 = disabled).
double parse_timeout_seconds(const std::string& value, const char* flag) {
  char* end = nullptr;
  const double seconds = std::strtod(value.c_str(), &end);
  constexpr double kMaxSeconds = 86'400;
  if (value.empty() || end != value.c_str() + value.size() || !(seconds >= 0) ||
      seconds > kMaxSeconds) {
    throw punt::Error(std::string("invalid ") + flag + " value '" + value +
                      "'; expected seconds in [0, 86400] (0 disables the deadline)");
  }
  return seconds;
}

punt::core::SynthesisOptions parse_options(const std::vector<std::string>& args) {
  punt::core::SynthesisOptions options;
  for (const std::string& arg : args) {
    if (arg == "--method=approx") {
      options.method = punt::core::Method::UnfoldingApprox;
    } else if (arg == "--method=exact") {
      options.method = punt::core::Method::UnfoldingExact;
    } else if (arg == "--method=sg") {
      options.method = punt::core::Method::StateGraph;
    } else if (arg == "--arch=acg") {
      options.architecture = punt::core::Architecture::ComplexGate;
    } else if (arg == "--arch=c") {
      options.architecture = punt::core::Architecture::StandardC;
    } else if (arg == "--arch=rs") {
      options.architecture = punt::core::Architecture::RsLatch;
    } else if (arg == "--no-minimize") {
      options.minimize = false;
    } else if (arg.rfind("--jobs=", 0) == 0) {
      options.jobs = parse_jobs(arg.substr(7));
    }
  }
  return options;
}

bool has_flag(const std::vector<std::string>& args, const char* flag) {
  for (const std::string& arg : args) {
    if (arg == flag) return true;
  }
  return false;
}

/// The payload of `--trace-schedule=<file>`, or empty when absent.
std::string trace_schedule_path(const std::vector<std::string>& args) {
  for (const std::string& arg : args) {
    if (arg.rfind("--trace-schedule=", 0) == 0) {
      const std::string path = arg.substr(17);
      if (path.empty()) {
        throw punt::Error("--trace-schedule needs a file path "
                          "(e.g. --trace-schedule=schedule.json)");
      }
      return path;
    }
  }
  return std::string();
}

/// The payload of `--connect=<endpoint>`, or empty when absent.
std::string connect_target(const std::vector<std::string>& args) {
  for (const std::string& arg : args) {
    if (arg.rfind("--connect=", 0) == 0) {
      const std::string endpoint = arg.substr(10);
      if (endpoint.empty()) {
        throw punt::Error("--connect needs the daemon's endpoint "
                          "(e.g. --connect=/tmp/punt.sock or "
                          "--connect=tcp://127.0.0.1:7997)");
      }
      return endpoint;
    }
  }
  return std::string();
}

/// The payload of `--token-file=<file>`, or empty when absent.
std::string token_file_path(const std::vector<std::string>& args) {
  for (const std::string& arg : args) {
    if (arg.rfind("--token-file=", 0) == 0) {
      const std::string path = arg.substr(13);
      if (path.empty()) {
        throw punt::Error("--token-file needs a file path "
                          "(e.g. --token-file=/etc/punt/token)");
      }
      return path;
    }
  }
  return std::string();
}

/// The shared auth secret from a token file: its contents with trailing
/// whitespace stripped (so `echo secret > token` round-trips).  An empty
/// token is refused — it would make the handshake a formality.
std::string read_token_file(const std::string& path) {
  std::string token = read_file(path);
  while (!token.empty() &&
         (token.back() == '\n' || token.back() == '\r' || token.back() == ' ' ||
          token.back() == '\t')) {
    token.pop_back();
  }
  if (token.empty()) {
    throw punt::Error("token file '" + path + "' is empty; put a shared secret "
                      "in it (e.g. `head -c 32 /dev/urandom | base64 > " + path + "`)");
  }
  return token;
}

/// The --connect endpoint (parsed) plus the token a TCP endpoint needs.
struct ConnectTarget {
  punt::server::Endpoint endpoint;
  std::string token;
};

ConnectTarget resolve_connect(const std::string& target,
                              const std::vector<std::string>& args) {
  ConnectTarget connect;
  connect.endpoint = punt::server::parse_endpoint(target);
  const std::string token_path = token_file_path(args);
  if (!token_path.empty()) connect.token = read_token_file(token_path);
  if (connect.endpoint.transport == punt::server::Transport::Tcp &&
      connect.token.empty()) {
    throw punt::Error("--connect=" + target + " is a TCP endpoint; pass "
                      "--token-file=<file> with the daemon's shared auth token");
  }
  return connect;
}

/// The payload of `--model-cache-dir=<dir>`, or empty when absent.
std::string model_cache_dir(const std::vector<std::string>& args) {
  for (const std::string& arg : args) {
    if (arg.rfind("--model-cache-dir=", 0) == 0) {
      const std::string dir = arg.substr(18);
      if (dir.empty()) {
        throw punt::Error("--model-cache-dir needs a directory path "
                          "(e.g. --model-cache-dir=.punt-cache)");
      }
      return dir;
    }
  }
  return std::string();
}

/// A ModelCache with the on-disk tier under `dir`, or a memory-only one for
/// an empty dir (check) / nullptr where the cache itself is optional.
std::unique_ptr<punt::core::ModelCache> make_cache(const std::string& dir) {
  if (dir.empty()) return nullptr;
  return std::make_unique<punt::core::ModelCache>(
      punt::core::ModelCache::kDefaultCapacity,
      std::make_shared<punt::core::ModelStore>(dir));
}

/// One stderr line summarising where the models of this run came from; the
/// acceptance signal for a warm `--model-cache-dir` is "N disk hit(s), 0
/// rebuild(s)".
void print_cache_summary(const punt::core::ModelCache& cache) {
  // One shared formatter (core::summarize) keeps this line identical to the
  // per-request summary a `--connect` client receives from the daemon.
  std::fprintf(stderr, "%s", punt::core::summarize(cache.stats()).c_str());
}

/// Prints the summary when the enclosing command exits — error paths
/// included (a CSC failure over a warm cache is exactly the run where
/// knowing whether phase 1 came from a stale cached model helps).
struct CacheSummaryGuard {
  const punt::core::ModelCache* cache = nullptr;
  ~CacheSummaryGuard() {
    if (cache != nullptr) print_cache_summary(*cache);
  }
};

/// The cost ledger persisted beside the model cache (`dir` empty → none).
/// A missing or corrupt costs.puntledger just loads empty: dispatch starts
/// cold, exactly the pre-ledger schedule.
std::unique_ptr<punt::core::CostLedger> make_ledger(const std::string& dir) {
  if (dir.empty()) return nullptr;
  auto ledger = std::make_unique<punt::core::CostLedger>();
  (void)ledger->load(punt::core::CostLedger::path_in(dir));
  return ledger;
}

/// Republishes the ledger when the enclosing command exits — error paths
/// included (a CSC failure still measured real node costs worth keeping).
/// Best-effort like the model store: an unwritable directory degrades to
/// run-without-persist rather than failing the synthesis that already ran.
struct LedgerSaveGuard {
  const punt::core::CostLedger* ledger = nullptr;
  std::string dir;
  ~LedgerSaveGuard() {
    if (ledger != nullptr) {
      (void)ledger->save(punt::core::CostLedger::path_in(dir));
    }
  }
};

/// Writes the executed schedule as JSON and prints the critical-path summary
/// to stderr (stderr so `--report=json` output stays parseable).
void dump_trace(const punt::util::TaskTrace& trace, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw punt::Error("cannot write schedule trace to '" + path + "'");
  out << trace.to_json();
  if (!out) throw punt::Error("failed while writing schedule trace to '" + path + "'");
  std::fprintf(stderr, "%s", trace.summary().c_str());
  std::fprintf(stderr, "schedule trace written to %s\n", path.c_str());
}

// --- Serve-mode client side ---------------------------------------------------

/// Round-trips `request` and replays the daemon's answer as if the work had
/// run here: response.output to stdout, response.log (the diagnostic and
/// the per-request hit/rebuild summary) to stderr, exit code passed through.
int run_client(const ConnectTarget& target, const punt::server::Request& request) {
  const punt::server::Response response =
      punt::server::request_once(target.endpoint, target.token, request);
  std::fputs(response.output.c_str(), stdout);
  std::fputs(response.log.c_str(), stderr);
  return response.exit_code;
}

/// Flags that make no sense against a daemon (it owns its jobs policy,
/// model cache and cost ledger; the dot writers and schedule trace are
/// direct-mode only).  Runs *before* the endpoint resolves, so the flag
/// conflict is reported even when e.g. a TCP target is missing its
/// --token-file — the user should fix the invocation, not the transport.
void reject_direct_only_flags(const std::vector<std::string>& args) {
  for (const std::string& arg : args) {
    if (arg == "--dot" || arg == "--unfolding-dot" ||
        arg.rfind("--trace-schedule=", 0) == 0 || arg.rfind("--jobs=", 0) == 0 ||
        arg.rfind("--model-cache-dir=", 0) == 0) {
      throw punt::Error("'" + arg.substr(0, arg.find('=')) +
                        "' is a direct-only flag and cannot be combined with "
                        "--connect: the daemon owns its worker pool, model cache "
                        "and cost ledger, and writers beyond --eqn/--verilog run "
                        "only in direct mode");
    }
  }
}

int delegate_synth(const ConnectTarget& target, const std::string& path,
                   const std::vector<std::string>& args) {
  punt::server::Request request;
  request.op = punt::server::Op::Synth;
  request.g_text = read_file(path);
  for (const std::string& arg : args) {
    if (arg == "--method=approx") request.method = "approx";
    else if (arg == "--method=exact") request.method = "exact";
    else if (arg == "--method=sg") request.method = "sg";
    else if (arg == "--arch=acg") request.arch = "acg";
    else if (arg == "--arch=c") request.arch = "c";
    else if (arg == "--arch=rs") request.arch = "rs";
    else if (arg == "--no-minimize") request.minimize = false;
  }
  request.eqn = has_flag(args, "--eqn");
  request.verilog = has_flag(args, "--verilog");
  return run_client(target, request);
}

int delegate_check(const ConnectTarget& target, const std::string& path,
                   const std::vector<std::string>& /*args*/) {
  punt::server::Request request;
  request.op = punt::server::Op::Check;
  request.g_text = read_file(path);
  return run_client(target, request);
}

int cmd_synth(const std::string& path, const std::vector<std::string>& args) {
  const std::string target = connect_target(args);
  if (!target.empty()) {
    reject_direct_only_flags(args);
    return delegate_synth(resolve_connect(target, args), path, args);
  }
  const punt::stg::Stg stg = punt::stg::parse_g(read_file(path));
  const punt::core::SynthesisOptions options = parse_options(args);
  const std::string trace_path = trace_schedule_path(args);
  const std::string cache_dir = model_cache_dir(args);
  const std::unique_ptr<punt::core::ModelCache> cache = make_cache(cache_dir);
  const std::unique_ptr<punt::core::CostLedger> ledger = make_ledger(cache_dir);
  const CacheSummaryGuard summary{cache.get()};
  const LedgerSaveGuard persist{ledger.get(), cache_dir};
  punt::util::TaskTrace trace;
  const punt::core::SynthesisResult result = punt::core::synthesize(
      stg, options, cache.get(), trace_path.empty() ? nullptr : &trace, ledger.get());
  if (!trace_path.empty()) dump_trace(trace, trace_path);
  const punt::net::Netlist netlist = punt::net::Netlist::from_synthesis(stg, result);

  std::printf("# %s: %zu signals, %zu literals\n", stg.name().c_str(),
              stg.signal_count(), netlist.literal_count());
  std::printf("# unfold %.4fs derive %.4fs minimise %.4fs total %.4fs\n",
              result.unfold_seconds, result.derive_seconds, result.minimize_seconds,
              result.total_seconds);
  const bool any_writer = has_flag(args, "--eqn") || has_flag(args, "--verilog") ||
                          has_flag(args, "--dot") || has_flag(args, "--unfolding-dot");
  if (has_flag(args, "--eqn") || !any_writer) std::printf("%s", netlist.to_eqn().c_str());
  if (has_flag(args, "--verilog")) {
    std::printf("%s", netlist.to_verilog(stg.name()).c_str());
  }
  if (has_flag(args, "--dot")) std::printf("%s", punt::stg::to_dot(stg).c_str());
  if (has_flag(args, "--unfolding-dot")) {
    std::printf("%s", punt::unf::to_dot(punt::unf::Unfolding::build(stg)).c_str());
  }
  return 0;
}

int cmd_check(const std::string& path, const std::vector<std::string>& args) {
  const std::string target = connect_target(args);
  if (!target.empty()) {
    reject_direct_only_flags(args);
    return delegate_check(resolve_connect(target, args), path, args);
  }
  // The direct path runs the same server::run_check the daemon dispatches
  // to, so `--connect` byte-parity holds by construction: one ModelCache
  // shared between the criteria checks and the embedded CSC synthesis run
  // (the unfolding segment is built exactly once; with --model-cache-dir a
  // warm directory skips even that one build), verdict lines and the
  // delta-based "semantic model" summary rendered in exactly one place.
  const std::string cache_dir = model_cache_dir(args);
  punt::core::ModelCache cache(
      punt::core::ModelCache::kDefaultCapacity,
      cache_dir.empty() ? nullptr : std::make_shared<punt::core::ModelStore>(cache_dir));
  const std::unique_ptr<punt::core::CostLedger> ledger = make_ledger(cache_dir);
  const LedgerSaveGuard persist{ledger.get(), cache_dir};
  punt::server::Request request;
  request.op = punt::server::Op::Check;
  request.g_text = read_file(path);
  const punt::server::Response response = punt::server::run_check(
      request, cache, nullptr, /*summarize_cache=*/!cache_dir.empty(), ledger.get());
  std::fputs(response.output.c_str(), stdout);
  std::fputs(response.log.c_str(), stderr);
  return response.exit_code;
}

// --- punt lint ----------------------------------------------------------------

/// The rule catalog as `punt lint --help` prints it: both tiers, so a user
/// deciding whether --deep is worth a state-space build sees what it buys.
void print_lint_rules() {
  std::printf("punt lint <file.g ...> [--json] [--Werror[=STG006,...]] [--deep]\n"
              "          [--jobs=N] [--model-cache-dir=<dir>]\n"
              "          [--connect=<endpoint> [--token-file=<file>]] [--rules]\n"
              "  static analysis of STG specs: every finding carries a rule id,\n"
              "  a severity, a line:column source span and a fix hint.  Exit 0\n"
              "  when no file has error-severity findings, 1 otherwise.\n"
              "  --json     machine output (punt-lint-report v2)\n"
              "  --Werror   promote all warnings to errors (notes stay notes);\n"
              "             --Werror=STG006,STG008 promotes only those rules\n"
              "  --deep     add the semantic tier: exact CSC, persistency,\n"
              "             1-safety, consistency, liveness verdicts over the\n"
              "             reachable state space, each with a witness firing\n"
              "             sequence; an exact verdict retracts the structural\n"
              "             pre-screens it decides (STG004/007/008/010)\n"
              "  --jobs=N   lint files concurrently (0 = hardware threads)\n"
              "  --model-cache-dir=<dir>  reuse/persist the semantic models\n"
              "  --connect  lint on a running daemon (its models stay warm)\n"
              "  --rules    print this rule catalog\n\nstructural rules:\n");
  for (const auto& rule : punt::lint::rule_catalog()) {
    std::printf("  %s  %-7s  %s\n", rule.id, punt::util::severity_name(rule.severity),
                rule.summary);
  }
  std::printf("\nsemantic rules (--deep):\n");
  for (const auto& rule : punt::lint::semantic_rule_catalog()) {
    std::printf("  %s  %-7s  %s\n", rule.id, punt::util::severity_name(rule.severity),
                rule.summary);
  }
}

int delegate_lint(const ConnectTarget& target, const std::vector<std::string>& files,
                  bool deep, bool json, const punt::lint::LintOptions& options) {
  punt::server::Request request;
  request.op = punt::server::Op::Lint;
  request.lint_deep = deep;
  request.lint_json = json;
  request.lint_werror = options.promote_all_warnings;
  request.lint_werror_rules = options.promote_rules;
  request.lint_files.reserve(files.size());
  for (const std::string& path : files) {
    // Files are read *here*: the daemon sees only text and display labels,
    // never client paths to open.
    request.lint_files.push_back({path, read_file(path)});
  }
  return run_client(target, request);
}

int cmd_lint(const std::vector<std::string>& args) {
  std::vector<std::string> files;
  punt::lint::LintOptions options;
  bool json = false;
  std::size_t jobs = 1;
  for (const std::string& arg : args) {
    if (arg == "--json") {
      json = true;
    } else if (arg == "--Werror") {
      options.promote_all_warnings = true;
    } else if (arg.rfind("--Werror=", 0) == 0) {
      for (const std::string& id : punt::split(arg.substr(9), ",")) {
        options.promote_rules.push_back(id);
      }
      if (options.promote_rules.empty()) {
        throw punt::Error("--Werror= needs rule ids (e.g. --Werror=STG006,STG008)");
      }
    } else if (arg == "--deep") {
      options.deep = true;
    } else if (arg.rfind("--jobs=", 0) == 0) {
      jobs = parse_jobs(arg.substr(7));
    } else if (arg.rfind("--model-cache-dir=", 0) == 0 ||
               arg.rfind("--connect=", 0) == 0 || arg.rfind("--token-file=", 0) == 0) {
      // Parsed by the shared helpers below (model_cache_dir, connect_target,
      // resolve_connect), which also validate the payloads.
    } else if (arg == "--rules" || arg == "--help") {
      print_lint_rules();
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      throw punt::Error("unknown punt lint flag '" + arg + "'");
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    throw punt::Error("punt lint needs at least one <file.g> "
                      "(--rules prints the rule catalog)");
  }
  const std::string target = connect_target(args);
  if (!target.empty()) {
    reject_direct_only_flags(args);
    return delegate_lint(resolve_connect(target, args), files, options.deep, json,
                         options);
  }
  // Direct mode.  The deep tier needs a ModelCache to resolve its exact
  // state-graph models through — memory-only without --model-cache-dir, so
  // a batch repeating one spec under different names still builds it once.
  const std::string cache_dir = model_cache_dir(args);
  std::unique_ptr<punt::core::ModelCache> cache;
  std::unique_ptr<punt::core::CostLedger> ledger;
  if (options.deep) {
    cache = make_cache(cache_dir);
    if (cache == nullptr) cache = std::make_unique<punt::core::ModelCache>();
    ledger = make_ledger(cache_dir);
    options.cache = cache.get();
    options.ledger = ledger.get();
  }
  const CacheSummaryGuard summary{cache_dir.empty() ? nullptr : cache.get()};
  const LedgerSaveGuard persist{ledger.get(), cache_dir};
  std::unique_ptr<punt::core::Executor> executor;
  if (jobs != 1) {
    executor = std::make_unique<punt::core::Executor>(jobs);
    options.executor = executor.get();
  }
  std::vector<punt::lint::FileInput> inputs;
  inputs.reserve(files.size());
  for (const std::string& path : files) {
    inputs.push_back({path, read_file(path)});
  }
  const std::vector<punt::lint::FileLint> lints = punt::lint::lint_files(inputs, options);
  bool any_errors = false;
  for (std::size_t i = 0; i < lints.size(); ++i) {
    any_errors = any_errors || !lints[i].ok();
    if (!json) {
      std::printf("%s", punt::lint::render_human(lints[i], inputs[i].text).c_str());
    }
  }
  if (json) std::printf("%s", punt::lint::render_json(lints).c_str());
  return any_errors ? 1 : 0;
}

/// A deliberately concurrency-heavy spec for the admission fast-path
/// speedup assert: a `branches`-wide fork/join ring (its co-marked place
/// set is O(branches^2)) plus an input choice merging through duplicate
/// instances of one signal — the two triggers that make the warning tier
/// compute its place-concurrency fixed points.  Registry specs are too
/// small for those fixed points to dominate (parsing does), so a fast-path
/// regression could hide there; it cannot hide here.  The spec lints clean,
/// so the comparison times rules, not diagnostic construction.
std::string lint_stress_spec(std::size_t branches) {
  std::string g = ".model lintstress\n.inputs i1 i2 x\n.outputs a c";
  for (std::size_t i = 0; i < branches; ++i) g += " b" + std::to_string(i);
  g += "\n.graph\na+";
  for (std::size_t i = 0; i < branches; ++i) g += " b" + std::to_string(i) + "+";
  g += " s\n";
  for (std::size_t i = 0; i < branches; ++i) {
    g += "b" + std::to_string(i) + "+ c+\n";
  }
  g += "c+ a- r\na-";
  for (std::size_t i = 0; i < branches; ++i) g += " b" + std::to_string(i) + "-";
  g += "\n";
  for (std::size_t i = 0; i < branches; ++i) {
    g += "b" + std::to_string(i) + "- c-\n";
  }
  g += "c- a+\n";
  // The gadget: choice p0 resolved by inputs, duplicate x+ instances with
  // distinct presets (so STG010 stays silent) merging into m, and second
  // pre-places s/r so no edge reads as self-triggering.
  g += "p0 i1+ i2+\ns i1+ i2+\ni1+ x+\ni2+ x+/2\nx+ m\nx+/2 m\nm x-\nr x-\n"
       "x- q\nq i1- i2-\ni1- p0\ni2- p0\n";
  g += ".marking { <c-,a+> p0 }\n.end\n";
  return g;
}

/// `punt bench lint [--deep] [--json=<file>]`: lint throughput over the
/// Table-1 registry.  The default mode is the admission-control budget check
/// (specs/sec must stay far above any realistic request rate) and now also
/// *asserts* that the error-only admission fast path beats the full pass —
/// the fast path exists to skip the fixed-point warning rules, and this is
/// where a regression that re-grows it would surface.  --deep measures the
/// semantic tier over a warm shared ModelCache: the steady-state cost of
/// deep-linting a spec whose model is resident.
int cmd_bench_lint(const std::vector<std::string>& args) {
  std::string json_path;
  bool deep = false;
  for (const std::string& arg : args) {
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
      if (json_path.empty()) {
        throw punt::Error("--json needs a file path (e.g. --json=BENCH_lint.json)");
      }
    } else if (arg == "--deep") {
      deep = true;
    } else {
      throw punt::Error("unknown punt bench lint flag '" + arg + "'");
    }
  }
  std::vector<std::string> texts;
  for (const auto& bench : punt::benchmarks::table1()) {
    texts.push_back(punt::stg::write_g(bench.make()));
  }
  // Timed passes accumulate ~200ms per measurement so the rates are stable
  // on a loaded CI runner; each measurement gets a warm-up pass first.
  const auto measure = [](const auto& pass_fn, std::size_t per_pass,
                          std::size_t& specs, std::size_t& passes) {
    pass_fn();  // warm-up
    specs = 0;
    passes = 0;
    const auto start = std::chrono::steady_clock::now();
    double wall = 0;
    while (wall < 0.2) {
      pass_fn();
      specs += per_pass;
      ++passes;
      wall = std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
                 .count();
    }
    return wall;
  };

  if (deep) {
    // One shared memory cache across passes: the first (warm-up) pass builds
    // every model, the timed passes measure the resident steady state — the
    // number a warm daemon's per-request deep lint tracks.
    punt::core::ModelCache cache;
    punt::lint::LintOptions options;
    options.deep = true;
    options.cache = &cache;
    std::size_t findings = 0;
    const auto pass = [&] {
      for (const std::string& text : texts) {
        findings += punt::lint::lint_text(text, "bench", options).diagnostics.size();
      }
    };
    std::size_t specs = 0;
    std::size_t passes = 0;
    const double wall = measure(pass, texts.size(), specs, passes);
    const double rate = specs / wall;
    const punt::core::ModelCacheStats stats = cache.stats();
    std::printf("# deep lint micro-bench: %zu registry specs x %zu passes (warm cache)\n",
                texts.size(), passes);
    std::printf("wall %.3fs, %.0f specs/sec, %.1f us/spec, %zu findings, "
                "%zu build(s), %zu hit(s)\n",
                wall, rate, 1e6 * wall / specs, findings, stats.builds, stats.hits);
    if (stats.builds > texts.size()) {
      std::fprintf(stderr,
                   "error: warm deep-lint passes rebuilt models (%zu builds for "
                   "%zu specs); the ModelCache should absorb every repeat\n",
                   stats.builds, texts.size());
      return 1;
    }
    if (!json_path.empty()) {
      std::ofstream out(json_path);
      if (!out) throw punt::Error("cannot write '" + json_path + "'");
      out << punt::printf_string(
          "{\"schema\": \"punt-bench-lint-deep\", \"version\": 1, \"specs\": %zu, "
          "\"passes\": %zu, \"wall_seconds\": %.6f, \"specs_per_second\": %.1f, "
          "\"us_per_spec\": %.3f, \"findings\": %zu, \"builds\": %zu, "
          "\"hits\": %zu}\n",
          texts.size(), passes, wall, rate, 1e6 * wall / specs, findings,
          stats.builds, stats.hits);
      if (!out.flush()) throw punt::Error("short write to '" + json_path + "'");
      std::fprintf(stderr, "wrote %s\n", json_path.c_str());
    }
    return 0;
  }

  std::size_t findings = 0;
  const auto full_pass = [&] {
    for (const std::string& text : texts) {
      findings += punt::lint::lint_text(text, "bench").diagnostics.size();
    }
  };
  std::size_t specs = 0;
  std::size_t passes = 0;
  const double wall = measure(full_pass, texts.size(), specs, passes);
  const double rate = specs / wall;
  std::printf("# lint micro-bench: %zu registry specs x %zu passes\n", texts.size(),
              passes);
  std::printf("wall %.3fs, %.0f specs/sec, %.1f us/spec, %zu findings\n", wall, rate,
              1e6 * wall / specs, findings);

  const std::string stress = lint_stress_spec(128);
  std::size_t defects = 0;
  std::size_t stress_findings = 0;
  std::size_t full_specs = 0;
  std::size_t full_passes = 0;
  const double stress_full_wall = measure(
      [&] { stress_findings += punt::lint::lint_text(stress, "stress").diagnostics.size(); },
      1, full_specs, full_passes);
  std::size_t fast_specs = 0;
  std::size_t fast_passes = 0;
  const double stress_fast_wall = measure(
      [&] { defects += punt::lint::lint_errors(stress).size(); }, 1, fast_specs,
      fast_passes);
  const double full_us = 1e6 * stress_full_wall / full_specs;
  const double fast_us = 1e6 * stress_fast_wall / fast_specs;
  const double speedup = full_us / fast_us;
  std::printf("# admission fast path, concurrency-stress spec: full %.0f us, "
              "fast %.0f us, %.2fx (%zu findings, %zu defects)\n",
              full_us, fast_us, speedup, stress_findings, defects);
  // The real ratio is order-of-magnitude (the fast path skips both fixed
  // points; this spec makes them the dominant cost); 2x keeps the assert
  // far from scheduler noise while still catching "the fast path quietly
  // runs the fixed points again".
  if (speedup < 2.0) {
    std::fprintf(stderr,
                 "error: the admission fast path is only %.2fx a full lint on "
                 "the concurrency-stress spec; it must skip the fixed-point "
                 "warning rules\n",
                 speedup);
    return 1;
  }
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) throw punt::Error("cannot write '" + json_path + "'");
    out << punt::printf_string(
        "{\"schema\": \"punt-bench-lint\", \"version\": 2, \"specs\": %zu, "
        "\"passes\": %zu, \"wall_seconds\": %.6f, \"specs_per_second\": %.1f, "
        "\"us_per_spec\": %.3f, \"findings\": %zu, "
        "\"stress_full_us\": %.3f, \"stress_fast_us\": %.3f, "
        "\"fast_speedup\": %.3f}\n",
        texts.size(), passes, wall, rate, 1e6 * wall / specs, findings, full_us,
        fast_us, speedup);
    if (!out.flush()) throw punt::Error("short write to '" + json_path + "'");
    std::fprintf(stderr, "wrote %s\n", json_path.c_str());
  }
  return 0;
}

int cmd_resolve(const std::string& path) {
  const punt::stg::Stg stg = punt::stg::parse_g(read_file(path));
  const auto resolution = punt::core::resolve_csc(stg);
  if (!resolution) {
    std::fprintf(stderr, "no single-signal insertion repairs this STG\n");
    return 2;
  }
  if (resolution->signals_added == 0) {
    std::fprintf(stderr, "# specification already satisfies CSC; unchanged\n");
  } else {
    std::fprintf(stderr, "# inserted state signal: rise after %s, fall after %s\n",
                 resolution->rise_after.c_str(), resolution->fall_after.c_str());
  }
  std::printf("%s", punt::stg::write_g(resolution->stg).c_str());
  return 0;
}

int cmd_bench_run(const std::vector<std::string>& args) {
  punt::core::BatchOptions batch_options;
  batch_options.synthesis = parse_options(args);
  batch_options.jobs = batch_options.synthesis.jobs;
  // Benchmarks with genuine CSC conflicts should report, not abort the run.
  batch_options.synthesis.throw_on_csc = false;

  punt::benchmarks::Shard shard;
  bool json = false;
  std::string weights_path;
  for (const std::string& arg : args) {
    if (arg.rfind("--shard=", 0) == 0) {
      shard = punt::benchmarks::parse_shard(arg.substr(8));
    } else if (arg == "--report=json") {
      json = true;
    } else if (arg.rfind("--report=", 0) == 0) {
      throw punt::Error("invalid --report value '" + arg.substr(9) +
                        "'; the only supported report format is 'json'");
    } else if (arg.rfind("--weights=", 0) == 0) {
      weights_path = arg.substr(10);
      if (weights_path.empty()) {
        throw punt::Error("--weights needs a weights file: a merged report "
                          "(e.g. --weights=table1-merged.json) or a cost ledger "
                          "(e.g. --weights=cache/costs.puntledger)");
      }
    }
  }
  const std::string trace_path = trace_schedule_path(args);
  punt::util::TaskTrace trace;
  if (!trace_path.empty()) batch_options.trace = &trace;
  // With --model-cache-dir, phase 1 of every registry entry is served from
  // (and persisted to) the shared directory: a second run over a warm dir
  // reports all disk hits and zero rebuilds.  CI's bench shards share one
  // directory through actions/cache.  The directory's cost ledger rides
  // along: learned node costs order this run's dispatch, and this run's
  // measurements fold back for the next one.
  const std::string cache_dir = model_cache_dir(args);
  const std::unique_ptr<punt::core::ModelCache> cache = make_cache(cache_dir);
  batch_options.cache = cache.get();
  const std::unique_ptr<punt::core::CostLedger> ledger = make_ledger(cache_dir);
  batch_options.ledger = ledger.get();
  const CacheSummaryGuard summary{cache.get()};
  const LedgerSaveGuard persist{ledger.get(), cache_dir};

  const auto& registry = punt::benchmarks::table1();
  std::vector<std::size_t> positions;
  bool weights_from_ledger = false;
  if (weights_path.empty()) {
    positions = punt::benchmarks::shard_positions(shard, registry.size());
  } else {
    std::string weights_text;
    try {
      weights_text = read_file(weights_path);
    } catch (const punt::Error& e) {
      throw punt::Error("cannot read weights file '" + weights_path + "': " + e.what());
    }
    if (punt::core::CostLedger::is_ledger_image(weights_text)) {
      // --weights=<costs.puntledger>: per-entry estimates from the learned
      // cost table, so the ledger a cached run wrote doubles as the shard
      // balancer — no merged report needed.  Entries the ledger has not
      // measured weigh zero here; the LPT partition gives them the mean
      // measured weight.
      punt::core::CostLedger weights;
      if (!weights.merge_image(weights_text)) {
        throw punt::Error("cannot read weights ledger '" + weights_path +
                          "': corrupt or version-mismatched cost ledger; "
                          "regenerate it with a --model-cache-dir run");
      }
      weights_from_ledger = true;
      std::vector<double> entry_weights;
      entry_weights.reserve(registry.size());
      for (const auto& bench : registry) {
        entry_weights.push_back(
            weights.entry_estimate(bench.make(), batch_options.synthesis));
      }
      positions = punt::benchmarks::weighted_shard_positions(shard, entry_weights);
    } else {
      punt::benchmarks::Table1Report weights;
      try {
        weights = punt::benchmarks::report_from_json(weights_text);
      } catch (const punt::Error& e) {
        throw punt::Error("cannot read weights report '" + weights_path + "': " +
                          e.what());
      }
      positions = punt::benchmarks::weighted_shard_positions(shard, weights);
    }
  }
  std::vector<punt::stg::Stg> stgs;
  stgs.reserve(positions.size());
  for (const std::size_t p : positions) stgs.push_back(registry[p].make());

  const punt::core::BatchResult batch = punt::core::synthesize_batch(stgs, batch_options);
  const punt::benchmarks::Table1Report report =
      punt::benchmarks::make_report(shard, positions, batch);
  if (!trace_path.empty()) dump_trace(trace, trace_path);

  if (json) {
    std::printf("%s", punt::benchmarks::to_json(report).c_str());
    return report.failures() == 0 ? 0 : 2;
  }
  if (shard.count > 1) {
    std::printf("# Table-1 registry shard %zu/%zu (%zu of %zu entries), %zu job(s)%s\n\n",
                shard.index, shard.count, report.rows.size(), registry.size(), batch.jobs,
                weights_path.empty()
                    ? ""
                    : (weights_from_ledger
                           ? ", cost-aware partition (LPT by ledger estimate)"
                           : ", cost-aware partition (LPT by TotTim)"));
  } else {
    std::printf("# Table-1 registry through the task-graph executor, %zu job(s)\n\n",
                batch.jobs);
  }
  std::printf("%s", punt::benchmarks::format_table1(report).c_str());
  std::printf("(paperTot/papLit: the 1997 paper's TotTim and literal count)\n");
  std::printf("wall %.3fs (critical path %.3fs) across %zu entr%s\n", batch.wall_seconds,
              batch.critical_path_seconds, report.rows.size(),
              report.rows.size() == 1 ? "y" : "ies");
  return report.failures() == 0 ? 0 : 2;
}

int cmd_trace(const std::string& path) {
  punt::util::TaskTrace trace;
  try {
    trace = punt::benchmarks::trace_from_json(read_file(path));
  } catch (const punt::ParseError& e) {
    throw punt::Error("cannot read schedule trace '" + path + "': " + e.what());
  }
  std::printf("%s", punt::benchmarks::format_trace(trace).c_str());
  return 0;
}

int cmd_bench_merge(const std::vector<std::string>& args) {
  if (args.empty()) {
    std::fprintf(stderr, "usage: punt bench merge <report.json...>\n");
    return 1;
  }
  std::vector<punt::benchmarks::Table1Report> shards;
  shards.reserve(args.size());
  for (const std::string& path : args) {
    try {
      shards.push_back(punt::benchmarks::report_from_json(read_file(path)));
    } catch (const punt::Error& e) {
      throw punt::Error("cannot read shard report '" + path + "': " + e.what());
    }
  }
  const punt::benchmarks::Table1Report merged = punt::benchmarks::merge_reports(shards);

  std::printf("# Table-1 registry merged from %zu shard report(s)\n\n", shards.size());
  std::printf("%s", punt::benchmarks::format_table1(merged).c_str());
  std::printf("(paperTot/papLit: the 1997 paper's TotTim and literal count)\n");
  std::printf("slowest shard wall %.3fs\n", merged.wall_seconds);
  if (merged.failures() > 0) {
    std::fprintf(stderr, "error: %zu registry entr%s failed; see the rows above\n",
                 merged.failures(), merged.failures() == 1 ? "y" : "ies");
    return 2;
  }
  return 0;
}

// --- Serve mode ---------------------------------------------------------------

/// The running server, for the signal handlers; handlers only call
/// request_stop(), which merely stores an atomic flag the accept loop polls.
punt::server::Server* g_server = nullptr;

extern "C" void handle_stop_signal(int) {
  if (g_server != nullptr) g_server->request_stop();
}

int cmd_serve(const std::vector<std::string>& args) {
  punt::server::ServerOptions options;
  std::string socket_path;
  std::string listen;
  std::string token_path;
  for (const std::string& arg : args) {
    if (arg.rfind("--socket=", 0) == 0) {
      socket_path = arg.substr(9);
    } else if (arg.rfind("--listen=", 0) == 0) {
      listen = arg.substr(9);
    } else if (arg.rfind("--token-file=", 0) == 0) {
      token_path = token_file_path({arg});  // shares the validation
    } else if (arg.rfind("--jobs=", 0) == 0) {
      options.jobs = parse_jobs(arg.substr(7));
    } else if (arg.rfind("--model-cache-dir=", 0) == 0) {
      options.model_cache_dir = model_cache_dir({arg});  // shares the validation
    } else if (arg.rfind("--batch-window=", 0) == 0) {
      options.batch_window_ms = parse_millis(arg.substr(15), "--batch-window");
    } else if (arg.rfind("--max-queue=", 0) == 0) {
      options.max_queue = parse_positive_count(arg.substr(12), "--max-queue", 65536);
    } else if (arg.rfind("--send-timeout=", 0) == 0) {
      options.send_timeout_seconds = static_cast<long>(
          parse_positive_count(arg.substr(15), "--send-timeout", 3600));
    } else if (arg.rfind("--handshake-timeout=", 0) == 0) {
      options.handshake_timeout_seconds =
          parse_timeout_seconds(arg.substr(20), "--handshake-timeout");
    } else if (arg.rfind("--idle-timeout=", 0) == 0) {
      options.idle_timeout_seconds =
          parse_timeout_seconds(arg.substr(15), "--idle-timeout");
    } else {
      // Strict, unlike the synthesis commands: a daemon started with a
      // typo'd flag would silently serve with the wrong configuration until
      // someone noticed.
      throw punt::Error("unknown punt serve flag '" + arg + "'");
    }
  }
  if (socket_path.empty() == listen.empty()) {
    throw punt::Error("punt serve needs exactly one of --socket=<path> (Unix "
                      "socket) or --listen=tcp://<addr>:<port> (authenticated "
                      "TCP; requires --token-file)");
  }
  if (!socket_path.empty()) {
    options.endpoint = punt::server::unix_endpoint(socket_path);
  } else {
    options.endpoint = punt::server::parse_endpoint(listen);
    if (options.endpoint.transport != punt::server::Transport::Tcp) {
      throw punt::Error("--listen=" + listen + " is not a tcp:// endpoint; "
                        "use --socket=<path> for a Unix socket");
    }
  }
  if (!token_path.empty()) options.token = read_token_file(token_path);
  // An unauthenticated TCP daemon is also refused by Server::start(); the
  // earlier CLI-level check just gives the flag-shaped diagnostic.
  if (options.endpoint.transport == punt::server::Transport::Tcp &&
      options.token.empty()) {
    throw punt::Error("punt serve --listen=tcp://... requires --token-file=<file> "
                      "holding the shared auth token (the daemon refuses to "
                      "serve the network unauthenticated)");
  }
  const double window_ms = options.batch_window_ms;
  punt::server::Server server(std::move(options));
  server.start();
  // RAII so an error path (serve() throwing) also detaches the handlers
  // before `server` is destroyed — a SIGTERM arriving while the stack
  // unwinds must not reach request_stop() on a dead object.
  struct SignalGuard {
    explicit SignalGuard(punt::server::Server* server) {
      g_server = server;
      std::signal(SIGTERM, handle_stop_signal);
      std::signal(SIGINT, handle_stop_signal);
    }
    ~SignalGuard() {
      std::signal(SIGTERM, SIG_DFL);
      std::signal(SIGINT, SIG_DFL);
      g_server = nullptr;
    }
  } signal_guard(&server);
  const punt::server::Endpoint& bound = server.endpoint();
  std::fprintf(stderr, "punt serve: listening on %s%s, %zu job(s), %s%s%s\n",
               bound.describe().c_str(),
               bound.transport == punt::server::Transport::Tcp
                   ? " (HMAC-authenticated)"
                   : "",
               server.jobs(),
               window_ms > 0
                   ? punt::printf_string("%.1fms fusion window", window_ms).c_str()
                   : "fusion off",
               server.cache().store() != nullptr ? ", model cache dir " : "",
               server.cache().store() != nullptr
                   ? server.cache().store()->directory().c_str()
                   : "");
  server.serve();
  std::fprintf(stderr, "punt serve: drained; served %zu request(s)\n",
               server.requests_served());
  print_cache_summary(server.cache());
  return 0;
}

int cmd_ping(const std::vector<std::string>& args) {
  const std::string target = connect_target(args);
  if (target.empty()) {
    throw punt::Error("punt ping needs --connect=<endpoint> naming the daemon");
  }
  punt::server::Request request;
  request.op = punt::server::Op::Ping;
  return run_client(resolve_connect(target, args), request);
}

int cmd_shutdown(const std::vector<std::string>& args) {
  const std::string target = connect_target(args);
  if (target.empty()) {
    throw punt::Error("punt shutdown needs --connect=<endpoint> naming the daemon");
  }
  punt::server::Request request;
  request.op = punt::server::Op::Shutdown;
  const int exit_code = run_client(resolve_connect(target, args), request);
  std::fprintf(stderr, "server at %s acknowledged shutdown; it drains in-flight "
               "requests and exits\n", target.c_str());
  return exit_code;
}

int cmd_cache(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  const std::vector<std::string> rest{args.begin() + 1, args.end()};
  const std::string target = connect_target(rest);
  if (!target.empty()) {
    if (args[0] != "stats") {
      throw punt::Error("punt cache " + args[0] + " is not served over --connect; "
                        "only `punt cache stats` queries a running daemon");
    }
    punt::server::Request request;
    request.op = punt::server::Op::CacheStats;
    return run_client(resolve_connect(target, rest), request);
  }
  const std::string dir = model_cache_dir({args.begin() + 1, args.end()});
  if (dir.empty()) {
    throw punt::Error("punt cache " + args[0] +
                      " needs --model-cache-dir=<dir> naming the cache directory");
  }
  if (args[0] == "purge") {
    const std::size_t removed = punt::core::ModelStore::purge(dir);
    std::printf("purged %zu model file(s) from %s\n", removed, dir.c_str());
    return 0;
  }
  if (args[0] == "stats") {
    // JSON so the CI cache-stats step (and scripts) can consume it; the
    // stderr summaries of synth/bench cover the human glance.
    const std::vector<punt::core::StoredModelInfo> entries =
        punt::core::ModelStore::scan(dir);
    std::uintmax_t bytes = 0;
    std::size_t corrupt = 0;
    for (const auto& entry : entries) {
      bytes += entry.bytes;
      if (!entry.ok) ++corrupt;
    }
    std::printf("{\n");
    std::printf("  \"schema\": \"punt-cache-stats\",\n");
    std::printf("  \"version\": 1,\n");
    std::printf("  \"directory\": \"%s\",\n", punt::util::json_escape(dir).c_str());
    std::printf("  \"models\": %zu,\n", entries.size());
    std::printf("  \"bytes\": %llu,\n", static_cast<unsigned long long>(bytes));
    std::printf("  \"corrupt\": %zu,\n", corrupt);
    std::printf("  \"entries\": [\n");
    for (std::size_t i = 0; i < entries.size(); ++i) {
      const auto& entry = entries[i];
      std::printf("    {\"file\": \"%s\", \"bytes\": %llu, \"ok\": %s",
                  punt::util::json_escape(entry.file).c_str(),
                  static_cast<unsigned long long>(entry.bytes),
                  entry.ok ? "true" : "false");
      if (entry.ok) {
        std::printf(", \"model\": \"%s\", \"kind\": \"%s\", \"events\": %zu, "
                    "\"states\": %zu",
                    punt::util::json_escape(entry.model).c_str(), entry.kind.c_str(),
                    entry.events, entry.states);
      } else {
        std::printf(", \"error\": \"%s\"", punt::util::json_escape(entry.error).c_str());
      }
      std::printf("}%s\n", i + 1 < entries.size() ? "," : "");
    }
    std::printf("  ]\n}\n");
    return corrupt == 0 ? 0 : 2;
  }
  return usage();
}

// --- punt bench serve ---------------------------------------------------------

int cmd_bench_serve(const std::vector<std::string>& args) {
  punt::benchmarks::LoadgenOptions load;
  punt::server::ServerOptions daemon;
  daemon.jobs = 0;  // a self-spawned daemon defaults to the hardware width
  std::string connect;
  std::string listen;
  std::string token_path;
  std::string json_path;
  bool daemon_flags = false;
  for (const std::string& arg : args) {
    if (arg.rfind("--connect=", 0) == 0) {
      connect = arg.substr(10);
    } else if (arg.rfind("--listen=", 0) == 0) {
      // Transport of the *self-spawned* daemon: "tcp" picks loopback with an
      // ephemeral port and a throwaway token; a full tcp:// endpoint pins
      // the address.  (Without --listen the private Unix socket of PR 6.)
      listen = arg.substr(9);
      daemon_flags = true;
    } else if (arg.rfind("--token-file=", 0) == 0) {
      token_path = token_file_path({arg});  // shares the validation
    } else if (arg.rfind("--clients=", 0) == 0) {
      load.clients = parse_positive_count(arg.substr(10), "--clients", 256);
    } else if (arg.rfind("--duration=", 0) == 0) {
      load.duration_seconds = parse_seconds(arg.substr(11), "--duration", 3600);
    } else if (arg == "--no-warmup") {
      load.warmup = false;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
      if (json_path.empty()) {
        throw punt::Error("--json needs a file path (e.g. --json=BENCH_serve.json)");
      }
    } else if (arg.rfind("--jobs=", 0) == 0) {
      daemon.jobs = parse_jobs(arg.substr(7));
      daemon_flags = true;
    } else if (arg.rfind("--batch-window=", 0) == 0) {
      daemon.batch_window_ms = parse_millis(arg.substr(15), "--batch-window");
      daemon_flags = true;
    } else if (arg.rfind("--max-queue=", 0) == 0) {
      daemon.max_queue = parse_positive_count(arg.substr(12), "--max-queue", 65536);
      daemon_flags = true;
    } else {
      // Strict like `punt serve`: a typo'd flag would silently bench the
      // wrong configuration.
      throw punt::Error("unknown punt bench serve flag '" + arg + "'");
    }
  }
  if (!connect.empty() && daemon_flags) {
    throw punt::Error(
        "--jobs/--batch-window/--max-queue/--listen configure the self-spawned "
        "daemon; with --connect they belong to the already-running `punt serve`");
  }

  // Without --connect, spawn the daemon in-process on a private endpoint so
  // one command measures a fresh, correctly-configured server end to end.
  std::unique_ptr<punt::server::Server> server;
  std::thread serve_thread;
  std::exception_ptr serve_error;
  if (connect.empty()) {
    if (listen.empty()) {
      daemon.endpoint = punt::server::unix_endpoint(
          "/tmp/punt-bench-serve-" + std::to_string(::getpid()) + ".sock");
    } else {
      // "tcp" shorthand: loopback, kernel-assigned port — the transport-
      // overhead measurement needs no pinned address.
      daemon.endpoint = listen == "tcp"
                            ? punt::server::tcp_endpoint("127.0.0.1", 0)
                            : punt::server::parse_endpoint(listen);
      if (daemon.endpoint.transport != punt::server::Transport::Tcp) {
        throw punt::Error("--listen=" + listen + " is not a tcp endpoint; the "
                          "self-spawned bench daemon is Unix by default");
      }
      // A throwaway token: the daemon lives and dies inside this process,
      // so the secret never needs to leave it (a --token-file can still pin
      // one, e.g. to drive the same run from outside).
      daemon.token = token_path.empty() ? punt::util::random_hex(16)
                                        : read_token_file(token_path);
    }
    load.token = daemon.token;
    server = std::make_unique<punt::server::Server>(daemon);
    server->start();
    // Connect (and bench) against the *bound* endpoint: for tcp port 0 this
    // carries the kernel-assigned port.
    load.endpoint = server->endpoint();
    serve_thread = std::thread([&server, &serve_error] {
      try {
        server->serve();
      } catch (...) {
        serve_error = std::current_exception();
      }
    });
    std::fprintf(stderr,
                 "punt bench serve: in-process daemon on %s, %zu job(s), "
                 "%.1fms window, queue %zu\n",
                 server->endpoint().describe().c_str(), server->jobs(),
                 daemon.batch_window_ms, daemon.max_queue);
  } else {
    load.endpoint = punt::server::parse_endpoint(connect);
    if (!token_path.empty()) load.token = read_token_file(token_path);
    if (load.endpoint.transport == punt::server::Transport::Tcp &&
        load.token.empty()) {
      throw punt::Error("--connect=" + connect + " is a TCP endpoint; pass "
                        "--token-file=<file> with the daemon's shared auth token");
    }
  }
  struct DaemonGuard {
    punt::server::Server* server;
    std::thread* thread;
    ~DaemonGuard() {
      if (server != nullptr) {
        server->request_stop();
        if (thread->joinable()) thread->join();
      }
    }
  } daemon_guard{server.get(), &serve_thread};

  const punt::benchmarks::ServeBenchReport report = punt::benchmarks::run_loadgen(load);
  std::printf("%s", punt::benchmarks::format_serve_summary(report).c_str());
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) throw punt::Error("cannot write '" + json_path + "'");
    out << punt::benchmarks::to_json(report);
    if (!out.flush()) throw punt::Error("short write to '" + json_path + "'");
    std::fprintf(stderr, "wrote %s\n", json_path.c_str());
  }

  if (server != nullptr) {
    server->request_stop();
    serve_thread.join();
    daemon_guard.server = nullptr;
    if (serve_error) std::rethrow_exception(serve_error);
  }
  if (report.completed == 0) {
    std::fprintf(stderr, "error: no request completed inside the window\n");
    return 2;
  }
  if (report.transport_errors > 0) {
    std::fprintf(stderr, "error: %zu transport error(s) during the measured window\n",
                 report.transport_errors);
    return 2;
  }
  return 0;
}

int cmd_bench(const std::vector<std::string>& args) {
  if (!args.empty() && args[0] == "serve") {
    return cmd_bench_serve({args.begin() + 1, args.end()});
  }
  if (!args.empty() && args[0] == "run") {
    return cmd_bench_run({args.begin() + 1, args.end()});
  }
  if (!args.empty() && args[0] == "lint") {
    return cmd_bench_lint({args.begin() + 1, args.end()});
  }
  if (!args.empty() && args[0] == "merge") {
    return cmd_bench_merge({args.begin() + 1, args.end()});
  }
  if (!args.empty() && args[0] == "list") {
    for (const auto& bench : punt::benchmarks::table1()) {
      std::printf("%-24s %3zu signals  # %s\n", bench.name.c_str(), bench.signals,
                  bench.note.c_str());
    }
    return 0;
  }
  if (args.size() >= 2 && args[0] == "dump") {
    std::printf("%s", punt::stg::write_g(punt::benchmarks::find(args[1]).make()).c_str());
    return 0;
  }
  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return usage();
  try {
    const std::string& command = args[0];
    if (command == "synth" && args.size() >= 2) {
      return cmd_synth(args[1], {args.begin() + 2, args.end()});
    }
    if (command == "check" && args.size() >= 2) {
      return cmd_check(args[1], {args.begin() + 2, args.end()});
    }
    if (command == "lint" && args.size() >= 2) {
      return cmd_lint({args.begin() + 1, args.end()});
    }
    if (command == "resolve" && args.size() >= 2) return cmd_resolve(args[1]);
    if (command == "trace" && args.size() >= 2) return cmd_trace(args[1]);
    if (command == "bench") return cmd_bench({args.begin() + 1, args.end()});
    if (command == "cache") return cmd_cache({args.begin() + 1, args.end()});
    if (command == "serve") return cmd_serve({args.begin() + 1, args.end()});
    if (command == "ping") return cmd_ping({args.begin() + 1, args.end()});
    if (command == "shutdown") return cmd_shutdown({args.begin() + 1, args.end()});
    return usage();
  } catch (const punt::CscError& e) {
    std::fprintf(stderr, "CSC conflict: %s\n(try `punt resolve`)\n", e.what());
    return 2;
  } catch (const punt::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
