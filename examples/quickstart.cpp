// Quickstart: parse an STG from `.g` text, synthesise it with the
// unfolding-based flow, and print the resulting circuit.
//
// The spec below is the running example of the paper (Fig. 1): inputs a, c
// choose between two handshake shapes; the output b must be implemented.
// The expected gate is the paper's result: b = a + c.
#include <cstdio>

#include "src/core/synthesis.hpp"
#include "src/netlist/netlist.hpp"
#include "src/stg/g_format.hpp"

int main() {
  // The astg interchange format used by SIS and petrify; see
  // src/stg/g_format.hpp for the accepted grammar.
  const char* spec = R"(
.model paper_fig1
.inputs a c
.outputs b
.graph
p1 a+ c+/2
a+ p2 p3
p2 b+
p3 c+
b+ p5
c+ p6 p8
p5 a-
p6 a-
a- p7
c+/2 p4
p4 b+/2
b+/2 p7 p8
p7 c-
p8 c-
c- p9
p9 b-
b- p1
.marking { p1 }
.end
)";
  const punt::stg::Stg stg = punt::stg::parse_g(spec);
  std::printf("Parsed '%s': %zu signals, %zu transitions, %zu places.\n",
              stg.name().c_str(), stg.signal_count(), stg.net().transition_count(),
              stg.net().place_count());

  punt::core::SynthesisOptions options;
  options.method = punt::core::Method::UnfoldingApprox;  // the paper's flow
  const punt::core::SynthesisResult result = punt::core::synthesize(stg, options);

  std::printf("Segment: %zu events, %zu conditions, %zu cutoffs.\n",
              result.unfold_stats.events, result.unfold_stats.conditions,
              result.unfold_stats.cutoffs);
  std::printf("Times: unfold %.4fs, derive %.4fs, minimise %.4fs.\n",
              result.unfold_seconds, result.derive_seconds, result.minimize_seconds);

  const punt::net::Netlist netlist = punt::net::Netlist::from_synthesis(stg, result);
  std::printf("\nEquations (%zu literals):\n%s", netlist.literal_count(),
              netlist.to_eqn().c_str());
  std::printf("\nVerilog:\n%s", netlist.to_verilog("paper_fig1").c_str());
  return 0;
}
