// CSC diagnosis and repair demo: the classic VME-bus read-cycle controller
// has a Complete State Coding conflict (two reachable states share a binary
// code but demand different output behaviour).  Synthesis must refuse to
// emit logic; this example shows the thrown diagnosis, the state-level
// explanation, and the automatic repair by state-signal insertion.
#include <cstdio>

#include "src/core/csc_resolve.hpp"
#include "src/core/synthesis.hpp"
#include "src/netlist/netlist.hpp"
#include "src/sg/analysis.hpp"
#include "src/sg/state_graph.hpp"
#include "src/stg/generators.hpp"
#include "src/util/error.hpp"

int main() {
  const punt::stg::Stg stg = punt::stg::make_vme_bus();
  std::printf("VME bus read controller: %zu signals.\n\n", stg.signal_count());

  // 1. The synthesis driver refuses with a diagnostic.
  try {
    punt::core::synthesize(stg);
    std::printf("unexpected: synthesis succeeded\n");
    return 1;
  } catch (const punt::CscError& e) {
    std::printf("Synthesis refused (as it must):\n  %s\n\n", e.what());
  }

  // 2. Per-signal diagnosis without throwing.
  punt::core::SynthesisOptions options;
  options.throw_on_csc = false;
  const auto result = punt::core::synthesize(stg, options);
  for (const auto& impl : result.signals) {
    std::printf("  signal %-6s : %s\n", stg.signal_name(impl.signal).c_str(),
                impl.csc_conflict ? "CSC conflict" : "implementable");
  }

  // 3. The state-level explanation from the State Graph.
  const punt::sg::StateGraph sgraph = punt::sg::StateGraph::build(stg);
  const auto violations = punt::sg::csc_violations(stg, sgraph);
  std::printf("\n%zu conflicting state pair(s); first one:\n  %s\n", violations.size(),
              violations.front().describe(stg, sgraph).c_str());
  // 4. Automatic repair: insert a state signal and re-synthesise.
  const auto resolution = punt::core::resolve_csc(stg);
  if (!resolution) {
    std::printf("\nno automatic repair found\n");
    return 1;
  }
  std::printf("\nAutomatic repair: inserted '%s' rising after %s, falling after %s.\n",
              resolution->stg.signal_name(
                  *resolution->stg.find_signal("csc0")).c_str(),
              resolution->rise_after.c_str(), resolution->fall_after.c_str());
  const auto fixed = punt::core::synthesize(resolution->stg);
  const auto netlist = punt::net::Netlist::from_synthesis(resolution->stg, fixed);
  std::printf("\nRepaired circuit (%zu literals):\n%s", netlist.literal_count(),
              netlist.to_eqn().c_str());
  return 0;
}
