// Tour of the Table-1 benchmark registry: load every row, show its
// structural class and size, and synthesise it with the unfolding flow.
// A compact way to see the whole suite pass through the public API.
#include <cstdio>

#include "src/benchmarks/registry.hpp"
#include "src/core/synthesis.hpp"
#include "src/stg/g_format.hpp"

int main() {
  std::printf("%-22s %5s %6s %7s | %7s %8s | %6s\n", "benchmark", "sigs", "trans",
              "places", "events", "cutoffs", "lits");
  std::printf("------------------------------------------------------------------\n");
  for (const auto& bench : punt::benchmarks::table1()) {
    const punt::stg::Stg stg = bench.make();
    punt::core::SynthesisOptions options;
    const auto result = punt::core::synthesize(stg, options);
    std::printf("%-22s %5zu %6zu %7zu | %7zu %8zu | %6zu\n", bench.name.c_str(),
                stg.signal_count(), stg.net().transition_count(),
                stg.net().place_count(), result.unfold_stats.events,
                result.unfold_stats.cutoffs, result.literal_count());
  }
  std::printf("\nEach entry notes its provenance, e.g.:\n");
  const auto& example = punt::benchmarks::find("alloc-outbound");
  std::printf("  %s: %s\n", example.name.c_str(), example.note.c_str());
  std::printf("\nAny entry can be exported to the astg interchange format:\n\n%s",
              punt::stg::write_g(punt::benchmarks::find("sendr-done").make()).c_str());
  return 0;
}
