// Tour of the lint subsystem (DESIGN.md §11): run the structural rules
// over a deliberately defective spec and show the compiler-style report,
// then confirm the whole Table-1 registry lints clean — the same pass the
// serve daemon runs before admitting a request.
#include <cstdio>

#include "src/benchmarks/registry.hpp"
#include "src/lint/lint.hpp"
#include "src/lint/rules.hpp"
#include "src/stg/g_format.hpp"

int main() {
  std::printf("The rule catalog:\n");
  for (const auto& rule : punt::lint::rule_catalog()) {
    std::printf("  %s  %-7s  %s\n", rule.id,
                punt::util::severity_name(rule.severity), rule.summary);
  }

  // One spec, several defects: a duplicated declaration, a signal that only
  // rises, and an unreachable pair — all reported in a single pass, each
  // with a source span and a fix hint.
  const char* defective =
      ".model demo\n"
      ".inputs a a\n"
      ".outputs b\n"
      ".graph\n"
      "a+ p\n"
      "p b+\n"
      "b+ q\n"
      "q a+/2\n"
      ".marking { p }\n"
      ".init_values a=0 b=0\n"
      ".end\n";
  const auto report = punt::lint::lint_text(defective, "demo.g");
  std::printf("\nA defective spec:\n\n%s",
              punt::lint::render_human(report, defective).c_str());

  std::printf("\nAnd the registry:\n");
  std::size_t clean = 0;
  for (const auto& bench : punt::benchmarks::table1()) {
    const std::string text = punt::stg::write_g(bench.make());
    clean += punt::lint::lint_text(text, bench.name).diagnostics.empty() ? 1 : 0;
  }
  std::printf("  %zu/%zu Table-1 specs lint clean\n", clean,
              punt::benchmarks::table1().size());
  return 0;
}
