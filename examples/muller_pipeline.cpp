// Scalability demo: synthesise an 8-stage Muller pipeline and show why the
// unfolding flow wins — the segment stays tiny while the state graph grows
// exponentially; the synthesised stage gates are the classic C-element-like
// majority functions.
#include <cstdio>

#include "src/core/synthesis.hpp"
#include "src/netlist/netlist.hpp"
#include "src/sg/state_graph.hpp"
#include "src/stg/generators.hpp"

int main() {
  const std::size_t stages = 8;
  const punt::stg::Stg stg = punt::stg::make_muller_pipeline(stages);
  std::printf("Muller pipeline, %zu stages, %zu signals.\n", stages,
              stg.signal_count());

  const punt::sg::StateGraph sgraph = punt::sg::StateGraph::build(stg);
  punt::core::SynthesisOptions options;
  options.method = punt::core::Method::UnfoldingApprox;
  const punt::core::SynthesisResult result = punt::core::synthesize(stg, options);
  std::printf("State graph: %zu states.  Unfolding segment: %zu events "
              "(%zu cutoffs).\n",
              sgraph.state_count(), result.unfold_stats.events,
              result.unfold_stats.cutoffs);

  const punt::net::Netlist netlist = punt::net::Netlist::from_synthesis(stg, result);
  std::printf("\nStage gates (%zu literals total):\n%s", netlist.literal_count(),
              netlist.to_eqn().c_str());

  const auto violations = punt::net::verify_conformance(sgraph, netlist);
  std::printf("\nConformance against all %zu states: %s\n", sgraph.state_count(),
              violations.empty() ? "PASS" : violations.front().detail.c_str());
  return violations.empty() ? 0 : 1;
}
