// Experiment F6 — reproduces Figure 6 of the paper.
//
// Scalability on the Muller pipeline: synthesis time versus signal count
// for the unfolding-based flow ("PUNT") and the explicit state-graph flow
// (the SIS/Petrify stand-in).  The SG flow is expected to blow up
// exponentially (2^n states for n stages) while the unfolding flow grows
// roughly linearly; points whose SG exceeds the state threshold are
// reported as DNF — the paper's "existing tools soon choke".
//
// The circled dot of Fig. 6 — the 34-signal counterflow pipeline — is
// reproduced as the final rows.  Set PUNT_BENCH_FULL=1 for larger sweeps.
#include <cstdio>
#include <cstdlib>

#include "src/core/synthesis.hpp"
#include "src/sg/state_graph.hpp"
#include "src/stg/generators.hpp"
#include "src/util/error.hpp"
#include "src/util/stopwatch.hpp"

namespace {

using punt::core::Method;
using punt::core::SynthesisOptions;

/// SG-flow points above this state count are reported as DNF (the cost is
/// minutes-to-hours; the point of the figure is exactly that).
constexpr std::size_t kSgStateThreshold = 5000;

double punt_time(const punt::stg::Stg& stg) {
  punt::Stopwatch sw;
  SynthesisOptions options;
  options.method = Method::UnfoldingApprox;
  (void)punt::core::synthesize(stg, options);
  return sw.seconds();
}

/// Returns negative when the SG flow did not finish (threshold exceeded).
double sg_time(const punt::stg::Stg& stg, std::size_t* states) {
  punt::Stopwatch sw;
  punt::sg::BuildOptions probe;
  probe.state_budget = kSgStateThreshold + 1;  // only "fits or not" matters
  try {
    const auto sgraph = punt::sg::StateGraph::build(stg, probe);
    *states = sgraph.state_count();
  } catch (const punt::CapacityError&) {
    *states = probe.state_budget;
    return -1;
  }
  if (*states > kSgStateThreshold) return -1;
  SynthesisOptions options;
  options.method = Method::StateGraph;
  (void)punt::core::synthesize(stg, options);
  return sw.seconds();
}

}  // namespace

int main() {
  const bool full = std::getenv("PUNT_BENCH_FULL") != nullptr;
  std::printf("Figure 6 — Muller pipeline scalability (time in seconds)\n\n");
  std::printf("%8s %8s | %10s | %12s %10s\n", "stages", "signals", "PUNT", "SG-flow",
              "SG-states");
  std::printf("--------------------------------------------------------\n");

  std::vector<std::size_t> stage_counts{4, 9, 14, 19, 24, 29};
  if (full) stage_counts.insert(stage_counts.end(), {39, 49});
  for (const std::size_t n : stage_counts) {
    const punt::stg::Stg stg = punt::stg::make_muller_pipeline(n);
    const double punt_seconds = punt_time(stg);
    std::size_t states = 0;
    const double sg_seconds = sg_time(stg, &states);
    if (sg_seconds >= 0) {
      std::printf("%8zu %8zu | %10.3f | %12.3f %10zu\n", n, stg.signal_count(),
                  punt_seconds, sg_seconds, states);
    } else {
      std::printf("%8zu %8zu | %10.3f | %12s %10zu\n", n, stg.signal_count(),
                  punt_seconds, "DNF", states);
    }
  }

  std::printf("\nCounterflow pipeline (the paper's circled dot: 34 signals;\n"
              "Petrify needed >24h, PUNT <2h — an order of magnitude):\n\n");
  const punt::stg::Stg cf = punt::stg::make_counterflow_pipeline(16);
  const double cf_punt = punt_time(cf);
  std::size_t cf_states = 0;
  const double cf_sg = sg_time(cf, &cf_states);
  std::printf("%8s %8zu | %10.3f | %12s %10s\n", "cfpp", cf.signal_count(), cf_punt,
              cf_sg >= 0 ? "finished" : "DNF", cf_sg >= 0 ? "" : ">5000");
  std::printf(
      "\nShape check: PUNT grows roughly linearly with the signal count while\n"
      "the explicit SG flow grows exponentially and stops finishing.\n");
  return 0;
}
