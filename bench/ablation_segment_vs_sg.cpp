// Experiment A2 — size of the STG-unfolding segment versus the State Graph
// across the suite: the premise (from [11] / §3.1) that makes the whole
// method worthwhile.  Events+conditions against SG states+arcs.
#include <cstdio>

#include "src/benchmarks/registry.hpp"
#include "src/sg/state_graph.hpp"
#include "src/stg/generators.hpp"
#include "src/unfolding/unfolding.hpp"
#include "src/util/error.hpp"

int main() {
  std::printf("Ablation A2 — segment size vs state-graph size\n\n");
  std::printf("%-24s %6s | %8s %10s %8s | %9s %9s | %8s\n", "benchmark", "sigs",
              "events", "conditions", "cutoffs", "SG-states", "SG-arcs", "ratio");
  std::printf("-------------------------------------------------------------------"
              "---------------------------\n");
  auto report = [](const char* name, const punt::stg::Stg& stg) {
    const auto unf = punt::unf::Unfolding::build(stg);
    std::size_t states = 0, arcs = 0;
    bool sg_ok = true;
    try {
      punt::sg::BuildOptions options;
      options.state_budget = 200000;
      const auto sgraph = punt::sg::StateGraph::build(stg, options);
      states = sgraph.state_count();
      arcs = sgraph.arc_count();
    } catch (const punt::CapacityError&) {
      sg_ok = false;
    }
    if (sg_ok) {
      std::printf("%-24s %6zu | %8zu %10zu %8zu | %9zu %9zu | %8.2f\n", name,
                  stg.signal_count(), unf.stats().events, unf.stats().conditions,
                  unf.stats().cutoffs, states, arcs,
                  double(states) / double(unf.stats().events + 1));
    } else {
      std::printf("%-24s %6zu | %8zu %10zu %8zu | %9s %9s | %8s\n", name,
                  stg.signal_count(), unf.stats().events, unf.stats().conditions,
                  unf.stats().cutoffs, ">200000", "-", "huge");
    }
  };
  for (const auto& bench : punt::benchmarks::table1()) {
    report(bench.name.c_str(), bench.make());
  }
  report("muller(24)", punt::stg::make_muller_pipeline(24));
  report("counterflow(16)", punt::stg::make_counterflow_pipeline(16));
  std::printf("\nShape check: the segment stays near-linear in the spec size while\n"
              "the SG grows exponentially with concurrency.\n");
  return 0;
}
