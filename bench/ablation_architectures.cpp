// Experiment A4 — implementation-architecture ablation (paper §2.1 and the
// §6 outlook): literal counts of the atomic-complex-gate-per-signal
// implementation versus the standard-C and RS-latch implementations, all
// derived from the same unfolding approximations.
#include <cstdio>

#include "src/benchmarks/registry.hpp"
#include "src/core/synthesis.hpp"

int main() {
  using punt::core::Architecture;
  using punt::core::SynthesisOptions;
  std::printf("Ablation A4 — literal counts per implementation architecture\n\n");
  std::printf("%-24s %6s | %8s %10s %8s\n", "benchmark", "sigs", "ACG", "standard-C",
              "RS-latch");
  std::printf("--------------------------------------------------------------\n");
  std::size_t total_acg = 0, total_c = 0, total_rs = 0;
  for (const auto& bench : punt::benchmarks::table1()) {
    const punt::stg::Stg stg = bench.make();
    auto lits = [&stg](Architecture arch) {
      SynthesisOptions options;
      options.architecture = arch;
      return punt::core::synthesize(stg, options).literal_count();
    };
    const std::size_t acg = lits(Architecture::ComplexGate);
    const std::size_t sc = lits(Architecture::StandardC);
    const std::size_t rs = lits(Architecture::RsLatch);
    total_acg += acg;
    total_c += sc;
    total_rs += rs;
    std::printf("%-24s %6zu | %8zu %10zu %8zu\n", bench.name.c_str(), bench.signals,
                acg, sc, rs);
  }
  std::printf("--------------------------------------------------------------\n");
  std::printf("%-24s %6s | %8zu %10zu %8zu\n", "Total", "", total_acg, total_c,
              total_rs);
  std::printf("\nShape check: the latch architectures split each gate into smaller\n"
              "set/reset functions (the paper's motivation for them).\n");
  return 0;
}
