// Experiment A4 — implementation-architecture ablation (paper §2.1 and the
// §6 outlook): literal counts of the atomic-complex-gate-per-signal
// implementation versus the standard-C and RS-latch implementations, all
// derived from the same unfolding approximations.  Each architecture's
// registry sweep goes through the batch pipeline (jobs = 0 → one worker per
// hardware thread); the batch determinism guarantee makes the counts
// independent of the worker count.
#include <cstdio>
#include <vector>

#include "src/benchmarks/registry.hpp"
#include "src/core/pipeline.hpp"
#include "src/core/synthesis.hpp"

int main() {
  using punt::core::Architecture;
  using punt::core::BatchOptions;
  using punt::core::BatchResult;

  const auto& registry = punt::benchmarks::table1();
  std::vector<punt::stg::Stg> stgs;
  stgs.reserve(registry.size());
  for (const auto& bench : registry) stgs.push_back(bench.make());

  auto sweep = [&stgs](Architecture arch) {
    BatchOptions options;
    options.synthesis.architecture = arch;
    options.jobs = 0;  // one worker per hardware thread
    return punt::core::synthesize_batch(stgs, options);
  };
  const BatchResult acg = sweep(Architecture::ComplexGate);
  const BatchResult sc = sweep(Architecture::StandardC);
  const BatchResult rs = sweep(Architecture::RsLatch);
  for (const BatchResult* batch : {&acg, &sc, &rs}) {
    for (std::size_t i = 0; i < batch->entries.size(); ++i) {
      if (!batch->entries[i].ok) {
        // A zero in the table would be read as a literal count; fail loudly.
        std::printf("ERROR: %s failed: %s\n", registry[i].name.c_str(),
                    batch->entries[i].error.c_str());
        return 1;
      }
    }
  }

  std::printf("Ablation A4 — literal counts per implementation architecture\n\n");
  std::printf("%-24s %6s | %8s %10s %8s\n", "benchmark", "sigs", "ACG", "standard-C",
              "RS-latch");
  std::printf("--------------------------------------------------------------\n");
  for (std::size_t i = 0; i < registry.size(); ++i) {
    std::printf("%-24s %6zu | %8zu %10zu %8zu\n", registry[i].name.c_str(),
                registry[i].signals, acg.entries[i].result.literal_count(),
                sc.entries[i].result.literal_count(),
                rs.entries[i].result.literal_count());
  }
  std::printf("--------------------------------------------------------------\n");
  std::printf("%-24s %6s | %8zu %10zu %8zu\n", "Total", "", acg.literal_count(),
              sc.literal_count(), rs.literal_count());
  std::printf("\nShape check: the latch architectures split each gate into smaller\n"
              "set/reset functions (the paper's motivation for them).\n");
  return 0;
}
