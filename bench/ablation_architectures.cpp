// Experiment A4 — implementation-architecture ablation (paper §2.1 and the
// §6 outlook): literal counts of the atomic-complex-gate-per-signal
// implementation versus the standard-C and RS-latch implementations, all
// derived from the same unfolding approximations.  Each architecture's
// registry sweep goes through the batch pipeline (jobs = 0 → one worker per
// hardware thread); the batch determinism guarantee makes the counts
// independent of the worker count.
//
// The three sweeps share one ModelCache: the architecture is a
// derivation-only option, so the ACG sweep builds each STG's unfolding
// segment and the standard-C and RS sweeps reuse it — exactly one semantic
// model per STG for the whole experiment (asserted below, together with
// byte-identical results against a cache-less run).
#include <cstdio>
#include <vector>

#include "src/benchmarks/registry.hpp"
#include "src/core/model_cache.hpp"
#include "src/core/pipeline.hpp"
#include "src/core/synthesis.hpp"

int main() {
  using punt::core::Architecture;
  using punt::core::BatchOptions;
  using punt::core::BatchResult;
  using punt::core::ModelCache;

  const auto& registry = punt::benchmarks::table1();
  std::vector<punt::stg::Stg> stgs;
  stgs.reserve(registry.size());
  for (const auto& bench : registry) stgs.push_back(bench.make());

  ModelCache cache;
  auto sweep = [&stgs, &cache](Architecture arch, bool use_cache) {
    BatchOptions options;
    options.synthesis.architecture = arch;
    options.jobs = 0;  // one worker per hardware thread
    options.cache = use_cache ? &cache : nullptr;
    return punt::core::synthesize_batch(stgs, options);
  };
  const BatchResult acg = sweep(Architecture::ComplexGate, true);
  const BatchResult sc = sweep(Architecture::StandardC, true);
  const BatchResult rs = sweep(Architecture::RsLatch, true);
  for (const BatchResult* batch : {&acg, &sc, &rs}) {
    for (std::size_t i = 0; i < batch->entries.size(); ++i) {
      if (!batch->entries[i].ok) {
        // A zero in the table would be read as a literal count; fail loudly.
        std::printf("ERROR: %s failed: %s\n", registry[i].name.c_str(),
                    batch->entries[i].error.c_str());
        return 1;
      }
    }
  }

  // Cache correctness guard: a cache-less ACG sweep must produce the same
  // circuits bit for bit — sharing the model may only save time.
  const BatchResult acg_fresh = sweep(Architecture::ComplexGate, false);
  for (std::size_t i = 0; i < registry.size(); ++i) {
    const auto& cached = acg.entries[i].result.signals;
    const auto& fresh = acg_fresh.entries[i].result.signals;
    bool same = acg_fresh.entries[i].ok && cached.size() == fresh.size();
    for (std::size_t s = 0; same && s < cached.size(); ++s) {
      same = cached[s].same_logic(fresh[s]);
    }
    if (!same) {
      std::printf("ERROR: %s synthesises differently with the model cache on\n",
                  registry[i].name.c_str());
      return 1;
    }
  }

  // One model per STG across the whole experiment: the first sweep misses
  // once per benchmark, the other two hit — a 2/3 hit rate exactly.
  const punt::core::ModelCacheStats stats = cache.stats();
  if (stats.misses != registry.size() || stats.hits != 2 * registry.size()) {
    std::printf("ERROR: expected %zu model builds and %zu reuses, measured "
                "%zu misses / %zu hits\n",
                registry.size(), 2 * registry.size(), stats.misses, stats.hits);
    return 1;
  }

  std::printf("Ablation A4 — literal counts per implementation architecture\n\n");
  std::printf("%-24s %6s | %8s %10s %8s\n", "benchmark", "sigs", "ACG", "standard-C",
              "RS-latch");
  std::printf("--------------------------------------------------------------\n");
  for (std::size_t i = 0; i < registry.size(); ++i) {
    std::printf("%-24s %6zu | %8zu %10zu %8zu\n", registry[i].name.c_str(),
                registry[i].signals, acg.entries[i].result.literal_count(),
                sc.entries[i].result.literal_count(),
                rs.entries[i].result.literal_count());
  }
  std::printf("--------------------------------------------------------------\n");
  std::printf("%-24s %6s | %8zu %10zu %8zu\n", "Total", "", acg.literal_count(),
              sc.literal_count(), rs.literal_count());
  std::printf("\nModelCache: %zu models built, %zu reused (%.1f%% hit rate), "
              "%.3fs of model construction saved\n",
              stats.misses, stats.hits, stats.hit_rate() * 100.0, stats.saved_seconds);
  std::printf("\nShape check: the latch architectures split each gate into smaller\n"
              "set/reset functions (the paper's motivation for them).\n");
  return 0;
}
