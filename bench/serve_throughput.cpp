// Experiment SV — serve-mode request fusion under concurrent load.
//
// Spins up two in-process `punt serve` daemons over the same warm workload
// — one with the micro-batching window disabled (--batch-window=0, the
// pre-fusion daemon: every synth request runs inline on its connection
// thread) and one with the default 2ms window — and drives each with 8
// closed-loop clients walking the Table-1 registry.
//
// What fusion buys: requests that arrive together run as ONE union task
// graph over the shared executor, so concurrent clients share scheduling
// the way `punt bench run` entries do instead of contending request by
// request.  The experiment hard-asserts the two properties the feature
// claims (nonzero exit on failure, so CI can gate on it):
//
//   1. batches actually form: mean fused batch size > 1 under 8 clients;
//   2. fusion is not a throughput regression: fused throughput >= 0.9x the
//      window=0 baseline (the 10% floor absorbs closed-loop run-to-run
//      variance on small machines; in steady state fusion wins).
//
// Set PUNT_BENCH_FULL=1 for a longer (5s per daemon) measurement window.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include <unistd.h>

#include "src/benchmarks/loadgen.hpp"
#include "src/benchmarks/report.hpp"
#include "src/server/server.hpp"

namespace {

using punt::benchmarks::LoadgenOptions;
using punt::benchmarks::ServeBenchReport;

constexpr std::size_t kClients = 8;

/// One daemon lifecycle: start, drive with the load generator, drain.
ServeBenchReport measure(double window_ms, double duration_seconds) {
  punt::server::ServerOptions options;
  options.endpoint = punt::server::unix_endpoint(
      "/tmp/punt-serve-throughput-" + std::to_string(::getpid()) +
      (window_ms > 0 ? "-fused" : "-baseline") + ".sock");
  options.jobs = 0;  // hardware width, like a production daemon
  options.batch_window_ms = window_ms;
  punt::server::Server server(options);
  server.start();
  std::thread serve_thread([&server] { server.serve(); });

  LoadgenOptions load;
  load.endpoint = options.endpoint;
  load.clients = kClients;
  load.duration_seconds = duration_seconds;
  ServeBenchReport report;
  try {
    report = punt::benchmarks::run_loadgen(load);
  } catch (...) {
    server.request_stop();
    serve_thread.join();
    throw;
  }
  server.request_stop();
  serve_thread.join();
  return report;
}

}  // namespace

int main() {
  const bool full = std::getenv("PUNT_BENCH_FULL") != nullptr;
  const double duration = full ? 5.0 : 2.0;
  std::printf("Serve-mode fusion: %zu closed-loop clients, %.0fs per daemon\n\n",
              kClients, duration);

  const ServeBenchReport baseline = measure(0.0, duration);
  const ServeBenchReport fused = measure(2.0, duration);

  std::printf("%-12s | %10s | %9s | %9s | %10s | %5s\n", "daemon", "req/s", "p50 ms",
              "p99 ms", "mean batch", "shed");
  std::printf("-------------------------------------------------------------------\n");
  std::printf("%-12s | %10.1f | %9.2f | %9.2f | %10.2f | %5zu\n", "window=0",
              baseline.throughput_rps, baseline.p50_ms, baseline.p99_ms,
              baseline.mean_batch(), baseline.shed + baseline.daemon_shed);
  std::printf("%-12s | %10.1f | %9.2f | %9.2f | %10.2f | %5zu\n", "window=2ms",
              fused.throughput_rps, fused.p50_ms, fused.p99_ms, fused.mean_batch(),
              fused.shed + fused.daemon_shed);
  std::printf("\nfused: %zu batch(es) over %zu request(s), max batch %zu\n",
              fused.batches, fused.fused_requests, fused.max_batch);

  int failures = 0;
  if (!(fused.mean_batch() > 1.0)) {
    std::fprintf(stderr,
                 "FAIL: mean fused batch %.2f <= 1 — the window formed no "
                 "multi-request batches under %zu concurrent clients\n",
                 fused.mean_batch(), kClients);
    ++failures;
  }
  if (!(fused.throughput_rps >= 0.9 * baseline.throughput_rps)) {
    std::fprintf(stderr,
                 "FAIL: fused throughput %.1f req/s < 0.9x baseline %.1f req/s — "
                 "fusion regressed serving throughput\n",
                 fused.throughput_rps, baseline.throughput_rps);
    ++failures;
  }
  if (baseline.completed == 0 || fused.completed == 0) {
    std::fprintf(stderr, "FAIL: a measurement window completed zero requests\n");
    ++failures;
  }
  if (failures == 0) {
    std::printf("\nOK: batches form under load (mean %.2f > 1) and fusion holds "
                "throughput (%.1f vs %.1f req/s baseline)\n",
                fused.mean_batch(), fused.throughput_rps, baseline.throughput_rps);
  }
  return failures == 0 ? 0 : 1;
}
