// Experiment A5 — minimisation ablation, justifying the paper's EspTim
// column: literal counts of the derived covers before and after the
// espresso step, and the time the step costs.
#include <cstdio>

#include "src/benchmarks/registry.hpp"
#include "src/core/synthesis.hpp"
#include "src/util/stopwatch.hpp"

int main() {
  using punt::core::SynthesisOptions;
  std::printf("Ablation A5 — two-level minimisation gain (unfolding flow)\n\n");
  std::printf("%-24s | %8s %8s | %8s | %8s\n", "benchmark", "rawLits", "minLits",
              "gain", "EspTim");
  std::printf("--------------------------------------------------------------\n");
  std::size_t total_raw = 0, total_min = 0;
  for (const auto& bench : punt::benchmarks::table1()) {
    const punt::stg::Stg stg = bench.make();
    SynthesisOptions raw;
    raw.minimize = false;
    const auto raw_result = punt::core::synthesize(stg, raw);
    SynthesisOptions minimized;
    minimized.minimize = true;
    const auto min_result = punt::core::synthesize(stg, minimized);
    total_raw += raw_result.literal_count();
    total_min += min_result.literal_count();
    std::printf("%-24s | %8zu %8zu | %7.1f%% | %8.3f\n", bench.name.c_str(),
                raw_result.literal_count(), min_result.literal_count(),
                100.0 * (1.0 - double(min_result.literal_count()) /
                                   double(raw_result.literal_count())),
                min_result.minimize_seconds);
  }
  std::printf("--------------------------------------------------------------\n");
  std::printf("%-24s | %8zu %8zu | %7.1f%%\n", "Total", total_raw, total_min,
              100.0 * (1.0 - double(total_min) / double(total_raw)));
  return 0;
}
