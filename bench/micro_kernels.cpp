// Micro-benchmarks (google-benchmark) of the four kernels the paper's time
// columns decompose into: segment construction (UnfTim), state-graph
// construction (the baselines' dominant cost), cover derivation from slices
// (SynTim) and two-level minimisation (EspTim).
#include <benchmark/benchmark.h>

#include "src/benchmarks/registry.hpp"
#include "src/core/approx.hpp"
#include "src/core/synthesis.hpp"
#include "src/logic/espresso.hpp"
#include "src/sg/analysis.hpp"
#include "src/sg/state_graph.hpp"
#include "src/stg/generators.hpp"
#include "src/unfolding/unfolding.hpp"

namespace {

void BM_UnfoldMuller(benchmark::State& state) {
  const punt::stg::Stg stg =
      punt::stg::make_muller_pipeline(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(punt::unf::Unfolding::build(stg));
  }
  state.SetLabel(std::to_string(stg.signal_count()) + " signals");
}
BENCHMARK(BM_UnfoldMuller)->Arg(4)->Arg(9)->Arg(14)->Arg(19);

void BM_StateGraphMuller(benchmark::State& state) {
  const punt::stg::Stg stg =
      punt::stg::make_muller_pipeline(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(punt::sg::StateGraph::build(stg));
  }
}
BENCHMARK(BM_StateGraphMuller)->Arg(4)->Arg(9)->Arg(14);

void BM_ApproximateCover(benchmark::State& state) {
  const punt::stg::Stg stg =
      punt::stg::make_muller_pipeline(static_cast<std::size_t>(state.range(0)));
  const auto unf = punt::unf::Unfolding::build(stg);
  const auto signal = stg.non_input_signals().front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(punt::core::approximate_cover(unf, signal, true));
  }
}
BENCHMARK(BM_ApproximateCover)->Arg(9)->Arg(19);

void BM_ExactSliceEnumeration(benchmark::State& state) {
  const punt::stg::Stg stg =
      punt::stg::make_muller_pipeline(static_cast<std::size_t>(state.range(0)));
  const auto unf = punt::unf::Unfolding::build(stg);
  const auto signal = stg.non_input_signals().front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(punt::core::exact_cover(unf, signal, true));
  }
}
BENCHMARK(BM_ExactSliceEnumeration)->Arg(6)->Arg(10);

void BM_EspressoOnSgCovers(benchmark::State& state) {
  const punt::stg::Stg stg =
      punt::stg::make_muller_pipeline(static_cast<std::size_t>(state.range(0)));
  const auto sgraph = punt::sg::StateGraph::build(stg);
  const auto signal = stg.non_input_signals().front();
  const auto on = punt::sg::on_cover(sgraph, signal);
  const auto off = punt::sg::off_cover(sgraph, signal);
  for (auto _ : state) {
    benchmark::DoNotOptimize(punt::logic::espresso(on, off));
  }
}
BENCHMARK(BM_EspressoOnSgCovers)->Arg(6)->Arg(9);

void BM_CoverComplement(benchmark::State& state) {
  const punt::stg::Stg stg =
      punt::stg::make_muller_pipeline(static_cast<std::size_t>(state.range(0)));
  const auto sgraph = punt::sg::StateGraph::build(stg);
  const auto on = punt::sg::on_cover(sgraph, stg.non_input_signals().front());
  for (auto _ : state) {
    benchmark::DoNotOptimize(on.complement());
  }
}
BENCHMARK(BM_CoverComplement)->Arg(6)->Arg(9);

void BM_SynthesizeRegistryRow(benchmark::State& state) {
  const auto& bench =
      punt::benchmarks::table1()[static_cast<std::size_t>(state.range(0))];
  const punt::stg::Stg stg = bench.make();
  punt::core::SynthesisOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(punt::core::synthesize(stg, options));
  }
  state.SetLabel(bench.name);
}
BENCHMARK(BM_SynthesizeRegistryRow)->Arg(0)->Arg(5)->Arg(9)->Arg(20);

}  // namespace

BENCHMARK_MAIN();
