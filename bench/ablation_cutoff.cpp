// Experiment A3 — cutoff criterion ablation: McMillan's strict rule versus
// the adequate total order (size + insertion order).  The total order can
// only produce smaller-or-equal segments; this quantifies by how much, and
// confirms synthesis results are unchanged.
#include <cstdio>

#include "src/benchmarks/registry.hpp"
#include "src/core/synthesis.hpp"
#include "src/stg/generators.hpp"
#include "src/unfolding/unfolding.hpp"

int main() {
  using punt::unf::UnfoldOptions;
  std::printf("Ablation A3 — McMillan cutoff vs total-order cutoff\n\n");
  std::printf("%-24s | %8s %8s | %8s %8s | %6s %6s\n", "benchmark", "mcm_ev",
              "mcm_cut", "tot_ev", "tot_cut", "litM", "litT");
  std::printf("--------------------------------------------------------------------"
              "----\n");
  auto report = [](const char* name, const punt::stg::Stg& stg) {
    UnfoldOptions mcmillan;
    mcmillan.cutoff = UnfoldOptions::CutoffPolicy::McMillan;
    UnfoldOptions total;
    total.cutoff = UnfoldOptions::CutoffPolicy::TotalOrder;
    const auto a = punt::unf::Unfolding::build(stg, mcmillan);
    const auto b = punt::unf::Unfolding::build(stg, total);

    punt::core::SynthesisOptions sa;
    sa.cutoff = UnfoldOptions::CutoffPolicy::McMillan;
    punt::core::SynthesisOptions sb;
    sb.cutoff = UnfoldOptions::CutoffPolicy::TotalOrder;
    const auto ra = punt::core::synthesize(stg, sa);
    const auto rb = punt::core::synthesize(stg, sb);
    std::printf("%-24s | %8zu %8zu | %8zu %8zu | %6zu %6zu\n", name, a.stats().events,
                a.stats().cutoffs, b.stats().events, b.stats().cutoffs,
                ra.literal_count(), rb.literal_count());
  };
  for (const auto& bench : punt::benchmarks::table1()) {
    report(bench.name.c_str(), bench.make());
  }
  report("muller(19)", punt::stg::make_muller_pipeline(19));
  std::printf("\nShape check: total order never enlarges the segment; synthesis\n"
              "quality (literal count) is essentially unaffected.\n");
  return 0;
}
