// Experiment T1 — reproduces Table 1 of the paper, through the batch API.
//
// The whole registry is synthesised twice with the task-graph executor
// (src/core/pipeline.hpp): once with 1 job and once with 8, asserting that
// both runs produce byte-identical circuits (covers, literal counts, signal
// order) before any row is printed — the pipeline's determinism guarantee is
// part of what this experiment measures.  Both runs record their executed
// schedule, so the end of the report shows measured critical-path length
// next to wall-clock at each width (the critical path is the lower bound
// any worker count could reach).  A final experiment repeats one STG eight
// times through a fresh ModelCache and asserts the distinct-key-first
// property: the duplicates resolve as *completed* cache hits (credited to
// saved_seconds), never as in-flight joins blocking behind the one build.
//
// For every benchmark row: the unfolding-based ACG flow ("PUNT ACG") with
// its UnfTim / SynTim / EspTim / TotTim breakdown and literal count, plus
// the two SG-based baselines standing in for Petrify and SIS (see
// EXPERIMENTS.md for the mapping).  The paper's reported values are printed
// alongside for shape comparison; absolute seconds are 1997 hardware.
//
// Every synthesised circuit is conformance-verified against its State Graph
// before its row is printed — a row only appears if the implementation is
// provably correct.
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "src/benchmarks/registry.hpp"
#include "src/benchmarks/report.hpp"
#include "src/core/cost_ledger.hpp"
#include "src/core/model_cache.hpp"
#include "src/core/pipeline.hpp"
#include "src/core/synthesis.hpp"
#include "src/netlist/netlist.hpp"
#include "src/sg/state_graph.hpp"
#include "src/util/stopwatch.hpp"
#include "src/util/task_graph.hpp"

namespace {

using punt::core::BatchOptions;
using punt::core::BatchResult;
using punt::core::Method;
using punt::core::SynthesisOptions;
using punt::core::SynthesisResult;

struct Baselines {
  double petrify_like = 0;  // SG + heuristic espresso
  double sis_like = 0;      // SG + exact-DC minimisation
  std::size_t sg_literals = 0;
};

Baselines run_baselines(const punt::stg::Stg& stg) {
  Baselines row;
  {
    punt::Stopwatch sw;
    SynthesisOptions sg_options;
    sg_options.method = Method::StateGraph;
    const SynthesisResult result = punt::core::synthesize(stg, sg_options);
    row.petrify_like = sw.seconds();
    row.sg_literals = result.literal_count();
  }
  {
    // The SIS stand-in re-derives and minimises from scratch per signal with
    // full exact-DC treatment (complement-based), the slowest correct path.
    punt::Stopwatch sw;
    SynthesisOptions sis_options;
    sis_options.method = Method::StateGraph;
    sis_options.minimize = true;
    const SynthesisResult result = punt::core::synthesize(stg, sis_options);
    // Re-minimise every gate against the exact complement to emulate the
    // exact-DC cost profile.
    for (const auto& impl : result.signals) {
      const auto& reference = impl.gate_covers_on ? impl.on_cover : impl.off_cover;
      (void)punt::logic::espresso(reference, reference.complement());
    }
    row.sis_like = sw.seconds();
  }
  return row;
}

/// Byte-level comparison of two synthesis results: signal order, covers,
/// gate functions, flags.  Timing fields are excluded (they always differ).
bool identical(const SynthesisResult& a, const SynthesisResult& b) {
  if (a.signals.size() != b.signals.size()) return false;
  for (std::size_t i = 0; i < a.signals.size(); ++i) {
    if (!a.signals[i].same_logic(b.signals[i])) return false;
  }
  return true;
}

}  // namespace

int main() {
  std::printf("Table 1 — synthesis of the benchmark suite, ACG architecture\n");
  std::printf("(measured on this machine; 'paper' columns are the 1997 values)\n\n");

  const auto& registry = punt::benchmarks::table1();
  std::vector<punt::stg::Stg> stgs;
  stgs.reserve(registry.size());
  for (const auto& bench : registry) stgs.push_back(bench.make());

  punt::util::TaskTrace trace1, trace8;
  BatchOptions serial;
  serial.synthesis.method = Method::UnfoldingApprox;
  serial.jobs = 1;
  serial.trace = &trace1;
  BatchOptions parallel = serial;
  parallel.jobs = 8;
  parallel.trace = &trace8;

  const BatchResult batch1 = punt::core::synthesize_batch(stgs, serial);
  const BatchResult batch8 = punt::core::synthesize_batch(stgs, parallel);

  for (std::size_t i = 0; i < registry.size(); ++i) {
    // A per-entry failure is its own diagnosis; only two *successful* runs
    // that disagree indicate a pipeline determinism bug.
    for (const punt::core::BatchResult* batch : {&batch1, &batch8}) {
      if (!batch->entries[i].ok) {
        std::printf("ERROR: %s failed (%zu jobs): %s\n", registry[i].name.c_str(),
                    batch->jobs, batch->entries[i].error.c_str());
        return 1;
      }
    }
    if (!identical(batch1.entries[i].result, batch8.entries[i].result)) {
      std::printf("ERROR: 1-job and 8-job runs disagree on %s; aborting\n",
                  registry[i].name.c_str());
      return 1;
    }
  }

  // The Table-1 core columns (with the paper's 1997 reference values) come
  // from the shared report helper — the same table `punt bench run` and
  // `punt bench merge` print.
  const punt::benchmarks::Table1Report report =
      punt::benchmarks::make_report(punt::benchmarks::Shard{0, 1}, batch1);
  std::printf("%s", punt::benchmarks::format_table1(report).c_str());
  std::printf("(paperTot/papLit: the 1997 paper's TotTim and literal count)\n");

  // SG-based baselines and conformance verification, per benchmark.
  std::printf("\n%-22s %4s | %9s %9s %6s | %s\n", "benchmark", "sigs", "PetrifyT",
              "SIST", "SGLit", "conforms");
  std::printf("%.*s\n", 70,
              "-----------------------------------------------------------------"
              "----------");
  double total_punt = 0, total_petrify = 0, total_sis = 0;
  std::size_t total_lits = 0, total_sg_lits = 0;
  bool all_conform = true;
  for (std::size_t i = 0; i < registry.size(); ++i) {
    const auto& bench = registry[i];
    const SynthesisResult& punt_result = batch1.entries[i].result;
    const Baselines baselines = run_baselines(stgs[i]);

    const punt::net::Netlist netlist =
        punt::net::Netlist::from_synthesis(stgs[i], punt_result);
    const punt::sg::StateGraph sgraph = punt::sg::StateGraph::build(stgs[i]);
    const bool conforms = punt::net::verify_conformance(sgraph, netlist).empty();
    all_conform = all_conform && conforms;

    total_punt += punt_result.total_seconds;
    total_petrify += baselines.petrify_like;
    total_sis += baselines.sis_like;
    total_lits += punt_result.literal_count();
    total_sg_lits += baselines.sg_literals;
    std::printf("%-22s %4zu | %9.3f %9.3f %6zu | %s\n", bench.name.c_str(),
                bench.signals, baselines.petrify_like, baselines.sis_like,
                baselines.sg_literals, conforms ? "yes" : "NO");
  }
  std::printf("%.*s\n", 70,
              "-----------------------------------------------------------------"
              "----------");
  std::printf("%-22s %4d | %9.3f %9.3f %6zu | PUNT %.3fs\n", "Total", 228,
              total_petrify, total_sis, total_sg_lits, total_punt);
  std::printf(
      "\nShape checks (paper claims): literal parity between the unfolding flow\n"
      "and the SG flow (%zu vs %zu here; 592 vs 580 in the paper), and the\n"
      "unfolding flow staying competitive as signal counts grow.\n",
      total_lits, total_sg_lits);
  std::printf(
      "\nTask-graph executor: whole registry in %.3fs with 1 job, %.3fs with 8 jobs\n"
      "(%.2fx speedup on %u hardware thread(s)); results byte-identical.\n",
      batch1.wall_seconds, batch8.wall_seconds,
      batch8.wall_seconds > 0 ? batch1.wall_seconds / batch8.wall_seconds : 0.0,
      std::thread::hardware_concurrency());
  // Critical path vs wall-clock: the critical path is the longest dependency
  // chain of the executed graph — the shortest wall-clock ANY worker count
  // could reach for the measured node costs.  wall/critical ≥ 1; the 8-job
  // ratio shows how much of the remaining gap is schedulable parallelism.
  struct WidthReport {
    const char* label;
    const BatchResult* batch;
    const punt::util::TaskTrace* trace;
  };
  for (const WidthReport& width : {WidthReport{"1 job ", &batch1, &trace1},
                                   WidthReport{"8 jobs", &batch8, &trace8}}) {
    std::printf("  %s: %4zu graph nodes, wall %.3fs, critical path %.3fs "
                "(%.2fx parallel headroom)\n",
                width.label, width.trace->nodes.size(), width.batch->wall_seconds,
                width.batch->critical_path_seconds,
                width.batch->critical_path_seconds > 0
                    ? width.batch->wall_seconds / width.batch->critical_path_seconds
                    : 0.0);
  }

  // Cost-model-guided dispatch (DESIGN.md §10): the registry twice at 8 jobs
  // through ONE CostLedger.  The cold pass runs with an empty table — no
  // estimates, plain id-order dispatch — and folds its measured node costs
  // in; the warm pass then dispatches ready nodes longest-first from those
  // learned costs.  Gates: both passes byte-identical to the no-ledger
  // batch1 (estimates reorder within priority bands only, so the circuits
  // cannot change), the warm trace actually carries estimates, and the warm
  // wall/critical-path ratio does not regress past a noise tolerance — the
  // whole point of LPT dispatch is to close that gap, never to widen it.
  {
    punt::core::CostLedger ledger;
    punt::util::TaskTrace cold_trace, warm_trace;
    BatchOptions cold;
    cold.synthesis.method = Method::UnfoldingApprox;
    cold.jobs = 8;
    cold.ledger = &ledger;
    cold.trace = &cold_trace;
    BatchOptions warm = cold;
    warm.trace = &warm_trace;
    const BatchResult cold_batch = punt::core::synthesize_batch(stgs, cold);
    const BatchResult warm_batch = punt::core::synthesize_batch(stgs, warm);
    for (std::size_t i = 0; i < registry.size(); ++i) {
      for (const BatchResult* batch : {&cold_batch, &warm_batch}) {
        if (!batch->entries[i].ok) {
          std::printf("ERROR: %s failed under the cost ledger: %s\n",
                      registry[i].name.c_str(), batch->entries[i].error.c_str());
          return 1;
        }
      }
      if (!identical(batch1.entries[i].result, cold_batch.entries[i].result) ||
          !identical(batch1.entries[i].result, warm_batch.entries[i].result)) {
        std::printf("ERROR: ledger-guided runs disagree with the plain run on %s; "
                    "estimates must reorder within bands, never change results\n",
                    registry[i].name.c_str());
        return 1;
      }
    }
    std::size_t cold_estimated = 0, warm_estimated = 0;
    for (const auto& node : cold_trace.nodes) cold_estimated += node.est_cost > 0;
    for (const auto& node : warm_trace.nodes) warm_estimated += node.est_cost > 0;
    const double cold_ratio = cold_batch.critical_path_seconds > 0
                                  ? cold_batch.wall_seconds /
                                        cold_batch.critical_path_seconds
                                  : 0.0;
    const double warm_ratio = warm_batch.critical_path_seconds > 0
                                  ? warm_batch.wall_seconds /
                                        warm_batch.critical_path_seconds
                                  : 0.0;
    std::printf(
        "\nCost-model-guided dispatch (8 jobs, %zu ledger entr%s learned):\n"
        "  cold ledger: wall %.3fs, critical path %.3fs (ratio %.2fx), "
        "%zu/%zu nodes estimated\n"
        "  warm ledger: wall %.3fs, critical path %.3fs (ratio %.2fx), "
        "%zu/%zu nodes estimated\n",
        ledger.size(), ledger.size() == 1 ? "y" : "ies", cold_batch.wall_seconds,
        cold_batch.critical_path_seconds, cold_ratio, cold_estimated,
        cold_trace.nodes.size(), warm_batch.wall_seconds,
        warm_batch.critical_path_seconds, warm_ratio, warm_estimated,
        warm_trace.nodes.size());
    if (cold_estimated != 0) {
      std::printf("ERROR: the cold pass saw estimates before anything was measured\n");
      return 1;
    }
    if (warm_estimated == 0 || ledger.size() == 0) {
      std::printf("ERROR: the warm pass dispatched without learned costs; the "
                  "cold pass's measurements were not folded into the ledger\n");
      return 1;
    }
    // Wall-clock on a fast suite is noisy, so the no-regression gate compares
    // the wall/critical ratios (normalised for run-to-run critical-path
    // drift) with generous headroom rather than raw seconds.
    if (cold_ratio > 0 && warm_ratio > cold_ratio * 1.5 + 0.5) {
      std::printf("ERROR: warm-ledger dispatch regressed the wall/critical ratio "
                  "(%.2fx warm vs %.2fx cold); longest-first ordering should "
                  "never schedule worse than id order\n",
                  warm_ratio, cold_ratio);
      return 1;
    }
  }

  // Cache-aware scheduling: a batch repeating ONE STG (a parameter sweep's
  // shape) must build its model once, with every duplicate resolving as a
  // *completed* cache hit.  Completed hits — and only they — are credited to
  // saved_seconds; an in-flight join (a worker parked behind the build, the
  // old racing behaviour) is a hit with no credit.  So the assertion below
  // fails if any duplicate entry raced the model build instead of being
  // scheduled behind it.
  {
    constexpr std::size_t kRepeats = 8;
    std::vector<punt::stg::Stg> repeated(kRepeats, stgs.front());
    punt::core::ModelCache cache;
    BatchOptions sweep;
    sweep.synthesis.method = Method::UnfoldingApprox;
    sweep.jobs = 8;
    sweep.cache = &cache;
    const BatchResult repeat_batch = punt::core::synthesize_batch(repeated, sweep);
    const punt::core::ModelCacheStats stats = cache.stats();
    std::printf(
        "\nCache-aware scheduling (%zu repeats of %s, 8 jobs): %zu build(s), "
        "%zu completed hit(s), %.4fs build time saved\n",
        kRepeats, registry.front().name.c_str(), stats.misses, stats.hits,
        stats.saved_seconds);
    if (repeat_batch.failures != 0 || stats.misses != 1 || stats.hits != kRepeats - 1 ||
        stats.saved_seconds <= 0.0) {
      std::printf("ERROR: expected 1 miss and %zu completed hits with saved time; a "
                  "duplicate entry was blocked behind an in-flight model build\n",
                  kRepeats - 1);
      return 1;
    }
    for (std::size_t i = 1; i < kRepeats; ++i) {
      if (!identical(repeat_batch.entries[0].result, repeat_batch.entries[i].result)) {
        std::printf("ERROR: repeated entries disagree; aborting\n");
        return 1;
      }
    }
  }

  if (!all_conform) {
    std::printf("\nERROR: a synthesised circuit failed conformance (see 'NO' above)\n");
    return 1;
  }
  return 0;
}
