// Experiment T1 — reproduces Table 1 of the paper.
//
// For every benchmark row: the unfolding-based ACG flow ("PUNT ACG") with
// its UnfTim / SynTim / EspTim / TotTim breakdown and literal count, plus
// the two SG-based baselines standing in for Petrify and SIS (see
// EXPERIMENTS.md for the mapping).  The paper's reported values are printed
// alongside for shape comparison; absolute seconds are 1997 hardware.
//
// Every synthesised circuit is conformance-verified against its State Graph
// before its row is printed — a row only appears if the implementation is
// provably correct.
#include <cstdio>
#include <string>

#include "src/benchmarks/registry.hpp"
#include "src/core/synthesis.hpp"
#include "src/netlist/netlist.hpp"
#include "src/sg/state_graph.hpp"
#include "src/util/stopwatch.hpp"

namespace {

using punt::core::Method;
using punt::core::SynthesisOptions;
using punt::core::SynthesisResult;

struct Row {
  SynthesisResult punt;
  double petrify_like = 0;  // SG + heuristic espresso
  double sis_like = 0;      // SG + exact-DC minimisation
  std::size_t sg_literals = 0;
  bool conforms = false;
};

Row run_row(const punt::benchmarks::Benchmark& bench) {
  const punt::stg::Stg stg = bench.make();
  Row row;

  SynthesisOptions unf_options;
  unf_options.method = Method::UnfoldingApprox;
  row.punt = punt::core::synthesize(stg, unf_options);

  {
    punt::Stopwatch sw;
    SynthesisOptions sg_options;
    sg_options.method = Method::StateGraph;
    const SynthesisResult result = punt::core::synthesize(stg, sg_options);
    row.petrify_like = sw.seconds();
    row.sg_literals = result.literal_count();
  }
  {
    // The SIS stand-in re-derives and minimises from scratch per signal with
    // full exact-DC treatment (complement-based), the slowest correct path.
    punt::Stopwatch sw;
    SynthesisOptions sis_options;
    sis_options.method = Method::StateGraph;
    sis_options.minimize = true;
    const SynthesisResult result = punt::core::synthesize(stg, sis_options);
    // Re-minimise every gate against the exact complement to emulate the
    // exact-DC cost profile.
    for (const auto& impl : result.signals) {
      const auto& reference = impl.gate_covers_on ? impl.on_cover : impl.off_cover;
      (void)punt::logic::espresso(reference, reference.complement());
    }
    row.sis_like = sw.seconds();
  }

  const punt::net::Netlist netlist = punt::net::Netlist::from_synthesis(stg, row.punt);
  const punt::sg::StateGraph sgraph = punt::sg::StateGraph::build(stg);
  row.conforms = punt::net::verify_conformance(sgraph, netlist).empty();
  return row;
}

}  // namespace

int main() {
  std::printf("Table 1 — synthesis of the benchmark suite, ACG architecture\n");
  std::printf("(measured on this machine; 'paper' columns are the 1997 values)\n\n");
  std::printf(
      "%-22s %4s | %8s %8s %8s %8s %6s | %9s %9s %6s | %8s %6s | %s\n",
      "benchmark", "sigs", "UnfTim", "SynTim", "EspTim", "TotTim", "LitCnt",
      "PetrifyT", "SIST", "SGLit", "paperTot", "papLit", "ok");
  std::printf("%.*s\n", 140,
              "-----------------------------------------------------------------"
              "-----------------------------------------------------------------"
              "----------");

  double total_punt = 0, total_petrify = 0, total_sis = 0;
  std::size_t total_lits = 0, total_sg_lits = 0, total_paper_lits = 0;
  for (const auto& bench : punt::benchmarks::table1()) {
    const Row row = run_row(bench);
    total_punt += row.punt.total_seconds;
    total_petrify += row.petrify_like;
    total_sis += row.sis_like;
    total_lits += row.punt.literal_count();
    total_sg_lits += row.sg_literals;
    total_paper_lits += bench.paper_literals;
    std::printf(
        "%-22s %4zu | %8.3f %8.3f %8.3f %8.3f %6zu | %9.3f %9.3f %6zu | %8.2f %6zu | %s\n",
        bench.name.c_str(), bench.signals, row.punt.unfold_seconds,
        row.punt.derive_seconds, row.punt.minimize_seconds, row.punt.total_seconds,
        row.punt.literal_count(), row.petrify_like, row.sis_like, row.sg_literals,
        bench.paper_total_time, bench.paper_literals, row.conforms ? "yes" : "NO");
  }
  std::printf("%.*s\n", 140,
              "-----------------------------------------------------------------"
              "-----------------------------------------------------------------"
              "----------");
  std::printf("%-22s %4d | %8s %8s %8s %8.3f %6zu | %9.3f %9.3f %6zu | %8.2f %6zu |\n",
              "Total", 228, "", "", "", total_punt, total_lits, total_petrify,
              total_sis, total_sg_lits, 146.78, total_paper_lits);
  std::printf(
      "\nShape checks (paper claims): literal parity between the unfolding flow\n"
      "and the SG flow (%zu vs %zu here; 592 vs 580 in the paper), and the\n"
      "unfolding flow staying competitive as signal counts grow.\n",
      total_lits, total_sg_lits);
  return 0;
}
