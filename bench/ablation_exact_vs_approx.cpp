// Experiment A1 — exact slice enumeration (paper §4.1) versus the
// approximation + refinement pipeline (paper §4.2/4.3), over the Table-1
// suite and growing fork-join controllers.
//
// The paper's motivation for the approximation: exact cut enumeration
// explodes with concurrency.  This ablation quantifies it: time of both
// unfolding-based flows plus the resulting literal counts (approximation
// may cost a literal or two because the DC-set gets partitioned, paper §5).
//
// Both flows consume the *same* unfolding segment, so the runs share it
// through a ModelCache (the model is built once per spec, outside the timed
// region): what the table compares is purely the cover-derivation cost, the
// quantity the paper's SynTim column isolates.
#include <cstdio>

#include "src/benchmarks/registry.hpp"
#include "src/benchmarks/templates.hpp"
#include "src/core/model_cache.hpp"
#include "src/core/synthesis.hpp"
#include "src/util/stopwatch.hpp"

namespace {

using punt::core::Method;
using punt::core::ModelCache;
using punt::core::SynthesisOptions;

std::size_t g_specs = 0;

void run(const char* name, const punt::stg::Stg& stg, ModelCache& cache) {
  ++g_specs;
  SynthesisOptions exact;
  exact.method = Method::UnfoldingExact;
  // Warm the cache so neither timed flow pays for segment construction:
  // exact and approx share one model (Method is derivation-only here).
  (void)cache.lookup_or_build(stg, exact);

  punt::Stopwatch sw_exact;
  const auto exact_result = punt::core::synthesize(stg, exact, &cache);
  const double exact_seconds = sw_exact.seconds();

  SynthesisOptions approx;
  approx.method = Method::UnfoldingApprox;
  punt::Stopwatch sw_approx;
  const auto approx_result = punt::core::synthesize(stg, approx, &cache);
  const double approx_seconds = sw_approx.seconds();

  std::printf("%-24s | %9.3f %6zu | %9.3f %6zu | %5.1fx | %zu refines, %zu fallbacks\n",
              name, exact_seconds, exact_result.literal_count(), approx_seconds,
              approx_result.literal_count(),
              approx_seconds > 0 ? exact_seconds / approx_seconds : 0.0,
              approx_result.refinement_iterations, approx_result.exact_fallbacks);
  std::fflush(stdout);
}

}  // namespace

int main() {
  std::printf("Ablation A1 — exact cut enumeration vs approximation+refinement\n\n");
  std::printf("%-24s | %9s %6s | %9s %6s | %6s |\n", "benchmark", "exact_s", "lits",
              "approx_s", "lits", "gain");
  std::printf("---------------------------------------------------------------------"
              "-----------\n");
  ModelCache cache;
  for (const auto& bench : punt::benchmarks::table1()) {
    run(bench.name.c_str(), bench.make(), cache);
  }
  // Concurrency stressors: exact enumeration is exponential in fork width
  // (3^width cuts in the rise phase alone), so the sweep stops at 8.
  for (const std::size_t width : {4, 6, 8}) {
    const std::vector<std::size_t> depths(width, 2);
    const std::string name = "fork_join(w=" + std::to_string(width) + ",d=2)";
    run(name.c_str(), punt::benchmarks::fork_join(name, depths), cache);
  }
  const punt::core::ModelCacheStats stats = cache.stats();
  std::printf("\nModelCache: %zu models built, %zu reused (%.1f%% hit rate), "
              "%.3fs of model construction saved\n",
              stats.misses, stats.hits, stats.hit_rate() * 100.0, stats.saved_seconds);
  if (stats.misses != g_specs || stats.hits != 2 * g_specs) {
    std::printf("ERROR: expected one model build and two reuses per spec "
                "(%zu specs), measured %zu misses / %zu hits\n",
                g_specs, stats.misses, stats.hits);
    return 1;
  }
  std::printf(
      "\nShape check: approximation wins increasingly on concurrency-heavy\n"
      "specs while literal counts stay within a couple of literals.\n");
  return 0;
}
