// Tests for the on-disk model store: serialisation round-trip fidelity
// (registry-wide, both model kinds), the failure modes the disk tier must
// degrade through (truncation, corruption, version bumps, filename-hash
// collisions, read-only directories, racing writers), and the scan/purge
// helpers behind `punt cache stats` / `punt cache purge`.
#include <gtest/gtest.h>

#include <sys/resource.h>
#include <unistd.h>

#include <csignal>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "src/benchmarks/registry.hpp"
#include "src/core/model_cache.hpp"
#include "src/core/model_store.hpp"
#include "src/core/pipeline.hpp"
#include "src/core/synthesis.hpp"
#include "src/stg/g_format.hpp"
#include "src/stg/generators.hpp"
#include "src/util/error.hpp"

namespace punt::core {
namespace {

namespace fs = std::filesystem;
using stg::Stg;

/// A fresh, unique temp directory per test (removed on destruction).
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = fs::temp_directory_path() /
            ("punt-model-store-test-" + tag + "-" +
             std::to_string(static_cast<unsigned long>(::getpid())));
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ignored;
    fs::permissions(path_, fs::perms::owner_all, fs::perm_options::add, ignored);
    fs::remove_all(path_, ignored);
  }
  const fs::path& path() const { return path_; }
  std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::string out((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  return out;
}

void write_file(const fs::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Structural equality of two models, down to the semantic substrate the
/// derivation stage reads.  (Synthesis-output equality is asserted
/// separately, registry-wide.)
void expect_models_equal(const SemanticModel& a, const SemanticModel& b) {
  EXPECT_EQ(stg::write_g(a.stg), stg::write_g(b.stg));
  EXPECT_EQ(a.options.fingerprint(), b.options.fingerprint());
  EXPECT_EQ(a.targets, b.targets);
  EXPECT_DOUBLE_EQ(a.build_seconds, b.build_seconds);
  EXPECT_EQ(a.unfold_stats.events, b.unfold_stats.events);
  EXPECT_EQ(a.unfold_stats.conditions, b.unfold_stats.conditions);
  EXPECT_EQ(a.unfold_stats.cutoffs, b.unfold_stats.cutoffs);
  EXPECT_EQ(a.sg_states, b.sg_states);
  ASSERT_EQ(a.unfolding != nullptr, b.unfolding != nullptr);
  ASSERT_EQ(a.sgraph != nullptr, b.sgraph != nullptr);
  if (a.unfolding != nullptr) {
    const unf::Unfolding& ua = *a.unfolding;
    const unf::Unfolding& ub = *b.unfolding;
    ASSERT_EQ(ua.event_count(), ub.event_count());
    ASSERT_EQ(ua.condition_count(), ub.condition_count());
    for (std::size_t e = 0; e < ua.event_count(); ++e) {
      const unf::EventId id(static_cast<std::uint32_t>(e));
      EXPECT_EQ(ua.transition(id), ub.transition(id));
      EXPECT_EQ(ua.preset(id), ub.preset(id));
      EXPECT_EQ(ua.postset(id), ub.postset(id));
      EXPECT_TRUE(ua.local_config(id) == ub.local_config(id));
      EXPECT_EQ(ua.config_size(id), ub.config_size(id));
      EXPECT_EQ(ua.code(id), ub.code(id));
      EXPECT_EQ(ua.final_marking(id), ub.final_marking(id));
      EXPECT_EQ(ua.is_cutoff(id), ub.is_cutoff(id));
      if (ua.is_cutoff(id)) {
        EXPECT_EQ(ua.cutoff_image(id), ub.cutoff_image(id));
      }
    }
    for (std::size_t c = 0; c < ua.condition_count(); ++c) {
      const unf::ConditionId id(static_cast<std::uint32_t>(c));
      EXPECT_EQ(ua.place(id), ub.place(id));
      EXPECT_EQ(ua.producer(id), ub.producer(id));
      EXPECT_EQ(ua.consumers(id), ub.consumers(id));
      for (std::size_t d = 0; d < c; ++d) {
        EXPECT_EQ(ua.co(id, unf::ConditionId(static_cast<std::uint32_t>(d))),
                  ub.co(id, unf::ConditionId(static_cast<std::uint32_t>(d))));
      }
    }
  }
  if (a.sgraph != nullptr) {
    const sg::StateGraph& ga = *a.sgraph;
    const sg::StateGraph& gb = *b.sgraph;
    ASSERT_EQ(ga.state_count(), gb.state_count());
    ASSERT_EQ(ga.arc_count(), gb.arc_count());
    for (std::size_t s = 0; s < ga.state_count(); ++s) {
      EXPECT_EQ(ga.marking(s), gb.marking(s));
      EXPECT_EQ(ga.code(s), gb.code(s));
      ASSERT_EQ(ga.arcs(s).size(), gb.arcs(s).size());
      for (std::size_t k = 0; k < ga.arcs(s).size(); ++k) {
        EXPECT_EQ(ga.arcs(s)[k].transition, gb.arcs(s)[k].transition);
        EXPECT_EQ(ga.arcs(s)[k].target, gb.arcs(s)[k].target);
      }
      for (std::size_t sig = 0; sig < a.stg.signal_count(); ++sig) {
        const stg::SignalId id(static_cast<std::uint32_t>(sig));
        EXPECT_EQ(ga.excited(s, id), gb.excited(s, id));
      }
    }
  }
}

TEST(ModelStoreSerialize, UnfoldingModelRoundTripsStructurally) {
  const Stg stg = stg::make_vme_bus();
  const SynthesisOptions options;
  const std::string key = ModelCache::key_of(stg, options);
  const auto model = SemanticModel::build(stg, options);

  const std::string image = serialize_model(*model, key);
  const auto loaded = deserialize_model(image, &key);
  ASSERT_NE(loaded, nullptr);
  expect_models_equal(*model, *loaded);
}

TEST(ModelStoreSerialize, StateGraphModelRoundTripsStructurally) {
  const Stg stg = stg::make_muller_pipeline(3);
  SynthesisOptions options;
  options.method = Method::StateGraph;
  const std::string key = ModelCache::key_of(stg, options);
  const auto model = SemanticModel::build(stg, options);

  const std::string image = serialize_model(*model, key);
  const auto loaded = deserialize_model(image, &key);
  ASSERT_NE(loaded, nullptr);
  EXPECT_NE(loaded->sgraph, nullptr);
  expect_models_equal(*model, *loaded);
}

TEST(ModelStoreSerialize, KeyMismatchIsAMissNotAnError) {
  const Stg stg = stg::make_paper_fig1();
  const SynthesisOptions options;
  const std::string key = ModelCache::key_of(stg, options);
  const std::string image = serialize_model(*SemanticModel::build(stg, options), key);

  const std::string other_key = key + "-but-different";
  EXPECT_EQ(deserialize_model(image, &other_key), nullptr);
  EXPECT_NE(deserialize_model(image, &key), nullptr);
  EXPECT_NE(deserialize_model(image, nullptr), nullptr);  // unchecked read
}

TEST(ModelStoreSerialize, TruncationAtEveryPrefixThrowsNeverCrashes) {
  const Stg stg = stg::make_paper_fig1();
  const SynthesisOptions options;
  const std::string key = ModelCache::key_of(stg, options);
  const std::string image = serialize_model(*SemanticModel::build(stg, options), key);

  // Every strict prefix must fail loudly (ParseError/ValidationError), and
  // in particular must not return a half-read model.  Step 7 keeps the test
  // fast while still probing unaligned cuts through every section.
  for (std::size_t cut = 0; cut < image.size(); cut += 7) {
    EXPECT_THROW((void)deserialize_model(image.substr(0, cut), &key), Error)
        << "prefix of " << cut << " bytes";
  }
}

TEST(ModelStoreSerialize, BitFlipsAreDetected) {
  const Stg stg = stg::make_paper_fig1();
  const SynthesisOptions options;
  const std::string key = ModelCache::key_of(stg, options);
  const std::string image = serialize_model(*SemanticModel::build(stg, options), key);

  // The trailing checksum catches any payload flip; header flips trip the
  // magic/version checks.  (Stride keeps the loop cheap.)
  for (std::size_t at = 0; at < image.size(); at += 11) {
    std::string corrupt = image;
    corrupt[at] = static_cast<char>(corrupt[at] ^ 0x20);
    EXPECT_THROW((void)deserialize_model(corrupt, &key), Error) << "flip at " << at;
  }
}

TEST(ModelStoreSerialize, FormatVersionBumpIsRejected) {
  const Stg stg = stg::make_paper_fig1();
  const SynthesisOptions options;
  const std::string key = ModelCache::key_of(stg, options);
  std::string image = serialize_model(*SemanticModel::build(stg, options), key);

  // Byte 8 is the low byte of the little-endian format version.
  image[8] = static_cast<char>(ModelStore::kFormatVersion + 1);
  try {
    (void)deserialize_model(image, &key);
    FAIL() << "a bumped format version must not deserialise";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos) << e.what();
  }
}

TEST(ModelStore, StoreThenLoadAcrossStoreInstances) {
  TempDir dir("roundtrip");
  const Stg stg = stg::make_vme_bus();
  const SynthesisOptions options;
  const std::string key = ModelCache::key_of(stg, options);
  const auto model = SemanticModel::build(stg, options);

  {
    ModelStore writer(dir.str());
    EXPECT_TRUE(writer.store(key, *model));
    EXPECT_EQ(writer.stats().stores, 1u);
  }
  ModelStore reader(dir.str());  // a later process
  const auto loaded = reader.load(key);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(reader.stats().hits, 1u);
  expect_models_equal(*model, *loaded);

  // No leftover temp files: publish is write-temp + rename.
  std::size_t files = 0;
  for (const auto& entry : fs::directory_iterator(dir.path())) {
    ++files;
    EXPECT_EQ(entry.path().extension(), ModelStore::kFileSuffix) << entry.path();
  }
  EXPECT_EQ(files, 1u);
}

TEST(ModelStore, MissingCorruptAndStaleFilesDegradeToNull) {
  TempDir dir("degrade");
  const Stg stg = stg::make_paper_fig1();
  const SynthesisOptions options;
  const std::string key = ModelCache::key_of(stg, options);
  ModelStore store(dir.str());

  // Absent file: a plain miss.
  EXPECT_EQ(store.load(key), nullptr);
  EXPECT_EQ(store.stats().misses, 1u);

  // Truncated file: a load error, still null, never a throw.
  ASSERT_TRUE(store.store(key, *SemanticModel::build(stg, options)));
  const fs::path path = dir.path() / ModelStore::filename_of(key);
  const std::string image = read_file(path);
  write_file(path, image.substr(0, image.size() / 2));
  EXPECT_EQ(store.load(key), nullptr);
  EXPECT_EQ(store.stats().load_errors, 1u);

  // Version-bumped file: same degradation.
  std::string stale = image;
  stale[8] = static_cast<char>(ModelStore::kFormatVersion + 1);
  write_file(path, stale);
  EXPECT_EQ(store.load(key), nullptr);
  EXPECT_EQ(store.stats().load_errors, 2u);

  // Intact again: loads.
  write_file(path, image);
  EXPECT_NE(store.load(key), nullptr);
  EXPECT_EQ(store.stats().hits, 1u);
}

TEST(ModelStore, ReadOnlyDirectoryDegradesToBuildWithoutPersist) {
  TempDir dir("readonly");
  const Stg stg = stg::make_paper_fig1();
  const SynthesisOptions options;
  const std::string key = ModelCache::key_of(stg, options);

  fs::permissions(dir.path(), fs::perms::owner_read | fs::perms::owner_exec,
                  fs::perm_options::replace);
  if (::access(dir.str().c_str(), W_OK) == 0) {
    // e.g. running as root, which bypasses permission bits entirely.
    GTEST_SKIP() << "running as a user the directory permissions cannot restrict";
  }

  auto store = std::make_shared<ModelStore>(dir.str());
  EXPECT_FALSE(store->store(key, *SemanticModel::build(stg, options)));
  EXPECT_EQ(store->stats().store_failures, 1u);

  // Through the cache: the lookup still succeeds (build-without-persist).
  ModelCache cache(ModelCache::kDefaultCapacity, store);
  bool built = false;
  const auto model = cache.lookup_or_build(stg, options, &built);
  ASSERT_NE(model, nullptr);
  EXPECT_TRUE(built);
  EXPECT_EQ(cache.stats().disk_store_failures, 2u);
  EXPECT_EQ(cache.stats().builds, 1u);
}

TEST(ModelStore, RacingWritersOnOneKeyBothSucceedOneWins) {
  TempDir dir("race");
  const Stg stg = stg::make_muller_pipeline(2);
  const SynthesisOptions options;
  const std::string key = ModelCache::key_of(stg, options);
  const auto model = SemanticModel::build(stg, options);

  // Two store instances simulate two processes publishing the same key into
  // one shared directory: both writes succeed (each through its own temp
  // file), the directory ends with exactly one complete model, and a reader
  // sees a loadable file.
  ModelStore a(dir.str());
  ModelStore b(dir.str());
  EXPECT_TRUE(a.store(key, *model));
  EXPECT_TRUE(b.store(key, *model));

  std::size_t files = 0;
  for (const auto& entry : fs::directory_iterator(dir.path())) {
    ++files;
    EXPECT_EQ(entry.path().extension(), ModelStore::kFileSuffix) << entry.path();
  }
  EXPECT_EQ(files, 1u);
  ModelStore reader(dir.str());
  EXPECT_NE(reader.load(key), nullptr);
}

TEST(ModelStore, ScanInventoriesAndPurgeRemovesOnlyModelFiles) {
  TempDir dir("scan");
  const SynthesisOptions options;
  const Stg a = stg::make_paper_fig1();
  const Stg b = stg::make_muller_pipeline(2);
  ModelStore store(dir.str());
  ASSERT_TRUE(store.store(ModelCache::key_of(a, options), *SemanticModel::build(a, options)));
  ASSERT_TRUE(store.store(ModelCache::key_of(b, options), *SemanticModel::build(b, options)));
  write_file(dir.path() / "unrelated.txt", "not a model");
  write_file(dir.path() / ("bogus" + std::string(ModelStore::kFileSuffix)), "garbage");
  // A writer killed between open and rename leaves a temp file behind;
  // scan() ignores it, purge() must clean it up.
  write_file(dir.path() / ("dead" + std::string(ModelStore::kFileSuffix) + ".tmp-1-1"),
             "half-written");

  const std::vector<StoredModelInfo> scanned = ModelStore::scan(dir.str());
  ASSERT_EQ(scanned.size(), 3u);  // two models + the bogus .puntmodel
  std::size_t ok = 0, corrupt = 0;
  for (const StoredModelInfo& info : scanned) {
    if (info.ok) {
      ++ok;
      EXPECT_EQ(info.kind, "unfolding");
      EXPECT_GT(info.events, 0u);
      EXPECT_FALSE(info.model.empty());
    } else {
      ++corrupt;
      EXPECT_FALSE(info.error.empty());
    }
  }
  EXPECT_EQ(ok, 2u);
  EXPECT_EQ(corrupt, 1u);

  EXPECT_EQ(ModelStore::purge(dir.str()), 4u);  // 3 .puntmodel + 1 stale temp
  EXPECT_TRUE(ModelStore::scan(dir.str()).empty());  // existing + empty: fine
  EXPECT_TRUE(fs::exists(dir.path() / "unrelated.txt"));  // non-models untouched
}

TEST(ModelStore, ScanAndPurgeOfAnUnlistableDirectoryFailLoudly) {
  // A typo'd --model-cache-dir used to report an empty inventory (exit 0),
  // hiding the typo; the listing error must surface.  (The load()/store()
  // I/O paths keep degrading silently — only the *tooling* helpers, where
  // the directory is the user's explicit input, throw.)
  TempDir dir("unlistable");
  const std::string missing = dir.str() + "-nonexistent";
  EXPECT_THROW((void)ModelStore::scan(missing), Error);
  EXPECT_THROW((void)ModelStore::purge(missing), Error);
  try {
    (void)ModelStore::scan(missing);
    FAIL() << "scanning a nonexistent directory must throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find(missing), std::string::npos) << e.what();
  }
  // An existing-but-empty directory stays a successful empty inventory.
  EXPECT_TRUE(ModelStore::scan(dir.str()).empty());
  EXPECT_EQ(ModelStore::purge(dir.str()), 0u);
}

TEST(ModelStore, FailedWriteLeavesNoTempResidue) {
  // Regression: the throw on a failed temp-file write skipped the cleanup
  // that the rename-failure path ran, leaking a `.tmp-*` per failed store.
  // RLIMIT_FSIZE=0 makes every write fail with EFBIG (SIGXFSZ ignored), the
  // portable stand-in for a full disk.
  TempDir dir("short-write");
  const Stg stg = stg::make_vme_bus();
  const SynthesisOptions options;
  const std::string key = ModelCache::key_of(stg, options);
  const auto model = SemanticModel::build(stg, options);
  ModelStore store(dir.str());

  struct rlimit old_limit {};
  ASSERT_EQ(::getrlimit(RLIMIT_FSIZE, &old_limit), 0);
  void (*old_handler)(int) = std::signal(SIGXFSZ, SIG_IGN);
  struct rlimit tiny {0, old_limit.rlim_max};
  ASSERT_EQ(::setrlimit(RLIMIT_FSIZE, &tiny), 0);
  const bool stored = store.store(key, *model);
  ASSERT_EQ(::setrlimit(RLIMIT_FSIZE, &old_limit), 0);
  std::signal(SIGXFSZ, old_handler);

  EXPECT_FALSE(stored);
  EXPECT_EQ(store.stats().store_failures, 1u);
  for (const auto& entry : fs::directory_iterator(dir.path())) {
    ADD_FAILURE() << "failed store left residue: " << entry.path();
  }

  // The store recovers once writes succeed again, over the same temp-name
  // sequence.
  EXPECT_TRUE(store.store(key, *model));
  ASSERT_NE(store.load(key), nullptr);
}

TEST(ModelStoreCache, SecondCacheOverWarmDirectoryServesFromDisk) {
  TempDir dir("two-tier");
  const Stg stg = stg::make_vme_bus();
  const SynthesisOptions options;

  {
    ModelCache cold(ModelCache::kDefaultCapacity,
                    std::make_shared<ModelStore>(dir.str()));
    bool built = false;
    (void)cold.lookup_or_build(stg, options, &built);
    EXPECT_TRUE(built);
    const ModelCacheStats stats = cold.stats();
    EXPECT_EQ(stats.builds, 1u);
    EXPECT_EQ(stats.disk_stores, 1u);
  }

  // A fresh cache (a new process) over the same directory: disk hit, no
  // phase-1 rebuild, and the saving is credited.
  ModelCache warm(ModelCache::kDefaultCapacity, std::make_shared<ModelStore>(dir.str()));
  bool built = true;
  const auto model = warm.lookup_or_build(stg, options, &built);
  ASSERT_NE(model, nullptr);
  EXPECT_FALSE(built);
  const ModelCacheStats stats = warm.stats();
  EXPECT_EQ(stats.builds, 0u);
  EXPECT_EQ(stats.disk_hits, 1u);
  EXPECT_EQ(stats.misses, 1u);  // it *was* a memory miss
  EXPECT_GE(stats.saved_seconds, 0.0);

  // And the disk-loaded model is a memory hit from then on.
  (void)warm.lookup_or_build(stg, options, &built);
  EXPECT_FALSE(built);
  EXPECT_EQ(warm.stats().hits, 1u);
}

/// The PR's acceptance criterion: synthesis from a disk-loaded model is
/// byte-identical to a cold build, across the whole Table-1 registry.
TEST(ModelStoreCache, DiskLoadedModelsSynthesiseIdenticallyAcrossTheRegistry) {
  TempDir dir("registry");
  const auto& registry = benchmarks::table1();
  std::vector<Stg> stgs;
  for (const auto& bench : registry) stgs.push_back(bench.make());

  // Pass 1 (cold): build every model, persisting each to the directory.
  BatchOptions cold_options;
  cold_options.jobs = 2;
  ModelCache cold(ModelCache::kDefaultCapacity, std::make_shared<ModelStore>(dir.str()));
  cold_options.cache = &cold;
  const BatchResult cold_run = synthesize_batch(stgs, cold_options);
  EXPECT_EQ(cold.stats().builds, registry.size());
  EXPECT_EQ(cold.stats().disk_stores, registry.size());

  // Pass 2 (warm, fresh memory): every model must come from disk...
  BatchOptions warm_options;
  warm_options.jobs = 2;
  ModelCache warm(ModelCache::kDefaultCapacity, std::make_shared<ModelStore>(dir.str()));
  warm_options.cache = &warm;
  const BatchResult warm_run = synthesize_batch(stgs, warm_options);
  const ModelCacheStats stats = warm.stats();
  EXPECT_EQ(stats.disk_hits, registry.size());
  EXPECT_EQ(stats.builds, 0u) << "a warm directory must not rebuild phase 1";
  EXPECT_EQ(stats.disk_load_errors, 0u);

  // ...and synthesis from the deserialised models must match byte-for-byte.
  ASSERT_EQ(cold_run.entries.size(), warm_run.entries.size());
  for (std::size_t i = 0; i < cold_run.entries.size(); ++i) {
    ASSERT_TRUE(cold_run.entries[i].ok) << registry[i].name << ": "
                                        << cold_run.entries[i].error;
    ASSERT_TRUE(warm_run.entries[i].ok) << registry[i].name << ": "
                                        << warm_run.entries[i].error;
    const auto& a = cold_run.entries[i].result.signals;
    const auto& b = warm_run.entries[i].result.signals;
    ASSERT_EQ(a.size(), b.size()) << registry[i].name;
    for (std::size_t s = 0; s < a.size(); ++s) {
      EXPECT_TRUE(a[s].same_logic(b[s]))
          << registry[i].name << " signal " << a[s].name << " (cold vs disk-loaded)";
    }
    EXPECT_EQ(cold_run.entries[i].result.literal_count(),
              warm_run.entries[i].result.literal_count())
        << registry[i].name;
  }
}

}  // namespace
}  // namespace punt::core
