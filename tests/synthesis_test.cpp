// End-to-end synthesis driver tests: all three methods, all three
// architectures, CSC diagnosis, correctness of emitted gates against the
// State Graph oracle.
#include <gtest/gtest.h>

#include <set>

#include "src/core/synthesis.hpp"
#include "src/sg/analysis.hpp"
#include "src/sg/state_graph.hpp"
#include "src/stg/generators.hpp"
#include "src/util/error.hpp"

namespace punt::core {
namespace {

using stg::SignalId;
using stg::Stg;

SynthesisOptions with(Method m, Architecture a = Architecture::ComplexGate) {
  SynthesisOptions options;
  options.method = m;
  options.architecture = a;
  return options;
}

TEST(Synthesis, Fig1ComplexGateIsAPlusC) {
  const Stg stg = stg::make_paper_fig1();
  for (const Method m :
       {Method::UnfoldingApprox, Method::UnfoldingExact, Method::StateGraph}) {
    const SynthesisResult result = synthesize(stg, with(m));
    ASSERT_EQ(result.signals.size(), 1u);  // only b is an output
    const SignalImplementation& impl = result.signals.front();
    // Paper §4.1: C_On(b) = a + c (2 literals); C_Off = a'c' (also 2) — the
    // driver may pick either phase, but the literal count is 2.
    EXPECT_EQ(impl.gate.literal_count(), 2u);
    EXPECT_EQ(result.literal_count(), 2u);
  }
}

TEST(Synthesis, Fig1GateFunctionSemantics) {
  const Stg stg = stg::make_paper_fig1();
  const SynthesisResult result = synthesize(stg, with(Method::UnfoldingApprox));
  const SignalImplementation& impl = result.signals.front();
  const logic::Cover& reference =
      impl.gate_covers_on ? impl.on_cover : impl.off_cover;
  const logic::Cover& opposite =
      impl.gate_covers_on ? impl.off_cover : impl.on_cover;
  EXPECT_TRUE(impl.gate.contains_cover(reference));
  EXPECT_FALSE(impl.gate.intersects(opposite));
}

/// Gate correctness against the SG oracle, for every method / architecture /
/// example combination: the gate must implement the implied value of its
/// signal in every reachable state.
struct OracleCase {
  int example;
  Method method;
  Architecture architecture;
};

class SynthesisOracle : public ::testing::TestWithParam<OracleCase> {};

Stg example_stg(int which) {
  switch (which) {
    case 0: return stg::make_paper_fig1();
    case 1: return stg::make_paper_fig4ab();
    case 2: return stg::make_muller_pipeline(3);
    default: return stg::make_muller_pipeline(5);
  }
}

TEST_P(SynthesisOracle, GatesMatchImpliedValues) {
  const OracleCase param = GetParam();
  const Stg stg = example_stg(param.example);
  SynthesisOptions options = with(param.method, param.architecture);
  const SynthesisResult result = synthesize(stg, options);
  const sg::StateGraph sgraph = sg::StateGraph::build(stg);

  for (const SignalImplementation& impl : result.signals) {
    for (std::size_t s = 0; s < sgraph.state_count(); ++s) {
      const stg::Code& code = sgraph.code(s);
      const std::uint8_t implied = sgraph.implied_value(s, impl.signal);
      if (param.architecture == Architecture::ComplexGate) {
        const bool value = impl.gate.covers_point(code);
        const bool expected = impl.gate_covers_on ? implied == 1 : implied == 0;
        EXPECT_EQ(value, expected)
            << stg.signal_name(impl.signal) << " wrong in state "
            << stg::code_to_string(code);
      } else {
        const bool set = impl.set_function.covers_point(code);
        const bool reset = impl.reset_function.covers_point(code);
        const std::uint8_t now = code[impl.signal.index()];
        if (implied == 1 && now == 0) {
          EXPECT_TRUE(set) << "set must fire in ER(+" << stg.signal_name(impl.signal)
                           << ") state " << stg::code_to_string(code);
        }
        if (implied == 0 && now == 1) {
          EXPECT_TRUE(reset) << "reset must fire in ER(-"
                             << stg.signal_name(impl.signal) << ") state "
                             << stg::code_to_string(code);
        }
        if (implied == 1) {
          EXPECT_FALSE(reset) << "reset glitch in on-state "
                              << stg::code_to_string(code);
        }
        if (implied == 0) {
          EXPECT_FALSE(set) << "set glitch in off-state " << stg::code_to_string(code);
        }
      }
    }
  }
}

std::vector<OracleCase> oracle_cases() {
  std::vector<OracleCase> out;
  for (int example = 0; example < 4; ++example) {
    for (const Method m :
         {Method::UnfoldingApprox, Method::UnfoldingExact, Method::StateGraph}) {
      for (const Architecture a :
           {Architecture::ComplexGate, Architecture::StandardC, Architecture::RsLatch}) {
        out.push_back(OracleCase{example, m, a});
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(AllCombinations, SynthesisOracle,
                         ::testing::ValuesIn(oracle_cases()));

TEST(Synthesis, VmeBusRaisesCscError) {
  const Stg stg = stg::make_vme_bus();
  for (const Method m :
       {Method::UnfoldingApprox, Method::UnfoldingExact, Method::StateGraph}) {
    EXPECT_THROW(synthesize(stg, with(m)), CscError) << "method " << int(m);
  }
}

TEST(Synthesis, VmeBusCscDiagnosisWithoutThrow) {
  const Stg stg = stg::make_vme_bus();
  SynthesisOptions options = with(Method::UnfoldingApprox);
  options.throw_on_csc = false;
  const SynthesisResult result = synthesize(stg, options);
  std::set<std::string> conflicted;
  for (const SignalImplementation& impl : result.signals) {
    if (impl.csc_conflict) conflicted.insert(stg.signal_name(impl.signal));
  }
  // The classic conflict: after the second dsr+ the code (1,0,1,0,1) demands
  // d+ in one state and lds- in the other.
  EXPECT_TRUE(conflicted.contains("d"));
  EXPECT_TRUE(conflicted.contains("lds"));
  EXPECT_FALSE(conflicted.contains("dtack"));
}

TEST(Synthesis, DummiesRejected) {
  Stg stg;
  const SignalId a = stg.add_signal("a", stg::SignalKind::Output);
  const SignalId dum = stg.add_signal("eps", stg::SignalKind::Dummy);
  const auto a_up = stg.add_transition(a, stg::Polarity::Rise);
  const auto a_dn = stg.add_transition(a, stg::Polarity::Fall);
  const auto mid = stg.add_dummy_transition(dum);
  auto& net = stg.net();
  const auto p1 = net.add_place("p1");
  const auto p2 = net.add_place("p2");
  const auto p3 = net.add_place("p3");
  net.add_arc(p1, a_up);
  net.add_arc(a_up, p2);
  net.add_arc(p2, mid);
  net.add_arc(mid, p3);
  net.add_arc(p3, a_dn);
  net.add_arc(a_dn, p1);
  net.set_initial_tokens(p1, 1);
  EXPECT_THROW(synthesize(stg), ImplementabilityError);
}

TEST(Synthesis, NonPersistentStgRejected) {
  Stg stg;
  const SignalId a = stg.add_signal("a", stg::SignalKind::Output);
  const SignalId b = stg.add_signal("b", stg::SignalKind::Output);
  const auto a_up = stg.add_transition(a, stg::Polarity::Rise);
  const auto b_up = stg.add_transition(b, stg::Polarity::Rise);
  const auto a_dn = stg.add_transition(a, stg::Polarity::Fall);
  const auto b_dn = stg.add_transition(b, stg::Polarity::Fall);
  auto& net = stg.net();
  const auto choice = net.add_place("choice");
  const auto pa = net.add_place("pa");
  const auto pb = net.add_place("pb");
  net.add_arc(choice, a_up);
  net.add_arc(choice, b_up);
  net.add_arc(a_up, pa);
  net.add_arc(pa, a_dn);
  net.add_arc(b_up, pb);
  net.add_arc(pb, b_dn);
  net.add_arc(a_dn, choice);
  net.add_arc(b_dn, choice);
  net.set_initial_tokens(choice, 1);
  for (const Method m :
       {Method::UnfoldingApprox, Method::UnfoldingExact, Method::StateGraph}) {
    EXPECT_THROW(synthesize(stg, with(m)), ImplementabilityError);
  }
}

TEST(Synthesis, MethodsAgreeOnLiteralCounts) {
  // Exact methods are equivalent by construction; the approximation should
  // land on the same covers for these clean examples.
  for (int which = 0; which < 3; ++which) {
    const Stg stg = example_stg(which);
    const auto approx = synthesize(stg, with(Method::UnfoldingApprox));
    const auto exact = synthesize(stg, with(Method::UnfoldingExact));
    const auto graph = synthesize(stg, with(Method::StateGraph));
    EXPECT_EQ(exact.literal_count(), graph.literal_count()) << stg.name();
    // The approximate flow may differ slightly (partitioned DC-set; paper
    // §5), but not by more than a couple of literals on these examples.
    EXPECT_LE(approx.literal_count(), exact.literal_count() + 4) << stg.name();
    EXPECT_GE(approx.literal_count() + 4, exact.literal_count()) << stg.name();
  }
}

TEST(Synthesis, TimingsAndStatsPopulated) {
  const SynthesisResult result =
      synthesize(stg::make_muller_pipeline(4), with(Method::UnfoldingApprox));
  EXPECT_GT(result.unfold_stats.events, 0u);
  EXPECT_GE(result.total_seconds,
            result.unfold_seconds);  // total includes all phases
  EXPECT_EQ(result.sg_states, 0u);   // not an SG run
  const SynthesisResult graph =
      synthesize(stg::make_muller_pipeline(4), with(Method::StateGraph));
  EXPECT_GT(graph.sg_states, 0u);
}

TEST(Synthesis, MinimizeOffStillCorrect) {
  SynthesisOptions options = with(Method::UnfoldingApprox);
  options.minimize = false;
  const Stg stg = stg::make_paper_fig1();
  const SynthesisResult result = synthesize(stg, options);
  const SignalImplementation& impl = result.signals.front();
  EXPECT_TRUE(impl.gate.contains_cover(impl.on_cover));
  EXPECT_FALSE(impl.gate.intersects(impl.off_cover));
  // Unminimised: six minterms instead of a + c.
  EXPECT_GT(impl.gate.literal_count(), 2u);
}

TEST(Synthesis, ImplementationLookup) {
  const Stg stg = stg::make_paper_fig1();
  const SynthesisResult result = synthesize(stg, with(Method::StateGraph));
  const SignalId b = *stg.find_signal("b");
  EXPECT_EQ(result.implementation(b).signal, b);
  const SignalId a = *stg.find_signal("a");
  EXPECT_THROW(result.implementation(a), ValidationError);  // a is an input
}

}  // namespace
}  // namespace punt::core
