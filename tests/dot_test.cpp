// DOT writers: structural checks on the generated graphviz text.
#include <gtest/gtest.h>

#include "src/stg/dot.hpp"
#include "src/stg/generators.hpp"
#include "src/unfolding/dot.hpp"
#include "src/unfolding/unfolding.hpp"

namespace punt {
namespace {

TEST(StgDot, MentionsTransitionsAndMarkedPlaces) {
  const stg::Stg fig1 = stg::make_paper_fig1();
  const std::string dot = stg::to_dot(fig1);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("\"a+\""), std::string::npos);
  EXPECT_NE(dot.find("\"b+/2\""), std::string::npos);
  // p1 is marked and a choice place -> stays a node with a token marker.
  EXPECT_NE(dot.find("p1 (*)"), std::string::npos);
}

TEST(StgDot, CollapsesImplicitPlaces) {
  const stg::Stg fig1 = stg::make_paper_fig1();
  const std::string collapsed = stg::to_dot(fig1);
  // p2 has one producer (a+) and one consumer (b+): collapsed to an arc.
  EXPECT_EQ(collapsed.find("\"p2\""), std::string::npos);
  EXPECT_NE(collapsed.find("\"a+\" -> \"b+\""), std::string::npos);

  stg::DotOptions keep;
  keep.collapse_implicit_places = false;
  const std::string full = stg::to_dot(fig1, keep);
  EXPECT_NE(full.find("\"p2\""), std::string::npos);
}

TEST(StgDot, ColorsSignalKinds) {
  const std::string dot = stg::to_dot(stg::make_vme_bus());
  EXPECT_NE(dot.find("lightblue"), std::string::npos);  // inputs
  EXPECT_NE(dot.find("lightpink"), std::string::npos);  // outputs
}

TEST(UnfoldingDot, ShowsCutoffsAndCodes) {
  const auto unf = unf::Unfolding::build(stg::make_paper_fig1());
  const std::string dot = unf::to_dot(unf);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("_|_"), std::string::npos);         // the initial event
  EXPECT_NE(dot.find("style=dashed"), std::string::npos); // cutoff events
  EXPECT_NE(dot.find("style=dotted"), std::string::npos); // image links
  EXPECT_NE(dot.find("\\n100"), std::string::npos);       // code of +a'
}

}  // namespace
}  // namespace punt
