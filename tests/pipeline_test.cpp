// Tests for the task-graph synthesis pipeline: determinism across job
// counts (results AND failure diagnostics), the batch front end on mixed
// success/failure workloads, per-entry cancellation after a CSC failure,
// distinct-key-first model scheduling, the signal index, and the set/reset
// MinimizeStats aggregation.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/benchmarks/registry.hpp"
#include "src/core/cost_ledger.hpp"
#include "src/core/model_cache.hpp"
#include "src/core/pipeline.hpp"
#include "src/core/synthesis.hpp"
#include "src/stg/generators.hpp"
#include "src/util/error.hpp"
#include "src/util/task_graph.hpp"

namespace punt::core {
namespace {

using stg::Stg;

/// Everything except the timing fields must match bit-for-bit.
void expect_identical(const SynthesisResult& a, const SynthesisResult& b,
                      const std::string& label) {
  ASSERT_EQ(a.signals.size(), b.signals.size()) << label;
  EXPECT_EQ(a.literal_count(), b.literal_count()) << label;
  EXPECT_EQ(a.refinement_iterations, b.refinement_iterations) << label;
  EXPECT_EQ(a.exact_fallbacks, b.exact_fallbacks) << label;
  for (std::size_t i = 0; i < a.signals.size(); ++i) {
    const SignalImplementation& sa = a.signals[i];
    const SignalImplementation& sb = b.signals[i];
    EXPECT_EQ(sa.signal, sb.signal) << label << " slot " << i;
    EXPECT_EQ(sa.name, sb.name) << label << " slot " << i;
    EXPECT_TRUE(sa.on_cover == sb.on_cover) << label << " on_cover of " << sa.name;
    EXPECT_TRUE(sa.off_cover == sb.off_cover) << label << " off_cover of " << sa.name;
    EXPECT_TRUE(sa.gate == sb.gate) << label << " gate of " << sa.name;
    EXPECT_EQ(sa.gate_covers_on, sb.gate_covers_on) << label << " " << sa.name;
    EXPECT_TRUE(sa.set_function == sb.set_function) << label << " set of " << sa.name;
    EXPECT_TRUE(sa.reset_function == sb.reset_function)
        << label << " reset of " << sa.name;
    EXPECT_EQ(sa.used_exact_fallback, sb.used_exact_fallback) << label << " " << sa.name;
    EXPECT_EQ(sa.csc_conflict, sb.csc_conflict) << label << " " << sa.name;
    EXPECT_EQ(sa.min_stats.final_literals, sb.min_stats.final_literals)
        << label << " " << sa.name;
    EXPECT_EQ(sa.min_stats.final_cubes, sb.min_stats.final_cubes)
        << label << " " << sa.name;
    // The aggregate predicate the benches use must agree with the
    // field-by-field checks above.
    EXPECT_TRUE(sa.same_logic(sb)) << label << " same_logic of " << sa.name;
  }
}

TEST(Pipeline, EveryRegistryEntryIsDeterministicAcrossJobCounts) {
  for (const auto& bench : benchmarks::table1()) {
    const Stg stg = bench.make();
    SynthesisOptions serial;
    serial.jobs = 1;
    const SynthesisResult reference = synthesize(stg, serial);
    for (const std::size_t jobs : {2u, 8u}) {
      SynthesisOptions parallel;
      parallel.jobs = jobs;
      const SynthesisResult result = synthesize(stg, parallel);
      expect_identical(reference, result,
                       bench.name + " (jobs=" + std::to_string(jobs) + ")");
    }
  }
}

TEST(Pipeline, BatchMatchesPerStgSynthesisAtEveryJobCount) {
  const auto& registry = benchmarks::table1();
  std::vector<Stg> stgs;
  for (const auto& bench : registry) stgs.push_back(bench.make());

  BatchOptions serial;
  serial.jobs = 1;
  BatchOptions parallel;
  parallel.jobs = 8;
  const BatchResult batch1 = synthesize_batch(stgs, serial);
  const BatchResult batch8 = synthesize_batch(stgs, parallel);
  ASSERT_EQ(batch1.entries.size(), registry.size());
  ASSERT_EQ(batch8.entries.size(), registry.size());
  EXPECT_EQ(batch1.failures, 0u);
  EXPECT_EQ(batch8.failures, 0u);
  EXPECT_EQ(batch8.jobs, 8u);

  for (std::size_t i = 0; i < registry.size(); ++i) {
    ASSERT_TRUE(batch1.entries[i].ok) << batch1.entries[i].error;
    ASSERT_TRUE(batch8.entries[i].ok) << batch8.entries[i].error;
    expect_identical(batch1.entries[i].result, batch8.entries[i].result,
                     registry[i].name + " (batch1 vs batch8)");
    const SynthesisResult direct = synthesize(stgs[i]);
    expect_identical(direct, batch8.entries[i].result,
                     registry[i].name + " (direct vs batch)");
  }
}

TEST(Pipeline, MixedBatchKeepsResultsAndErrorTextIdenticalAcrossJobCounts) {
  // The full registry plus failing entries interleaved — a CSC conflict
  // (throw_on_csc) mid-batch and a duplicate of it at the end.  Results AND
  // per-entry error text must be byte-identical at jobs ∈ {1, 2, 8}: the
  // failure diagnostic is the lowest-index failing signal's, whatever
  // worker count ran the graph.
  const auto& registry = benchmarks::table1();
  std::vector<Stg> stgs;
  stgs.push_back(stg::make_vme_bus());  // known CSC conflict
  for (const auto& bench : registry) stgs.push_back(bench.make());
  stgs.push_back(stg::make_vme_bus());

  BatchOptions options;
  options.synthesis.throw_on_csc = true;
  options.jobs = 1;
  const BatchResult reference = synthesize_batch(stgs, options);
  ASSERT_EQ(reference.entries.size(), registry.size() + 2);
  EXPECT_EQ(reference.failures, 2u);
  EXPECT_FALSE(reference.entries.front().ok);
  EXPECT_NE(reference.entries.front().error.find("Complete State Coding"),
            std::string::npos);
  EXPECT_FALSE(reference.entries.back().ok);
  EXPECT_EQ(reference.entries.front().error, reference.entries.back().error);

  for (const std::size_t jobs : {2u, 8u}) {
    BatchOptions parallel = options;
    parallel.jobs = jobs;
    const BatchResult batch = synthesize_batch(stgs, parallel);
    ASSERT_EQ(batch.entries.size(), reference.entries.size());
    EXPECT_EQ(batch.failures, reference.failures);
    for (std::size_t i = 0; i < reference.entries.size(); ++i) {
      const std::string label =
          "entry " + std::to_string(i) + " jobs=" + std::to_string(jobs);
      ASSERT_EQ(batch.entries[i].ok, reference.entries[i].ok) << label;
      if (reference.entries[i].ok) {
        expect_identical(reference.entries[i].result, batch.entries[i].result, label);
      } else {
        EXPECT_EQ(batch.entries[i].error, reference.entries[i].error) << label;
      }
    }
  }
}

TEST(Pipeline, WarmLedgerKeepsResultsAndErrorsBitIdenticalAcrossJobCounts) {
  // The registry plus failing entries (a CSC conflict mid-batch and its
  // duplicate at the end), run through a CostLedger warmed by a prior full
  // pass, at jobs ∈ {1, 2, 8}.  Learned costs reorder dispatch *within*
  // priority bands only, so against the plain no-ledger reference every
  // result and every failure diagnostic must stay byte-identical — whatever
  // the ledger holds and however many workers run the graph.
  const auto& registry = benchmarks::table1();
  std::vector<Stg> stgs;
  stgs.push_back(stg::make_vme_bus());  // known CSC conflict
  for (const auto& bench : registry) stgs.push_back(bench.make());
  stgs.push_back(stg::make_vme_bus());

  BatchOptions plain;
  plain.synthesis.throw_on_csc = true;
  plain.jobs = 1;
  const BatchResult reference = synthesize_batch(stgs, plain);
  ASSERT_EQ(reference.failures, 2u);

  // Warm the ledger with one measured pass.  Failing entries still feed it:
  // their model build and non-conflicting signals measured real costs.
  CostLedger ledger;
  BatchOptions warmup = plain;
  warmup.ledger = &ledger;
  (void)synthesize_batch(stgs, warmup);
  ASSERT_GT(ledger.size(), 0u) << "the warmup pass folded nothing into the ledger";

  for (const std::size_t jobs : {1u, 2u, 8u}) {
    BatchOptions warm = plain;
    warm.jobs = jobs;
    warm.ledger = &ledger;
    util::TaskTrace trace;
    warm.trace = &trace;
    const BatchResult batch = synthesize_batch(stgs, warm);
    // The run genuinely dispatched on estimates — this is not a vacuous
    // comparison of two cold schedules.
    std::size_t estimated = 0;
    for (const util::TraceNode& node : trace.nodes) estimated += node.est_cost > 0;
    EXPECT_GT(estimated, 0u) << "jobs=" << jobs;
    ASSERT_EQ(batch.entries.size(), reference.entries.size());
    EXPECT_EQ(batch.failures, reference.failures);
    for (std::size_t i = 0; i < reference.entries.size(); ++i) {
      const std::string label =
          "entry " + std::to_string(i) + " warm-ledger jobs=" + std::to_string(jobs);
      ASSERT_EQ(batch.entries[i].ok, reference.entries[i].ok) << label;
      if (reference.entries[i].ok) {
        expect_identical(reference.entries[i].result, batch.entries[i].result, label);
      } else {
        EXPECT_EQ(batch.entries[i].error, reference.entries[i].error) << label;
      }
    }
  }
}

TEST(Pipeline, LedgerLearnsFromMeasuredRunsButNotCacheHits) {
  // One STG through an empty ledger: after the run the model, derive and
  // minimize estimates are positive (real measured seconds).  A second run
  // over a warm ModelCache must NOT fold the near-zero cache-hit resolution
  // into the model entry — the estimate means "cost to build", and eroding
  // it toward zero would misorder every later cold batch.
  const Stg stg = benchmarks::table1().front().make();
  SynthesisOptions options;
  CostLedger ledger;
  ModelCache cache;
  BatchOptions batch_options;
  batch_options.synthesis = options;
  batch_options.jobs = 1;
  batch_options.cache = &cache;
  batch_options.ledger = &ledger;
  const std::span<const Stg> one(&stg, 1);
  ASSERT_EQ(synthesize_batch(one, batch_options).failures, 0u);
  const std::string model_key = CostLedger::key_of(
      "model", CostLedger::model_digest(stg, options));
  const double built_estimate = ledger.estimate(model_key);
  ASSERT_GT(built_estimate, 0.0) << "the build run must seed the model estimate";

  ASSERT_EQ(synthesize_batch(one, batch_options).failures, 0u);  // cache hit
  EXPECT_EQ(ledger.estimate(model_key), built_estimate)
      << "a cache-hit model resolution polluted the build-cost estimate";

  // Derive/minimize estimates exist per non-input signal and keep updating.
  std::size_t signal_keys = 0;
  for (const auto signal : stg.non_input_signals()) {
    const std::string derive_key = CostLedger::key_of(
        "derive", CostLedger::entry_digest(stg, options), stg.signal_name(signal));
    signal_keys += ledger.estimate(derive_key) > 0;
  }
  EXPECT_GT(signal_keys, 0u);
}

TEST(Pipeline, ParallelCscFailureMatchesSequentialDiagnostic) {
  const Stg stg = stg::make_vme_bus();  // known CSC conflict
  std::string sequential_message;
  try {
    SynthesisOptions serial;
    serial.jobs = 1;
    synthesize(stg, serial);
    FAIL() << "expected CscError";
  } catch (const CscError& e) {
    sequential_message = e.what();
  }
  try {
    SynthesisOptions parallel;
    parallel.jobs = 8;
    synthesize(stg, parallel);
    FAIL() << "expected CscError";
  } catch (const CscError& e) {
    // The lowest-index failure is the one that surfaces, so the parallel
    // run reports the same signal as the sequential left-to-right loop.
    EXPECT_EQ(sequential_message, std::string(e.what()));
  }
}

TEST(Pipeline, CscFailureCancelsTheSignalsDownstreamNodes) {
  // After a derive node fails with CscError, that signal's minimize node
  // and the entry's assembly node must be Cancelled — not run — while the
  // sibling signals' nodes still execute.  Observable in the trace.
  const Stg stg = stg::make_vme_bus();
  SynthesisOptions options;
  options.jobs = 2;
  util::TaskTrace trace;
  try {
    synthesize(stg, options, nullptr, &trace);
    FAIL() << "expected CscError";
  } catch (const CscError&) {
  }
  ASSERT_FALSE(trace.nodes.empty());

  std::size_t failed_derives = 0, cancelled_minimizes = 0, done_nodes = 0;
  bool assembly_cancelled = false;
  for (const util::TraceNode& node : trace.nodes) {
    if (node.status == util::TaskStatus::Done) ++done_nodes;
    if (node.kind == "derive" && node.status == util::TaskStatus::Failed) {
      ++failed_derives;
      // The failed signal's minimize node depends on it and must be
      // cancelled, never run.
      for (const util::TraceNode& dependent : trace.nodes) {
        if (dependent.kind == "minimize" &&
            std::find(dependent.deps.begin(), dependent.deps.end(), node.id) !=
                dependent.deps.end()) {
          ++cancelled_minimizes;
          EXPECT_EQ(dependent.status, util::TaskStatus::Cancelled)
              << "minimize of failed signal " << node.label << " ran";
          EXPECT_EQ(dependent.worker, -1);
        }
      }
    }
    if (node.kind == "assembly") {
      assembly_cancelled = node.status == util::TaskStatus::Cancelled;
    }
  }
  EXPECT_GE(failed_derives, 1u);
  EXPECT_EQ(cancelled_minimizes, failed_derives);
  EXPECT_TRUE(assembly_cancelled) << "assembly of a failed entry must not run";
  EXPECT_GT(done_nodes, 0u) << "sibling signals' nodes still execute";
}

TEST(Pipeline, RepeatedKeyEntriesScheduleBehindOneModelBuild) {
  // A batch repeating one STG through a cache must build the model once;
  // every duplicate resolves as a *completed* hit (credited to
  // saved_seconds — an in-flight join is not), and the trace shows each
  // repeat's model node starting after the primary build ended.
  constexpr std::size_t kRepeats = 6;
  std::vector<Stg> stgs(kRepeats, stg::make_paper_fig1());
  ModelCache cache;
  util::TaskTrace trace;
  BatchOptions options;
  options.jobs = 4;
  options.cache = &cache;
  options.trace = &trace;
  const BatchResult batch = synthesize_batch(stgs, options);
  ASSERT_EQ(batch.failures, 0u);
  for (std::size_t i = 1; i < kRepeats; ++i) {
    expect_identical(batch.entries[0].result, batch.entries[i].result,
                     "repeat " + std::to_string(i));
  }

  const ModelCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, kRepeats - 1);
  EXPECT_GT(stats.saved_seconds, 0.0) << "duplicates joined an in-flight build "
                                         "instead of scheduling behind it";

  std::vector<const util::TraceNode*> model_nodes;
  for (const util::TraceNode& node : trace.nodes) {
    if (node.kind == "model") model_nodes.push_back(&node);
  }
  ASSERT_EQ(model_nodes.size(), kRepeats);
  // Exactly one primary (no deps, dispatch priority 0); every repeat
  // depends on it and starts after it ended.
  const util::TraceNode* primary = model_nodes.front();
  EXPECT_TRUE(primary->deps.empty());
  for (std::size_t i = 1; i < model_nodes.size(); ++i) {
    const util::TraceNode* repeat = model_nodes[i];
    ASSERT_EQ(repeat->deps.size(), 1u);
    EXPECT_EQ(repeat->deps.front(), primary->id);
    EXPECT_GT(repeat->priority, primary->priority);
    EXPECT_GE(repeat->wall_start, primary->wall_end);
  }
}

TEST(Pipeline, BatchWithoutCacheBuildsEachModelIndependently) {
  // No cache → no cross-entry coupling: every model node is a root.
  std::vector<Stg> stgs(3, stg::make_paper_fig1());
  util::TaskTrace trace;
  BatchOptions options;
  options.jobs = 2;
  options.trace = &trace;
  const BatchResult batch = synthesize_batch(stgs, options);
  EXPECT_EQ(batch.failures, 0u);
  std::size_t root_models = 0;
  for (const util::TraceNode& node : trace.nodes) {
    if (node.kind == "model") {
      EXPECT_TRUE(node.deps.empty());
      ++root_models;
    }
  }
  EXPECT_EQ(root_models, 3u);
}

TEST(Pipeline, BatchReportsCriticalPath) {
  std::vector<Stg> stgs;
  stgs.push_back(stg::make_paper_fig1());
  stgs.push_back(stg::make_muller_pipeline(3));
  BatchOptions options;
  options.jobs = 2;
  const BatchResult batch = synthesize_batch(stgs, options);
  EXPECT_EQ(batch.failures, 0u);
  EXPECT_GT(batch.critical_path_seconds, 0.0);
  EXPECT_LE(batch.critical_path_seconds, batch.wall_seconds + 1e-6);
}

TEST(Pipeline, ImplementationLookupIsIndexedAndDiagnosesMisses) {
  const Stg stg = stg::make_paper_fig1();
  const SynthesisResult result = synthesize(stg);
  for (const SignalImplementation& impl : result.signals) {
    EXPECT_EQ(&result.implementation(impl.signal), &impl);
    EXPECT_EQ(impl.name, stg.signal_name(impl.signal));
  }
  // An input signal has no implementation; the error must name the known
  // signals so the caller can see what *is* available.
  const std::vector<stg::SignalId> targets = stg.non_input_signals();
  for (std::size_t v = 0; v < stg.signal_count(); ++v) {
    const stg::SignalId id{static_cast<std::uint32_t>(v)};
    if (std::find(targets.begin(), targets.end(), id) != targets.end()) continue;
    try {
      result.implementation(id);
      FAIL() << "expected ValidationError for input signal " << v;
    } catch (const ValidationError& e) {
      const std::string message = e.what();
      for (const SignalImplementation& impl : result.signals) {
        EXPECT_NE(message.find(impl.name), std::string::npos)
            << "miss diagnostic should list known signal " << impl.name;
      }
    }
  }
}

TEST(Pipeline, LatchMinStatsAggregateSetAndReset) {
  // On a latch architecture the reported stats must cover both espresso
  // runs: final cubes/literals equal the set+reset function sizes.
  const Stg stg = stg::make_muller_pipeline(3);
  SynthesisOptions options;
  options.architecture = Architecture::StandardC;
  const SynthesisResult result = synthesize(stg, options);
  ASSERT_FALSE(result.signals.empty());
  for (const SignalImplementation& impl : result.signals) {
    EXPECT_EQ(impl.min_stats.final_cubes,
              impl.set_function.cube_count() + impl.reset_function.cube_count())
        << impl.name;
    EXPECT_EQ(impl.min_stats.final_literals,
              impl.set_function.literal_count() + impl.reset_function.literal_count())
        << impl.name;
    EXPECT_GT(impl.min_stats.initial_cubes, 0u) << impl.name;
  }
}

TEST(Pipeline, MixedOptionsBatchMatchesIndividualSynthesis) {
  // The per-entry-options overload (what serve-mode fusion feeds): entries
  // differing in method and architecture fuse into one union graph yet come
  // out identical to running each alone with its own options.
  const Stg fig1 = stg::make_paper_fig1();
  const Stg muller = stg::make_muller_pipeline(3);
  std::vector<BatchRequest> requests(4);
  requests[0].stg = &fig1;
  requests[0].synthesis.method = Method::UnfoldingApprox;
  requests[1].stg = &fig1;
  requests[1].synthesis.method = Method::StateGraph;
  requests[2].stg = &muller;
  requests[2].synthesis.architecture = Architecture::StandardC;
  requests[3].stg = &muller;
  requests[3].synthesis.architecture = Architecture::RsLatch;

  BatchOptions options;
  options.jobs = 4;
  const BatchResult batch =
      synthesize_batch(std::span<const BatchRequest>(requests), options);
  ASSERT_EQ(batch.entries.size(), requests.size());
  ASSERT_EQ(batch.failures, 0u);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const SynthesisResult direct =
        synthesize(*requests[i].stg, requests[i].synthesis);
    expect_identical(direct, batch.entries[i].result,
                     "mixed-options entry " + std::to_string(i));
  }
}

TEST(Pipeline, DifferingArchitectureEntriesShareOneModelBuild) {
  // The cache key covers only model-affecting options, so fused entries
  // that diverge downstream (architecture) still dedup to one phase-1
  // build — the fusion win served traffic is after.
  const Stg stg = stg::make_paper_fig1();
  std::vector<BatchRequest> requests(3);
  requests[0].stg = &stg;
  requests[0].synthesis.architecture = Architecture::ComplexGate;
  requests[1].stg = &stg;
  requests[1].synthesis.architecture = Architecture::StandardC;
  requests[2].stg = &stg;
  requests[2].synthesis.architecture = Architecture::RsLatch;

  ModelCache cache;
  BatchOptions options;
  options.jobs = 2;
  options.cache = &cache;
  const BatchResult batch =
      synthesize_batch(std::span<const BatchRequest>(requests), options);
  ASSERT_EQ(batch.failures, 0u);
  const ModelCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u) << "one model build serves all architectures";
  EXPECT_EQ(stats.hits, 2u);
  // And the model *kind* DOES affect the key: a state-graph entry must not
  // reuse the unfolding segment.  (Exact and approx unfolding deliberately
  // share one — they consume the same segment.)
  std::vector<BatchRequest> sg(1);
  sg[0].stg = &stg;
  sg[0].synthesis.method = Method::StateGraph;
  const BatchResult second =
      synthesize_batch(std::span<const BatchRequest>(sg), options);
  ASSERT_EQ(second.failures, 0u);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(Pipeline, BatchCapturesPerEntryFailures) {
  std::vector<Stg> stgs;
  stgs.push_back(stg::make_paper_fig1());
  stgs.push_back(stg::make_vme_bus());  // CSC conflict → entry-level failure
  stgs.push_back(stg::make_muller_pipeline(2));

  BatchOptions options;
  options.jobs = 4;
  const BatchResult batch = synthesize_batch(stgs, options);
  ASSERT_EQ(batch.entries.size(), 3u);
  EXPECT_TRUE(batch.entries[0].ok);
  EXPECT_FALSE(batch.entries[1].ok);
  EXPECT_NE(batch.entries[1].error.find("Complete State Coding"), std::string::npos);
  EXPECT_TRUE(batch.entries[2].ok);
  EXPECT_EQ(batch.failures, 1u);
  EXPECT_EQ(batch.literal_count(), batch.entries[0].result.literal_count() +
                                       batch.entries[2].result.literal_count());
  // The typed exception rides along for single-entry callers.
  ASSERT_NE(batch.entries[1].exception, nullptr);
  EXPECT_THROW(std::rethrow_exception(batch.entries[1].exception), CscError);
}

}  // namespace
}  // namespace punt::core
