// Tests for the staged synthesis pipeline: determinism across job counts,
// the batch front end, the Scheduler's error semantics, the signal index,
// and the set/reset MinimizeStats aggregation.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/benchmarks/registry.hpp"
#include "src/core/pipeline.hpp"
#include "src/core/synthesis.hpp"
#include "src/stg/generators.hpp"
#include "src/util/error.hpp"

namespace punt::core {
namespace {

using stg::Stg;

/// Everything except the timing fields must match bit-for-bit.
void expect_identical(const SynthesisResult& a, const SynthesisResult& b,
                      const std::string& label) {
  ASSERT_EQ(a.signals.size(), b.signals.size()) << label;
  EXPECT_EQ(a.literal_count(), b.literal_count()) << label;
  EXPECT_EQ(a.refinement_iterations, b.refinement_iterations) << label;
  EXPECT_EQ(a.exact_fallbacks, b.exact_fallbacks) << label;
  for (std::size_t i = 0; i < a.signals.size(); ++i) {
    const SignalImplementation& sa = a.signals[i];
    const SignalImplementation& sb = b.signals[i];
    EXPECT_EQ(sa.signal, sb.signal) << label << " slot " << i;
    EXPECT_EQ(sa.name, sb.name) << label << " slot " << i;
    EXPECT_TRUE(sa.on_cover == sb.on_cover) << label << " on_cover of " << sa.name;
    EXPECT_TRUE(sa.off_cover == sb.off_cover) << label << " off_cover of " << sa.name;
    EXPECT_TRUE(sa.gate == sb.gate) << label << " gate of " << sa.name;
    EXPECT_EQ(sa.gate_covers_on, sb.gate_covers_on) << label << " " << sa.name;
    EXPECT_TRUE(sa.set_function == sb.set_function) << label << " set of " << sa.name;
    EXPECT_TRUE(sa.reset_function == sb.reset_function)
        << label << " reset of " << sa.name;
    EXPECT_EQ(sa.used_exact_fallback, sb.used_exact_fallback) << label << " " << sa.name;
    EXPECT_EQ(sa.csc_conflict, sb.csc_conflict) << label << " " << sa.name;
    EXPECT_EQ(sa.min_stats.final_literals, sb.min_stats.final_literals)
        << label << " " << sa.name;
    EXPECT_EQ(sa.min_stats.final_cubes, sb.min_stats.final_cubes)
        << label << " " << sa.name;
    // The aggregate predicate the benches use must agree with the
    // field-by-field checks above.
    EXPECT_TRUE(sa.same_logic(sb)) << label << " same_logic of " << sa.name;
  }
}

TEST(Pipeline, EveryRegistryEntryIsDeterministicAcrossJobCounts) {
  for (const auto& bench : benchmarks::table1()) {
    const Stg stg = bench.make();
    SynthesisOptions serial;
    serial.jobs = 1;
    SynthesisOptions parallel;
    parallel.jobs = 8;
    const SynthesisResult a = synthesize(stg, serial);
    const SynthesisResult b = synthesize(stg, parallel);
    expect_identical(a, b, bench.name);
  }
}

TEST(Pipeline, BatchMatchesPerStgSynthesisAtEveryJobCount) {
  const auto& registry = benchmarks::table1();
  std::vector<Stg> stgs;
  for (const auto& bench : registry) stgs.push_back(bench.make());

  BatchOptions serial;
  serial.jobs = 1;
  BatchOptions parallel;
  parallel.jobs = 8;
  const BatchResult batch1 = synthesize_batch(stgs, serial);
  const BatchResult batch8 = synthesize_batch(stgs, parallel);
  ASSERT_EQ(batch1.entries.size(), registry.size());
  ASSERT_EQ(batch8.entries.size(), registry.size());
  EXPECT_EQ(batch1.failures, 0u);
  EXPECT_EQ(batch8.failures, 0u);
  EXPECT_EQ(batch8.jobs, 8u);

  for (std::size_t i = 0; i < registry.size(); ++i) {
    ASSERT_TRUE(batch1.entries[i].ok) << batch1.entries[i].error;
    ASSERT_TRUE(batch8.entries[i].ok) << batch8.entries[i].error;
    expect_identical(batch1.entries[i].result, batch8.entries[i].result,
                     registry[i].name + " (batch1 vs batch8)");
    const SynthesisResult direct = synthesize(stgs[i]);
    expect_identical(direct, batch8.entries[i].result,
                     registry[i].name + " (direct vs batch)");
  }
}

TEST(Pipeline, ParallelCscFailureMatchesSequentialDiagnostic) {
  const Stg stg = stg::make_vme_bus();  // known CSC conflict
  std::string sequential_message;
  try {
    SynthesisOptions serial;
    serial.jobs = 1;
    synthesize(stg, serial);
    FAIL() << "expected CscError";
  } catch (const CscError& e) {
    sequential_message = e.what();
  }
  try {
    SynthesisOptions parallel;
    parallel.jobs = 8;
    synthesize(stg, parallel);
    FAIL() << "expected CscError";
  } catch (const CscError& e) {
    // The lowest-index failure is rethrown, so the parallel run reports the
    // same signal as the sequential left-to-right loop.
    EXPECT_EQ(sequential_message, std::string(e.what()));
  }
}

TEST(Scheduler, RunsEveryIndexAndRethrowsLowestFailure) {
  Scheduler scheduler(4);
  EXPECT_EQ(scheduler.jobs(), 4u);
  std::atomic<int> ran{0};
  try {
    scheduler.run(20, [&ran](std::size_t i) {
      ran.fetch_add(1);
      if (i == 7 || i == 13) {
        throw std::runtime_error("task " + std::to_string(i) + " failed");
      }
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 7 failed");
  }
  EXPECT_EQ(ran.load(), 20);  // failures do not cancel the remaining tasks
}

TEST(Scheduler, InlineModeMatchesPoolSemantics) {
  Scheduler scheduler(1);
  std::vector<int> order;
  scheduler.run(5, [&order](std::size_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
  try {
    scheduler.run(3, [](std::size_t i) {
      if (i != 1) throw std::runtime_error("task " + std::to_string(i) + " failed");
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 0 failed");
  }
}

TEST(Pipeline, ImplementationLookupIsIndexedAndDiagnosesMisses) {
  const Stg stg = stg::make_paper_fig1();
  const SynthesisResult result = synthesize(stg);
  for (const SignalImplementation& impl : result.signals) {
    EXPECT_EQ(&result.implementation(impl.signal), &impl);
    EXPECT_EQ(impl.name, stg.signal_name(impl.signal));
  }
  // An input signal has no implementation; the error must name the known
  // signals so the caller can see what *is* available.
  const std::vector<stg::SignalId> targets = stg.non_input_signals();
  for (std::size_t v = 0; v < stg.signal_count(); ++v) {
    const stg::SignalId id{static_cast<std::uint32_t>(v)};
    if (std::find(targets.begin(), targets.end(), id) != targets.end()) continue;
    try {
      result.implementation(id);
      FAIL() << "expected ValidationError for input signal " << v;
    } catch (const ValidationError& e) {
      const std::string message = e.what();
      for (const SignalImplementation& impl : result.signals) {
        EXPECT_NE(message.find(impl.name), std::string::npos)
            << "miss diagnostic should list known signal " << impl.name;
      }
    }
  }
}

TEST(Pipeline, LatchMinStatsAggregateSetAndReset) {
  // On a latch architecture the reported stats must cover both espresso
  // runs: final cubes/literals equal the set+reset function sizes.
  const Stg stg = stg::make_muller_pipeline(3);
  SynthesisOptions options;
  options.architecture = Architecture::StandardC;
  const SynthesisResult result = synthesize(stg, options);
  ASSERT_FALSE(result.signals.empty());
  for (const SignalImplementation& impl : result.signals) {
    EXPECT_EQ(impl.min_stats.final_cubes,
              impl.set_function.cube_count() + impl.reset_function.cube_count())
        << impl.name;
    EXPECT_EQ(impl.min_stats.final_literals,
              impl.set_function.literal_count() + impl.reset_function.literal_count())
        << impl.name;
    EXPECT_GT(impl.min_stats.initial_cubes, 0u) << impl.name;
  }
}

TEST(Pipeline, BatchCapturesPerEntryFailures) {
  std::vector<Stg> stgs;
  stgs.push_back(stg::make_paper_fig1());
  stgs.push_back(stg::make_vme_bus());  // CSC conflict → entry-level failure
  stgs.push_back(stg::make_muller_pipeline(2));

  BatchOptions options;
  options.jobs = 4;
  const BatchResult batch = synthesize_batch(stgs, options);
  ASSERT_EQ(batch.entries.size(), 3u);
  EXPECT_TRUE(batch.entries[0].ok);
  EXPECT_FALSE(batch.entries[1].ok);
  EXPECT_NE(batch.entries[1].error.find("Complete State Coding"), std::string::npos);
  EXPECT_TRUE(batch.entries[2].ok);
  EXPECT_EQ(batch.failures, 1u);
  EXPECT_EQ(batch.literal_count(), batch.entries[0].result.literal_count() +
                                       batch.entries[2].result.literal_count());
}

}  // namespace
}  // namespace punt::core
