// Tests for the dependency-aware task-graph executor: topological execution,
// deterministic inline ordering, failure containment (transitive-dependent
// cancellation), the schedule trace / critical path, and — under TSan — the
// no-deadlock property of many graphs churning through one pool.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "src/util/task_graph.hpp"
#include "src/util/thread_pool.hpp"

namespace punt::util {
namespace {

TEST(TaskGraph, InlineRunsInPriorityThenIdOrder) {
  TaskGraph graph;
  std::vector<std::string> order;
  const auto record = [&order](std::string name) {
    return [&order, name = std::move(name)] { order.push_back(name); };
  };
  // Three roots with priorities 2, 0, 1 plus one dependent each: the roots
  // must run in priority order, each unlocking its child, and children
  // (priority 5) run after every root.
  const auto a = graph.add("root", "a", 2, {}, record("a"));
  const auto b = graph.add("root", "b", 0, {}, record("b"));
  const auto c = graph.add("root", "c", 1, {}, record("c"));
  graph.add("child", "a'", 5, {a}, record("a'"));
  graph.add("child", "b'", 5, {b}, record("b'"));
  graph.add("child", "c'", 5, {c}, record("c'"));
  graph.execute_inline();
  EXPECT_EQ(order, (std::vector<std::string>{"b", "c", "a", "a'", "b'", "c'"}));
  for (std::size_t id = 0; id < graph.size(); ++id) {
    EXPECT_EQ(graph.status(id), TaskStatus::Done);
    EXPECT_EQ(graph.error(id), nullptr);
  }
}

TEST(TaskGraph, CostOrdersWithinAPriorityBandLongestFirst) {
  TaskGraph graph;
  std::vector<std::string> order;
  const auto record = [&order](std::string name) {
    return [&order, name = std::move(name)] { order.push_back(name); };
  };
  // Same band: highest estimated cost dispatches first (LPT), zero-cost
  // ties fall back to id order.  A lower band still beats any cost.
  graph.add("n", "small", 1, 0.1, {}, record("small"));
  graph.add("n", "big", 1, 0.9, {}, record("big"));
  graph.add("n", "mid", 1, 0.5, {}, record("mid"));
  graph.add("n", "zero-a", 1, 0.0, {}, record("zero-a"));
  graph.add("n", "zero-b", 1, 0.0, {}, record("zero-b"));
  graph.add("n", "urgent", 0, 0.001, {}, record("urgent"));
  graph.execute_inline();
  EXPECT_EQ(order, (std::vector<std::string>{"urgent", "big", "mid", "small",
                                             "zero-a", "zero-b"}));
  // Estimates are sanitised and recorded in the trace; they change order
  // only, never results.
  EXPECT_DOUBLE_EQ(graph.trace().nodes[1].est_cost, 0.9);
  for (std::size_t id = 0; id < graph.size(); ++id) {
    EXPECT_EQ(graph.status(id), TaskStatus::Done);
  }
}

TEST(TaskGraph, TraceStampsReadyTimesAndQueueWaits) {
  for (const bool inline_run : {true, false}) {
    TaskGraph graph;
    const auto spin = [] {
      volatile double sink = 0;
      for (int i = 0; i < 20000; ++i) sink = sink + static_cast<double>(i);
    };
    const auto root = graph.add("n", "root", 0, {}, spin);
    graph.add("n", "child", 0, {root}, spin);
    graph.add("n", "boom", 0, {}, [] { throw std::runtime_error("x"); });
    const auto doomed = graph.add("n", "doomed", 0, {2}, spin);
    if (inline_run) {
      graph.execute_inline();
    } else {
      ThreadPool pool(2);
      graph.execute(pool);
    }
    const TaskTrace& trace = graph.trace();
    for (const TraceNode& node : trace.nodes) {
      if (node.status == TaskStatus::Cancelled) continue;
      EXPECT_LE(node.wall_ready, node.wall_start + 1e-9) << node.label;
      EXPECT_GE(node.queue_wait(), -1e-9) << node.label;
    }
    // A dependent becomes ready only once its dependency finishes.
    EXPECT_GE(trace.nodes[1].wall_ready, trace.nodes[0].wall_end - 1e-9);
    EXPECT_EQ(trace.nodes[doomed].queue_wait(), 0.0) << "cancelled nodes never wait";
    // The JSON dump carries the additive v1 fields.
    const std::string json = trace.to_json();
    EXPECT_NE(json.find("\"est_cost\""), std::string::npos);
    EXPECT_NE(json.find("\"wall_ready\""), std::string::npos);
    EXPECT_NE(json.find("\"queue_wait\""), std::string::npos);
  }
}

TEST(TaskGraph, PoolRespectsDependencies) {
  // A dependent node must observe every dependency's side effect, whichever
  // worker runs it.  Diamond: a → {b, c} → d, repeated over many graphs.
  ThreadPool pool(4);
  for (int round = 0; round < 25; ++round) {
    TaskGraph graph;
    std::atomic<int> a_runs{0};
    std::atomic<int> bc_after_a{0};
    std::atomic<int> d_after_bc{0};
    const auto a = graph.add("n", "a", 0, {}, [&] { a_runs.fetch_add(1); });
    const auto b = graph.add("n", "b", 0, {a}, [&] {
      if (a_runs.load() == 1) bc_after_a.fetch_add(1);
    });
    const auto c = graph.add("n", "c", 0, {a}, [&] {
      if (a_runs.load() == 1) bc_after_a.fetch_add(1);
    });
    graph.add("n", "d", 0, {b, c}, [&] {
      if (bc_after_a.load() == 2) d_after_bc.fetch_add(1);
    });
    graph.execute(pool);
    EXPECT_EQ(a_runs.load(), 1);
    EXPECT_EQ(bc_after_a.load(), 2);
    EXPECT_EQ(d_after_bc.load(), 1);
  }
}

TEST(TaskGraph, FailureCancelsTransitiveDependentsOnly) {
  // boom → mid → leaf is cancelled; the independent branch still runs.
  for (const bool inline_run : {true, false}) {
    TaskGraph graph;
    std::atomic<int> independent_ran{0};
    std::atomic<int> downstream_ran{0};
    const auto boom = graph.add("n", "boom", 0, {}, [] {
      throw std::runtime_error("boom failed");
    });
    const auto mid =
        graph.add("n", "mid", 0, {boom}, [&] { downstream_ran.fetch_add(1); });
    const auto leaf =
        graph.add("n", "leaf", 0, {mid}, [&] { downstream_ran.fetch_add(1); });
    const auto free1 =
        graph.add("n", "free1", 0, {}, [&] { independent_ran.fetch_add(1); });
    const auto free2 =
        graph.add("n", "free2", 0, {free1}, [&] { independent_ran.fetch_add(1); });
    if (inline_run) {
      graph.execute_inline();
    } else {
      ThreadPool pool(2);
      graph.execute(pool);
    }
    EXPECT_EQ(graph.status(boom), TaskStatus::Failed);
    EXPECT_EQ(graph.status(mid), TaskStatus::Cancelled);
    EXPECT_EQ(graph.status(leaf), TaskStatus::Cancelled);
    EXPECT_EQ(graph.status(free1), TaskStatus::Done);
    EXPECT_EQ(graph.status(free2), TaskStatus::Done);
    EXPECT_EQ(downstream_ran.load(), 0);
    EXPECT_EQ(independent_ran.load(), 2);
    ASSERT_NE(graph.error(boom), nullptr);
    try {
      std::rethrow_exception(graph.error(boom));
      FAIL() << "expected runtime_error";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "boom failed");
    }
    EXPECT_EQ(graph.error(mid), nullptr);  // cancelled, not failed
  }
}

TEST(TaskGraph, ForwardDependenciesAreRejected) {
  TaskGraph graph;
  EXPECT_THROW(graph.add("n", "x", 0, {0}, [] {}), std::invalid_argument);
  graph.add("n", "a", 0, {}, [] {});
  EXPECT_THROW(graph.add("n", "b", 0, {5}, [] {}), std::invalid_argument);
}

TEST(TaskGraph, TraceRecordsScheduleAndCriticalPath) {
  // The m → d → z chain busy-spins so it dominates the no-op stray node and
  // the critical path is unambiguous.
  const auto spin = [] {
    const auto until = std::chrono::steady_clock::now() + std::chrono::milliseconds(2);
    while (std::chrono::steady_clock::now() < until) {
    }
  };
  ThreadPool pool(2);
  TaskGraph graph;
  const auto a = graph.add("model", "m", 0, {}, spin);
  const auto b = graph.add("derive", "d", 1, {a}, spin);
  graph.add("minimize", "z", 2, {b}, spin);
  graph.add("stray", "s", 3, {}, [] {});
  graph.execute(pool);

  const TaskTrace& trace = graph.trace();
  ASSERT_EQ(trace.nodes.size(), 4u);
  EXPECT_EQ(trace.workers, 2u);
  EXPECT_GT(trace.wall_seconds, 0.0);
  double chain = 0;
  for (const TraceNode& node : trace.nodes) {
    EXPECT_EQ(node.status, TaskStatus::Done);
    EXPECT_GE(node.worker, 0);  // every node ran on a pool worker
    EXPECT_LT(node.worker, 2);
    EXPECT_GE(node.wall_end, node.wall_start);
    EXPECT_LE(node.wall_end, trace.wall_seconds + 1e-6);
  }
  // The m → d → z chain is the longest dependency chain; the stray node
  // cannot beat it unless it alone outlasted the chain (it does no work).
  for (const std::size_t id : {a, b}) chain += trace.nodes[id].wall_duration();
  chain += trace.nodes[2].wall_duration();
  EXPECT_NEAR(trace.critical_path_seconds(), chain, 1e-9);
  const std::vector<std::size_t> path = trace.critical_path();
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path, (std::vector<std::size_t>{0, 1, 2}));

  // Dependencies are ordered in the schedule: a dep's wall_end is never
  // after its dependent's wall_start.
  for (const TraceNode& node : trace.nodes) {
    for (const std::size_t dep : node.deps) {
      EXPECT_LE(trace.nodes[dep].wall_end, node.wall_start)
          << "node " << node.id << " started before dep " << dep << " ended";
    }
  }

  const std::string json = trace.to_json();
  EXPECT_NE(json.find("\"schema\": \"punt-schedule-trace\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"derive\""), std::string::npos);
  EXPECT_NE(json.find("\"deps\": [1]"), std::string::npos);
  const std::string summary = graph.trace().summary();
  EXPECT_NE(summary.find("critical path"), std::string::npos);
  EXPECT_NE(summary.find("1 model"), std::string::npos);
}

TEST(TaskGraph, CancelledNodesContributeNothingToTheCriticalPath) {
  TaskGraph graph;
  const auto boom = graph.add("n", "boom", 0, {}, [] {
    throw std::runtime_error("down");
  });
  graph.add("n", "dead", 0, {boom}, [] {});
  graph.execute_inline();
  const TaskTrace& trace = graph.trace();
  EXPECT_EQ(trace.nodes[1].status, TaskStatus::Cancelled);
  EXPECT_EQ(trace.nodes[1].wall_duration(), 0.0);
  EXPECT_EQ(trace.nodes[1].worker, -1);
  EXPECT_NEAR(trace.critical_path_seconds(), trace.nodes[0].wall_duration(), 1e-12);
}

TEST(TaskGraph, EmptyGraphExecutes) {
  TaskGraph graph;
  graph.execute_inline();
  EXPECT_EQ(graph.trace().nodes.size(), 0u);
  EXPECT_EQ(graph.trace().critical_path_seconds(), 0.0);

  ThreadPool pool(2);
  TaskGraph pooled;
  pooled.execute(pool);
  EXPECT_EQ(pooled.trace().nodes.size(), 0u);
}

TEST(TaskGraph, ExecutingTwiceIsRejected) {
  TaskGraph graph;
  graph.add("n", "a", 0, {}, [] {});
  graph.execute_inline();
  EXPECT_THROW(graph.execute_inline(), std::invalid_argument);
  EXPECT_THROW(graph.add("n", "late", 0, {}, [] {}), std::invalid_argument);
}

// The no-deadlock property the old blocking-future scheduler could not
// offer: many small graphs — from several threads at once — churning
// through ONE pool, with continuations posted from inside workers.  Run
// under -fsanitize=thread in CI (the TaskGraph regex of the TSan job).
TEST(TaskGraph, StressManySmallGraphsThroughOnePool) {
  ThreadPool pool(4);
  constexpr int kThreads = 3;
  constexpr int kGraphsPerThread = 40;
  std::atomic<long> total{0};
  std::vector<std::thread> drivers;
  drivers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    drivers.emplace_back([&pool, &total] {
      for (int g = 0; g < kGraphsPerThread; ++g) {
        TaskGraph graph;
        std::atomic<long> sum{0};
        // Two-level fan-out/fan-in: root → 6 middles → sink, plus one
        // failing branch whose dependent must be cancelled.
        const auto root = graph.add("n", "root", 0, {}, [&sum] { sum.fetch_add(1); });
        std::vector<TaskGraph::NodeId> middles;
        for (int m = 0; m < 6; ++m) {
          middles.push_back(
              graph.add("n", "mid", 1, {root}, [&sum] { sum.fetch_add(10); }));
        }
        const auto boom = graph.add("n", "boom", 1, {root}, [] {
          throw std::runtime_error("expected");
        });
        const auto dead = graph.add("n", "dead", 2, {boom}, [&sum] {
          sum.fetch_add(1000000);  // must never run
        });
        graph.add("n", "sink", 3, middles, [&sum] { sum.fetch_add(100); });
        graph.execute(pool);
        EXPECT_EQ(graph.status(dead), TaskStatus::Cancelled);
        EXPECT_EQ(sum.load(), 1 + 6 * 10 + 100);
        total.fetch_add(sum.load());
      }
    });
  }
  for (std::thread& driver : drivers) driver.join();
  EXPECT_EQ(total.load(), static_cast<long>(kThreads) * kGraphsPerThread * 161);
}

}  // namespace
}  // namespace punt::util
