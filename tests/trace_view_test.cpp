// Tests for `punt trace` (src/benchmarks/trace_view): parsing a
// --trace-schedule JSON dump back into a util::TaskTrace — including the
// additive v1 cost fields and the reject table for damaged documents — and
// the rendered occupancy/Gantt/estimate report.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <string_view>

#include "src/benchmarks/trace_view.hpp"
#include "src/util/error.hpp"
#include "src/util/task_graph.hpp"
#include "src/util/thread_pool.hpp"

namespace punt::benchmarks {
namespace {

using util::TaskGraph;
using util::TaskStatus;
using util::TaskTrace;
using util::TraceNode;

/// A small mixed-kind graph: model → {derive x, derive y} → minimize y,
/// with cost estimates on all but one node.  Executed for real so the dump
/// carries genuine wall/cpu/ready times.
TaskTrace executed_trace(std::size_t workers) {
  TaskGraph graph;
  const auto spin = [] {
    volatile double sink = 0;
    for (int i = 0; i < 20000; ++i) sink = sink + static_cast<double>(i);
  };
  const auto model = graph.add("model", "m", 0, 0.8, {}, spin);
  const auto dx = graph.add("derive", "t/x", 2, 0.2, {model}, spin);
  const auto dy = graph.add("derive", "t/y", 2, 0.4, {model}, spin);
  graph.add("minimize", "t/y", 3, /*deps=*/{dy}, spin);  // no estimate
  (void)dx;
  if (workers <= 1) {
    graph.execute_inline();
  } else {
    util::ThreadPool pool(workers);
    graph.execute(pool);
  }
  return graph.trace();
}

std::string replace_once(std::string text, std::string_view from, std::string_view to) {
  const std::size_t at = text.find(from);
  EXPECT_NE(at, std::string::npos) << "fixture lost marker '" << from << "'";
  if (at != std::string::npos) text.replace(at, from.size(), to);
  return text;
}

TEST(TraceView, RoundTripsAnExecutedGraphThroughJson) {
  for (const std::size_t workers : {std::size_t{1}, std::size_t{2}}) {
    const TaskTrace original = executed_trace(workers);
    const TaskTrace parsed = trace_from_json(original.to_json());
    EXPECT_EQ(parsed.workers, original.workers);
    EXPECT_NEAR(parsed.wall_seconds, original.wall_seconds, 1e-6);
    ASSERT_EQ(parsed.nodes.size(), original.nodes.size());
    for (std::size_t i = 0; i < parsed.nodes.size(); ++i) {
      const TraceNode& got = parsed.nodes[i];
      const TraceNode& want = original.nodes[i];
      EXPECT_EQ(got.id, want.id);
      EXPECT_EQ(got.kind, want.kind);
      EXPECT_EQ(got.label, want.label);
      EXPECT_EQ(got.deps, want.deps);
      EXPECT_EQ(got.priority, want.priority);
      EXPECT_EQ(got.status, want.status);
      EXPECT_EQ(got.worker, want.worker);
      EXPECT_NEAR(got.est_cost, want.est_cost, 1e-9);
      EXPECT_NEAR(got.wall_ready, want.wall_ready, 1e-6);
      EXPECT_NEAR(got.wall_start, want.wall_start, 1e-6);
      EXPECT_NEAR(got.wall_end, want.wall_end, 1e-6);
      EXPECT_NEAR(got.queue_wait(), want.queue_wait(), 1e-6);
    }
    // The derived quantities survive the trip too.
    EXPECT_NEAR(parsed.critical_path_seconds(), original.critical_path_seconds(), 1e-6);
    EXPECT_EQ(parsed.critical_path(), original.critical_path());
  }
}

TEST(TraceView, ReadsPreCostDumpsWithoutTheAdditiveFields) {
  // A dump written before est_cost/wall_ready/queue_wait existed: strip them.
  std::string json = executed_trace(1).to_json();
  for (const char* field : {"est_cost", "wall_ready", "queue_wait"}) {
    std::size_t at;
    while ((at = json.find(std::string("\"") + field + "\":")) != std::string::npos) {
      const std::size_t comma = json.find(',', at);
      ASSERT_NE(comma, std::string::npos);
      json.erase(at, comma - at + 1);
    }
  }
  const TaskTrace trace = trace_from_json(json);
  ASSERT_FALSE(trace.nodes.empty());
  for (const TraceNode& node : trace.nodes) {
    EXPECT_EQ(node.est_cost, 0.0);
    EXPECT_EQ(node.wall_ready, 0.0);
  }
  EXPECT_NE(format_trace(trace).find("no cost estimates in this trace"),
            std::string::npos)
      << "a pre-ledger dump renders with the cold-ledger note";
}

TEST(TraceView, RejectsDamagedDocuments) {
  const std::string good = executed_trace(1).to_json();
  ASSERT_NO_THROW(trace_from_json(good));
  const struct {
    const char* name;
    std::string doc;
  } rejects[] = {
      {"malformed JSON", good.substr(0, good.size() / 2)},
      {"not an object", "[1, 2, 3]"},
      {"wrong schema",
       replace_once(good, "\"punt-schedule-trace\"", "\"punt-table1-report\"")},
      {"unsupported version", replace_once(good, "\"version\": 1", "\"version\": 2")},
      {"non-dense ids", replace_once(good, "\"id\": 1", "\"id\": 7")},
      {"forward dep", replace_once(good, "\"deps\": [0]", "\"deps\": [9]")},
      {"non-integer dep", replace_once(good, "\"deps\": [0]", "\"deps\": [0.5]")},
      {"unknown status", replace_once(good, "\"done\"", "\"finished\"")},
      {"nodes not an array", replace_once(good, "\"nodes\": [", "\"nodes\": 3, \"x\": [")},
  };
  for (const auto& reject : rejects) {
    EXPECT_THROW(trace_from_json(reject.doc), ParseError) << reject.name;
  }
}

TEST(TraceView, FormatsOccupancyLegendAndEstimateTable) {
  const std::string out = format_trace(trace_from_json(executed_trace(2).to_json()));
  EXPECT_NE(out.find("worker occupancy:"), std::string::npos);
  EXPECT_NE(out.find("legend:"), std::string::npos);
  // Distinct letters even for kinds sharing an initial (model vs minimize).
  EXPECT_NE(out.find("M=model"), std::string::npos);
  EXPECT_NE(out.find("I=minimize"), std::string::npos);
  EXPECT_NE(out.find("queue wait:"), std::string::npos);
  EXPECT_NE(out.find("ledger estimate vs measured"), std::string::npos);
  // Three of four nodes carried estimates, so no cold-ledger note.
  EXPECT_EQ(out.find("no cost estimates in this trace"), std::string::npos);
}

}  // namespace
}  // namespace punt::benchmarks
