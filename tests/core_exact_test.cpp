// Exact synthesis from the segment (paper §4.1): slices, cut enumeration,
// exact covers.  Reference: Fig. 3 — On(b) = {100,101,110,111,001,011},
// Off(b) = {010,000}.
#include <gtest/gtest.h>

#include <set>

#include "src/core/slices.hpp"
#include "src/sg/analysis.hpp"
#include "src/sg/state_graph.hpp"
#include "src/stg/generators.hpp"
#include "src/unfolding/unfolding.hpp"
#include "src/util/error.hpp"

namespace punt::core {
namespace {

using stg::SignalId;
using stg::Stg;
using unf::Unfolding;

std::set<std::string> code_set(const std::vector<stg::Code>& codes) {
  std::set<std::string> out;
  for (const auto& c : codes) out.insert(stg::code_to_string(c));
  return out;
}

std::set<std::string> cover_cubes(logic::Cover cover) {
  cover.normalize();
  std::set<std::string> out;
  for (const auto& cube : cover.cubes()) out.insert(cube.to_string());
  return out;
}

TEST(Slices, Fig1OnSetPartitioningOfB) {
  const Stg stg = stg::make_paper_fig1();
  const Unfolding unf = Unfolding::build(stg);
  const SignalId b = *stg.find_signal("b");
  const auto slices = signal_slices(unf, b, true);
  // Two rising instances (b+ and b+/2), no ⊥ slice since b starts at 0.
  ASSERT_EQ(slices.size(), 2u);
  std::size_t bounded = 0;
  for (const Slice& s : slices) {
    EXPECT_FALSE(unf.is_initial(s.entry));
    for (const auto g : s.bounds) {
      EXPECT_EQ(stg.transition_name(unf.transition(g)), "b-");
      ++bounded;
    }
  }
  // Only the b+/2 branch sees b- inside the segment; the b+ branch leaves
  // through the -a' cutoff, so its slice is bounded by the segment frontier
  // (paper §4.1: "the cut reached by such configuration bounds the slice").
  EXPECT_EQ(bounded, 1u);
}

TEST(Slices, Fig1OffSetHasInitialSlice) {
  const Stg stg = stg::make_paper_fig1();
  const Unfolding unf = Unfolding::build(stg);
  const SignalId b = *stg.find_signal("b");
  const auto slices = signal_slices(unf, b, false);
  // One falling instance (b-) plus the ⊥ slice (b starts at 0).
  ASSERT_EQ(slices.size(), 2u);
  bool has_initial = false;
  for (const Slice& s : slices) {
    if (unf.is_initial(s.entry)) {
      has_initial = true;
      // The ⊥ off-slice is bounded by first(b) = the two b+ instances.
      EXPECT_EQ(s.bounds.size(), 2u);
    }
  }
  EXPECT_TRUE(has_initial);
}

TEST(Slices, Fig1MinCutsMatchPaper) {
  const Stg stg = stg::make_paper_fig1();
  const Unfolding unf = Unfolding::build(stg);
  const SignalId b = *stg.find_signal("b");
  std::set<std::set<std::string>> min_cut_places;
  for (const Slice& s : signal_slices(unf, b, true)) {
    std::set<std::string> places;
    s.min_cut.for_each([&](std::size_t c) {
      places.insert(stg.net().place_name(
          unf.place(unf::ConditionId(static_cast<std::uint32_t>(c)))));
    });
    min_cut_places.insert(places);
  }
  // Paper Fig. 3: S1 starts at (p4), S2 at (p2, p3).
  EXPECT_TRUE(min_cut_places.contains(std::set<std::string>{"p4"}));
  EXPECT_TRUE(min_cut_places.contains(std::set<std::string>{"p2", "p3"}));
}

TEST(Slices, Fig1SliceStatesOfBranchB) {
  const Stg stg = stg::make_paper_fig1();
  const Unfolding unf = Unfolding::build(stg);
  const SignalId b = *stg.find_signal("b");
  for (const Slice& s : signal_slices(unf, b, true)) {
    std::set<std::string> places;
    s.min_cut.for_each([&](std::size_t c) {
      places.insert(stg.net().place_name(
          unf.place(unf::ConditionId(static_cast<std::uint32_t>(c)))));
    });
    if (places == std::set<std::string>{"p4"}) {
      // Paper: On1(b) = {001, 011}.
      const SliceStates states = enumerate_slice(unf, b, s);
      EXPECT_EQ(code_set(states.codes), (std::set<std::string>{"001", "011"}));
    }
  }
}

TEST(ExactCover, Fig1MatchesPaperOnAndOffSets) {
  const Stg stg = stg::make_paper_fig1();
  const Unfolding unf = Unfolding::build(stg);
  const SignalId b = *stg.find_signal("b");
  const logic::Cover on = exact_cover(unf, b, true);
  EXPECT_EQ(cover_cubes(on), (std::set<std::string>{"100", "101", "110", "111",
                                                    "001", "011"}));
  const logic::Cover off = exact_cover(unf, b, false);
  EXPECT_EQ(cover_cubes(off), (std::set<std::string>{"010", "000"}));
  EXPECT_FALSE(on.intersects(off));
}

TEST(ExactCover, Fig1ErCoverOfB) {
  const Stg stg = stg::make_paper_fig1();
  const Unfolding unf = Unfolding::build(stg);
  const SignalId b = *stg.find_signal("b");
  EXPECT_EQ(cover_cubes(exact_er_cover(unf, b, true)),
            (std::set<std::string>{"100", "101", "001"}));
  EXPECT_EQ(cover_cubes(exact_er_cover(unf, b, false)),
            (std::set<std::string>{"010"}));
}

TEST(ExactCover, CutBudgetEnforced) {
  const Stg stg = stg::make_muller_pipeline(6);
  const Unfolding unf = Unfolding::build(stg);
  const SignalId a3 = *stg.find_signal("a3");
  EXPECT_THROW(exact_cover(unf, a3, true, /*cut_budget=*/3), CapacityError);
}

/// The paper's equivalence claim: exact covers from the segment equal the
/// SG-derived covers — across every example STG and every signal.
class ExactEquivalence : public ::testing::TestWithParam<int> {
 protected:
  static Stg make(int which) {
    switch (which) {
      case 0: return stg::make_paper_fig1();
      case 1: return stg::make_paper_fig4ab();
      case 2: return stg::make_paper_fig4c();
      case 3: return stg::make_muller_pipeline(2);
      case 4: return stg::make_muller_pipeline(4);
      default: return stg::make_vme_bus();
    }
  }
};

TEST_P(ExactEquivalence, UnfoldingCoversEqualStateGraphCovers) {
  const Stg stg = make(GetParam());
  const Unfolding unf = Unfolding::build(stg);
  const sg::StateGraph sgraph = sg::StateGraph::build(stg);
  for (std::size_t si = 0; si < stg.signal_count(); ++si) {
    const SignalId s(static_cast<std::uint32_t>(si));
    if (stg.signal_kind(s) == stg::SignalKind::Dummy) continue;
    EXPECT_EQ(cover_cubes(exact_cover(unf, s, true)),
              cover_cubes(sg::on_cover(sgraph, s)))
        << "on-set mismatch for " << stg.signal_name(s) << " in " << stg.name();
    EXPECT_EQ(cover_cubes(exact_cover(unf, s, false)),
              cover_cubes(sg::off_cover(sgraph, s)))
        << "off-set mismatch for " << stg.signal_name(s) << " in " << stg.name();
    EXPECT_EQ(cover_cubes(exact_er_cover(unf, s, true)),
              cover_cubes(sg::er_cover(stg, sgraph, s, true)))
        << "ER+ mismatch for " << stg.signal_name(s) << " in " << stg.name();
    EXPECT_EQ(cover_cubes(exact_er_cover(unf, s, false)),
              cover_cubes(sg::er_cover(stg, sgraph, s, false)))
        << "ER- mismatch for " << stg.signal_name(s) << " in " << stg.name();
  }
}

INSTANTIATE_TEST_SUITE_P(Examples, ExactEquivalence, ::testing::Range(0, 6));

}  // namespace
}  // namespace punt::core
