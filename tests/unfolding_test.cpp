// Tests for the STG-unfolding segment: construction, cutoffs, relations,
// codes, completeness.  The Fig. 1 / Fig. 2 example of the paper pins the
// exact segment shape: 8 instances, 2 cutoffs (-a' and -b'), 12 conditions.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/sg/state_graph.hpp"
#include "src/stg/generators.hpp"
#include "src/unfolding/unfolding.hpp"
#include "src/util/error.hpp"

namespace punt::unf {
namespace {

using stg::SignalId;
using stg::Stg;

/// Finds the unique non-cutoff event instantiating `name`, or any event if
/// `allow_cutoff`.
EventId event_by_name(const Unfolding& unf, const std::string& name,
                      bool allow_cutoff = true) {
  for (std::size_t i = 1; i < unf.event_count(); ++i) {
    const EventId e(static_cast<std::uint32_t>(i));
    if (unf.stg().transition_name(unf.transition(e)) == name &&
        (allow_cutoff || !unf.is_cutoff(e))) {
      return e;
    }
  }
  ADD_FAILURE() << "no instance of " << name;
  return EventId();
}

std::set<std::string> marking_strings(const stg::Stg& stg,
                                      const std::vector<pn::Marking>& markings) {
  std::set<std::string> out;
  for (const auto& m : markings) out.insert(m.to_string(stg.net().place_names()));
  return out;
}

TEST(Unfolding, PaperFig2SegmentShape) {
  const Stg stg = stg::make_paper_fig1();
  const Unfolding unf = Unfolding::build(stg);
  EXPECT_EQ(unf.stats().events, 8u);      // Fig. 2: 8 instances
  EXPECT_EQ(unf.stats().conditions, 12u); // p'1..p'9, p''7, p''8, p''1
  EXPECT_EQ(unf.stats().cutoffs, 2u);     // -a' and -b'
}

TEST(Unfolding, PaperFig2CutoffsAreMinusAAndMinusB) {
  const Stg stg = stg::make_paper_fig1();
  const Unfolding unf = Unfolding::build(stg);
  std::set<std::string> cutoff_names;
  for (std::size_t i = 1; i < unf.event_count(); ++i) {
    const EventId e(static_cast<std::uint32_t>(i));
    if (unf.is_cutoff(e)) {
      cutoff_names.insert(stg.transition_name(unf.transition(e)));
    }
  }
  EXPECT_EQ(cutoff_names, (std::set<std::string>{"a-", "b-"}));
  // -a' is cut off against +b/2 (same final state (p7,p8)/011), and -b'
  // against the initial transition.
  const EventId a_dn = event_by_name(unf, "a-");
  ASSERT_TRUE(unf.is_cutoff(a_dn));
  const EventId image = unf.cutoff_image(a_dn);
  EXPECT_EQ(stg.transition_name(unf.transition(image)), "b+/2");
  const EventId b_dn = event_by_name(unf, "b-");
  ASSERT_TRUE(unf.is_cutoff(b_dn));
  EXPECT_TRUE(unf.is_initial(unf.cutoff_image(b_dn)));
}

TEST(Unfolding, EventCodesMatchPaperFig2) {
  const Stg stg = stg::make_paper_fig1();
  const Unfolding unf = Unfolding::build(stg);
  auto code_of = [&](const std::string& name) {
    return stg::code_to_string(unf.code(event_by_name(unf, name)));
  };
  EXPECT_EQ(code_of("a+"), "100");
  EXPECT_EQ(code_of("b+"), "110");   // +b'' in the paper's priming
  EXPECT_EQ(code_of("c+"), "101");
  EXPECT_EQ(code_of("c+/2"), "001");
  EXPECT_EQ(code_of("b+/2"), "011");
  EXPECT_EQ(code_of("c-"), "010");
  EXPECT_EQ(code_of("a-"), "011");
  EXPECT_EQ(code_of("b-"), "000");
}

TEST(Unfolding, ExcitationCodeUndoesOwnEdge) {
  const Stg stg = stg::make_paper_fig1();
  const Unfolding unf = Unfolding::build(stg);
  const EventId a_up = event_by_name(unf, "a+");
  EXPECT_EQ(stg::code_to_string(unf.excitation_code(a_up)), "000");
  const EventId c_dn = event_by_name(unf, "c-");
  EXPECT_EQ(stg::code_to_string(unf.excitation_code(c_dn)), "011");
}

TEST(Unfolding, InitialEventPostsetIsInitialMarking) {
  const Stg stg = stg::make_paper_fig1();
  const Unfolding unf = Unfolding::build(stg);
  const auto& post = unf.postset(Unfolding::initial_event());
  ASSERT_EQ(post.size(), 1u);
  EXPECT_EQ(stg.net().place_name(unf.place(post.front())), "p1");
  EXPECT_EQ(unf.config_size(Unfolding::initial_event()), 0u);
}

TEST(Unfolding, CausalityAndConflictRelations) {
  const Stg stg = stg::make_paper_fig1();
  const Unfolding unf = Unfolding::build(stg);
  const EventId a_up = event_by_name(unf, "a+");
  const EventId b_up_A = event_by_name(unf, "b+");
  const EventId c_up_A = event_by_name(unf, "c+");
  const EventId c_up_B = event_by_name(unf, "c+/2");
  const EventId b_up_B = event_by_name(unf, "b+/2");
  const EventId a_dn = event_by_name(unf, "a-");

  EXPECT_TRUE(unf.precedes(a_up, b_up_A));
  EXPECT_TRUE(unf.precedes(a_up, a_dn));
  EXPECT_FALSE(unf.precedes(b_up_A, a_up));
  EXPECT_TRUE(unf.precedes(a_up, a_up));  // reflexive

  // The two post-+a branches are concurrent.
  EXPECT_TRUE(unf.co(b_up_A, c_up_A));
  EXPECT_FALSE(unf.in_conflict(b_up_A, c_up_A));

  // The choice at p1 puts the two branches in conflict.
  EXPECT_TRUE(unf.in_conflict(a_up, c_up_B));
  EXPECT_TRUE(unf.in_conflict(b_up_A, b_up_B));
  EXPECT_FALSE(unf.co(a_up, c_up_B));

  // ⊥ precedes everything and is concurrent with nothing.
  EXPECT_TRUE(unf.precedes(Unfolding::initial_event(), a_dn));
  EXPECT_FALSE(unf.co(Unfolding::initial_event(), a_up));
}

TEST(Unfolding, ConditionEventConcurrency) {
  const Stg stg = stg::make_paper_fig4ab();
  const Unfolding unf = Unfolding::build(stg);
  const EventId d_up = event_by_name(unf, "d+");
  const EventId b_up = event_by_name(unf, "b+");
  // p2 (input of b+) is concurrent with d+ (parallel branches after a+).
  const ConditionId p2 = unf.preset(b_up).front();
  EXPECT_TRUE(unf.co(p2, d_up));
  // p4 (input of d+) is not concurrent with d+ (it is consumed by it).
  const ConditionId p4 = unf.preset(d_up).front();
  EXPECT_FALSE(unf.co(p4, d_up));
}

TEST(Unfolding, NextAndFirstInstances) {
  const Stg stg = stg::make_paper_fig1();
  const Unfolding unf = Unfolding::build(stg);
  const SignalId b = *stg.find_signal("b");
  const EventId a_up = event_by_name(unf, "a+");
  const EventId a_dn = event_by_name(unf, "a-");

  const auto next_a = unf.next_instances(a_up);
  ASSERT_EQ(next_a.size(), 1u);
  EXPECT_EQ(next_a.front(), a_dn);

  const auto first_b = unf.first_instances(b);
  std::set<std::string> names;
  for (const EventId e : first_b) names.insert(stg.transition_name(unf.transition(e)));
  EXPECT_EQ(names, (std::set<std::string>{"b+", "b+/2"}));

  const EventId b_up_B = event_by_name(unf, "b+/2");
  const auto next_b = unf.next_instances(b_up_B);
  ASSERT_EQ(next_b.size(), 1u);
  EXPECT_EQ(stg.transition_name(unf.transition(next_b.front())), "b-");
}

TEST(Unfolding, MinCutsOfFig2) {
  const Stg stg = stg::make_paper_fig1();
  const Unfolding unf = Unfolding::build(stg);
  const EventId c_dn = event_by_name(unf, "c-");
  // c- becomes enabled at (p7, p8) — its minimal excitation cut.
  const Bitset exc = unf.min_excitation_cut(c_dn);
  std::multiset<std::string> places;
  exc.for_each([&](std::size_t c) {
    places.insert(stg.net().place_name(unf.place(ConditionId(static_cast<std::uint32_t>(c)))));
  });
  EXPECT_EQ(places, (std::multiset<std::string>{"p7", "p8"}));
  // Its minimal stable cut is (p9).
  const Bitset stable = unf.min_stable_cut(c_dn);
  EXPECT_EQ(stable.count(), 1u);
  EXPECT_EQ(stg.net().place_name(unf.place(ConditionId(
                static_cast<std::uint32_t>(stable.find_first())))),
            "p9");
}

TEST(Unfolding, FinalMarkingsMatchCutMarkings) {
  const Stg stg = stg::make_paper_fig1();
  const Unfolding unf = Unfolding::build(stg);
  for (std::size_t i = 0; i < unf.event_count(); ++i) {
    const EventId e(static_cast<std::uint32_t>(i));
    EXPECT_EQ(unf.final_marking(e),
              unf.marking_of_cut(unf.min_stable_cut(e)));
  }
}

/// Completeness (McMillan's theorem, lifted to STGs): every SG marking is
/// the marking of some cut of the segment — and no more.
class Completeness : public ::testing::TestWithParam<int> {};

TEST_P(Completeness, SegmentRepresentsExactlyTheReachableMarkings) {
  Stg stg;
  switch (GetParam()) {
    case 0: stg = stg::make_paper_fig1(); break;
    case 1: stg = stg::make_paper_fig4ab(); break;
    case 2: stg = stg::make_paper_fig4c(); break;
    case 3: stg = stg::make_muller_pipeline(3); break;
    case 4: stg = stg::make_muller_pipeline(5); break;
    case 5: stg = stg::make_vme_bus(); break;
  }
  const Unfolding unf = Unfolding::build(stg);
  const sg::StateGraph sgraph = sg::StateGraph::build(stg);
  std::set<std::string> sg_markings;
  for (std::size_t s = 0; s < sgraph.state_count(); ++s) {
    sg_markings.insert(sgraph.marking(s).to_string(stg.net().place_names()));
  }
  EXPECT_EQ(marking_strings(stg, reachable_cut_markings(unf)), sg_markings);
}

INSTANTIATE_TEST_SUITE_P(Examples, Completeness, ::testing::Range(0, 6));

TEST(Unfolding, TotalOrderCutoffNeverLarger) {
  for (const auto& stg : {stg::make_paper_fig1(), stg::make_vme_bus(),
                          stg::make_muller_pipeline(4)}) {
    UnfoldOptions mcmillan;
    mcmillan.cutoff = UnfoldOptions::CutoffPolicy::McMillan;
    UnfoldOptions total;
    total.cutoff = UnfoldOptions::CutoffPolicy::TotalOrder;
    const auto a = Unfolding::build(stg, mcmillan);
    const auto b = Unfolding::build(stg, total);
    EXPECT_LE(b.stats().events, a.stats().events);
  }
}

TEST(Unfolding, MullerSegmentGrowsLinearly) {
  const Unfolding u4 = Unfolding::build(stg::make_muller_pipeline(4));
  const Unfolding u8 = Unfolding::build(stg::make_muller_pipeline(8));
  const Unfolding u16 = Unfolding::build(stg::make_muller_pipeline(16));
  // Roughly linear growth: doubling stages should not quadruple events.
  EXPECT_LT(u8.stats().events, 4 * u4.stats().events);
  EXPECT_LT(u16.stats().events, 4 * u8.stats().events);
  // ... while the SG grows exponentially (see sg_test); the segment for 16
  // stages stays small.
  EXPECT_LT(u16.stats().events, 500u);
}

TEST(Unfolding, EventBudgetEnforced) {
  UnfoldOptions options;
  options.event_budget = 3;
  EXPECT_THROW(Unfolding::build(stg::make_muller_pipeline(6), options), CapacityError);
}

TEST(Unfolding, UnsafeStgDetected) {
  // Unsafe net whose fork/join feeds a shared place twice.  Note this net is
  // *also* inconsistent (a- can fire after just b+), and the unfolder may
  // legitimately report either defect — both are rejections.
  Stg stg;
  const SignalId a = stg.add_signal("a", stg::SignalKind::Output);
  const SignalId b = stg.add_signal("b", stg::SignalKind::Output);
  const auto a_up = stg.add_transition(a, stg::Polarity::Rise);
  const auto b_up = stg.add_transition(b, stg::Polarity::Rise);
  const auto a_dn = stg.add_transition(a, stg::Polarity::Fall);
  const auto b_dn = stg.add_transition(b, stg::Polarity::Fall);
  auto& net = stg.net();
  const auto p0 = net.add_place("p0");
  const auto p1 = net.add_place("p1");
  const auto shared = net.add_place("shared");
  const auto sink = net.add_place("sink");
  const auto sink2 = net.add_place("sink2");
  net.add_arc(p0, a_up);
  net.add_arc(p1, b_up);
  net.add_arc(a_up, shared);
  net.add_arc(b_up, shared);
  net.add_arc(shared, a_dn);
  net.add_arc(a_dn, sink);
  net.add_arc(shared, b_dn);
  net.add_arc(b_dn, sink2);
  net.set_initial_tokens(p0, 1);
  net.set_initial_tokens(p1, 1);
  EXPECT_THROW(Unfolding::build(stg), Error);
}

TEST(Unfolding, UnsafeInitialMarkingDetected) {
  Stg stg;
  const SignalId a = stg.add_signal("a", stg::SignalKind::Output);
  const auto a_up = stg.add_transition(a, stg::Polarity::Rise);
  auto& net = stg.net();
  const auto p = net.add_place("p");
  const auto q = net.add_place("q");
  net.add_arc(p, a_up);
  net.add_arc(a_up, q);
  net.set_initial_tokens(p, 2);
  EXPECT_THROW(Unfolding::build(stg), CapacityError);
}

TEST(Unfolding, InconsistentStgDetected) {
  Stg stg;
  const SignalId a = stg.add_signal("a", stg::SignalKind::Output);
  const auto up1 = stg.add_transition(a, stg::Polarity::Rise);
  const auto up2 = stg.add_transition(a, stg::Polarity::Rise);
  auto& net = stg.net();
  const auto p = net.add_place("p");
  const auto q = net.add_place("q");
  const auto r = net.add_place("r");
  net.add_arc(p, up1);
  net.add_arc(up1, q);
  net.add_arc(q, up2);
  net.add_arc(up2, r);
  net.set_initial_tokens(p, 1);
  EXPECT_THROW(Unfolding::build(stg), ImplementabilityError);
}

TEST(Unfolding, SegmentPersistencyCleanOnFig1) {
  const Unfolding unf = Unfolding::build(stg::make_paper_fig1());
  EXPECT_TRUE(segment_persistency_violations(unf).empty());
}

TEST(Unfolding, SegmentPersistencyDetectsOutputChoice) {
  Stg stg;
  const SignalId a = stg.add_signal("a", stg::SignalKind::Output);
  const SignalId b = stg.add_signal("b", stg::SignalKind::Output);
  const auto a_up = stg.add_transition(a, stg::Polarity::Rise);
  const auto b_up = stg.add_transition(b, stg::Polarity::Rise);
  const auto a_dn = stg.add_transition(a, stg::Polarity::Fall);
  const auto b_dn = stg.add_transition(b, stg::Polarity::Fall);
  auto& net = stg.net();
  const auto choice = net.add_place("choice");
  const auto pa = net.add_place("pa");
  const auto pb = net.add_place("pb");
  net.add_arc(choice, a_up);
  net.add_arc(choice, b_up);
  net.add_arc(a_up, pa);
  net.add_arc(pa, a_dn);
  net.add_arc(b_up, pb);
  net.add_arc(pb, b_dn);
  net.add_arc(a_dn, choice);
  net.add_arc(b_dn, choice);
  net.set_initial_tokens(choice, 1);
  const Unfolding unf = Unfolding::build(stg);
  const auto violations = segment_persistency_violations(unf);
  ASSERT_FALSE(violations.empty());
  EXPECT_FALSE(violations.front().describe(unf).empty());
}

TEST(Unfolding, EventNamesReadable) {
  const Unfolding unf = Unfolding::build(stg::make_paper_fig1());
  EXPECT_EQ(unf.event_name(Unfolding::initial_event()), "_|_");
  const EventId a_up = event_by_name(unf, "a+");
  EXPECT_NE(unf.event_name(a_up).find("a+@"), std::string::npos);
  const ConditionId c0(0);
  EXPECT_NE(unf.condition_name(c0).find("@0"), std::string::npos);
}

}  // namespace
}  // namespace punt::unf
