// Unit tests for the Petri-net kernel: construction, token game, structure.
#include <gtest/gtest.h>

#include "src/pn/petri_net.hpp"
#include "src/util/error.hpp"

namespace punt::pn {
namespace {

/// p0 -> t0 -> p1 -> t1 -> p0 (a two-phase cycle).
PetriNet make_cycle() {
  PetriNet net;
  const PlaceId p0 = net.add_place("p0");
  const PlaceId p1 = net.add_place("p1");
  const TransitionId t0 = net.add_transition("t0");
  const TransitionId t1 = net.add_transition("t1");
  net.add_arc(p0, t0);
  net.add_arc(t0, p1);
  net.add_arc(p1, t1);
  net.add_arc(t1, p0);
  net.set_initial_tokens(p0, 1);
  return net;
}

TEST(PetriNet, BuildAndLookup) {
  PetriNet net = make_cycle();
  EXPECT_EQ(net.place_count(), 2u);
  EXPECT_EQ(net.transition_count(), 2u);
  ASSERT_TRUE(net.find_place("p1").has_value());
  EXPECT_EQ(net.place_name(*net.find_place("p1")), "p1");
  EXPECT_FALSE(net.find_place("nope").has_value());
  ASSERT_TRUE(net.find_transition("t0").has_value());
  EXPECT_FALSE(net.find_transition("nope").has_value());
}

TEST(PetriNet, DuplicateNamesRejected) {
  PetriNet net;
  net.add_place("p");
  EXPECT_THROW(net.add_place("p"), ValidationError);
  net.add_transition("t");
  EXPECT_THROW(net.add_transition("t"), ValidationError);
}

TEST(PetriNet, DuplicateArcsRejected) {
  PetriNet net;
  const PlaceId p = net.add_place("p");
  const TransitionId t = net.add_transition("t");
  net.add_arc(p, t);
  EXPECT_THROW(net.add_arc(p, t), ValidationError);
  net.add_arc(t, p);
  EXPECT_THROW(net.add_arc(t, p), ValidationError);
}

TEST(PetriNet, EnablingAndFiring) {
  PetriNet net = make_cycle();
  const TransitionId t0 = *net.find_transition("t0");
  const TransitionId t1 = *net.find_transition("t1");
  const Marking m0 = net.initial_marking();
  EXPECT_TRUE(net.enabled(m0, t0));
  EXPECT_FALSE(net.enabled(m0, t1));
  const Marking m1 = net.fire(m0, t0);
  EXPECT_EQ(m1.tokens(*net.find_place("p0")), 0u);
  EXPECT_EQ(m1.tokens(*net.find_place("p1")), 1u);
  EXPECT_TRUE(net.enabled(m1, t1));
  const Marking m2 = net.fire(m1, t1);
  EXPECT_EQ(m2, m0);
}

TEST(PetriNet, FiringDisabledTransitionThrows) {
  PetriNet net = make_cycle();
  const TransitionId t1 = *net.find_transition("t1");
  EXPECT_THROW(net.fire(net.initial_marking(), t1), ValidationError);
}

TEST(PetriNet, CapacityViolationDetected) {
  PetriNet net;
  const PlaceId src = net.add_place("src");
  const PlaceId sink = net.add_place("sink");
  const TransitionId t = net.add_transition("t");
  net.add_arc(src, t);
  net.add_arc(t, sink);
  net.set_initial_tokens(src, 1);
  net.set_initial_tokens(sink, 1);
  EXPECT_THROW(net.fire(net.initial_marking(), t, /*capacity=*/1), CapacityError);
  EXPECT_NO_THROW(net.fire(net.initial_marking(), t, /*capacity=*/2));
  EXPECT_NO_THROW(net.fire(net.initial_marking(), t, /*capacity=*/0));
}

TEST(PetriNet, EnabledTransitionsList) {
  PetriNet net;
  const PlaceId p = net.add_place("p");
  const TransitionId a = net.add_transition("a");
  const TransitionId b = net.add_transition("b");
  const PlaceId pa = net.add_place("pa");
  const PlaceId pb = net.add_place("pb");
  net.add_arc(p, a);
  net.add_arc(p, b);
  net.add_arc(a, pa);
  net.add_arc(b, pb);
  net.set_initial_tokens(p, 1);
  const auto enabled = net.enabled_transitions(net.initial_marking());
  EXPECT_EQ(enabled, (std::vector<TransitionId>{a, b}));
}

TEST(PetriNet, ChoicePlacesAndFreeChoice) {
  PetriNet net;
  const PlaceId p = net.add_place("p");
  const TransitionId a = net.add_transition("a");
  const TransitionId b = net.add_transition("b");
  const PlaceId pa = net.add_place("pa");
  const PlaceId pb = net.add_place("pb");
  net.add_arc(p, a);
  net.add_arc(p, b);
  net.add_arc(a, pa);
  net.add_arc(b, pb);
  EXPECT_EQ(net.choice_places(), (std::vector<PlaceId>{p}));
  EXPECT_TRUE(net.is_free_choice());
  // Adding a second input place to only one consumer breaks free choice.
  const PlaceId extra = net.add_place("extra");
  net.add_arc(extra, a);
  EXPECT_FALSE(net.is_free_choice());
}

TEST(PetriNet, MarkedGraphDetection) {
  PetriNet cycle = make_cycle();
  EXPECT_TRUE(cycle.is_marked_graph());

  PetriNet net;
  const PlaceId p = net.add_place("p");
  const TransitionId a = net.add_transition("a");
  const TransitionId b = net.add_transition("b");
  const PlaceId pa = net.add_place("pa");
  const PlaceId pb = net.add_place("pb");
  net.add_arc(p, a);
  net.add_arc(p, b);
  net.add_arc(a, pa);
  net.add_arc(b, pb);
  EXPECT_FALSE(net.is_marked_graph());
}

TEST(PetriNet, ValidateCatchesEmptyPresets) {
  PetriNet net;
  net.add_place("p");
  const TransitionId t = net.add_transition("t");
  net.add_arc(t, *net.find_place("p"));
  EXPECT_THROW(net.validate(), ValidationError);
}

TEST(PetriNet, ValidateCatchesEmptyPostsets) {
  PetriNet net;
  const PlaceId p = net.add_place("p");
  const TransitionId t = net.add_transition("t");
  net.add_arc(p, t);
  EXPECT_THROW(net.validate(), ValidationError);
}

TEST(Marking, TotalAndMaxTokens) {
  Marking m(3);
  m.set_tokens(PlaceId(0), 2);
  m.set_tokens(PlaceId(2), 1);
  EXPECT_EQ(m.total_tokens(), 3u);
  EXPECT_EQ(m.max_tokens(), 2u);
  EXPECT_EQ(m.marked_places(), (std::vector<PlaceId>{PlaceId(0), PlaceId(2)}));
}

TEST(Marking, EqualityAndHash) {
  Marking a(4), b(4);
  a.add_token(PlaceId(1));
  b.add_token(PlaceId(1));
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
  b.add_token(PlaceId(2));
  EXPECT_FALSE(a == b);
}

TEST(Marking, ToStringShowsCounts) {
  Marking m(2);
  m.set_tokens(PlaceId(0), 1);
  m.set_tokens(PlaceId(1), 2);
  EXPECT_EQ(m.to_string({"x", "y"}), "{x, y=2}");
}

}  // namespace
}  // namespace punt::pn
